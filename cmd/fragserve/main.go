// Command fragserve serves a blob store stack over HTTP — the
// network front-end for the repo's simulated stores. Any composition
// the experiments run (file/db core, shard fleet, read cache, group
// commit) can sit behind the listener; the wire protocol is documented
// in internal/server/wire.
//
// Usage:
//
//	fragserve [flags]
//
// Examples:
//
//	fragserve -addr :8080 -backend file -capacity 4G
//	fragserve -backend db -mode data -groupcommit
//	fragserve -backend file -shards 4 -cache 256M
//	fragserve -maxinflight 128 -maxqueue 256 -queuetimeout 250ms
//
// The process runs until SIGINT/SIGTERM, then shuts down gracefully:
// the listener drains, open sessions are released, and the exit code
// is 0. /metrics and /report expose wall-clock latency live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/vclock"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		backend      = flag.String("backend", "file", "store backend: file or db")
		shards       = flag.Int("shards", 1, "shard count (1 = single volume)")
		capacity     = flag.String("capacity", "4G", "per-volume capacity")
		mode         = flag.String("mode", "data", "disk mode: data (payload bytes retained) or meta (metadata only)")
		groupcommit  = flag.Bool("groupcommit", false, "enable group commit (batch 8, 200µs)")
		cacheBytes   = flag.String("cache", "", "read-cache capacity above the store (empty = no cache)")
		maxInflight  = flag.Int("maxinflight", server.DefaultMaxInFlight, "admission: max concurrent store operations")
		maxQueue     = flag.Int("maxqueue", 2*server.DefaultMaxInFlight, "admission: max queued operations beyond the in-flight limit")
		queueTimeout = flag.Duration("queuetimeout", time.Second, "admission: max wall time an operation may queue (0 = wait forever)")
		reqTimeout   = flag.Duration("reqtimeout", 30*time.Second, "per-request deadline (0 = none)")
		sessionTTL   = flag.Duration("ttl", server.DefaultSessionTTL, "idle TTL before abandoned reader/writer sessions are reaped")
	)
	flag.Parse()
	if err := run(*addr, *backend, *shards, *capacity, *mode, *groupcommit, *cacheBytes, server.Config{
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: *reqTimeout,
		SessionTTL:     *sessionTTL,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "fragserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, backend string, shards int, capacity, mode string, groupcommit bool, cacheBytes string, cfg server.Config) error {
	store, err := buildStore(backend, shards, capacity, mode, groupcommit, cacheBytes)
	if err != nil {
		return err
	}
	srv, err := server.New(store, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fragserve: serving %s on %s\n", store.Name(), addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills hard
	fmt.Fprintln(os.Stderr, "fragserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildStore assembles the served stack: core volumes (sharded when
// asked), then an optional read cache on top.
func buildStore(backend string, shards int, capacity, mode string, groupcommit bool, cacheBytes string) (blob.Store, error) {
	capBytes, err := units.ParseBytes(capacity)
	if err != nil {
		return nil, fmt.Errorf("bad -capacity: %w", err)
	}
	var opts []blob.Option
	opts = append(opts, blob.WithCapacity(capBytes))
	switch mode {
	case "data":
		opts = append(opts, blob.WithDiskMode(disk.DataMode))
	case "meta":
	default:
		return nil, fmt.Errorf("%w: bad -mode %q (want data or meta)", blob.ErrBadOption, mode)
	}
	if groupcommit {
		opts = append(opts, blob.WithGroupCommit(8, 200*time.Microsecond))
	}

	mk := func(clock *vclock.Clock, opts ...blob.Option) (blob.Store, error) {
		return core.NewFileStore(clock, opts...)
	}
	switch backend {
	case "file":
	case "db":
		mk = func(clock *vclock.Clock, opts ...blob.Option) (blob.Store, error) {
			return core.NewDBStore(clock, opts...)
		}
	default:
		return nil, fmt.Errorf("%w: bad -backend %q (want file or db)", blob.ErrBadOption, backend)
	}

	clock := vclock.New()
	var store blob.Store
	if shards <= 1 {
		store, err = mk(clock, opts...)
		if err != nil {
			return nil, err
		}
	} else {
		children := make([]blob.Store, shards)
		for i := range children {
			children[i], err = mk(clock, opts...)
			if err != nil {
				return nil, err
			}
		}
		store, err = shard.New(children...)
		if err != nil {
			return nil, err
		}
	}

	if cacheBytes != "" {
		n, err := units.ParseBytes(cacheBytes)
		if err != nil {
			return nil, fmt.Errorf("bad -cache: %w", err)
		}
		store, err = cache.New(store, cache.WithCapacity(n))
		if err != nil {
			return nil, err
		}
	}
	return store, nil
}
