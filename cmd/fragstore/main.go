// Command fragstore is an interactive shell over the blob-repository API:
// a miniature of the paper's test driver you can steer by hand. It builds
// a filesystem-backed and/or database-backed store on simulated drives
// and accepts get/put/replace/delete plus analysis commands.
//
// Usage:
//
//	fragstore [-backend fs|db|both] [-capacity 1G]
//
// Commands (type `help` at the prompt):
//
//	put <key> <size>       store a new object, e.g. put a 256K
//	get <key>              read an object
//	replace <key> <size>   safe-write replace
//	delete <key>           delete
//	ls                     list objects
//	frag                   fragmentation report
//	age                    storage age and live bytes
//	stats                  drive and engine counters
//	churn <n> <size>       n random safe writes of the given size
//	fill <frac> <size>     bulk load to a fraction of capacity
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

type session struct {
	ctx      context.Context
	repos    []blob.Store
	trackers map[string]*core.AgeTracker
	rngState uint64
}

func (s *session) rand(n int) int {
	// xorshift: deterministic without seeding ceremony.
	s.rngState ^= s.rngState << 13
	s.rngState ^= s.rngState >> 7
	s.rngState ^= s.rngState << 17
	return int(s.rngState % uint64(n))
}

func main() {
	backend := flag.String("backend", "both", "fs, db, or both")
	capacity := flag.String("capacity", "1G", "volume capacity")
	flag.Parse()

	capBytes, err := units.ParseBytes(*capacity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragstore: %v\n", err)
		os.Exit(2)
	}
	s := &session{ctx: context.Background(), trackers: map[string]*core.AgeTracker{}, rngState: 0x9E3779B97F4A7C15}
	storeOpts := []blob.Option{blob.WithCapacity(capBytes), blob.WithDiskMode(disk.MetadataMode)}
	if *backend == "fs" || *backend == "both" {
		st, err := core.NewFileStore(vclock.New(), storeOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragstore: %v\n", err)
			os.Exit(2)
		}
		s.repos = append(s.repos, st)
	}
	if *backend == "db" || *backend == "both" {
		st, err := core.NewDBStore(vclock.New(), storeOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragstore: %v\n", err)
			os.Exit(2)
		}
		s.repos = append(s.repos, st)
	}
	if len(s.repos) == 0 {
		fmt.Fprintf(os.Stderr, "fragstore: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	for _, r := range s.repos {
		s.trackers[r.Name()] = core.NewAgeTracker(r)
	}

	fmt.Printf("fragstore: %s on %s volumes (type `help`)\n", *backend, units.FormatBytes(capBytes))
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.Fields(strings.TrimSpace(scanner.Text()))
		if len(line) > 0 {
			if line[0] == "quit" || line[0] == "exit" {
				return
			}
			s.dispatch(line)
		}
		fmt.Print("> ")
	}
}

func (s *session) dispatch(args []string) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Printf("error: %v\n", r)
		}
	}()
	cmd := args[0]
	switch cmd {
	case "help":
		fmt.Println("put <key> <size> | get <key> | replace <key> <size> | delete <key>")
		fmt.Println("ls | frag | age | stats | churn <n> <size> | fill <frac> <size> | quit")
	case "put", "replace":
		if len(args) != 3 {
			fmt.Printf("usage: %s <key> <size>\n", cmd)
			return
		}
		size, err := units.ParseBytes(args[2])
		if err != nil {
			fmt.Println(err)
			return
		}
		for _, r := range s.repos {
			tr := s.trackers[r.Name()]
			var opErr error
			if cmd == "put" {
				opErr = tr.Put(s.ctx, args[1], size, nil)
			} else {
				opErr = tr.Replace(s.ctx, args[1], size, nil)
			}
			if opErr != nil {
				fmt.Printf("%s: %v\n", r.Name(), opErr)
			} else {
				fmt.Printf("%s: ok (%.2f ms virtual)\n", r.Name(), r.Clock().Seconds()*1000)
			}
		}
	case "get":
		if len(args) != 2 {
			fmt.Println("usage: get <key>")
			return
		}
		for _, r := range s.repos {
			before := r.Clock().Seconds()
			n, _, err := blob.Get(s.ctx, r, args[1])
			if err != nil {
				fmt.Printf("%s: %v\n", r.Name(), err)
				continue
			}
			dt := r.Clock().Seconds() - before
			fmt.Printf("%s: %s in %.2f ms virtual (%.1f MB/s)\n",
				r.Name(), units.FormatBytes(n), dt*1000, units.MBps(n, dt))
		}
	case "delete":
		if len(args) != 2 {
			fmt.Println("usage: delete <key>")
			return
		}
		for _, r := range s.repos {
			if err := s.trackers[r.Name()].Delete(s.ctx, args[1]); err != nil {
				fmt.Printf("%s: %v\n", r.Name(), err)
			} else {
				fmt.Printf("%s: deleted\n", r.Name())
			}
		}
	case "ls":
		r := s.repos[0]
		keys := r.Keys()
		sort.Strings(keys)
		for _, k := range keys {
			info, _ := r.Stat(s.ctx, k)
			fmt.Printf("%-40s %s\n", k, units.FormatBytes(info.Size))
		}
		fmt.Printf("%d objects\n", len(keys))
	case "frag":
		for _, r := range s.repos {
			rep := frag.Analyze(r)
			fmt.Printf("%s: %s (%.2f fragments per 64KB)\n", r.Name(), rep, rep.FragmentsPer64KB())
		}
	case "age":
		for _, r := range s.repos {
			tr := s.trackers[r.Name()]
			fmt.Printf("%s: storage age %.2f, %s live, %s free\n",
				r.Name(), tr.Age(), units.FormatBytes(r.LiveBytes()), units.FormatBytes(r.FreeBytes()))
		}
	case "stats":
		for _, r := range s.repos {
			fmt.Printf("%s: %d objects, %.1f s virtual elapsed\n",
				r.Name(), r.ObjectCount(), r.Clock().Seconds())
		}
	case "churn":
		if len(args) != 3 {
			fmt.Println("usage: churn <n> <size>")
			return
		}
		n, err1 := strconv.Atoi(args[1])
		size, err2 := units.ParseBytes(args[2])
		if err1 != nil || err2 != nil || n <= 0 {
			fmt.Println("usage: churn <n> <size>")
			return
		}
		for _, r := range s.repos {
			keys := r.Keys()
			if len(keys) == 0 {
				fmt.Printf("%s: empty store, `fill` first\n", r.Name())
				continue
			}
			tr := s.trackers[r.Name()]
			for i := 0; i < n; i++ {
				k := keys[s.rand(len(keys))]
				if err := tr.Replace(s.ctx, k, size, nil); err != nil {
					fmt.Printf("%s: %v\n", r.Name(), err)
					break
				}
			}
			fmt.Printf("%s: churned %d, storage age now %.2f\n", r.Name(), n, tr.Age())
		}
	case "fill":
		if len(args) != 3 {
			fmt.Println("usage: fill <frac> <size>")
			return
		}
		frac, err1 := strconv.ParseFloat(args[1], 64)
		size, err2 := units.ParseBytes(args[2])
		if err1 != nil || err2 != nil || frac <= 0 || frac >= 1 {
			fmt.Println("usage: fill <frac 0..1> <size>")
			return
		}
		for _, r := range s.repos {
			tr := s.trackers[r.Name()]
			i := r.ObjectCount()
			for float64(r.LiveBytes()+size) <= frac*float64(r.CapacityBytes()) {
				if err := tr.Put(s.ctx, fmt.Sprintf("obj-%06d", i), size, nil); err != nil {
					fmt.Printf("%s: %v\n", r.Name(), err)
					break
				}
				i++
			}
			fmt.Printf("%s: %d objects, %s live\n", r.Name(), r.ObjectCount(), units.FormatBytes(r.LiveBytes()))
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", cmd)
	}
}
