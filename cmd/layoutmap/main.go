// Command layoutmap builds a store, runs the aging workload to a chosen
// storage age, and dumps the volume layout: an ASCII occupancy map, the
// free-run length histogram, the fragmentation report, and the
// marker-scanner cross-validation — the tooling counterpart of the
// paper's fragmentation-analysis tool (§5.3).
//
// Usage:
//
//	layoutmap [-backend fs|db] [-capacity 2G] [-object 10M] [-age 4] [-width 96]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func main() {
	backend := flag.String("backend", "fs", "fs or db")
	capacity := flag.String("capacity", "2G", "volume capacity")
	object := flag.String("object", "10M", "object size")
	age := flag.Float64("age", 4, "storage age to churn to")
	occ := flag.Float64("occupancy", 0.5, "bulk-load occupancy")
	width := flag.Int("width", 96, "map width in characters")
	flag.Parse()

	capBytes, err := units.ParseBytes(*capacity)
	if err != nil {
		fail(err)
	}
	objBytes, err := units.ParseBytes(*object)
	if err != nil {
		fail(err)
	}

	var repo blob.Store
	var drive *disk.Drive
	storeOpts := []blob.Option{
		blob.WithCapacity(capBytes),
		blob.WithDiskMode(disk.MetadataMode),
		blob.WithWriteRequestSize(64 * units.KB),
	}
	switch *backend {
	case "fs":
		st, err := core.NewFileStore(vclock.New(), storeOpts...)
		if err != nil {
			fail(err)
		}
		repo, drive = st, st.Volume().Drive()
	case "db":
		st, err := core.NewDBStore(vclock.New(), storeOpts...)
		if err != nil {
			fail(err)
		}
		repo, drive = st, st.Engine().DataDrive()
	default:
		fail(fmt.Errorf("unknown backend %q", *backend))
	}

	runner := workload.NewRunner(repo, workload.Constant{Size: objBytes}, 1)
	if _, err := runner.BulkLoad(*occ); err != nil {
		fail(err)
	}
	if *age > 0 {
		if _, err := runner.ChurnToAge(*age, workload.ChurnOptions{}); err != nil {
			fail(err)
		}
	}

	fmt.Printf("%s volume, %s objects, %.0f%% full, storage age %.1f\n\n",
		units.FormatBytes(capBytes), units.FormatBytes(objBytes), *occ*100, *age)

	// Occupancy map: one character per volume slice. '.' = free,
	// '#' = fully used, ':' = mixed.
	clusters := drive.Geometry().Clusters
	used := make([]int64, *width)
	sliceLen := clusters / int64(*width)
	repo.EachObjectRuns(func(_ string, _ int64, runs []extent.Run) {
		for _, r := range runs {
			for c := r.Start; c < r.End(); {
				slice := c / sliceLen
				if slice >= int64(*width) {
					break
				}
				end := min((slice+1)*sliceLen, r.End())
				used[slice] += end - c
				c = end
			}
		}
	})
	var b strings.Builder
	for i := 0; i < *width; i++ {
		frac := float64(used[i]) / float64(sliceLen)
		switch {
		case frac < 0.05:
			b.WriteByte('.')
		case frac > 0.95:
			b.WriteByte('#')
		default:
			b.WriteByte(':')
		}
	}
	fmt.Printf("layout  [%s]\n", b.String())
	fmt.Printf("        ('.' free  ':' mixed  '#' full; %s per cell)\n\n",
		units.FormatBytes(sliceLen*drive.Geometry().ClusterSize))

	// Fragmentation report.
	rep := frag.Analyze(repo)
	fmt.Printf("fragmentation: %s, %.2f fragments per 64KB\n", rep, rep.FragmentsPer64KB())

	// Worst offenders.
	worst := rep.PerObject
	for i := 0; i < len(worst); i++ {
		for j := i + 1; j < len(worst); j++ {
			if worst[j].Fragments > worst[i].Fragments {
				worst[i], worst[j] = worst[j], worst[i]
			}
		}
		if i == 4 {
			break
		}
	}
	fmt.Println("most fragmented objects:")
	for i := 0; i < min(5, len(worst)); i++ {
		fmt.Printf("  %-20s %s in %d fragments\n",
			worst[i].Key, units.FormatBytes(worst[i].Bytes), worst[i].Fragments)
	}

	// Marker-scan cross-validation (the paper validated its marker tool
	// against the NTFS defragmenter's reports).
	if drive.HasOwnerMap() {
		if src, ok := repo.(frag.TagSource); ok {
			bad, err := frag.CrossValidate(drive, src)
			if err != nil {
				fail(err)
			}
			if len(bad) == 0 {
				fmt.Println("\nmarker scan agrees with extent lists for every object")
			} else {
				fmt.Printf("\nmarker scan DISAGREES for %d objects: %v\n", len(bad), bad[:min(3, len(bad))])
			}
		}
	}

	// Free-run histogram from the drive's perspective: everything not
	// owned by an object (approximated by inverting object runs).
	fmt.Printf("\ndrive: %s\n", drive)
	s := drive.Stats()
	fmt.Printf("ops: %d reads, %d writes, %d seeks, %.1f virtual seconds\n",
		s.Reads, s.Writes, s.Seeks, repo.Clock().Seconds())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "layoutmap: %v\n", err)
	os.Exit(1)
}
