// Command fragvet is the repo's custom static-analysis suite: a
// multichecker over the simulation's own invariants (virtual-clock
// purity, sentinel-error discipline, pooled-handle lifecycles, stripe
// vs group-commit ordering, and context threading).
//
// It runs two ways:
//
//	fragvet [packages]               standalone; defaults to ./...
//	go vet -vettool=$(which fragvet) ./...   driven by cmd/go
//
// Findings print as file:line:col: message (analyzer) and the exit
// status is 2, matching go vet. Suppress a finding with an inline
// directive on (or directly above) the flagged line:
//
//	//fragvet:ignore <analyzer> <reason>
//
// The reason is mandatory, and unused ignores are themselves flagged so
// suppressions cannot go stale.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/poollifecycle"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/vclockpurity"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		vclockpurity.Analyzer,
		sentinelerr.Analyzer,
		poollifecycle.Analyzer,
		lockorder.Analyzer,
		ctxflow.Analyzer,
	}
}

func main() {
	args := os.Args[1:]
	if analysis.IsVetInvocation(args) {
		os.Exit(analysis.Vet(args, analyzers()))
	}
	os.Exit(standalone(args))
}

// standalone loads the requested packages itself (via `go list
// -export`) and runs the full suite, for use outside go vet.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	pkgs, err := analysis.Load(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	code := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			code = 2
		}
	}
	return code
}
