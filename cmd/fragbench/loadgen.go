package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runLoadgen is the `fragbench loadgen` subcommand: drive a running
// fragserve instance with concurrent clients and report wall-clock
// tail latency per op kind, optionally as a JSON run report.
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "fragserve base URL")
		clientsN = fs.Int("clients", 64, "peak concurrent clients (the final ramp step)")
		ramp     = fs.String("ramp", "", "comma-separated concurrency schedule (default: clients/4, clients/2, clients)")
		duration = fs.Duration("duration", 5*time.Second, "wall-clock duration of EACH ramp step")
		objects  = fs.Int("objects", 512, "objects prepopulated before measuring")
		size     = fs.String("size", "64K", "object-size distribution (constant:SIZE or uniform:MIN-MAX)")
		reads    = fs.Int("reads", 2, "whole-object reads interleaved per successful write")
		payload  = fs.Bool("payload", false, "ship real object bytes (default: metadata-only writes)")
		seed     = fs.Int64("seed", 1, "op-stream random seed")
		report   = fs.String("report", "", "write a schema-valid JSON run report to this file")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fragbench loadgen [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	dist, err := workload.ParseDist(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragbench loadgen: %v\n", err)
		os.Exit(2)
	}
	steps, err := parseRamp(*ramp, *clientsN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragbench loadgen: %v\n", err)
		os.Exit(2)
	}

	cfg := loadgen.Config{
		URL:           *url,
		Ramp:          steps,
		StepDuration:  *duration,
		Objects:       *objects,
		Dist:          dist,
		ReadsPerWrite: *reads,
		Payload:       *payload,
		Seed:          *seed,
	}
	if *report != "" {
		cfg.Report = obs.NewRunReport()
		cfg.Report.Config = map[string]any{
			"url":       *url,
			"ramp":      steps,
			"step_secs": duration.Seconds(),
			"objects":   *objects,
			"size":      *size,
			"reads":     *reads,
			"payload":   *payload,
			"seed":      *seed,
		}
		sec := cfg.Report.Section("loadgen")
		sec.Title = "network blob service load generation"
	}

	res, err := loadgen.Run(context.Background(), cfg)
	if cfg.Report != nil {
		if werr := writeReport(*report, cfg.Report); werr != nil {
			fmt.Fprintf(os.Stderr, "fragbench loadgen: %v\n", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragbench loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("loaded %d objects; %d ops total\n\n", res.Loaded, res.TotalOps())
	fmt.Printf("%-8s %-10s %10s %8s %8s %10s %10s %10s\n",
		"step", "op", "count", "errs", "shed", "p50(ms)", "p99(ms)", "p999(ms)")
	for _, step := range res.Steps {
		for _, name := range []string{"loadgen.create", "loadgen.replace", "loadgen.read", "loadgen.delete"} {
			h, ok := step.Snapshot.Histograms[name]
			if !ok || h.Count == 0 {
				continue
			}
			op := strings.TrimPrefix(name, "loadgen.")
			errs := countErrs(step.Snapshot, name)
			fmt.Printf("%-8s %-10s %10d %8d %8d %10.2f %10.2f %10.2f\n",
				fmt.Sprintf("k=%d", step.Clients), op, h.Count, errs, step.Shed,
				ms(h.Quantile(0.5)), ms(h.Quantile(0.99)), ms(h.Quantile(0.999)))
		}
	}
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// countErrs totals the error counters recorded under one op histogram.
func countErrs(snap obs.Snapshot, name string) int64 {
	var n int64
	for cname, v := range snap.Counters {
		if strings.HasPrefix(cname, name+".err.") {
			n += v
		}
	}
	return n
}

// parseRamp parses a comma-separated concurrency schedule, defaulting
// to a three-step ramp up to the peak client count.
func parseRamp(spec string, clients int) ([]int, error) {
	if clients < 1 {
		return nil, fmt.Errorf("bad -clients %d", clients)
	}
	if spec == "" {
		var steps []int
		for _, k := range []int{clients / 4, clients / 2, clients} {
			if k >= 1 && (len(steps) == 0 || k > steps[len(steps)-1]) {
				steps = append(steps, k)
			}
		}
		return steps, nil
	}
	var steps []int
	for _, part := range strings.Split(spec, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -ramp value %q", part)
		}
		steps = append(steps, k)
	}
	return steps, nil
}
