// Command fragbench runs the paper-reproduction experiments and prints
// each table/figure as text (and optionally CSV).
//
// Usage:
//
//	fragbench -list
//	fragbench [flags] <experiment-id>... | all
//
// Examples:
//
//	fragbench fig2                 # Figure 2 at default (bench) scale
//	fragbench -volume 40G fig6     # Figure 6 with 40G/400G volumes
//	fragbench shard                # shard-count sweep at fixed total volume
//	fragbench -shards 32 shard     # ... sweeping 1..32 shards
//	fragbench interleave           # k concurrent writer streams, group commit on
//	fragbench -streams 1,4,16 interleave  # ... with an explicit k sweep
//	fragbench tracereplay          # record a churn run, replay it at k=1,4,16
//	fragbench -trace ops.log -streams 1,8 tracereplay  # replay a recorded log
//	fragbench -dist uniform:5M-15M interleave  # uniform object sizes
//	fragbench compact              # online compactor duty-cycle sweep
//	fragbench -duty 0,0.25,1 compact  # ... with an explicit duty sweep
//	fragbench -quick all           # every experiment at miniature scale
//	fragbench -csv fig1            # CSV output for plotting
//	fragbench -obs interleave      # + per-layer virtual-time latency tables
//	fragbench -report out.json readcache   # + machine-readable JSON run report
//	fragbench -optrace trace.json compact  # + Chrome trace of retained ops
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/compact"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		volume  = flag.String("volume", "", "volume size (e.g. 4G, 40G); default 4G")
		occ     = flag.Float64("occupancy", 0, "bulk-load occupancy fraction (default 0.5)")
		maxAge  = flag.Float64("maxage", 0, "deepest storage age for aging curves (default 10)")
		ageStep = flag.Float64("agestep", 0, "age measurement interval (default 1)")
		samples = flag.Int("samples", 0, "reads per throughput measurement (default 200)")
		seed    = flag.Int64("seed", 0, "workload random seed (default 1)")
		shards  = flag.Int("shards", 0, "max shard count for the shard sweep (default 16)")
		streams = flag.String("streams", "", "comma-separated writer-stream counts for the interleave/tracereplay sweeps (default 1,4,16)")
		dist    = flag.String("dist", "", "object-size distribution for the interleave/tracereplay sweeps: constant:SIZE or uniform:MIN-MAX (default constant, ~400 objects/volume)")
		tracef  = flag.String("trace", "", "recorded trace file for the tracereplay experiment (default: record a synthetic churn run)")
		caches  = flag.String("cache", "", "comma-separated cache capacities for the readcache sweep, 0 = no cache (default 0,64M,256M)")
		duty    = flag.String("duty", "", "comma-separated compactor duty cycles in [0,1] for the compact sweep, 0 = off (default 0,0.1,0.5)")
		quick   = flag.Bool("quick", false, "miniature scale for a fast smoke run")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		verbose = flag.Bool("v", false, "log progress to stderr")
		obsOn   = flag.Bool("obs", false, "instrument store chains: per-op virtual-time latency tables for the interleave/readcache/compact experiments")
		report  = flag.String("report", "", "write a machine-readable JSON run report (tables + per-phase latency quantiles) to this file; implies -obs")
		optrace = flag.String("optrace", "", "write retained per-op traces to this file — Chrome trace-event JSON (chrome://tracing / Perfetto), or JSONL when the name ends in .jsonl; implies -obs")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fragbench [flags] <experiment-id>... | all\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		for _, e := range harness.Experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
	}
	// Subcommands peel off before experiment-flag parsing.
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		runLoadgen(os.Args[2:])
		return
	}

	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-8s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.TestConfig()
	}
	if *volume != "" {
		v, err := units.ParseBytes(*volume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragbench: %v\n", err)
			os.Exit(2)
		}
		cfg.VolumeBytes = v
	}
	if *occ > 0 {
		cfg.Occupancy = *occ
	}
	if *maxAge > 0 {
		cfg.MaxAge = *maxAge
	}
	if *ageStep > 0 {
		cfg.AgeStep = *ageStep
	}
	if *samples > 0 {
		cfg.ReadSamples = *samples
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *shards > 0 {
		cfg.MaxShards = *shards
	}
	if *streams != "" {
		for _, part := range strings.Split(*streams, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k < 1 {
				fmt.Fprintf(os.Stderr, "fragbench: bad -streams value %q\n", part)
				os.Exit(2)
			}
			cfg.StreamCounts = append(cfg.StreamCounts, k)
		}
	}
	if *caches != "" {
		for _, part := range strings.Split(*caches, ",") {
			n, err := units.ParseBytes(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fragbench: bad -cache value %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.CacheBytes = append(cfg.CacheBytes, n)
		}
	}
	if *duty != "" {
		ds, err := compact.ParseDutyList(*duty)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragbench: %v\n", err)
			os.Exit(2)
		}
		cfg.DutyCycles = ds
	}
	if *dist != "" {
		d, err := workload.ParseDist(*dist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragbench: %v\n", err)
			os.Exit(2)
		}
		cfg.Dist = d
	}
	if *tracef != "" {
		cfg.TracePath = *tracef
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	cfg.Obs = *obsOn
	if *report != "" {
		cfg.Report = obs.NewRunReport()
		cfg.Report.Config = map[string]any{
			"volume_bytes": cfg.VolumeBytes,
			"occupancy":    cfg.Occupancy,
			"max_age":      cfg.MaxAge,
			"age_step":     cfg.AgeStep,
			"read_samples": cfg.ReadSamples,
			"seed":         cfg.Seed,
			"quick":        *quick,
		}
	}
	if *optrace != "" {
		cfg.Tracer = obs.NewTracer(0)
	}
	// writeOutputs flushes the run report and op trace; called on the
	// normal exit path and before bailing on a failed experiment, so a
	// partial run still leaves its artifacts behind.
	writeOutputs := func() {
		if cfg.Report != nil {
			if err := writeReport(*report, cfg.Report); err != nil {
				fmt.Fprintf(os.Stderr, "fragbench: %v\n", err)
				os.Exit(1)
			}
		}
		if cfg.Tracer != nil {
			if err := writeTrace(*optrace, cfg.Tracer); err != nil {
				fmt.Fprintf(os.Stderr, "fragbench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = harness.IDs()
	}
	for _, id := range ids {
		exp, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "fragbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := exp.Run(cfg)
		if cfg.Report != nil {
			sec := cfg.Report.Section(id)
			sec.Title = exp.Title
			sec.Paper = exp.Paper
			sec.AddTables(tables)
			if err != nil {
				sec.Error = err.Error()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fragbench: %s: %v\n", id, err)
			writeOutputs()
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s finished in %s\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	writeOutputs()
}

// writeReport writes the JSON run report to path.
func writeReport(path string, r *obs.RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("report: %w", err)
	}
	return f.Close()
}

// writeTrace writes the retained op traces to path: JSONL when the
// name ends in .jsonl, Chrome trace-event JSON otherwise.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("optrace: %w", err)
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("optrace: %w", err)
	}
	return f.Close()
}
