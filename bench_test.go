// Package repro's benchmark harness regenerates every table and figure in
// the paper's evaluation (run `go test -bench=. -benchmem`). Each
// BenchmarkFigure*/BenchmarkTable* target executes the corresponding
// harness experiment end-to-end on simulated drives and reports headline
// metrics (fragments/object, MB/s) via b.ReportMetric; absolute wall time
// is simulation cost, not storage performance — storage performance lives
// in the reported metrics, which are in virtual (simulated disk) time.
//
// For full-scale paper-style runs use cmd/fragbench, e.g.:
//
//	go run ./cmd/fragbench -volume 40G fig6
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
)

// benchConfig is sized so the whole -bench=. suite finishes in a couple
// of minutes while still exhibiting every qualitative shape.
func benchConfig() harness.Config {
	return harness.Config{
		VolumeBytes: 1 * units.GB,
		Occupancy:   0.5,
		MaxAge:      6,
		AgeStep:     2,
		ReadSamples: 100,
		Seed:        1,
	}
}

// runExperiment executes the experiment once per iteration and returns
// the final run's tables.
func runExperiment(b *testing.B, id string, cfg harness.Config) []*stats.Table {
	b.Helper()
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tables []*stats.Table
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err = exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// lastY reports series name's final y value from table t as metric.
func lastY(b *testing.B, t *stats.Table, series, metric string) {
	b.Helper()
	for _, s := range t.Series {
		if s.Name == series {
			if p, ok := s.Last(); ok {
				b.ReportMetric(p.Y, metric)
			}
			return
		}
	}
}

// yAt reports series name's y at x from table t as metric.
func yAt(b *testing.B, t *stats.Table, series string, x float64, metric string) {
	b.Helper()
	for _, s := range t.Series {
		if s.Name == series {
			if y, ok := s.YAt(x); ok {
				b.ReportMetric(y, metric)
			}
			return
		}
	}
}

// BenchmarkTable1Config regenerates the Table 1 system-configuration
// report.
func BenchmarkTable1Config(b *testing.B) {
	runExperiment(b, "table1", benchConfig())
}

// BenchmarkFigure1ReadThroughput regenerates Figure 1: read throughput
// for 256KB/512KB/1MB objects at storage ages 0, 2 and 4 on both
// backends. Reported metrics are the age-4 (after four overwrites)
// throughputs at 256KB.
func BenchmarkFigure1ReadThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxAge = 4
	tables := runExperiment(b, "fig1", cfg)
	yAt(b, tables[0], "Database", 256, "db-bulk-MB/s")
	yAt(b, tables[2], "Database", 256, "db-aged-MB/s")
	yAt(b, tables[2], "Filesystem", 256, "fs-aged-MB/s")
}

// BenchmarkFigure2LargeObjectFrag regenerates Figure 2: long-term
// fragmentation with 10MB objects. Metrics are fragments/object at the
// deepest age.
func BenchmarkFigure2LargeObjectFrag(b *testing.B) {
	tables := runExperiment(b, "fig2", benchConfig())
	lastY(b, tables[0], "Database", "db-frags/obj")
	lastY(b, tables[0], "Filesystem", "fs-frags/obj")
}

// BenchmarkFigure3SmallObjectFrag regenerates Figure 3: long-term
// fragmentation with 256KB objects (converging to ~1 fragment per 64KB
// write request).
func BenchmarkFigure3SmallObjectFrag(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxAge = 10
	tables := runExperiment(b, "fig3", cfg)
	lastY(b, tables[0], "Database", "db-frags/obj")
	lastY(b, tables[0], "Filesystem", "fs-frags/obj")
}

// BenchmarkFigure4WriteThroughput regenerates Figure 4: 512KB write
// throughput during bulk load and churn.
func BenchmarkFigure4WriteThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxAge = 4
	tables := runExperiment(b, "fig4", cfg)
	yAt(b, tables[0], "Database", 0, "db-bulk-MB/s")
	yAt(b, tables[0], "Filesystem", 0, "fs-bulk-MB/s")
	yAt(b, tables[0], "Database", 4, "db-aged-MB/s")
}

// BenchmarkFigure5SizeDistributions regenerates Figure 5: constant vs
// uniform object-size distributions on both backends.
func BenchmarkFigure5SizeDistributions(b *testing.B) {
	tables := runExperiment(b, "fig5", benchConfig())
	lastY(b, tables[0], "Constant", "db-const-frags/obj")
	lastY(b, tables[0], "Uniform", "db-unif-frags/obj")
	lastY(b, tables[1], "Constant", "fs-const-frags/obj")
	lastY(b, tables[1], "Uniform", "fs-unif-frags/obj")
}

// BenchmarkFigure6VolumeSize regenerates Figure 6: volume size and
// occupancy sweep (the bench uses 1G and 10G volumes; run cmd/fragbench
// with -volume 40G for the paper's 40G/400G pairing).
func BenchmarkFigure6VolumeSize(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxAge = 4
	tables := runExperiment(b, "fig6", cfg)
	lastY(b, tables[1], "50% full - 1G", "fs-small-frags/obj")
	lastY(b, tables[1], "50% full - 10G", "fs-big-frags/obj")
}

// BenchmarkPathologicalRecovery regenerates the §5.3 pre-shattered-volume
// experiment.
func BenchmarkPathologicalRecovery(b *testing.B) {
	tables := runExperiment(b, "patho", benchConfig())
	s := tables[0].Series[0]
	b.ReportMetric(s.Points[0].Y, "start-frags/obj")
	if p, ok := s.Last(); ok {
		b.ReportMetric(p.Y, "end-frags/obj")
	}
}

// BenchmarkSizeHintAblation regenerates the §5.4/§6 interface-fix
// ablation.
func BenchmarkSizeHintAblation(b *testing.B) {
	tables := runExperiment(b, "hint", benchConfig())
	lastY(b, tables[0], "No hint (stock)", "stock-frags/obj")
	lastY(b, tables[0], "Size hint", "hint-frags/obj")
}

// BenchmarkWriteRequestSize regenerates the write-request-size sweep.
func BenchmarkWriteRequestSize(b *testing.B) {
	tables := runExperiment(b, "wreq", benchConfig())
	yAt(b, tables[0], "Database", 16, "db-16K-frags/obj")
	yAt(b, tables[0], "Database", 64, "db-64K-frags/obj")
}

// BenchmarkInterleavedAppend regenerates the §6 interleaved-append
// extension.
func BenchmarkInterleavedAppend(b *testing.B) {
	tables := runExperiment(b, "ileave", benchConfig())
	yAt(b, tables[0], "Filesystem", 8, "k8-frags/file")
}

// BenchmarkShardSweep regenerates the sharded multi-volume sweep: shard
// count 1..16 at fixed total volume. Metrics are fragments/object and
// churn MB/s (virtual time) for the single-volume and 16-shard
// filesystem arms, plus the 16-shard database fragmentation.
func BenchmarkShardSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxShards = 16
	tables := runExperiment(b, "shard", cfg)
	frags, tput := tables[0], tables[2]
	yAt(b, frags, "Filesystem", 1, "fs-1shard-frags/obj")
	yAt(b, frags, "Filesystem", 16, "fs-16shard-frags/obj")
	yAt(b, frags, "Database", 16, "db-16shard-frags/obj")
	yAt(b, tput, "Filesystem", 1, "fs-1shard-MB/s")
	yAt(b, tput, "Filesystem", 16, "fs-16shard-MB/s")
}

// BenchmarkReadCache regenerates the read-path cache sweep: a Zipf
// read mix over each aged backend behind cache capacities 0/16M/128M.
// Reported metrics are the cached arm's steady-state hit rate and the
// uncached vs cached effective read throughput in virtual time — the
// hit-rate-aware accounting where memory-speed hits bypass the
// fragmented layout entirely.
func BenchmarkReadCache(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxAge = 4
	cfg.CacheBytes = []int64{0, 16 * units.MB, 128 * units.MB}
	tables := runExperiment(b, "readcache", cfg)
	hits, tput := tables[0], tables[1]
	yAt(b, hits, "Database", 128, "db-128M-hitrate")
	yAt(b, hits, "Filesystem", 128, "fs-128M-hitrate")
	yAt(b, tput, "Database", 0, "db-uncached-MB/s")
	yAt(b, tput, "Database", 128, "db-128M-MB/s")
	yAt(b, tput, "Filesystem", 128, "fs-128M-MB/s")
}

// BenchmarkAllocatorPolicies regenerates the §3.2/§3.4 policy shoot-out.
func BenchmarkAllocatorPolicies(b *testing.B) {
	tables := runExperiment(b, "policy", benchConfig())
	lastY(b, tables[0], "best-fit", "bestfit-frags/obj")
	lastY(b, tables[0], "ntfs-run-cache", "runcache-frags/obj")
}

// BenchmarkGroupCommit measures the commit pipeline itself: 8 writer
// goroutines committing 64 KB objects — small enough that per-commit
// forces dominate, the §3.1 regime — through each backend with group
// commit off and on. Reported metrics are commit throughput in virtual
// time (the simulated-hardware cost the batching amortizes) and forced
// flushes per commit; wall time is simulation overhead.
func BenchmarkGroupCommit(b *testing.B) {
	const writers, rounds = 8, 16
	const objSize = 64 * units.KB
	run := func(b *testing.B, mkStore func() (blob.Store, error)) {
		b.ReportAllocs()
		var commitsPerVSec, forcesPerCommit float64
		for i := 0; i < b.N; i++ {
			s, err := mkStore()
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			watch := vclock.StartWatch(s.Clock())
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						key := fmt.Sprintf("w%02d-o%04d", w, r)
						if err := blob.Put(ctx, s, key, objSize, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			vsec := watch.Seconds()
			commits := float64(writers * rounds)
			commitsPerVSec = commits / vsec
			var forces float64
			switch st := s.(type) {
			case *core.DBStore:
				forces = float64(st.Engine().Stats().LogForces)
			case *core.FileStore:
				stats := st.Volume().Stats()
				forces = float64(stats.MetaWrites + stats.LogFlushes)
			}
			forcesPerCommit = forces / commits
			if err := blob.CloseStore(s); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(commitsPerVSec, "commits/vsec")
		b.ReportMetric(forcesPerCommit, "forces/commit")
	}
	baseOpts := []blob.Option{
		blob.WithCapacity(512 * units.MB),
		blob.WithDiskMode(disk.MetadataMode),
	}
	batchOpts := append(baseOpts[:len(baseOpts):len(baseOpts)],
		blob.WithGroupCommit(writers, 2*time.Millisecond))
	for _, bc := range []struct {
		name string
		mk   func() (blob.Store, error)
	}{
		{"db/batch=off", func() (blob.Store, error) { return core.NewDBStore(vclock.New(), baseOpts...) }},
		{"db/batch=on", func() (blob.Store, error) { return core.NewDBStore(vclock.New(), batchOpts...) }},
		{"fs/batch=off", func() (blob.Store, error) { return core.NewFileStore(vclock.New(), baseOpts...) }},
		{"fs/batch=on", func() (blob.Store, error) { return core.NewFileStore(vclock.New(), batchOpts...) }},
	} {
		b.Run(bc.name, func(b *testing.B) { run(b, bc.mk) })
	}
}

// BenchmarkCompaction measures one full compactor cycle over a
// pathologically shattered volume (the §5.3 fixture): scan, rank, and
// rewrite every fragmented object back to contiguity. Wall time and
// allocs/op are the compactor's simulation overhead; the reported
// metrics are the storage-level outcome — fragments/object before and
// after, and the rewrite traffic the cycle charged on the virtual
// clock.
func BenchmarkCompaction(b *testing.B) {
	const objects = 48
	const objSize = units.MB
	ctx := context.Background()
	b.ReportAllocs()
	var before, after, rewriteMB float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.NewFileStore(vclock.New(),
			blob.WithCapacity(512*units.MB), blob.WithDiskMode(disk.MetadataMode))
		if err != nil {
			b.Fatal(err)
		}
		for o := 0; o < objects; o++ {
			if err := blob.Put(ctx, s, fmt.Sprintf("o%03d", o), objSize, nil); err != nil {
				b.Fatal(err)
			}
		}
		before = s.Volume().ShatterFiles(8)
		c, err := compact.New(s, compact.Config{DutyCycle: 1, PackThreshold: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st := c.RunOnce(ctx)
		b.StopTimer()
		after = frag.Analyze(s).MeanFragments()
		rewriteMB = float64(st.RewriteBytes) / float64(units.MB)
		if st.Rewrites == 0 {
			b.Fatal("compaction cycle did no work")
		}
		if err := blob.CloseStore(s); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(before, "start-frags/obj")
	b.ReportMetric(after, "end-frags/obj")
	b.ReportMetric(rewriteMB, "rewrite-MB")
}
