package db

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func benchDB(capacity int64) *Database {
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(capacity), clock, disk.MetadataMode, disk.WithoutOwnerMap())
	logd := disk.New(disk.DefaultGeometry(256*units.MB), clock, disk.MetadataMode)
	return Open(data, logd, Config{})
}

// BenchmarkPut measures engine put cost (host time; the simulated disk
// time is tracked separately on the virtual clock).
func BenchmarkPut(b *testing.B) {
	// Slack covers the per-object fragment-tree node page and periodic
	// row pages on top of the 256KB payload.
	d := benchDB(int64(b.N)*288*units.KB + 1*units.GB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(fmt.Sprintf("o%d", i), 256*units.KB, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaceChurn measures the safe-replace path under steady churn.
func BenchmarkReplaceChurn(b *testing.B) {
	d := benchDB(1 * units.GB)
	const n = 100
	for i := 0; i < n; i++ {
		if err := d.Put(fmt.Sprintf("o%d", i), 1*units.MB, nil); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Replace(fmt.Sprintf("o%d", rng.Intn(n)), 1*units.MB, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetAged measures reads on a churned (fragmented) store.
func BenchmarkGetAged(b *testing.B) {
	d := benchDB(1 * units.GB)
	const n = 100
	for i := 0; i < n; i++ {
		d.Put(fmt.Sprintf("o%d", i), 1*units.MB, nil)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*n; i++ {
		d.Replace(fmt.Sprintf("o%d", rng.Intn(n)), 1*units.MB, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(fmt.Sprintf("o%d", rng.Intn(n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRequest measures the allocator's request path.
func BenchmarkAllocRequest(b *testing.B) {
	a := NewAllocator(1 << 18)
	var held [][]PageRun
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, ok := a.AllocRequest(8)
		if !ok {
			for _, h := range held {
				a.FreeRuns(h)
			}
			held = held[:0]
			continue
		}
		held = append(held, runs)
	}
}
