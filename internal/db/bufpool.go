package db

import "sync"

// bufferPool is a small LRU cache of metadata pages (row pages and blob
// fragment-tree node pages). The paper's setup keeps table data cacheable
// by storing BLOBs out of row (§4.2: "allowing the table data to be kept
// in cache"); BLOB data pages stream through and are not cached.
//
// The pool carries its own mutex rather than relying on the store-level
// lock above the engine: Reset and HitRate are reachable from harness
// reporting paths that do NOT hold that lock (phase-separation resets
// while reader goroutines are mid-Access), and an unsynchronized reset
// racing an Access can corrupt the LRU list — unlinking an entry twice
// returns the same page slot to the list's head and tail at once.
type bufferPool struct {
	mu       sync.Mutex
	capacity int
	entries  map[PageID]*poolEntry
	head     *poolEntry // most recently used
	tail     *poolEntry // least recently used
	hits     int64
	misses   int64
}

type poolEntry struct {
	id         PageID
	prev, next *poolEntry
}

// newBufferPool builds a pool holding capacity pages. capacity <= 0 is
// a disabled pool: every access misses and nothing is retained, rather
// than silently rounding up to a one-page cache.
func newBufferPool(capacity int) *bufferPool {
	if capacity <= 0 {
		capacity = 0
	}
	return &bufferPool{capacity: capacity, entries: make(map[PageID]*poolEntry)}
}

// Access records a page touch and reports whether it was a cache hit.
// On miss the page is installed, evicting the LRU entry if needed.
func (bp *bufferPool) Access(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.capacity <= 0 {
		bp.misses++
		return false
	}
	if e, ok := bp.entries[id]; ok {
		bp.hits++
		bp.moveToFront(e)
		return true
	}
	bp.misses++
	e := &poolEntry{id: id}
	bp.entries[id] = e
	bp.pushFront(e)
	if len(bp.entries) > bp.capacity {
		bp.evict()
	}
	return false
}

// Invalidate drops a page (when its blob is deleted or rebuilt).
func (bp *bufferPool) Invalidate(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if e, ok := bp.entries[id]; ok {
		bp.unlink(e)
		delete(bp.entries, id)
	}
}

func (bp *bufferPool) pushFront(e *poolEntry) {
	e.next = bp.head
	if bp.head != nil {
		bp.head.prev = e
	}
	bp.head = e
	if bp.tail == nil {
		bp.tail = e
	}
}

func (bp *bufferPool) unlink(e *poolEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		bp.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		bp.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (bp *bufferPool) moveToFront(e *poolEntry) {
	if bp.head == e {
		return
	}
	bp.unlink(e)
	bp.pushFront(e)
}

func (bp *bufferPool) evict() {
	if bp.tail == nil {
		return
	}
	victim := bp.tail
	bp.unlink(victim)
	delete(bp.entries, victim.id)
}

// Reset zeroes the hit/miss counters while keeping resident pages, so
// one experiment phase's hit rate is not blended with another's (a
// churn-phase measurement must exclude bulk-load misses). Residency is
// deliberately preserved: Reset separates accounting phases, it does
// not cool the cache.
func (bp *bufferPool) Reset() {
	bp.mu.Lock()
	bp.hits, bp.misses = 0, 0
	bp.mu.Unlock()
}

// HitRate returns the fraction of accesses that hit, or 0 before any
// access.
func (bp *bufferPool) HitRate() float64 {
	bp.mu.Lock()
	hits, misses := bp.hits, bp.misses
	bp.mu.Unlock()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
