package db

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
)

// Errors returned by engine operations. Each is the corresponding blob
// sentinel, so errors.Is(err, blob.ErrNotFound) and friends hold through
// the database layer without translation.
var (
	ErrNotFound = blob.ErrNotFound
	ErrExists   = blob.ErrAlreadyExists
	ErrNoSpace  = blob.ErrNoSpaceLeft
	ErrCrashed  = blob.ErrCrashed
)

// Config describes a database instance. Zero-value fields take defaults.
type Config struct {
	// GhostHorizon is the number of committed operations after which a
	// deleted object's pages rejoin the free pool (SQL Server's deferred
	// ghost cleanup). 0 takes the default; use 1 for near-immediate
	// reclamation.
	GhostHorizon int

	// Host CPU charges, microseconds. PageCPUUs is the per-page
	// processing cost on the BLOB read/write path — the §3.1 folklore
	// that "database client interfaces are not designed for large
	// objects"; RowCPUUs is the B-tree descent and row handling cost
	// per operation.
	PageCPUUs float64
	RowCPUUs  float64

	// BufferPoolPages is the metadata cache capacity in pages.
	BufferPoolPages int

	// FullLogging writes BLOB payload bytes through the transaction log
	// as well (ordinary full recovery mode). The paper ran bulk-logged
	// (§4: "This avoids the log write"); enable this for the logging-
	// mode ablation bench.
	FullLogging bool

	// WriteRequestSize is the client write-request size in bytes; each
	// request is one allocation. The paper's tests used 64 KB requests
	// (§5.3). 0 takes the default; negative means one request per
	// object.
	WriteRequestSize int64
}

// DefaultConfig returns the configuration used by the benchmark harness.
func DefaultConfig() Config {
	return Config{
		GhostHorizon:     8,
		PageCPUUs:        100,
		RowCPUUs:         500,
		BufferPoolPages:  4096,
		WriteRequestSize: 64 * units.KB,
	}
}

// row is one object's metadata: the clustered-index entry plus the page
// list of its out-of-row BLOB (the leaf level of the Exodus-style
// fragment tree) and the tree's node pages.
type row struct {
	key   string
	size  int64
	tag   uint32
	pages []PageID // data pages in logical order
	nodes []PageID // fragment-tree node pages
	data  []byte   // retained payload (data mode only)
}

// ghostEntry is a deferred page deallocation.
type ghostEntry struct {
	seq   int64
	pages []PageID
}

// txn tracks an in-flight operation's effects for crash rollback.
type txn struct {
	allocated []PageID // pages to free on abort
	savedRow  *row     // prior row value (nil if key was absent)
	key       string
	hadRow    bool
}

// Database is the storage engine. Not safe for concurrent use.
type Database struct {
	cfg   Config
	data  *disk.Drive
	log   *disk.Drive
	alloc *Allocator
	rows  map[string]*row
	pool  *bufferPool

	clustersPerPage int64
	dataStart       int64 // first data-region cluster
	logHead         int64 // next log cluster (wraps)

	ghosts []ghostEntry
	opSeq  int64

	// Group-commit state: while groupDepth > 0 the per-transaction log
	// forces are deferred — record bytes accumulate in pendingLogBytes
	// and EndGroup issues them as ONE sequential log write, the group
	// force that amortizes §3.1's per-operation cost.
	groupDepth      int
	pendingLogBytes int64
	statLogForces   int64

	rowCount     int64
	rowPageSlots int64    // free row slots in the current row page
	rowPages     []PageID // heap pages backing the row table
	nextTag      uint32

	inflight *txn

	// runScratch backs GetRange's page-run coalescing and chunkScratch
	// writeChunk's page accumulation. The engine is single-threaded, so
	// one buffer each serves every operation without a fresh alloc;
	// txnScratch and savedRowScratch likewise back begin's per-op
	// transaction state.
	runScratch      []PageRun
	chunkScratch    []PageID
	txnScratch      txn
	savedRowScratch row

	statPuts, statGets, statDeletes, statReplaces, statCompacts int64
}

// Open creates a database on dataDrive with its transaction log on
// logDrive (which may be nil to co-locate the log on the data drive,
// though the paper gave SQL Server dedicated drives, §4.1).
func Open(dataDrive, logDrive *disk.Drive, cfg Config) *Database {
	def := DefaultConfig()
	if cfg.GhostHorizon == 0 {
		cfg.GhostHorizon = def.GhostHorizon
	}
	if cfg.PageCPUUs == 0 {
		cfg.PageCPUUs = def.PageCPUUs
	}
	if cfg.RowCPUUs == 0 {
		cfg.RowCPUUs = def.RowCPUUs
	}
	if cfg.BufferPoolPages == 0 {
		cfg.BufferPoolPages = def.BufferPoolPages
	}
	if cfg.WriteRequestSize == 0 {
		cfg.WriteRequestSize = def.WriteRequestSize
	}
	cs := dataDrive.Geometry().ClusterSize
	cpp := PageSize / cs
	if cpp < 1 {
		panic("db: cluster size larger than page size")
	}
	const systemClusters = 64 // boot page, GAM chain, allocation metadata
	usable := dataDrive.Geometry().Clusters - systemClusters
	extents := usable / (cpp * PagesPerExtent)
	if extents < 1 {
		panic("db: volume too small")
	}
	d := &Database{
		cfg:             cfg,
		data:            dataDrive,
		log:             logDrive,
		alloc:           NewAllocator(extents),
		rows:            make(map[string]*row),
		pool:            newBufferPool(cfg.BufferPoolPages),
		clustersPerPage: cpp,
		dataStart:       systemClusters,
		nextTag:         1,
	}
	return d
}

// DataDrive returns the data drive.
func (d *Database) DataDrive() *disk.Drive { return d.data }

// FreeBytes reports free space in the data file.
func (d *Database) FreeBytes() int64 { return d.alloc.FreePages() * PageSize }

// CapacityBytes reports the data file's page capacity.
func (d *Database) CapacityBytes() int64 {
	return d.alloc.Extents() * PagesPerExtent * PageSize
}

// ObjectCount returns the number of live objects.
func (d *Database) ObjectCount() int { return len(d.rows) }

// clusterRun converts a page run to the disk cluster run backing it.
func (d *Database) clusterRun(r PageRun) extent.Run {
	return extent.Run{
		Start: d.dataStart + int64(r.Start)*d.clustersPerPage,
		Len:   r.Len * d.clustersPerPage,
	}
}

// logAppend makes n bytes of log records durable. Outside a group each
// call is its own force; inside a group the bytes accumulate and
// EndGroup forces them all in one sequential write.
func (d *Database) logAppend(n int64) {
	if d.groupDepth > 0 {
		d.pendingLogBytes += n
		return
	}
	d.forceLog(n)
}

// forceLog charges one sequential log write of n bytes on the log
// device — a forced flush.
func (d *Database) forceLog(n int64) {
	drive := d.log
	if drive == nil {
		drive = d.data
	}
	cs := drive.Geometry().ClusterSize
	clusters := units.CeilDiv(n, cs)
	if d.logHead+clusters >= drive.Geometry().Clusters {
		d.logHead = 0
	}
	drive.WriteRun(extent.Run{Start: d.logHead, Len: clusters}, 0, 0, nil)
	d.logHead += clusters
	d.statLogForces++
}

// BeginGroup starts deferring log forces. Groups nest; only the
// outermost EndGroup forces.
//
// The deferral is engine-wide, as in a real group-commit log manager:
// any operation that appends log records while the group is open — a
// concurrent Delete or metadata mutation slipping between the group's
// transactions — piggybacks on the group force instead of forcing
// alone. Its records are never lost (EndGroup always flushes the
// accumulated bytes); it just returns before they are forced, which
// only the commit pipeline's own waiters need stronger ordering for.
func (d *Database) BeginGroup() { d.groupDepth++ }

// EndGroup closes a group; at depth zero the accumulated log records
// are forced in one sequential write.
func (d *Database) EndGroup() {
	if d.groupDepth == 0 {
		return
	}
	d.groupDepth--
	if d.groupDepth == 0 && d.pendingLogBytes > 0 {
		n := d.pendingLogBytes
		d.pendingLogBytes = 0
		d.forceLog(n)
	}
}

// begin opens the implicit transaction for one engine operation. The
// engine runs one operation at a time, so a single txn struct (and its
// allocated-pages buffer) is reused across operations; abort copies the
// saved row out before reinstalling it, so the scratch row is safe too.
func (d *Database) begin(key string) *txn {
	t := &d.txnScratch
	*t = txn{key: key, allocated: t.allocated[:0]}
	if old, ok := d.rows[key]; ok {
		d.savedRowScratch = *old
		t.savedRow = &d.savedRowScratch
		t.hadRow = true
	}
	d.inflight = t
	return t
}

// commit makes the operation durable: the log record is forced (bulk
// logged: metadata only) and deferred frees are scheduled.
func (d *Database) commit(t *txn, freed []PageID, logBytes int64) {
	d.logAppend(logBytes)
	if len(freed) > 0 {
		d.ghosts = append(d.ghosts, ghostEntry{seq: d.opSeq, pages: freed})
	}
	d.opSeq++
	d.inflight = nil
	d.ghostCleanup()
}

// ghostCleanup frees pages whose horizon has passed — SQL Server's
// background ghost/deferred-drop task.
func (d *Database) ghostCleanup() {
	cut := d.opSeq - int64(d.cfg.GhostHorizon)
	i := 0
	for ; i < len(d.ghosts) && d.ghosts[i].seq < cut; i++ {
		for _, p := range d.ghosts[i].pages {
			d.alloc.FreePage(p)
			d.pool.Invalidate(p)
			d.data.ClearOwner(d.clusterRun(PageRun{Start: p, Len: 1}))
		}
	}
	if i > 0 {
		d.ghosts = append(d.ghosts[:0], d.ghosts[i:]...)
	}
}

// FlushGhosts immediately reclaims all deferred pages (checkpoint).
func (d *Database) FlushGhosts() {
	cut := d.opSeq
	d.opSeq += int64(d.cfg.GhostHorizon) + 1
	d.ghostCleanup()
	d.opSeq = cut
}

// writeChunk allocates and writes one client write request's pages,
// returning the data pages added. The returned slice is scratch-backed
// and valid only until the next writeChunk; both callers append-copy it.
func (d *Database) writeChunk(t *txn, tag uint32, chunk int64, seq *int64) ([]PageID, error) {
	pageCount := units.CeilDiv(chunk, PageSize)
	runs, ok := d.alloc.AllocRequest(pageCount)
	if !ok {
		return nil, fmt.Errorf("%w: need %d pages, %d free", ErrNoSpace, pageCount, d.alloc.FreePages())
	}
	pages := d.chunkScratch[:0]
	for _, r := range runs {
		cr := d.clusterRun(r)
		d.data.WriteRun(cr, tag, *seq, nil)
		*seq += cr.Len
		for p := r.Start; p < r.End(); p++ {
			pages = append(pages, p)
			t.allocated = append(t.allocated, p)
		}
	}
	d.data.ChargeCPU(d.cfg.PageCPUUs * float64(pageCount))
	if d.cfg.FullLogging {
		d.logAppend(pageCount * PageSize)
	}
	if pages != nil {
		d.chunkScratch = pages
	}
	return pages, nil
}

// growBlobTree allocates fragment-tree node pages as leaf pages
// accumulate — single-page allocations from the shared pool, interleaved
// with the data stream, which is how object layouts drift off extent
// alignment even for constant-size objects (§5.4).
func (d *Database) growBlobTree(t *txn, dataPages int64, nodePages *[]PageID) error {
	for int64(len(*nodePages)) < units.CeilDiv(dataPages, BlobTreeFanout) {
		runs, ok := d.alloc.AllocPages(1)
		if !ok {
			return fmt.Errorf("%w: blob tree node", ErrNoSpace)
		}
		p := runs[0].Start
		*nodePages = append(*nodePages, p)
		t.allocated = append(t.allocated, p)
		d.data.WriteRun(d.clusterRun(runs[0]), 0, 0, nil)
	}
	return nil
}

// rowInsertCosts charges the clustered-index insert: CPU plus a new row
// page from the shared pool every RowsPerPage inserts.
func (d *Database) rowInsertCosts() error {
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	if d.rowPageSlots == 0 {
		runs, ok := d.alloc.AllocPages(1)
		if !ok {
			return ErrNoSpace
		}
		d.data.WriteRun(d.clusterRun(runs[0]), 0, 0, nil)
		d.rowPages = append(d.rowPages, runs[0].Start)
		d.rowPageSlots = RowsPerPage
	}
	d.rowPageSlots--
	return nil
}

// Put stores a new object. data may be nil for metadata-only simulation.
func (d *Database) Put(key string, size int64, data []byte) error {
	if _, ok := d.rows[key]; ok {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	return d.write(key, size, data, false)
}

// Replace transactionally overwrites an existing object (or creates it):
// the new BLOB is written and forced, then the old pages are ghosted.
// This is the database counterpart of the filesystem safe write.
func (d *Database) Replace(key string, size int64, data []byte) error {
	return d.write(key, size, data, true)
}

func (d *Database) write(key string, size int64, data []byte, replace bool) error {
	if size <= 0 {
		return fmt.Errorf("%w: write of %d bytes to %s", blob.ErrInvalidSize, size, key)
	}
	if data != nil && int64(len(data)) != size {
		return fmt.Errorf("%w: data length %d != size %d", blob.ErrInvalidSize, len(data), size)
	}
	t := d.begin(key)
	tag := d.nextTag
	d.nextTag++
	req := d.cfg.WriteRequestSize
	if req < 0 || req > size {
		req = size
	}
	// dataPages is retained by the row, so it must be freshly owned —
	// but its final length is known up front (each chunk takes
	// CeilDiv(chunk, PageSize) pages), so size it once instead of
	// paying append-growth reallocations per operation.
	chunks := units.CeilDiv(size, req)
	dataPages := make([]PageID, 0, units.CeilDiv(size, PageSize)+chunks)
	var nodePages []PageID
	var seq int64
	for remaining := size; remaining > 0; {
		chunk := min(req, remaining)
		pages, err := d.writeChunk(t, tag, chunk, &seq)
		if err != nil {
			d.abort(t)
			return err
		}
		dataPages = append(dataPages, pages...)
		remaining -= chunk
		if err := d.growBlobTree(t, int64(len(dataPages)), &nodePages); err != nil {
			d.abort(t)
			return err
		}
	}
	if err := d.rowInsertCosts(); err != nil {
		d.abort(t)
		return err
	}

	var freed []PageID
	if old, ok := d.rows[key]; ok {
		if !replace {
			d.abort(t)
			return fmt.Errorf("%w: %s", ErrExists, key)
		}
		freed = append(append([]PageID{}, old.pages...), old.nodes...)
	}
	r := &row{key: key, size: size, tag: tag, pages: dataPages, nodes: nodePages}
	if data != nil && d.data.Mode() == disk.DataMode {
		r.data = append([]byte(nil), data...)
	}
	d.rows[key] = r
	if replace && t.hadRow {
		d.statReplaces++
	} else {
		d.statPuts++
	}
	d.commit(t, freed, 256) // bulk-logged: metadata-only record
	return nil
}

// abort rolls back an in-flight operation.
func (d *Database) abort(t *txn) {
	for _, p := range t.allocated {
		d.alloc.FreePage(p)
		d.data.ClearOwner(d.clusterRun(PageRun{Start: p, Len: 1}))
	}
	if t.hadRow {
		saved := *t.savedRow
		d.rows[t.key] = &saved
	} else {
		delete(d.rows, t.key)
	}
	d.inflight = nil
}

// SimulateCrash aborts any in-flight operation, modelling recovery after
// a crash before commit: bulk-logged mode guarantees the old version is
// intact because the new pages were never linked until commit.
func (d *Database) SimulateCrash() {
	if d.inflight != nil {
		d.abort(d.inflight)
	}
}

// Get reads an object whole — a full-range GetRange, so the two read
// paths can never drift on simulated costs. The returned payload is
// non-nil only in data mode.
func (d *Database) Get(key string) ([]byte, error) {
	r, ok := d.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return d.GetRange(key, 0, r.size)
}

// GetRange reads the byte range [off, off+length) of an object, charging
// the row lookup, the fragment-tree node reads, and one disk request per
// physically contiguous run of the pages covering the range — the
// engine-side half of the v2 store's ranged reads. The returned payload
// is non-nil only in data mode.
func (d *Database) GetRange(key string, off, length int64) ([]byte, error) {
	r, ok := d.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	// length > r.size-off rather than off+length > r.size: the sum can
	// overflow int64 for hostile offsets, the subtraction cannot.
	if off < 0 || length < 0 || length > r.size-off {
		return nil, fmt.Errorf("%w: [%d,+%d) beyond size %d of %s", blob.ErrOutOfRange, off, length, r.size, key)
	}
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	if length == 0 {
		return nil, nil
	}
	for _, p := range r.nodes {
		if !d.pool.Access(p) {
			d.data.ReadRun(d.clusterRun(PageRun{Start: p, Len: 1}))
		}
	}
	// Map the byte range onto the page list. Write requests that are not
	// page multiples allocate a fresh page per request, so the list can
	// be longer than CeilDiv(size, PageSize); a range reaching the
	// object's end therefore covers every trailing page.
	firstP := off / PageSize
	lastP := (off + length - 1) / PageSize
	if last := int64(len(r.pages)) - 1; lastP > last || off+length == r.size {
		lastP = last
	}
	touched := r.pages[firstP : lastP+1]
	runs := coalescePageRunsInto(d.runScratch[:0], touched)
	if runs != nil {
		d.runScratch = runs
	}
	for _, pr := range runs {
		d.data.ReadRun(d.clusterRun(pr))
	}
	d.data.ChargeCPU(d.cfg.PageCPUUs * float64(len(touched)))
	d.statGets++
	if r.data != nil && off+length <= int64(len(r.data)) {
		out := make([]byte, length)
		copy(out, r.data[off:off+length])
		return out, nil
	}
	return nil, nil
}

// Has reports whether key exists: Stat's row probe — including its CPU
// charge on a hit — without constructing a not-found error on a miss.
// The store's create path probes a miss once per operation, and a
// discarded fmt.Errorf there is measurable at hundreds of streams.
func (d *Database) Has(key string) bool {
	if _, ok := d.rows[key]; !ok {
		return false
	}
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	return true
}

// Stat returns an object's size.
func (d *Database) Stat(key string) (int64, error) {
	r, ok := d.rows[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	return r.size, nil
}

// Delete removes an object; its pages are reclaimed after the ghost
// horizon.
func (d *Database) Delete(key string) error {
	r, ok := d.rows[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	t := d.begin(key)
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	delete(d.rows, key)
	freed := append(append([]PageID{}, r.pages...), r.nodes...)
	d.statDeletes++
	d.commit(t, freed, 128)
	return nil
}

// Compact rewrites an object's BLOB through a fresh bulk append so its
// pages land (as) contiguously (as free space allows), returning the
// bytes rewritten. Unlike the client write path, the engine knows the
// object's full size here, so the rewrite is allocated as ONE request —
// the §6 interface fix applied internally. The old layout is read and
// the new one written at full disk cost, the old pages are ghosted, and
// the commit record rides whatever log-force group is open, exactly
// like a Replace. An already-contiguous object returns (0, nil).
func (d *Database) Compact(key string) (int64, error) {
	r, ok := d.rows[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if len(CoalescePageRuns(r.pages)) <= 1 {
		return 0, nil
	}
	// Read the old layout: row lookup, tree nodes, then the data runs.
	d.data.ChargeCPU(d.cfg.RowCPUUs)
	for _, p := range r.nodes {
		if !d.pool.Access(p) {
			d.data.ReadRun(d.clusterRun(PageRun{Start: p, Len: 1}))
		}
	}
	for _, pr := range CoalescePageRuns(r.pages) {
		d.data.ReadRun(d.clusterRun(pr))
	}
	d.data.ChargeCPU(d.cfg.PageCPUUs * float64(len(r.pages)))

	t := d.begin(key)
	tag := d.nextTag
	d.nextTag++
	var dataPages, nodePages []PageID
	var seq int64
	pages, err := d.writeChunk(t, tag, r.size, &seq)
	if err != nil {
		d.abort(t)
		return 0, err
	}
	dataPages = append(dataPages, pages...)
	// The allocator draws from the same free pool churn fragmented; a
	// rewrite that does not clearly beat the old layout only burns log
	// bandwidth and reshuffles free space (the §3.4 warning, applied per
	// object) — publish only when the fragment count drops by at least a
	// quarter.
	oldFrags, newFrags := len(CoalescePageRuns(r.pages)), len(CoalescePageRuns(dataPages))
	if oldFrags-newFrags < (oldFrags+3)/4 {
		d.abort(t)
		return 0, nil
	}
	if err := d.growBlobTree(t, int64(len(dataPages)), &nodePages); err != nil {
		d.abort(t)
		return 0, err
	}
	freed := append(append([]PageID{}, r.pages...), r.nodes...)
	nr := &row{key: key, size: r.size, tag: tag, pages: dataPages, nodes: nodePages, data: r.data}
	d.rows[key] = nr
	d.statCompacts++
	d.commit(t, freed, 256) // bulk-logged: metadata-only record
	return r.size, nil
}

// Keys returns all live object keys in arbitrary order.
func (d *Database) Keys() []string {
	out := make([]string, 0, len(d.rows))
	for k := range d.rows {
		out = append(out, k)
	}
	return out
}

// Fragments returns the number of physically discontiguous data-page runs
// of an object — the engine-internal fragment count the paper's marker
// tool measured externally.
func (d *Database) Fragments(key string) (int, error) {
	r, ok := d.rows[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return len(CoalescePageRuns(r.pages)), nil
}

// ObjectRuns returns the disk cluster runs of an object's data pages, for
// the fragmentation analyzer.
func (d *Database) ObjectRuns(key string) ([]extent.Run, error) {
	r, ok := d.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	prs := CoalescePageRuns(r.pages)
	out := make([]extent.Run, len(prs))
	for i, pr := range prs {
		out[i] = d.clusterRun(pr)
	}
	return out, nil
}

// Tag returns the owner tag an object's data pages carry on disk, or 0
// when the object does not exist.
func (d *Database) Tag(key string) uint32 {
	if r, ok := d.rows[key]; ok {
		return r.tag
	}
	return 0
}

// EachObject calls fn for every live object with its data-page cluster
// runs.
func (d *Database) EachObject(fn func(key string, size int64, runs []extent.Run)) {
	for k, r := range d.rows {
		prs := CoalescePageRuns(r.pages)
		runs := make([]extent.Run, len(prs))
		for i, pr := range prs {
			runs[i] = d.clusterRun(pr)
		}
		fn(k, r.size, runs)
	}
}

// Stats reports engine counters.
type Stats struct {
	Puts, Gets, Deletes, Replaces int64
	// Compactions counts Compact rewrites.
	Compactions    int64
	LogForces      int64
	FreePages      int64
	PartialExtents int
	GhostedPages   int
	PoolHitRate    float64
}

// Stats returns engine counters.
func (d *Database) Stats() Stats {
	ghosted := 0
	for _, g := range d.ghosts {
		ghosted += len(g.pages)
	}
	return Stats{
		Puts: d.statPuts, Gets: d.statGets, Deletes: d.statDeletes, Replaces: d.statReplaces,
		Compactions:    d.statCompacts,
		LogForces:      d.statLogForces,
		FreePages:      d.alloc.FreePages(),
		PartialExtents: d.alloc.PartialExtents(),
		GhostedPages:   ghosted,
		PoolHitRate:    d.pool.HitRate(),
	}
}

// ResetPoolStats zeroes the buffer pool's hit/miss counters while
// keeping resident pages, so a measurement phase's PoolHitRate
// excludes another phase's misses (e.g. the readcache experiment's
// churn-phase hit rate must not blend in bulk-load misses).
func (d *Database) ResetPoolStats() { d.pool.Reset() }

// CheckInvariants cross-checks allocation bitmaps against the row table.
// Intended for tests.
func (d *Database) CheckInvariants() {
	d.alloc.CheckInvariants()
	seen := make(map[PageID]string)
	record := func(key string, pages []PageID) {
		for _, p := range pages {
			if prev, dup := seen[p]; dup {
				panic(fmt.Sprintf("db: page %d owned by both %s and %s", p, prev, key))
			}
			seen[p] = key
		}
	}
	for k, r := range d.rows {
		record(k, r.pages)
		record(k+"(nodes)", r.nodes)
	}
	for _, g := range d.ghosts {
		record("(ghost)", g.pages)
	}
}
