package db

import (
	"fmt"
	"math/bits"

	"repro/internal/btree"
)

// Allocator is the GAM/PFS analog: a bitmap of extents plus per-extent
// free-page masks. The allocation policy is a roving-cursor (next-fit)
// scan: like a real engine, the GAM scan resumes where the previous one
// left off rather than rescanning from the start of the file, filling
// partially used extents encountered ahead of the cursor before
// dedicating fresh ones.
//
// Next-fit is the behaviour the paper's SQL Server curves imply: the
// roving cursor steadily splits free regions at unaligned offsets, so
// free runs decay in size and fragments/object climbs without an
// asymptote (Figures 2 and 5), in contrast to NTFS's coalescing
// largest-run-first cache. The classic malloc literature the paper cites
// (§3.2) documents the same policy/fragmentation relationship.
type Allocator struct {
	extents int64

	// gam[i] is set when extent i is wholly free (GAM bit).
	gam []uint64
	// pfs maps allocated extent id -> bitmask of free pages within it,
	// ordered so cursor-relative lookups are one tree operation.
	pfs *btree.Map[int64, uint8]
	// cursor is the extent where the next scan begins.
	cursor int64

	// reqPages/reqRuns back AllocRequest and pagePages/pageRuns back
	// AllocPages: the allocator is called a few times per operation on a
	// single-threaded engine, so reusing the accumulation buffers
	// removes two allocs per call. Each returned run slice is valid only
	// until that method's next call; the two methods keep separate
	// buffers because AllocRequest's tail calls AllocPages.
	reqPages  []PageID
	reqRuns   []PageRun
	pagePages []PageID
	pageRuns  []PageRun
	// mixed is the extent currently feeding page-granular allocations
	// (the mixed-extent pool); -1 when none.
	mixed int64

	// reuse is the deallocation cache: extents whose last page was freed,
	// in completion order. New allocations consume it FIFO before falling
	// back to the GAM scan. Real engines keep such caches so fresh
	// allocations do not pay a bitmap scan; the consequence — freed space
	// is reused in deallocation order, not address order, so it never
	// re-coalesces — is the compounding scatter behind the paper's
	// observation that SQL Server's fragmentation "increases almost
	// linearly over time and does not seem to be approaching any
	// asymptote" (§5.3).
	reuse     []int64
	reuseHead int

	freePages int64
}

// NewAllocator creates an allocator over the given number of extents,
// all initially free.
func NewAllocator(extents int64) *Allocator {
	if extents <= 0 {
		panic(fmt.Sprintf("db: bad extent count %d", extents))
	}
	a := &Allocator{
		extents:   extents,
		gam:       make([]uint64, (extents+63)/64),
		pfs:       btree.New[int64, uint8](func(x, y int64) bool { return x < y }),
		mixed:     -1,
		freePages: extents * PagesPerExtent,
	}
	for i := int64(0); i < extents; i++ {
		a.gam[i/64] |= 1 << uint(i%64)
	}
	return a
}

// FreePages returns the total number of free pages.
func (a *Allocator) FreePages() int64 { return a.freePages }

// Extents returns the total extent count.
func (a *Allocator) Extents() int64 { return a.extents }

func (a *Allocator) gamGet(e int64) bool { return a.gam[e/64]&(1<<uint(e%64)) != 0 }
func (a *Allocator) gamClear(e int64)    { a.gam[e/64] &^= 1 << uint(e%64) }
func (a *Allocator) gamSet(e int64)      { a.gam[e/64] |= 1 << uint(e%64) }

// nextFreeExtent returns the next wholly-free extent: the head of the
// deallocation cache when one exists, otherwise the first GAM extent at
// or after the cursor (wrapping once); -1 when none exists. The returned
// extent is still marked allocated in neither structure — callers must
// call takeFreeExtent to claim it.
func (a *Allocator) nextFreeExtent() int64 {
	if a.reuseHead < len(a.reuse) {
		return a.reuse[a.reuseHead]
	}
	if e := a.scanGAMFrom(a.cursor); e != -1 {
		return e
	}
	return a.scanGAMFrom(0)
}

// takeFreeExtent claims extent e returned by nextFreeExtent.
func (a *Allocator) takeFreeExtent(e int64) {
	if a.reuseHead < len(a.reuse) && a.reuse[a.reuseHead] == e {
		a.reuseHead++
		if a.reuseHead == len(a.reuse) {
			a.reuse = a.reuse[:0]
			a.reuseHead = 0
		}
		return
	}
	a.gamClear(e)
	a.cursor = (e + 1) % a.extents
}

// scanGAMFrom returns the first free extent >= from, or -1.
func (a *Allocator) scanGAMFrom(from int64) int64 {
	if from >= a.extents {
		return -1
	}
	w := from / 64
	// Mask off bits below `from` in the first word.
	word := a.gam[w] &^ ((1 << uint(from%64)) - 1)
	for {
		if word != 0 {
			e := w*64 + int64(bits.TrailingZeros64(word))
			if e >= a.extents {
				return -1
			}
			return e
		}
		w++
		if w >= int64(len(a.gam)) {
			return -1
		}
		word = a.gam[w]
	}
}

// nextPartialExtent returns the first extent with PFS-free pages at or
// after the cursor, wrapping around once; -1 when none exists.
func (a *Allocator) nextPartialExtent() int64 {
	found := int64(-1)
	a.pfs.AscendFrom(a.cursor, func(e int64, _ uint8) bool {
		found = e
		return false
	})
	if found != -1 {
		return found
	}
	e, _, ok := a.pfs.Min()
	if !ok {
		return -1
	}
	return e
}

// AllocPages allocates n pages page-granularly, from the mixed-extent
// pool: pages come from the current mixed extent until it is exhausted,
// then the next wholly-free extent (deallocation cache first) is broken
// to refill the pool. Only under space pressure — no wholly-free extent
// anywhere — are other partial extents raided.
//
// Because the refill consumes whole extents from the same deallocation
// cache that feeds bulk allocations, the steady trickle of tree-node and
// row-page allocations shifts the cache's alignment relative to object
// boundaries — the drift that makes even constant-size objects fragment
// (§5.4) and keeps the database's curve climbing (§5.3).
func (a *Allocator) AllocPages(n int64) ([]PageRun, bool) {
	if n <= 0 {
		panic(fmt.Sprintf("db: AllocPages(%d)", n))
	}
	if a.freePages < n {
		return nil, false
	}
	pages := a.pagePages[:0]
	remaining := n
	for remaining > 0 {
		// Drain the current mixed extent.
		if a.mixed >= 0 {
			if mask, ok := a.pfs.Get(a.mixed); ok && mask != 0 {
				e := a.mixed
				for mask != 0 && remaining > 0 {
					p := bits.TrailingZeros8(mask)
					mask &^= 1 << uint(p)
					pages = append(pages, PageID(e*PagesPerExtent+int64(p)))
					remaining--
					a.freePages--
				}
				if mask == 0 {
					a.pfs.Delete(e)
				} else {
					a.pfs.Put(e, mask)
				}
				continue
			}
		}
		// Refill the pool from the deallocation cache / GAM scan.
		if e := a.nextFreeExtent(); e != -1 {
			a.takeFreeExtent(e)
			a.pfs.Put(e, 0xFF)
			a.mixed = e
			continue
		}
		// Space pressure: raid the nearest partial extent.
		pe := a.nextPartialExtent()
		if pe == -1 {
			panic("db: free-page accounting out of sync")
		}
		a.mixed = pe
	}
	a.pagePages = pages
	out := coalescePageRunsInto(a.pageRuns[:0], pages)
	if out != nil {
		a.pageRuns = out
	}
	return out, true
}

// AllocRequest allocates n pages as one client write request, with SQL
// Server's granularity split: the extent-aligned bulk of the request
// takes whole uniform extents (lowest GAM bit first) while the tail —
// and any shortfall when no whole extents remain — is filled page-
// granular from partial extents. This is why the size of client write
// requests shapes long-term fragmentation (§5.3: the systems converge to
// one fragment per 64 KB write request; §5.4: "modifying the size of the
// write requests ... changes long-term fragmentation behavior").
func (a *Allocator) AllocRequest(n int64) ([]PageRun, bool) {
	if n <= 0 {
		panic(fmt.Sprintf("db: AllocRequest(%d)", n))
	}
	if a.freePages < n {
		return nil, false
	}
	pages := a.reqPages[:0]
	remaining := n
	for remaining >= PagesPerExtent {
		e := a.nextFreeExtent()
		if e == -1 {
			break
		}
		a.takeFreeExtent(e)
		for p := int64(0); p < PagesPerExtent; p++ {
			pages = append(pages, PageID(e*PagesPerExtent+p))
		}
		a.freePages -= PagesPerExtent
		remaining -= PagesPerExtent
	}
	if remaining > 0 {
		runs, ok := a.AllocPages(remaining)
		if !ok {
			panic("db: AllocRequest tail failed after free-page check")
		}
		for _, r := range runs {
			for p := r.Start; p < r.End(); p++ {
				pages = append(pages, p)
			}
		}
	}
	a.reqPages = pages
	out := coalescePageRunsInto(a.reqRuns[:0], pages)
	if out != nil {
		a.reqRuns = out
	}
	return out, true
}

// FreePage returns one page to the pool, promoting its extent back to the
// GAM when all eight pages are free.
func (a *Allocator) FreePage(p PageID) {
	e := int64(p) / PagesPerExtent
	bit := uint8(1) << uint(int64(p)%PagesPerExtent)
	if a.gamGet(e) {
		panic(fmt.Sprintf("db: double free of page %d (extent already free)", p))
	}
	mask, _ := a.pfs.Get(e)
	if mask&bit != 0 {
		panic(fmt.Sprintf("db: double free of page %d", p))
	}
	mask |= bit
	a.freePages++
	if mask == 0xFF {
		a.pfs.Delete(e)
		a.reuse = append(a.reuse, e)
	} else {
		a.pfs.Put(e, mask)
	}
}

// FreeRuns frees every page of the given runs.
func (a *Allocator) FreeRuns(runs []PageRun) {
	for _, r := range runs {
		for p := r.Start; p < r.End(); p++ {
			a.FreePage(p)
		}
	}
}

// PartialExtents reports how many extents are partially used — a measure
// of page-level free-space scatter for the layout tool.
func (a *Allocator) PartialExtents() int { return a.pfs.Len() }

// ReuseQueueLen reports the number of extents waiting in the
// deallocation cache.
func (a *Allocator) ReuseQueueLen() int { return len(a.reuse) - a.reuseHead }

// ResetReuse drains the deallocation cache back into the GAM bitmap and
// rewinds the scan cursor — the state a freshly created filegroup starts
// from. Used by table rebuilds.
func (a *Allocator) ResetReuse() {
	for _, e := range a.reuse[a.reuseHead:] {
		a.gamSet(e)
	}
	a.reuse = a.reuse[:0]
	a.reuseHead = 0
	a.cursor = 0
	a.mixed = -1
}

// CheckInvariants panics when free-page accounting disagrees with the
// bitmaps or the deallocation cache. Intended for tests.
func (a *Allocator) CheckInvariants() {
	queued := make(map[int64]bool)
	for _, e := range a.reuse[a.reuseHead:] {
		if queued[e] {
			panic(fmt.Sprintf("db: extent %d queued twice", e))
		}
		queued[e] = true
		if a.gamGet(e) {
			panic(fmt.Sprintf("db: extent %d both queued and GAM-free", e))
		}
		if a.pfs.Has(e) {
			panic(fmt.Sprintf("db: extent %d both queued and partial", e))
		}
	}
	count := int64(len(queued)) * PagesPerExtent
	for e := int64(0); e < a.extents; e++ {
		if a.gamGet(e) {
			if a.pfs.Has(e) {
				panic(fmt.Sprintf("db: extent %d both free and partial", e))
			}
			count += PagesPerExtent
		} else if mask, ok := a.pfs.Get(e); ok {
			count += int64(bits.OnesCount8(mask))
		}
	}
	if count != a.freePages {
		panic(fmt.Sprintf("db: freePages %d != bitmap+queue sum %d", a.freePages, count))
	}
}
