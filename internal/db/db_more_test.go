package db

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func TestWholeObjectRequestMode(t *testing.T) {
	// WriteRequestSize < 0 writes each object as a single request.
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(128*units.MB), clock, disk.MetadataMode)
	logd := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	d := Open(data, logd, Config{WriteRequestSize: -1})
	if err := d.Put("a", 10*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	frags, _ := d.Fragments("a")
	if frags > 2 {
		t.Fatalf("single-request put fragmented: %d", frags)
	}
}

func TestZeroAndMismatchedWrites(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	if err := d.Put("a", 0, nil); err == nil {
		t.Fatal("zero-size put succeeded")
	}
	if err := d.Put("a", 100, []byte{1}); err == nil {
		t.Fatal("mismatched data length accepted")
	}
}

func TestDeleteMissingAndStatMissing(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	if err := d.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete err = %v", err)
	}
	if _, err := d.Stat("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat err = %v", err)
	}
	if _, err := d.Fragments("ghost"); err == nil {
		t.Fatal("fragments of missing object succeeded")
	}
	if _, err := d.ObjectRuns("ghost"); err == nil {
		t.Fatal("runs of missing object succeeded")
	}
	if d.Tag("ghost") != 0 {
		t.Fatal("tag of missing object nonzero")
	}
}

func TestPutFailureLeavesNoTrace(t *testing.T) {
	d := newDB(16*units.MB, disk.MetadataMode)
	free0 := d.FreeBytes()
	if err := d.Put("big", 64*units.MB, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if d.ObjectCount() != 0 {
		t.Fatal("failed put left an object")
	}
	if d.FreeBytes() != free0 {
		t.Fatalf("failed put leaked pages: %d -> %d", free0, d.FreeBytes())
	}
	d.CheckInvariants()
}

func TestReplaceUnderPressureUsesGhostFlush(t *testing.T) {
	// With a tiny ghost horizon the engine can reclaim just-replaced
	// space quickly; repeated replacement near capacity must keep
	// working once the ghost horizon passes.
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	logd := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	d := Open(data, logd, Config{GhostHorizon: 1})
	if err := d.Put("a", 20*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	// Several small ops to age the ghost queue between big replaces.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("pad%d", i%3)
		_ = d.Replace(key, 64*units.KB, nil)
		if err := d.Replace("a", 20*units.MB, nil); err != nil {
			// Acceptable mid-horizon, but after padding ops the space
			// must come back.
			continue
		}
	}
	if _, err := d.Stat("a"); err != nil {
		t.Fatal("object lost under pressure")
	}
	d.CheckInvariants()
}

func TestGetChargesNodePageReadsOnceCached(t *testing.T) {
	d := newDB(128*units.MB, disk.MetadataMode)
	d.Put("a", 8*units.MB, nil) // > 500 pages: at least 2 node pages + 1 root region
	d.DataDrive().ResetStats()
	d.Get("a")
	firstReads := d.DataDrive().Stats().Reads
	d.DataDrive().ResetStats()
	d.Get("a")
	secondReads := d.DataDrive().Stats().Reads
	if secondReads >= firstReads {
		t.Fatalf("buffer pool did not absorb node reads: %d then %d", firstReads, secondReads)
	}
}

func TestMetaTable(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	mt := d.NewMetaTable("objects")
	if err := mt.Insert("a"); err != nil {
		t.Fatal(err)
	}
	if err := mt.Insert("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("dup insert err = %v", err)
	}
	if !mt.Lookup("a") || mt.Lookup("b") {
		t.Fatal("lookup wrong")
	}
	if err := mt.Update("a"); err != nil {
		t.Fatal(err)
	}
	if err := mt.Update("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	if mt.Len() != 1 {
		t.Fatalf("len = %d", mt.Len())
	}
	if err := mt.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := mt.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestRowPageAllocationCadence(t *testing.T) {
	d := newDB(128*units.MB, disk.MetadataMode)
	for i := 0; i < RowsPerPage*3; i++ {
		if err := d.Put(fmt.Sprintf("o%d", i), 8*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.rowPages); got != 3 {
		t.Fatalf("row pages = %d, want 3 for %d inserts", got, RowsPerPage*3)
	}
}

func TestGhostHorizonExactness(t *testing.T) {
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	d := Open(data, nil, Config{GhostHorizon: 3})
	d.Put("victim", 1*units.MB, nil)
	free0 := d.FreeBytes()
	d.Delete("victim")
	// The pages must stay ghosted for exactly GhostHorizon further ops.
	for i := 0; i < 3; i++ {
		if d.FreeBytes() > free0 {
			t.Fatalf("ghosts released after only %d ops", i)
		}
		d.Put(fmt.Sprintf("pad%d", i), 8*units.KB, nil)
	}
	d.Put("trigger", 8*units.KB, nil)
	if d.FreeBytes() <= free0 {
		t.Fatal("ghosts never released")
	}
}

func TestColocatedLogFallsBackToDataDrive(t *testing.T) {
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	d := Open(data, nil, Config{}) // nil log drive
	if err := d.Put("a", 256*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("a"); err != nil {
		t.Fatal(err)
	}
}

// TestGroupForcesLogOncePerBatch pins the engine half of group commit:
// puts inside a BeginGroup/EndGroup bracket defer their log forces and
// the bracket issues exactly one, while ungrouped puts force each.
func TestGroupForcesLogOncePerBatch(t *testing.T) {
	d := newDB(128*units.MB, disk.MetadataMode)
	base := d.Stats().LogForces
	for i := 0; i < 4; i++ {
		if err := d.Put(fmt.Sprintf("solo%d", i), 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().LogForces - base; got != 4 {
		t.Fatalf("ungrouped puts forced %d times, want 4", got)
	}

	base = d.Stats().LogForces
	d.BeginGroup()
	for i := 0; i < 4; i++ {
		if err := d.Put(fmt.Sprintf("grp%d", i), 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().LogForces - base; got != 0 {
		t.Fatalf("forced %d times inside the group", got)
	}
	d.EndGroup()
	if got := d.Stats().LogForces - base; got != 1 {
		t.Fatalf("group forced %d times, want 1", got)
	}
	// Unbalanced EndGroup is a no-op, and nesting forces only once.
	d.EndGroup()
	d.BeginGroup()
	d.BeginGroup()
	if err := d.Put("nested", 256*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	d.EndGroup()
	d.EndGroup()
	if got := d.Stats().LogForces - base; got != 2 {
		t.Fatalf("nested group forced %d total, want 2", got)
	}
	d.CheckInvariants()
}
