package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
)

// churnedDB builds a database fragmented by safe-replace churn.
func churnedDB(t *testing.T, mode disk.Mode) *Database {
	t.Helper()
	d := newDB(256*units.MB, mode)
	const n = 20
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		size := int64(rng.Intn(8)+4) * 512 * units.KB
		var data []byte
		if mode == disk.DataMode {
			data = make([]byte, size)
			rng.Read(data)
		}
		if err := d.Put(fmt.Sprintf("o%d", i), size, data); err != nil {
			t.Fatal(err)
		}
	}
	for op := 0; op < 8*n; op++ {
		i := rng.Intn(n)
		size := int64(rng.Intn(8)+4) * 512 * units.KB
		var data []byte
		if mode == disk.DataMode {
			data = make([]byte, size)
			rng.Read(data)
		}
		if err := d.Replace(fmt.Sprintf("o%d", i), size, data); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestRebuildDefragments(t *testing.T) {
	d := churnedDB(t, disk.MetadataMode)
	before := 0
	for _, k := range d.Keys() {
		f, _ := d.Fragments(k)
		before += f
	}
	if before <= d.ObjectCount() {
		t.Skip("churn produced no fragmentation; nothing to rebuild")
	}
	rep := d.Rebuild()
	if rep.Objects != d.ObjectCount() {
		t.Fatalf("rebuild touched %d of %d objects", rep.Objects, d.ObjectCount())
	}
	if rep.FragmentsBefore != before {
		t.Fatalf("FragmentsBefore = %d, want %d", rep.FragmentsBefore, before)
	}
	if rep.FragmentsAfter >= rep.FragmentsBefore {
		t.Fatalf("rebuild did not defragment: %d -> %d", rep.FragmentsBefore, rep.FragmentsAfter)
	}
	// A rebuilt table lays out like a fresh bulk load: near-contiguous.
	if got := float64(rep.FragmentsAfter) / float64(rep.Objects); got > 2 {
		t.Fatalf("rebuilt table still has %.2f fragments/object", got)
	}
	d.CheckInvariants()
}

func TestRebuildPreservesContents(t *testing.T) {
	d := churnedDB(t, disk.DataMode)
	want := map[string][]byte{}
	for _, k := range d.Keys() {
		data, err := d.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = data
	}
	d.Rebuild()
	for k, w := range want {
		got, err := d.Get(k)
		if err != nil {
			t.Fatalf("object %s lost in rebuild: %v", k, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("object %s corrupted by rebuild", k)
		}
	}
	d.CheckInvariants()
}

func TestRebuildChargesTime(t *testing.T) {
	d := churnedDB(t, disk.MetadataMode)
	before := d.data.Clock().Now()
	rep := d.Rebuild()
	if d.data.Clock().Now() == before {
		t.Fatal("rebuild charged no virtual time")
	}
	if rep.BytesMoved == 0 {
		t.Fatal("rebuild reported no bytes moved")
	}
}

func TestRebuildIsRepeatableAndIdempotentish(t *testing.T) {
	d := churnedDB(t, disk.MetadataMode)
	first := d.Rebuild()
	second := d.Rebuild()
	if second.FragmentsAfter > first.FragmentsAfter {
		t.Fatalf("second rebuild worse than first: %d > %d",
			second.FragmentsAfter, first.FragmentsAfter)
	}
	d.CheckInvariants()
}

func TestRebuildEmptyDatabase(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	rep := d.Rebuild()
	if rep.Objects != 0 || rep.BytesMoved != 0 {
		t.Fatalf("empty rebuild: %+v", rep)
	}
	if err := d.Put("a", 64*units.KB, nil); err != nil {
		t.Fatalf("put after empty rebuild: %v", err)
	}
}

func TestResetReuseConservesPages(t *testing.T) {
	a := NewAllocator(64)
	runs, _ := a.AllocRequest(64) // 64 pages = 8 whole extents
	free0 := a.FreePages()
	a.FreeRuns(runs) // everything into the deallocation cache
	if a.ReuseQueueLen() == 0 {
		t.Fatal("expected queued extents")
	}
	a.ResetReuse()
	if a.ReuseQueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if a.FreePages() != free0+64 {
		t.Fatalf("pages lost: have %d, want %d", a.FreePages(), free0+64)
	}
	a.CheckInvariants()
	// Everything must be allocatable again, sequentially.
	again, ok := a.AllocRequest(64)
	if !ok || again[0].Start != runs[0].Start {
		t.Fatalf("post-reset allocation not sequential: %v", again)
	}
}
