package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func newDB(capacity int64, mode disk.Mode) *Database {
	clock := vclock.New()
	data := disk.New(disk.DefaultGeometry(capacity), clock, mode)
	logd := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
	return Open(data, logd, Config{})
}

func payload(n int64, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed)*31 + i%127)
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	d := newDB(256*units.MB, disk.DataMode)
	data := payload(300*units.KB, 3)
	if err := d.Put("a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	size, err := d.Stat("a")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Stat = %d, %v", size, err)
	}
}

func TestPutDuplicate(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	if err := d.Put("a", 64*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a", 64*units.KB, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	if _, err := d.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplaceSwapsContents(t *testing.T) {
	d := newDB(256*units.MB, disk.DataMode)
	v1 := payload(128*units.KB, 1)
	v2 := payload(256*units.KB, 2)
	if err := d.Put("a", int64(len(v1)), v1); err != nil {
		t.Fatal(err)
	}
	if err := d.Replace("a", int64(len(v2)), v2); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get("a")
	if !bytes.Equal(got, v2) {
		t.Fatal("replace did not swap contents")
	}
	if d.ObjectCount() != 1 {
		t.Fatalf("ObjectCount = %d", d.ObjectCount())
	}
}

func TestDeleteReclaimsAfterGhostHorizon(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	free0 := d.FreeBytes()
	if err := d.Put("a", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	afterPut := d.FreeBytes()
	if afterPut >= free0 {
		t.Fatal("put consumed no space")
	}
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// Pages are ghosted, not yet free.
	if d.FreeBytes() >= free0 {
		t.Fatal("pages freed before ghost horizon")
	}
	d.FlushGhosts()
	// All BLOB pages return; the one lazily allocated row page stays with
	// the table.
	if got, want := d.FreeBytes(), free0-PageSize; got != want {
		t.Fatalf("free = %d, want %d", got, want)
	}
	d.CheckInvariants()
}

func TestReplaceCannotReuseOwnOldSpace(t *testing.T) {
	// The defining dynamic of the safe-replace protocol: the new version
	// is allocated while the old one still holds its pages.
	d := newDB(16*units.MB, disk.MetadataMode)
	// Fill most of the file so a replace must fit in what remains.
	size := int64(6 * units.MB)
	if err := d.Put("a", size, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("b", size, nil); err != nil {
		t.Fatal(err)
	}
	// Free space is now < size; replacing must fail even though the old
	// version's pages would make room.
	if err := d.Replace("a", size, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("replace err = %v, want ErrNoSpace (old pages must not be reusable mid-transaction)", err)
	}
	// The failed replace must leave the old version intact.
	if _, err := d.Stat("a"); err != nil {
		t.Fatalf("old version lost after failed replace: %v", err)
	}
	d.CheckInvariants()
}

func TestCrashRollsBackInFlight(t *testing.T) {
	d := newDB(64*units.MB, disk.DataMode)
	v1 := payload(128*units.KB, 5)
	d.Put("a", int64(len(v1)), v1)
	// Start a replace and crash before commit by invoking the internal
	// steps: begin + allocate + write, then crash.
	tx := d.begin("a")
	var seq int64
	if _, err := d.writeChunk(tx, 99, 128*units.KB, &seq); err != nil {
		t.Fatal(err)
	}
	d.SimulateCrash()
	got, err := d.Get("a")
	if err != nil || !bytes.Equal(got, v1) {
		t.Fatal("crash mid-replace corrupted the old version")
	}
	d.CheckInvariants()
}

func TestBulkLoadIsSequential(t *testing.T) {
	// During bulk load both systems "simply append each new object to the
	// end of allocated storage, avoiding seeks" (§5.3). Fragments must be
	// 1 per object and data-drive seeks near zero.
	d := newDB(256*units.MB, disk.MetadataMode)
	d.DataDrive().ResetStats()
	for i := 0; i < 50; i++ {
		if err := d.Put(fmt.Sprintf("o%d", i), 1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		frags, err := d.Fragments(fmt.Sprintf("o%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if frags > 2 {
			t.Fatalf("bulk-loaded object o%d has %d fragments", i, frags)
		}
	}
	s := d.DataDrive().Stats()
	if s.Seeks > 3*50 {
		t.Fatalf("bulk load incurred %d seeks for 50 objects", s.Seeks)
	}
}

func TestChurnFragmentsObjects(t *testing.T) {
	// After enough safe-replaces, objects should fragment — the paper's
	// central result for the database side.
	d := newDB(128*units.MB, disk.MetadataMode)
	const n = 10
	sizeFor := func(i int) int64 { return int64(3+i%5) * units.MB } // ~50% occupancy
	for i := 0; i < n; i++ {
		if err := d.Put(fmt.Sprintf("o%d", i), sizeFor(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 8*n; op++ { // storage age 8
		i := rng.Intn(n)
		if err := d.Replace(fmt.Sprintf("o%d", i), sizeFor(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := 0; i < n; i++ {
		frags, _ := d.Fragments(fmt.Sprintf("o%d", i))
		total += frags
	}
	mean := float64(total) / float64(n)
	if mean < 2 {
		t.Fatalf("mean fragments/object after churn = %.1f, want > 2", mean)
	}
	d.CheckInvariants()
}

func TestFragmentationSlowsGets(t *testing.T) {
	// Read a 5MB object bulk-loaded (contiguous) vs after churn
	// (fragmented): virtual read time must increase.
	mkTime := func(churn bool) float64 {
		d := newDB(128*units.MB, disk.MetadataMode)
		const n = 10
		size := int64(5 * units.MB)
		for i := 0; i < n; i++ {
			d.Put(fmt.Sprintf("o%d", i), size, nil)
		}
		if churn {
			rng := rand.New(rand.NewSource(2))
			for op := 0; op < 10*n; op++ {
				d.Replace(fmt.Sprintf("o%d", rng.Intn(n)), size, nil)
			}
		}
		w := vclock.StartWatch(d.DataDrive().Clock())
		for i := 0; i < n; i++ {
			d.Get(fmt.Sprintf("o%d", i))
		}
		return w.Seconds()
	}
	clean := mkTime(false)
	aged := mkTime(true)
	if aged <= clean {
		t.Fatalf("aged reads (%.3fs) not slower than clean (%.3fs)", aged, clean)
	}
}

func TestAllocatorInvariantsUnderChurn(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	rng := rand.New(rand.NewSource(3))
	live := map[string]bool{}
	for op := 0; op < 300; op++ {
		key := fmt.Sprintf("o%d", rng.Intn(20))
		switch {
		case !live[key]:
			size := int64(rng.Intn(8)+1) * 64 * units.KB
			if err := d.Put(key, size, nil); err == nil {
				live[key] = true
			}
		case rng.Intn(2) == 0:
			size := int64(rng.Intn(8)+1) * 64 * units.KB
			_ = d.Replace(key, size, nil)
		default:
			if err := d.Delete(key); err != nil {
				t.Fatal(err)
			}
			delete(live, key)
		}
	}
	d.CheckInvariants()
}

func TestObjectRunsMatchFragments(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	d.Put("a", 2*units.MB, nil)
	frags, _ := d.Fragments("a")
	runs, err := d.ObjectRuns("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != frags {
		t.Fatalf("ObjectRuns %d != Fragments %d", len(runs), frags)
	}
}

func TestStatsCounters(t *testing.T) {
	d := newDB(64*units.MB, disk.MetadataMode)
	d.Put("a", 64*units.KB, nil)
	d.Get("a")
	d.Replace("a", 64*units.KB, nil)
	d.Delete("a")
	s := d.Stats()
	if s.Puts != 1 || s.Gets != 1 || s.Replaces != 1 || s.Deletes != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFullLoggingCostsMore(t *testing.T) {
	run := func(full bool) float64 {
		clock := vclock.New()
		data := disk.New(disk.DefaultGeometry(128*units.MB), clock, disk.MetadataMode)
		logd := disk.New(disk.DefaultGeometry(64*units.MB), clock, disk.MetadataMode)
		d := Open(data, logd, Config{FullLogging: full})
		w := vclock.StartWatch(clock)
		for i := 0; i < 20; i++ {
			d.Put(fmt.Sprintf("o%d", i), 1*units.MB, nil)
		}
		return w.Seconds()
	}
	if run(true) <= run(false) {
		t.Fatal("full logging not slower than bulk-logged")
	}
}

func TestAllocatorUnit(t *testing.T) {
	a := NewAllocator(16)
	runs, ok := a.AllocPages(20)
	if !ok {
		t.Fatal("alloc failed")
	}
	var n int64
	for _, r := range runs {
		n += r.Len
	}
	if n != 20 {
		t.Fatalf("allocated %d pages", n)
	}
	// Lowest-first: the first run starts at page 0.
	if runs[0].Start != 0 {
		t.Fatalf("first run at %d", runs[0].Start)
	}
	a.FreeRuns(runs)
	if a.FreePages() != 16*PagesPerExtent {
		t.Fatalf("free = %d", a.FreePages())
	}
	a.CheckInvariants()
	if _, ok := a.AllocPages(16*PagesPerExtent + 1); ok {
		t.Fatal("oversized alloc succeeded")
	}
}

func TestAllocatorFillsPartialFirst(t *testing.T) {
	a := NewAllocator(16)
	first, _ := a.AllocPages(3) // extent 0 partially used
	runs, _ := a.AllocPages(2)  // must fill extent 0's remaining pages
	if runs[0].Start != 3 {
		t.Fatalf("partial extent not filled first: got start %d", runs[0].Start)
	}
	_ = first
	a.CheckInvariants()
}

func TestCoalescePageRuns(t *testing.T) {
	got := CoalescePageRuns([]PageID{0, 1, 2, 5, 6, 10})
	want := []PageRun{{0, 3}, {5, 2}, {10, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if CoalescePageRuns(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	bp := newBufferPool(2)
	if bp.Access(1) {
		t.Fatal("first access hit")
	}
	if !bp.Access(1) {
		t.Fatal("second access missed")
	}
	bp.Access(2)
	bp.Access(3) // evicts 1 (LRU)
	if bp.Access(1) {
		t.Fatal("evicted page hit")
	}
	// 2 was evicted by re-adding 1; 3 should still be present.
	if !bp.Access(3) {
		t.Fatal("recently used page evicted")
	}
	bp.Invalidate(3)
	if bp.Access(3) {
		t.Fatal("invalidated page hit")
	}
	if bp.HitRate() <= 0 || bp.HitRate() >= 1 {
		t.Fatalf("hit rate %g", bp.HitRate())
	}
}

// Property: random engine workloads preserve payload integrity and
// allocator consistency.
func TestQuickEngineIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDB(32*units.MB, disk.DataMode)
		contents := map[string][]byte{}
		for op := 0; op < 50; op++ {
			key := fmt.Sprintf("o%d", rng.Intn(6))
			switch rng.Intn(3) {
			case 0, 1:
				size := int64(rng.Intn(4)+1) * 32 * units.KB
				data := make([]byte, size)
				rng.Read(data)
				if err := d.Replace(key, size, data); err != nil {
					return false
				}
				contents[key] = data
			case 2:
				if _, ok := contents[key]; ok {
					if d.Delete(key) != nil {
						return false
					}
					delete(contents, key)
				}
			}
		}
		for key, want := range contents {
			got, err := d.Get(key)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		d.CheckInvariants()
		return d.ObjectCount() == len(contents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
