package db

import "sort"

// RebuildReport summarises a table rebuild.
type RebuildReport struct {
	Objects         int
	BytesMoved      int64
	FragmentsBefore int
	FragmentsAfter  int
}

// Rebuild performs the only BLOB defragmentation SQL Server offered
// (§5.3): "The recommended way to defragment a large BLOB table is to
// create a new table in a new file group, copy the old records to the
// new table and drop the old table." All objects are read, their pages
// released, and every object rewritten in key order into freshly
// allocated space; full read+write disk time is charged, so the harness
// can weigh the §6 warning that defragmentation costs "can outweigh its
// benefits".
func (d *Database) Rebuild() RebuildReport {
	var rep RebuildReport
	keys := make([]string, 0, len(d.rows))
	for k, r := range d.rows {
		keys = append(keys, k)
		rep.FragmentsBefore += len(CoalescePageRuns(r.pages))
	}
	sort.Strings(keys)
	rep.Objects = len(keys)

	// Read every object out (the copy's read half).
	for _, k := range keys {
		r := d.rows[k]
		for _, pr := range CoalescePageRuns(r.pages) {
			d.data.ReadRun(d.clusterRun(pr))
		}
		d.data.ChargeCPU(d.cfg.PageCPUUs * float64(len(r.pages)))
		rep.BytesMoved += r.size
	}

	// Drop: release every page (old table dropped whole — no ghosting).
	d.FlushGhosts()
	for _, k := range keys {
		r := d.rows[k]
		for _, p := range r.pages {
			d.alloc.FreePage(p)
			d.pool.Invalidate(p)
			d.data.ClearOwner(d.clusterRun(PageRun{Start: p, Len: 1}))
		}
		for _, p := range r.nodes {
			d.alloc.FreePage(p)
			d.pool.Invalidate(p)
		}
	}
	// The old table's heap pages go with the drop too.
	for _, p := range d.rowPages {
		d.alloc.FreePage(p)
		d.pool.Invalidate(p)
	}
	d.rowPages = d.rowPages[:0]
	d.rowPageSlots = 0
	// The new filegroup starts clean: reset the scan cursor and drain the
	// deallocation cache so the copy lays out sequentially.
	d.alloc.ResetReuse()

	// Copy in key order (the write half), reusing the normal write path
	// so costs and structures are identical to a fresh bulk load.
	for _, k := range keys {
		r := d.rows[k]
		size, data := r.size, r.data
		delete(d.rows, k)
		if err := d.Put(k, size, data); err != nil {
			// Space for the copy is guaranteed: we just freed at least
			// as much as we are writing.
			panic("db: rebuild copy failed: " + err.Error())
		}
	}
	for _, r := range d.rows {
		rep.FragmentsAfter += len(CoalescePageRuns(r.pages))
	}
	return rep
}
