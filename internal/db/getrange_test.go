package db

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/units"
)

// TestGetRangeBounds pins the engine-side bounds ladder of ranged
// reads: offsets at and past EOF, zero lengths, negative inputs, and
// offsets hostile enough to overflow a naive off+length check.
func TestGetRangeBounds(t *testing.T) {
	const size = 256 * units.KB
	d := newDB(64*units.MB, disk.DataMode)
	data := payload(size, 3)
	if err := d.Put("a", size, data); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name        string
		off, length int64
		wantErr     error // nil means success
		wantBytes   int64 // payload length on success
	}{
		{"full range", 0, size, nil, size},
		{"interior", 4 * units.KB, 8 * units.KB, nil, 8 * units.KB},
		{"suffix to EOF", size - 4*units.KB, 4 * units.KB, nil, 4 * units.KB},
		{"zero length at start", 0, 0, nil, 0},
		{"zero length interior", size / 2, 0, nil, 0},
		{"zero length at EOF", size, 0, nil, 0},
		{"offset at EOF, length 1", size, 1, blob.ErrOutOfRange, 0},
		{"offset past EOF", size + 1, 0, blob.ErrOutOfRange, 0},
		{"length past EOF", size - 4*units.KB, 8 * units.KB, blob.ErrOutOfRange, 0},
		{"negative offset", -1, 4 * units.KB, blob.ErrOutOfRange, 0},
		{"negative length", 0, -1, blob.ErrOutOfRange, 0},
		{"both negative", -4, -4, blob.ErrOutOfRange, 0},
		{"offset+length overflows int64", math.MaxInt64 - 10, 100, blob.ErrOutOfRange, 0},
		{"max offset", math.MaxInt64, 1, blob.ErrOutOfRange, 0},
		{"max length", 0, math.MaxInt64, blob.ErrOutOfRange, 0},
		{"max offset and length", math.MaxInt64, math.MaxInt64, blob.ErrOutOfRange, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := d.GetRange("a", tc.off, tc.length)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("GetRange(%d, %d) = %v, want %v", tc.off, tc.length, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("GetRange(%d, %d): %v", tc.off, tc.length, err)
			}
			if int64(len(got)) != tc.wantBytes {
				t.Fatalf("GetRange(%d, %d) returned %d bytes, want %d", tc.off, tc.length, len(got), tc.wantBytes)
			}
			if tc.wantBytes > 0 && !bytes.Equal(got, data[tc.off:tc.off+tc.length]) {
				t.Fatalf("GetRange(%d, %d) payload mismatch", tc.off, tc.length)
			}
		})
	}

	// The ladder checks existence before bounds: a missing key reports
	// ErrNotFound even for a hostile range.
	if _, err := d.GetRange("ghost", math.MaxInt64, math.MaxInt64); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("GetRange on missing key = %v, want ErrNotFound", err)
	}
}
