package db

import (
	"sync"
	"testing"
)

// TestBufferPoolConcurrentReset is a -race regression test: Reset and
// HitRate are reachable from harness reporting paths that do not hold
// the store-level lock, so the pool must synchronize internally. Before
// the pool carried its own mutex, a Reset racing an Access could tear
// the counters and an Invalidate racing an Access could unlink the same
// LRU entry twice — returning one page slot to the list's head and tail
// at once.
func TestBufferPoolConcurrentReset(t *testing.T) {
	bp := newBufferPool(8)
	var wg sync.WaitGroup
	const iters = 2000
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			bp.Access(PageID(i % 16))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			bp.Reset()
			_ = bp.HitRate()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			bp.Invalidate(PageID(i % 16))
		}
	}()
	wg.Wait()
	// The list must still be consistent: every resident page reachable
	// exactly once from the head, tail agreeing with the walk.
	seen := map[PageID]bool{}
	var last *poolEntry
	for e := bp.head; e != nil; e = e.next {
		if seen[e.id] {
			t.Fatalf("page %d linked twice", e.id)
		}
		seen[e.id] = true
		last = e
	}
	if len(seen) != len(bp.entries) {
		t.Fatalf("LRU walk saw %d entries, index holds %d", len(seen), len(bp.entries))
	}
	if bp.tail != last {
		t.Fatal("tail does not terminate the LRU list")
	}
}

// TestBufferPoolResetSeparatesPhases pins the phase-separation
// contract: Reset zeroes the counters but keeps pages resident, so a
// post-reset phase's hit rate reflects only its own accesses.
func TestBufferPoolResetSeparatesPhases(t *testing.T) {
	bp := newBufferPool(8)
	// "Bulk load": all misses.
	for i := PageID(0); i < 4; i++ {
		if bp.Access(i) {
			t.Fatalf("page %d hit on first touch", i)
		}
	}
	if bp.HitRate() != 0 {
		t.Fatalf("bulk-phase hit rate = %.2f", bp.HitRate())
	}
	bp.Reset()
	// "Churn": every page resident, all hits — the bulk misses must
	// not dilute this phase's rate.
	for i := PageID(0); i < 4; i++ {
		if !bp.Access(i) {
			t.Fatalf("page %d missed after reset kept residency", i)
		}
	}
	if bp.HitRate() != 1 {
		t.Fatalf("churn-phase hit rate = %.2f, want 1 (bulk misses excluded)", bp.HitRate())
	}
}

// TestBufferPoolDisabled pins the capacity guard: capacity <= 0 is a
// disabled pool — every access misses, nothing is retained, and the
// LRU list stays empty instead of silently becoming a one-page cache.
func TestBufferPoolDisabled(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		bp := newBufferPool(capacity)
		for round := 0; round < 2; round++ {
			if bp.Access(7) {
				t.Fatalf("capacity %d: hit on a disabled pool", capacity)
			}
		}
		if len(bp.entries) != 0 || bp.head != nil || bp.tail != nil {
			t.Fatalf("capacity %d: disabled pool retained pages", capacity)
		}
		if bp.HitRate() != 0 {
			t.Fatalf("capacity %d: hit rate = %.2f", capacity, bp.HitRate())
		}
	}
}

// TestBufferPoolLRUEviction pins the eviction order across Reset: the
// least recently used page leaves first, and Reset does not disturb
// recency.
func TestBufferPoolLRUEviction(t *testing.T) {
	bp := newBufferPool(2)
	bp.Access(1)
	bp.Access(2)
	bp.Access(1) // 2 is now LRU
	bp.Reset()
	bp.Access(3) // evicts 2
	if !bp.Access(1) {
		t.Fatal("recently used page evicted")
	}
	if bp.Access(2) {
		t.Fatal("LRU page survived eviction")
	}
}
