package db

import "fmt"

// MetaTable models a plain row table without BLOB columns. The paper's
// file-based configuration stores "object names and other metadata in SQL
// server tables" (§4.1) while object data lives in NTFS files; MetaTable
// charges the row-path costs of that arrangement (B-tree descent CPU, a
// new heap page per RowsPerPage inserts, a log record per mutation)
// without any BLOB allocation.
type MetaTable struct {
	d    *Database
	name string
	keys map[string]struct{}
}

// NewMetaTable creates a metadata table on the database.
func (d *Database) NewMetaTable(name string) *MetaTable {
	return &MetaTable{d: d, name: name, keys: make(map[string]struct{})}
}

// Insert adds a metadata row.
func (mt *MetaTable) Insert(key string) error {
	if _, ok := mt.keys[key]; ok {
		return fmt.Errorf("%w: %s.%s", ErrExists, mt.name, key)
	}
	if err := mt.d.rowInsertCosts(); err != nil {
		return err
	}
	mt.d.logAppend(128)
	mt.keys[key] = struct{}{}
	return nil
}

// Lookup charges a row read and reports whether the key exists.
func (mt *MetaTable) Lookup(key string) bool {
	mt.d.data.ChargeCPU(mt.d.cfg.RowCPUUs)
	_, ok := mt.keys[key]
	return ok
}

// Update charges an in-place row update.
func (mt *MetaTable) Update(key string) error {
	if _, ok := mt.keys[key]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNotFound, mt.name, key)
	}
	mt.d.data.ChargeCPU(mt.d.cfg.RowCPUUs)
	mt.d.logAppend(128)
	return nil
}

// Delete removes a metadata row.
func (mt *MetaTable) Delete(key string) error {
	if _, ok := mt.keys[key]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNotFound, mt.name, key)
	}
	mt.d.data.ChargeCPU(mt.d.cfg.RowCPUUs)
	mt.d.logAppend(128)
	delete(mt.keys, key)
	return nil
}

// Len returns the row count.
func (mt *MetaTable) Len() int { return len(mt.keys) }
