// Package db implements the database substrate of the comparison — a
// SQL-Server-analog storage engine with the mechanisms the paper
// identifies on the database side:
//
//   - 8 KB pages grouped into 64 KB extents, allocated through GAM-style
//     bitmaps scanned lowest-offset-first;
//   - out-of-row BLOB storage (§4.2) as an Exodus-style fragment tree
//     (§2), so BLOB data pages do not decluster row data;
//   - bulk-logged transactions (§4): BLOB pages are written to the data
//     file and forced at commit, while only metadata goes to a dedicated
//     log drive — "SQL was given a dedicated log and data drive" (§4.1);
//   - deferred (ghost) deallocation, so a replaced object's old pages
//     rejoin the free pool only after the operation commits and the ghost
//     cleanup horizon passes;
//   - no BLOB defragmentation other than a full table rebuild, the
//     recommended practice reported in §5.3.
//
// The engine is deliberately page-granular: the paper traces SQL Server's
// unbounded fragmentation growth to piecemeal lowest-first reuse of freed
// space, in contrast to NTFS's largest-run-first cache.
package db

import (
	"fmt"

	"repro/internal/units"
)

// Fixed engine geometry, matching SQL Server's on-disk units.
const (
	// PageSize is the size of one database page in bytes.
	PageSize = 8 * units.KB
	// PagesPerExtent is the number of pages in one allocation extent.
	PagesPerExtent = 8
	// ExtentSize is the size of one extent in bytes (64 KB — the same
	// number that shows up as the convergent fragment size in Figure 3).
	ExtentSize = PageSize * PagesPerExtent
	// BlobTreeFanout is the number of leaf-page pointers one interior
	// node page of the Exodus-style blob fragment tree holds. Node pages
	// are allocated from the same pool as data pages, interleaved with
	// the data stream — one of the reasons object layouts drift off
	// extent alignment even for constant-size objects (§5.4).
	BlobTreeFanout = 500
	// RowsPerPage is how many metadata rows fit a heap page; a new row
	// page is allocated from the shared pool every RowsPerPage inserts.
	RowsPerPage = 64
)

// PageID identifies a database page. Pages map to disk clusters via the
// engine's data-region offset: page p occupies clusters
// [dataStart + p*clustersPerPage, ...+clustersPerPage).
type PageID int64

// PageRun is a contiguous range of pages [Start, Start+Len).
type PageRun struct {
	Start PageID
	Len   int64
}

// End returns the first page after the run.
func (r PageRun) End() PageID { return r.Start + PageID(r.Len) }

func (r PageRun) String() string { return fmt.Sprintf("pages[%d,+%d)", r.Start, r.Len) }

// CoalescePageRuns merges adjacent runs in a sorted-by-logical-order page
// list into maximal physically contiguous runs. The input is the logical
// page sequence of an object; the output length is the object's fragment
// count as the paper's marker tool would measure it.
func CoalescePageRuns(pages []PageID) []PageRun {
	return coalescePageRunsInto(nil, pages)
}

// coalescePageRunsInto coalesces into out (reusing its capacity), for
// hot paths that hold a scratch buffer.
func coalescePageRunsInto(out []PageRun, pages []PageID) []PageRun {
	for _, p := range pages {
		if n := len(out); n > 0 && out[n-1].End() == p {
			out[n-1].Len++
		} else {
			out = append(out, PageRun{Start: p, Len: 1})
		}
	}
	return out
}
