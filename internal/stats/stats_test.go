package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %g", s.P50)
	}
	// Interpolated rank 0.95*(5-1) = 3.8 → 4 + 0.8*(5-4).
	if math.Abs(s.P95-4.8) > 1e-9 {
		t.Fatalf("p95 = %g, want 4.8", s.P95)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	if Summarize(nil) != (Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

// TestQuantilesKnownSamples pins every Summary quantile on known
// samples via the interpolated rank p*(n-1).
func TestQuantilesKnownSamples(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p50  float64
		p90  float64
		p95  float64
		p99  float64
		p999 float64
	}{
		// 0..100: rank p*100 lands exactly on the value 100p.
		{"0..100", seq(0, 100), 50, 90, 95, 99, 99.9},
		// Two points: pure interpolation between them.
		{"pair", []float64{0, 10}, 5, 9, 9.5, 9.9, 9.99},
		// Single point: every quantile is that point.
		{"single", []float64{7}, 7, 7, 7, 7, 7},
		// Constant data: interpolation between equal values.
		{"constant", []float64{4, 4, 4, 4}, 4, 4, 4, 4, 4},
	}
	for _, tc := range cases {
		s := Summarize(tc.xs)
		got := []float64{s.P50, s.P90, s.P95, s.P99, s.P999}
		want := []float64{tc.p50, tc.p90, tc.p95, tc.p99, tc.p999}
		for i, g := range got {
			if math.Abs(g-want[i]) > 1e-9 {
				t.Errorf("%s: quantile %d = %g, want %g", tc.name, i, g, want[i])
			}
		}
	}
	// Percentile endpoints clamp.
	if Percentile([]float64{3, 1, 2}, 0) != 1 || Percentile([]float64{3, 1, 2}, 1) != 3 {
		t.Fatal("Percentile endpoints should clamp to min/max")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty Percentile should be 0")
	}
}

// seq returns lo..hi inclusive, deliberately unsorted at the ends to
// exercise the sort inside Summarize.
func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := hi; i >= lo; i-- {
		out = append(out, float64(i))
	}
	return out
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep magnitudes in a range where sum-of-squares cannot
			// overflow; throughput/fragment values are always modest.
			xs[i] = math.Mod(x, 1e6)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s == Summary{}
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %g,%v", y, ok)
	}
	if _, ok := s.YAt(1); ok {
		t.Fatal("YAt(1) should miss")
	}
	p, ok := s.Last()
	if !ok || p.X != 2 {
		t.Fatalf("Last = %+v", p)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure X", "Storage Age", "MB/sec")
	db := tb.AddSeries("Database")
	fs := tb.AddSeries("Filesystem")
	db.Add(0, 10.5)
	db.Add(2, 8.25)
	fs.Add(0, 5)
	fs.Add(4, 6)
	tb.Note("test note %d", 42)
	out := tb.Render()
	for _, want := range []string{"Figure X", "Database", "Filesystem", "10.50", "8.25", "test note 42", "MB/sec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// x=2 has no filesystem point: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for absent point")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "age", "y")
	s := tb.AddSeries("a,b") // needs escaping
	s.Add(1, 2.5)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != `age,"a,b"` {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "1,2.5" {
		t.Fatalf("row: %q", lines[1])
	}
}

func TestXValuesSortedUnion(t *testing.T) {
	tb := NewTable("T", "x", "y")
	a := tb.AddSeries("a")
	b := tb.AddSeries("b")
	a.Add(3, 1)
	a.Add(1, 1)
	b.Add(2, 1)
	b.Add(1, 1)
	xs := tb.xValues()
	want := []float64{1, 2, 3}
	if len(xs) != 3 {
		t.Fatalf("xs = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v", xs)
		}
	}
}

func TestSummaryCV(t *testing.T) {
	if cv := Summarize(nil).CV(); cv != 0 {
		t.Fatalf("empty CV = %f", cv)
	}
	if cv := Summarize([]float64{5, 5, 5, 5}).CV(); cv != 0 {
		t.Fatalf("constant CV = %f", cv)
	}
	// Mean 10, Std 5 -> CV 0.5 (scale-free: doubling the data keeps it).
	a := Summarize([]float64{5, 15}).CV()
	b := Summarize([]float64{10, 30}).CV()
	if a < 0.49 || a > 0.51 || a != b {
		t.Fatalf("CV = %f / %f, want ~0.5 and scale-free", a, b)
	}
}
