package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.P95 != 5 {
		t.Fatalf("p95 = %g", s.P95)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	if Summarize(nil) != (Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep magnitudes in a range where sum-of-squares cannot
			// overflow; throughput/fragment values are always modest.
			xs[i] = math.Mod(x, 1e6)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s == Summary{}
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %g,%v", y, ok)
	}
	if _, ok := s.YAt(1); ok {
		t.Fatal("YAt(1) should miss")
	}
	p, ok := s.Last()
	if !ok || p.X != 2 {
		t.Fatalf("Last = %+v", p)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure X", "Storage Age", "MB/sec")
	db := tb.AddSeries("Database")
	fs := tb.AddSeries("Filesystem")
	db.Add(0, 10.5)
	db.Add(2, 8.25)
	fs.Add(0, 5)
	fs.Add(4, 6)
	tb.Note("test note %d", 42)
	out := tb.Render()
	for _, want := range []string{"Figure X", "Database", "Filesystem", "10.50", "8.25", "test note 42", "MB/sec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// x=2 has no filesystem point: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for absent point")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "age", "y")
	s := tb.AddSeries("a,b") // needs escaping
	s.Add(1, 2.5)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != `age,"a,b"` {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "1,2.5" {
		t.Fatalf("row: %q", lines[1])
	}
}

func TestXValuesSortedUnion(t *testing.T) {
	tb := NewTable("T", "x", "y")
	a := tb.AddSeries("a")
	b := tb.AddSeries("b")
	a.Add(3, 1)
	a.Add(1, 1)
	b.Add(2, 1)
	b.Add(1, 1)
	xs := tb.xValues()
	want := []float64{1, 2, 3}
	if len(xs) != 3 {
		t.Fatalf("xs = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v", xs)
		}
	}
}

func TestSummaryCV(t *testing.T) {
	if cv := Summarize(nil).CV(); cv != 0 {
		t.Fatalf("empty CV = %f", cv)
	}
	if cv := Summarize([]float64{5, 5, 5, 5}).CV(); cv != 0 {
		t.Fatalf("constant CV = %f", cv)
	}
	// Mean 10, Std 5 -> CV 0.5 (scale-free: doubling the data keeps it).
	a := Summarize([]float64{5, 15}).CV()
	b := Summarize([]float64{10, 30}).CV()
	if a < 0.49 || a > 0.51 || a != b {
		t.Fatalf("CV = %f / %f, want ~0.5 and scale-free", a, b)
	}
}
