// Package stats provides the small statistics and table-rendering
// helpers the benchmark harness uses to print paper-style figures as
// text and CSV.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations. Quantiles are
// interpolated (see Percentile), so tail fields like P999 stay
// meaningful on the modest sample sizes the harness works with instead
// of snapping to the sample maximum.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P90  float64
	P95  float64
	P99  float64
	P999 float64
	Std  float64
}

// Summarize computes a Summary of xs. An empty input yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sumSq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	s.P999 = percentile(sorted, 0.999)
	return s
}

// Percentile returns the interpolated p-quantile (p in [0,1]) of xs,
// sorting a copy. NaN-free input assumed; empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentile(sorted, p)
}

// CV returns the coefficient of variation (Std/Mean) — the scale-free
// spread used to report shard imbalance. Zero when the mean is zero.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// percentile reads the p-quantile from sorted data by linear
// interpolation at rank p*(n-1) (the "exclusive" method NumPy and Go's
// own benchstat use): the quantile moves continuously with p instead
// of jumping between order statistics, which keeps small-sample tail
// quantiles (P99 of 40 reads) from silently equaling the maximum.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 || n == 1 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Point is one (x, y) observation of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points — one line of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the given x, or ok=false.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Last returns the final point of the series.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Table renders labelled rows of figures, in the style of the paper's
// chart data.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Series  []*Series
	Notes   []string
	Decimal int // y-value decimal places (default 2)
}

// NewTable creates a table with the given labels.
func NewTable(title, xLabel, yLabel string) *Table {
	return &Table{Title: title, XLabel: xLabel, YLabel: yLabel, Decimal: 2}
}

// AddSeries appends a named series and returns it for population.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// Note attaches a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// xValues returns the union of x values across series, ascending.
func (t *Table) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	dec := t.Decimal
	if dec == 0 {
		dec = 2
	}
	xs := t.xValues()
	// Header.
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", t.YLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", trimFloat(x))
		for _, s := range t.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, " %14.*f", dec, y)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV returns the table in comma-separated form with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range t.xValues() {
		b.WriteString(trimFloat(x))
		for _, s := range t.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				b.WriteString(trimFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
