// Package units provides byte-size constants, formatting, and parsing
// helpers shared by every layer of the repository.
//
// All sizes in the system are expressed in bytes as int64 and converted to
// clusters or pages only at the storage-engine boundary.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Binary byte-size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// FormatBytes renders n as a human-readable size using binary units,
// e.g. 262144 -> "256K", 10485760 -> "10M". Values that are not whole
// multiples are rendered with up to two decimal places.
func FormatBytes(n int64) string {
	switch {
	case n >= TB:
		return trim(float64(n)/float64(TB)) + "T"
	case n >= GB:
		return trim(float64(n)/float64(GB)) + "G"
	case n >= MB:
		return trim(float64(n)/float64(MB)) + "M"
	case n >= KB:
		return trim(float64(n)/float64(KB)) + "K"
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}

func trim(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ParseBytes parses strings such as "256K", "10M", "1.5G", "400GB" or a
// plain integer number of bytes.
func ParseBytes(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	s = strings.TrimSuffix(s, "B")
	if s == "" {
		return 0, fmt.Errorf("units: empty size %q", orig)
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K':
		mult, s = KB, s[:len(s)-1]
	case 'M':
		mult, s = MB, s[:len(s)-1]
	case 'G':
		mult, s = GB, s[:len(s)-1]
	case 'T':
		mult, s = TB, s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %v", orig, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("units: negative size %q", orig)
	}
	return int64(f * float64(mult)), nil
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// RoundUp rounds n up to the next multiple of align (align > 0).
func RoundUp(n, align int64) int64 {
	return CeilDiv(n, align) * align
}

// Duration renders a virtual-nanosecond interval as a human-readable
// latency: "17ns", "1.5µs", "65.01ms", "4.2s". Values that are not
// whole multiples get up to two decimal places (the trim idiom
// FormatBytes uses). Degenerate inputs are clamped like MBps: negative
// intervals (a histogram min seeded before any observation, a
// stopwatch read across a reset) render as "0ns" rather than
// propagating a sign that means nothing in virtual time.
func Duration(ns int64) string {
	const (
		usec = int64(1e3)
		msec = int64(1e6)
		sec  = int64(1e9)
	)
	switch {
	case ns <= 0:
		return "0ns"
	case ns >= sec:
		return trim(float64(ns)/float64(sec)) + "s"
	case ns >= msec:
		return trim(float64(ns)/float64(msec)) + "ms"
	case ns >= usec:
		return trim(float64(ns)/float64(usec)) + "µs"
	default:
		return strconv.FormatInt(ns, 10) + "ns"
	}
}

// MBps returns a bytes-over-seconds rate in MB/s. Degenerate intervals
// are clamped to 0 instead of dividing through to Inf or NaN: an
// all-hit read phase served from a memory cache can leave virtual
// elapsed seconds at (or indistinguishably near) zero, and a NaN input
// would otherwise slip through a plain <= comparison.
func MBps(bytes int64, seconds float64) float64 {
	if !(seconds > 0) { // also catches NaN, which fails every comparison
		return 0
	}
	return float64(bytes) / float64(MB) / seconds
}
