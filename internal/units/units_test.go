package units

import (
	"math"
	"testing"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1K"},
		{256 * KB, "256K"},
		{MB, "1M"},
		{10 * MB, "10M"},
		{(3 * MB) / 2, "1.5M"},
		{40 * GB, "40G"},
		{400 * GB, "400G"},
		{2 * TB, "2T"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"256K", 256 * KB},
		{"256KB", 256 * KB},
		{"10M", 10 * MB},
		{"1.5M", (3 * MB) / 2},
		{"40G", 40 * GB},
		{"400gb", 400 * GB},
		{"123", 123},
		{" 2 T ", 2 * TB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d,%v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "x", "-1M", "K"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", bad)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int64{KB, 64 * KB, MB, 10 * MB, GB, 400 * GB} {
		got, err := ParseBytes(FormatBytes(n))
		if err != nil || got != n {
			t.Errorf("round trip %d -> %q -> %d (%v)", n, FormatBytes(n), got, err)
		}
	}
}

func TestCeilDivRoundUp(t *testing.T) {
	if CeilDiv(10, 3) != 4 || CeilDiv(9, 3) != 3 || CeilDiv(1, 3) != 1 {
		t.Fatal("CeilDiv wrong")
	}
	if RoundUp(10, 4) != 12 || RoundUp(8, 4) != 8 {
		t.Fatal("RoundUp wrong")
	}
}

func TestDuration(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0ns"},
		{-1, "0ns"},              // degenerate: clamp like MBps
		{-int64(1) << 62, "0ns"}, // hugely negative stays clamped
		{1, "1ns"},
		{999, "999ns"},
		{1000, "1µs"},
		{1500, "1.5µs"},
		{999999, "1000µs"}, // 999.999 rounds up in the 2-dp trim
		{1e6, "1ms"},
		{65_012_000, "65.01ms"},
		{1e9, "1s"},
		{42e8, "4.2s"},
		{36e11, "3600s"}, // huge: stays in seconds, no overflow
		{int64(1) << 62, "4611686018.43s"},
	}
	for _, c := range cases {
		if got := Duration(c.in); got != c.want {
			t.Errorf("Duration(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(10*MB, 2); got != 5 {
		t.Fatalf("MBps = %g, want 5", got)
	}
	if MBps(MB, 0) != 0 {
		t.Fatal("MBps with zero time should be 0")
	}
	// Degenerate intervals must clamp, never produce Inf/NaN — an
	// all-hit cached read phase makes zero (and negative, via skipped
	// -time subtraction) elapsed seconds reachable.
	for _, sec := range []float64{0, -1, math.NaN()} {
		if got := MBps(MB, sec); got != 0 {
			t.Fatalf("MBps(1MB, %v) = %v, want 0", sec, got)
		}
	}
	if got := MBps(0, math.Inf(1)); got != 0 {
		t.Fatalf("MBps over infinite time = %v, want 0", got)
	}
}
