package cache_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/vclock"
)

// wrap adapts an inner-store factory into a cache-wrapped conformance
// factory. The cache budget is deliberately smaller than the suite's
// working sets, so the contract holds through fills AND evictions.
func wrap(t *testing.T, mkInner func(opts ...blob.Option) blob.Store) conformance.Factory {
	return func(opts ...blob.Option) blob.Store {
		c, err := cache.New(mkInner(opts...), cache.WithCapacity(8*units.MB))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = blob.CloseStore(c) })
		return c
	}
}

func fileInner(opts ...blob.Option) blob.Store {
	s, err := core.NewFileStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

func dbInner(opts ...blob.Option) blob.Store {
	s, err := core.NewDBStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// mixedShardInner builds a 4-shard mixed fleet (2 filesystem + 2
// database children on one clock).
func mixedShardInner(opts ...blob.Option) blob.Store {
	clock := vclock.New()
	children := make([]blob.Store, 4)
	for i := range children {
		var err error
		if i%2 == 0 {
			children[i], err = core.NewFileStore(clock, opts...)
		} else {
			children[i], err = core.NewDBStore(clock, opts...)
		}
		if err != nil {
			panic(err)
		}
	}
	s, err := shard.New(children...)
	if err != nil {
		panic(err)
	}
	return s
}

// TestCacheConformance pins the cached store to the exact cross-backend
// contract of the stores it wraps: both single-volume backends and a
// 4-shard mixed fleet, group commit off and on. The cache layer must
// add no dialect — version pinning, typed errors, safe-write semantics,
// and concurrency behaviour all hold with hits served from memory.
func TestCacheConformance(t *testing.T) {
	inners := []struct {
		name string
		mk   func(opts ...blob.Option) blob.Store
	}{
		{"Filesystem", fileInner},
		{"Database", dbInner},
		{"Sharded4Mixed", mixedShardInner},
	}
	for _, in := range inners {
		t.Run(in.name, func(t *testing.T) {
			conformance.Run(t, wrap(t, in.mk))
		})
		t.Run(in.name+"/GroupCommit", func(t *testing.T) {
			mk := in.mk
			conformance.Run(t, wrap(t, func(opts ...blob.Option) blob.Store {
				return mk(append(opts, blob.WithGroupCommit(8, 200*time.Microsecond))...)
			}))
		})
	}
}

// TestCacheCapacitySweepConformance re-runs the suite over the
// filesystem backend at cache budgets from pathological (one small
// object) to effectively infinite, so eviction pressure cannot change
// visible semantics either.
func TestCacheCapacitySweepConformance(t *testing.T) {
	for _, capBytes := range []int64{64 * units.KB, 2 * units.MB, units.GB} {
		t.Run(fmt.Sprintf("cap=%s", units.FormatBytes(capBytes)), func(t *testing.T) {
			conformance.Run(t, func(opts ...blob.Option) blob.Store {
				c, err := cache.New(fileInner(opts...), cache.WithCapacity(capBytes))
				if err != nil {
					t.Fatal(err)
				}
				return c
			})
		})
	}
}
