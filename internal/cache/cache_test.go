package cache_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func newCachedFS(t *testing.T, cacheBytes int64, opts ...blob.Option) *cache.Store {
	t.Helper()
	base := append([]blob.Option{
		blob.WithCapacity(256 * units.MB), blob.WithDiskMode(disk.DataMode)}, opts...)
	inner, err := core.NewFileStore(vclock.New(), base...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(inner, cache.WithCapacity(cacheBytes))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesOptions(t *testing.T) {
	inner, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.New(nil, cache.WithCapacity(units.MB)); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("nil inner = %v, want ErrBadOption", err)
	}
	if _, err := cache.New(inner); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("missing capacity = %v, want ErrBadOption", err)
	}
	if _, err := cache.New(inner, cache.WithCapacity(-1)); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("negative capacity = %v, want ErrBadOption", err)
	}
	if _, err := cache.New(inner, cache.WithCapacity(units.MB), cache.WithMemoryMBps(-5)); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("negative bandwidth = %v, want ErrBadOption", err)
	}
}

// TestHitServedAtMemorySpeed pins the hit-rate-aware virtual-time
// accounting: the first read pays the store's full per-fragment cost,
// the second is served from memory orders of magnitude faster, and the
// stats ledger records exactly one miss and one hit.
func TestHitServedAtMemorySpeed(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	data := make([]byte, units.MB)
	for i := range data {
		data[i] = byte(i)
	}
	if err := blob.Put(ctx, c, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}

	cold := vclock.StartWatch(c.Clock())
	if _, got, err := blob.Get(ctx, c, "a"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold read: %v", err)
	}
	coldSec := cold.Seconds()

	warm := vclock.StartWatch(c.Clock())
	if _, got, err := blob.Get(ctx, c, "a"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("warm read: %v", err)
	}
	warmSec := warm.Seconds()

	if warmSec <= 0 {
		t.Fatal("memory hit charged zero virtual time")
	}
	if warmSec*50 > coldSec {
		t.Fatalf("hit not at memory speed: cold %.6fs vs warm %.6fs", coldSec, warmSec)
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.ResidentBytes != int64(len(data)) {
		t.Fatalf("resident = %d, want %d", st.ResidentBytes, len(data))
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %.2f, want 0.5", st.HitRate())
	}
}

// TestRangedReadCaching pins the ranged-read path: a cached range
// serves repeat reads of the covered span from memory while uncovered
// spans still read through.
func TestRangedReadCaching(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	data := make([]byte, units.MB)
	for i := range data {
		data[i] = byte(i % 151)
	}
	if err := blob.Put(ctx, c, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.ReadAt(128*units.KB, 64*units.KB); err != nil {
		t.Fatal(err)
	}
	// A sub-span of the cached range is a memory hit.
	w := vclock.StartWatch(c.Clock())
	got, err := r.ReadAt(144*units.KB, 16*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	hitSec := w.Seconds()
	if !bytes.Equal(got, data[144*units.KB:160*units.KB]) {
		t.Fatal("cached range served wrong bytes")
	}
	// An uncovered span reads through at disk cost.
	w = vclock.StartWatch(c.Clock())
	if _, err := r.ReadAt(512*units.KB, 16*units.KB); err != nil {
		t.Fatal(err)
	}
	if missSec := w.Seconds(); missSec <= hitSec*10 {
		t.Fatalf("uncovered range not at disk cost: hit %.9fs vs miss %.9fs", hitSec, missSec)
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// TestEvictionUnderCapacity pins LRU eviction: a budget of two objects
// cycling through three keeps resident bytes within budget and counts
// evictions, and the least recently used object is the one that pays
// disk cost again.
func TestEvictionUnderCapacity(t *testing.T) {
	ctx := context.Background()
	const objBytes = units.MB
	c := newCachedFS(t, 2*objBytes)
	for _, k := range []string{"a", "b", "c"} {
		if err := blob.Put(ctx, c, k, objBytes, make([]byte, objBytes)); err != nil {
			t.Fatal(err)
		}
	}
	read := func(k string) {
		t.Helper()
		if _, _, err := blob.Get(ctx, c, k); err != nil {
			t.Fatal(err)
		}
	}
	read("a")
	read("b")
	read("a") // touch a: b becomes LRU
	read("c") // evicts b
	st := c.CacheStats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes > c.Capacity() {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, c.Capacity())
	}
	// a survived (touched), b did not.
	before := c.CacheStats()
	read("a")
	if got := c.CacheStats(); got.Hits != before.Hits+1 {
		t.Fatal("touched object was evicted")
	}
	before = c.CacheStats()
	read("b")
	if got := c.CacheStats(); got.Misses != before.Misses+1 {
		t.Fatal("LRU object was not evicted")
	}
}

// TestOversizedObjectNotCached pins that an object larger than the
// whole budget streams through without thrashing the resident set.
func TestOversizedObjectNotCached(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 256*units.KB)
	if err := blob.Put(ctx, c, "small", 64*units.KB, make([]byte, 64*units.KB)); err != nil {
		t.Fatal(err)
	}
	if err := blob.Put(ctx, c, "big", units.MB, make([]byte, units.MB)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Get(ctx, c, "small"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Get(ctx, c, "big"); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.ResidentBytes != 64*units.KB || st.Evictions != 0 {
		t.Fatalf("oversized object disturbed the cache: %+v", st)
	}
	// The small object is still a hit.
	if _, _, err := blob.Get(ctx, c, "small"); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

// TestResetStatsKeepsResidency pins the phase-separation contract:
// ResetStats zeroes the counters but the resident set keeps serving
// hits, so a measurement phase's hit rate excludes warm-up misses.
func TestResetStatsKeepsResidency(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	if err := blob.Put(ctx, c, "a", units.MB, make([]byte, units.MB)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Get(ctx, c, "a"); err != nil { // warm-up miss
		t.Fatal(err)
	}
	c.ResetStats()
	if _, _, err := blob.Get(ctx, c, "a"); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("post-reset stats = %+v, want pure hits", st)
	}
	if st.HitRate() != 1 {
		t.Fatalf("post-reset hit rate = %.2f, want 1", st.HitRate())
	}
	if st.ResidentBytes != units.MB {
		t.Fatalf("reset dropped residency: %+v", st)
	}
}

// mkStores builds the invalidation test matrix: each backend plus a
// 4-shard mixed fleet, every one wrapped in a cache.
func mkStores(t *testing.T) map[string]*cache.Store {
	t.Helper()
	opts := []blob.Option{blob.WithCapacity(256 * units.MB), blob.WithDiskMode(disk.DataMode)}
	out := make(map[string]*cache.Store)
	for name, inner := range map[string]blob.Store{
		"filesystem":   fileInner(opts...),
		"database":     dbInner(opts...),
		"shard4-mixed": mixedShardInner(opts...),
	} {
		c, err := cache.New(inner, cache.WithCapacity(32*units.MB))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = c
	}
	return out
}

// TestInvalidationPreservesReaderPinning is the read-path acceptance
// test: open a Reader (served from memory), replace or delete the
// object through the cache, and the pinned Reader must fail
// blob.ErrNotFound on every path — the cache must never serve the dead
// version — while a fresh Open sees only the new version. Runs over
// both backends and a 4-shard mixed fleet.
func TestInvalidationPreservesReaderPinning(t *testing.T) {
	ctx := context.Background()
	for name, c := range mkStores(t) {
		t.Run(name, func(t *testing.T) {
			old := make([]byte, 256*units.KB)
			for i := range old {
				old[i] = 0xAA
			}
			if err := blob.Put(ctx, c, "a", int64(len(old)), old); err != nil {
				t.Fatal(err)
			}
			// Warm the cache, then open a reader that will serve from it.
			if _, _, err := blob.Get(ctx, c, "a"); err != nil {
				t.Fatal(err)
			}
			pinned, err := c.Open(ctx, "a")
			if err != nil {
				t.Fatal(err)
			}
			defer pinned.Close()
			if _, err := pinned.ReadAll(); err != nil {
				t.Fatal(err)
			}

			// Replace through the cache: the pinned reader's version dies.
			fresh := make([]byte, 128*units.KB)
			for i := range fresh {
				fresh[i] = 0x55
			}
			if err := blob.Replace(ctx, c, "a", int64(len(fresh)), fresh); err != nil {
				t.Fatal(err)
			}
			if _, err := pinned.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("ReadAll across replace = %v, want ErrNotFound", err)
			}
			if _, err := pinned.ReadAt(0, 4*units.KB); !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("ReadAt across replace = %v, want ErrNotFound", err)
			}

			// A fresh open never sees the dead version's bytes or size.
			r2, err := c.Open(ctx, "a")
			if err != nil {
				t.Fatal(err)
			}
			if r2.Size() != int64(len(fresh)) {
				t.Fatalf("post-replace Size = %d, want %d", r2.Size(), len(fresh))
			}
			got, err := r2.ReadAll()
			if err != nil || !bytes.Equal(got, fresh) {
				t.Fatalf("post-replace read served stale bytes: %v", err)
			}

			// Delete through the cache: the second pinned reader dies too,
			// and the key is gone for fresh opens.
			if err := c.Delete(ctx, "a"); err != nil {
				t.Fatal(err)
			}
			if _, err := r2.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("ReadAll across delete = %v, want ErrNotFound", err)
			}
			if err := r2.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Open(ctx, "a"); !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("Open after delete = %v, want ErrNotFound", err)
			}
		})
	}
}

// TestInvalidationAfterEviction pins the subtle ABA case: a reader
// opened from a cached entry that is later EVICTED (not invalidated)
// keeps serving its still-live version; once the object is replaced,
// the same reader must fail ErrNotFound even though its entry left the
// cache long before the replace.
func TestInvalidationAfterEviction(t *testing.T) {
	ctx := context.Background()
	const objBytes = units.MB
	c := newCachedFS(t, 2*objBytes)
	if err := blob.Put(ctx, c, "a", objBytes, make([]byte, objBytes)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Get(ctx, c, "a"); err != nil {
		t.Fatal(err)
	}
	pinned, err := c.Open(ctx, "a") // hit reader over the cached entry
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()

	// Force "a" out of the cache with two fresh objects.
	for _, k := range []string{"b", "c"} {
		if err := blob.Put(ctx, c, k, objBytes, make([]byte, objBytes)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := blob.Get(ctx, c, k); err != nil {
			t.Fatal(err)
		}
	}
	// Evicted but not replaced: the pinned version is still live.
	if _, err := pinned.ReadAll(); err != nil {
		t.Fatalf("read after eviction = %v, want success", err)
	}
	// Replaced: now it must die, cached entry or not.
	if err := blob.Replace(ctx, c, "a", objBytes, make([]byte, objBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := pinned.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("read after replace = %v, want ErrNotFound", err)
	}
}

// TestStatsOf pins the snapshot helper used by harness reports.
func TestStatsOf(t *testing.T) {
	c := newCachedFS(t, units.MB)
	if _, ok := cache.StatsOf(c); !ok {
		t.Fatal("StatsOf failed on a cache.Store")
	}
	inner, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.StatsOf(inner); ok {
		t.Fatal("StatsOf succeeded on a bare store")
	}
}

// TestConcurrentHitsAndInvalidations hammers one cached store with
// readers racing replacers across a small keyspace; only typed,
// expected errors may surface and the run must be race-clean.
func TestConcurrentHitsAndInvalidations(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 4*units.MB, blob.WithDiskMode(disk.MetadataMode))
	const objects = 4
	for i := 0; i < objects; i++ {
		if err := blob.Put(ctx, c, fmt.Sprintf("o%d", i), 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("o%d", (g+i)%objects)
				if g%2 == 0 {
					if _, _, err := blob.Get(ctx, c, key); err != nil && !errors.Is(err, blob.ErrNotFound) {
						done <- err
						return
					}
				} else {
					if err := blob.Replace(ctx, c, key, 256*units.KB, nil); err != nil && !errors.Is(err, blob.ErrBusy) {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("unexpected error under churn: %v", err)
		}
	}
}

// TestCallerMutationCannotCorruptCache pins the slice-isolation
// contract both backends provide (a fresh slice per read): mutating a
// read result — miss or hit — must never change what later readers see.
func TestCallerMutationCannotCorruptCache(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	data := make([]byte, 256*units.KB)
	for i := range data {
		data[i] = byte(i % 201)
	}
	if err := blob.Put(ctx, c, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	_, miss, err := blob.Get(ctx, c, "a") // fills the cache
	if err != nil {
		t.Fatal(err)
	}
	miss[0] = 0xFF // caller scribbles on the miss result
	_, hit1, err := blob.Get(ctx, c, "a")
	if err != nil {
		t.Fatal(err)
	}
	if hit1[0] != data[0] {
		t.Fatalf("caller mutation of a miss result reached the cache: %#x", hit1[0])
	}
	hit1[0] = 0xEE // ... and on a hit result
	_, hit2, err := blob.Get(ctx, c, "a")
	if err != nil {
		t.Fatal(err)
	}
	if hit2[0] != data[0] {
		t.Fatalf("caller mutation of a hit result reached the cache: %#x", hit2[0])
	}
}

// TestRangeMergeNoDoubleCharge pins coalescing: sliding-window ranged
// reads over one object merge into one contiguous cached range, so
// resident bytes equal the distinct bytes held, never the sum of
// overlapping requests.
func TestRangeMergeNoDoubleCharge(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	data := make([]byte, units.MB)
	for i := range data {
		data[i] = byte(i % 199)
	}
	if err := blob.Put(ctx, c, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, off := range []int64{0, 50, 100} { // overlapping 100K windows
		got, err := r.ReadAt(off*units.KB, 100*units.KB)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off*units.KB:off*units.KB+100*units.KB]) {
			t.Fatalf("window at %dK served wrong bytes", off)
		}
	}
	if st := c.CacheStats(); st.ResidentBytes != 200*units.KB {
		t.Fatalf("resident = %d after merged windows, want %d", st.ResidentBytes, 200*units.KB)
	}
	// The merged range now serves any sub-span, with the right bytes.
	w := vclock.StartWatch(c.Clock())
	got, err := r.ReadAt(25*units.KB, 150*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[25*units.KB:175*units.KB]) {
		t.Fatal("merged range served wrong bytes")
	}
	if w.Seconds() > 1e-4 {
		t.Fatalf("read inside the merged range not at memory speed: %.6fs", w.Seconds())
	}
}

// TestPinnedReaderNeverSeesNewBytes races pinned readers against
// replacers in data mode: a reader opened before a replace may serve
// the old bytes or fail ErrNotFound, but must NEVER return the
// replacement's bytes — the fill-suppression window around a commit
// exists exactly for this (a racing fill could otherwise install new
// bytes under the old version tag).
func TestPinnedReaderNeverSeesNewBytes(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	const size = 64 * 1024
	oldPat, newPat := bytes.Repeat([]byte{0xAA}, size), bytes.Repeat([]byte{0x55}, size)
	for round := 0; round < 40; round++ {
		key := fmt.Sprintf("k%03d", round)
		if err := blob.Put(ctx, c, key, size, oldPat); err != nil {
			t.Fatal(err)
		}
		pinned, err := c.Open(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = blob.Replace(ctx, c, key, size, newPat)
		}()
		// Racing reads through the pinned reader and fresh opens that
		// may fill the cache mid-commit.
		for i := 0; i < 4; i++ {
			if got, err := pinned.ReadAll(); err == nil {
				if !bytes.Equal(got, oldPat) {
					t.Fatalf("round %d: pinned reader served replacement bytes", round)
				}
			} else if !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("round %d: pinned read = %v", round, err)
			}
			_, _, _ = blob.Get(ctx, c, key)
		}
		<-done
		_ = pinned.Close()
		// After the replace has fully committed, the cache must serve
		// only the new bytes.
		if _, got, err := blob.Get(ctx, c, key); err != nil || !bytes.Equal(got, newPat) {
			t.Fatalf("round %d: post-replace read wrong: %v", round, err)
		}
	}
}
