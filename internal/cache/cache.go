// Package cache provides the read-path caching layer above the blob
// stores: a cache.Store wraps any blob.Store — either core backend, a
// sharded fleet, group commit on or off — behind the same interface,
// keeping recently read objects resident in simulated memory under a
// configurable byte capacity (LRU).
//
// The paper charges every read one disk request per physically
// contiguous fragment, but real deployments put a memory cache above
// the store, so hot objects never touch the fragmented layout at all:
// fragmentation only bites the cold tail. The cache makes that regime
// measurable with hit-rate-aware virtual-time accounting — a hit
// advances the store's virtual clock at memory speed (bytes over
// Options.MemoryMBps) instead of paying per-fragment disk seeks, while
// a miss reads through the wrapped store at full disk cost and fills
// the cache.
//
// Writes are write-through with invalidation: Create/Replace/Delete go
// straight to the wrapped store, and a successful Commit or Delete
// drops the cached entry (no write-allocate), so the cache can never
// serve a dead version. The Reader version-pinning contract of
// internal/blob is preserved exactly: a Reader opened through the cache
// fails with blob.ErrNotFound once its version is replaced or deleted,
// whether it was serving from memory or from the store beneath.
package cache

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Options configures a cache.Store. Build with the With* options.
type Options struct {
	// CapacityBytes is the cache's resident-byte budget. Required, > 0.
	CapacityBytes int64

	// MemoryMBps is the simulated memory bandwidth a hit is charged at,
	// in MB per virtual second. 0 takes DefaultMemoryMBps.
	MemoryMBps float64

	// MaxRanges caps how many discontiguous ranged reads one partial
	// entry retains before further range fills are dropped. 0 takes 32.
	MaxRanges int
}

// DefaultMemoryMBps is the default simulated memory bandwidth:
// 12.5 GB/s, two orders of magnitude above the simulated drives'
// streaming rate, so an all-hit phase runs at memory speed without
// driving virtual elapsed time to exactly zero.
const DefaultMemoryMBps = 12800.0

// Option configures a Store at construction.
type Option func(*Options)

// WithCapacity sets the cache's resident-byte budget.
func WithCapacity(bytes int64) Option {
	return func(o *Options) { o.CapacityBytes = bytes }
}

// WithMemoryMBps sets the simulated memory bandwidth hits are charged
// at.
func WithMemoryMBps(mbps float64) Option {
	return func(o *Options) { o.MemoryMBps = mbps }
}

// WithMaxRanges caps the discontiguous cached ranges per partial entry.
func WithMaxRanges(n int) Option {
	return func(o *Options) { o.MaxRanges = n }
}

// Stats counts cache activity. Snapshot via Store.CacheStats; zero the
// counters between experiment phases with Store.ResetStats so a churn
// or measurement phase's hit rate excludes warm-up misses.
type Stats struct {
	// Hits is the number of read operations served from memory.
	Hits int64
	// Misses is the number of read operations that went to the wrapped
	// store.
	Misses int64
	// Evictions is the number of entries evicted for capacity.
	Evictions int64
	// Invalidations is the number of entries dropped by a commit or
	// delete through the cache.
	Invalidations int64
	// ResidentBytes is the logical bytes currently cached.
	ResidentBytes int64
}

// HitRate returns the fraction of read operations served from memory,
// or 0 before any read.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// clone copies payload bytes on the cache boundary. Both backends
// return a fresh slice from every read, so callers may mutate results
// freely; the cache preserves that isolation by cloning on fill (the
// miss's caller holds the original) and on every serve (two hit
// readers must not share one mutable buffer). nil stays nil
// (metadata-only simulation).
func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// crange is one cached ranged read of a partial entry.
type crange struct {
	off, length int64
	data        []byte // nil under metadata-only simulation
}

// entry is one cached object version. A full entry serves any read;
// a partial entry serves ranged reads covered by one cached range.
// bytes is the logical resident footprint charged against capacity —
// logical, not len(data), so metadata-only simulation exercises the
// same residency and eviction behaviour as data mode.
type entry struct {
	key        string
	size       int64
	full       bool
	data       []byte // full-object payload; nil in metadata mode
	ranges     []crange
	bytes      int64
	prev, next *entry
}

// Store implements blob.Store over a wrapped inner store plus an LRU
// object cache. Safe for concurrent use when the inner store is; one
// mutex guards the cache index, LRU list, versions, and stats, and is
// never held across inner-store calls.
type Store struct {
	inner blob.Store
	clock *vclock.Clock
	opts  Options

	mu       sync.Mutex
	entries  map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	resident int64
	stats    Stats
	// versions counts committed mutations per key routed through the
	// cache. Readers and fills are tagged with the version observed at
	// Open: a bumped version means the object was replaced or deleted,
	// so pinned readers fail ErrNotFound and stale fills are dropped.
	// (Eviction does NOT bump a version — an evicted entry's version is
	// still live underneath, only no longer resident.) Entries are
	// never pruned, even on Delete: removal would reset a key's counter
	// and reintroduce the ABA the counter exists to prevent, so the map
	// grows with lifetime key cardinality — one uint64 per distinct key
	// ever mutated, a deliberate trade of memory for an unconditionally
	// safe pinning check.
	versions map[string]uint64
	// writing counts keys with a cacheWriter commit in flight. Between
	// the inner store publishing a new version and this layer bumping
	// the version counter, a racing reader could open the NEW version
	// while still observing the OLD version number — and a fill would
	// then install new bytes under the old tag, which a reader pinned
	// to the old version would happily serve. Fills are therefore
	// suppressed for keys mid-commit; reads fall back to the (always
	// correctly pinned) inner store instead.
	writing map[string]int
}

// New wraps inner in a read cache. WithCapacity is required;
// misconfiguration fails with an error wrapping blob.ErrBadOption.
// Mutations must be routed through the returned Store — a write issued
// directly to inner bypasses invalidation and may leave the cache
// serving the dead version.
func New(inner blob.Store, options ...Option) (*Store, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: cache requires a wrapped store", blob.ErrBadOption)
	}
	var opts Options
	for _, o := range options {
		o(&opts)
	}
	if opts.CapacityBytes <= 0 {
		return nil, fmt.Errorf("%w: cache capacity %d must be positive", blob.ErrBadOption, opts.CapacityBytes)
	}
	if opts.MemoryMBps == 0 {
		opts.MemoryMBps = DefaultMemoryMBps
	}
	if opts.MemoryMBps <= 0 {
		return nil, fmt.Errorf("%w: memory bandwidth %.1f MB/s must be positive", blob.ErrBadOption, opts.MemoryMBps)
	}
	if opts.MaxRanges == 0 {
		opts.MaxRanges = 32
	}
	if opts.MaxRanges < 0 {
		return nil, fmt.Errorf("%w: max ranges %d must be positive", blob.ErrBadOption, opts.MaxRanges)
	}
	return &Store{
		inner:    inner,
		clock:    inner.Clock(),
		opts:     opts,
		entries:  make(map[string]*entry),
		versions: make(map[string]uint64),
		writing:  make(map[string]int),
	}, nil
}

// Inner returns the wrapped store, for analysis tools.
func (s *Store) Inner() blob.Store { return s.inner }

// Capacity returns the cache's resident-byte budget.
func (s *Store) Capacity() int64 { return s.opts.CapacityBytes }

// CacheStats returns a snapshot of the cache counters. StatsOf
// retrieves it through the blob.Store interface.
func (s *Store) CacheStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.resident
	return st
}

// ResetStats zeroes the hit/miss/eviction/invalidation counters while
// keeping the resident set, so a measurement phase's hit rate excludes
// warm-up misses (the phase-separation the db buffer pool's Reset
// provides one layer down).
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}

// StatsOf returns s's cache counters when the store is (or wraps) a
// cache, mirroring blob.CommitStatsOf.
func StatsOf(s blob.Store) (Stats, bool) {
	if cs, ok := s.(interface{ CacheStats() Stats }); ok {
		return cs.CacheStats(), true
	}
	return Stats{}, false
}

// chargeMemory advances the virtual clock for n bytes served from
// memory — the hit-rate-aware accounting: memory bandwidth instead of
// per-fragment disk requests.
func (s *Store) chargeMemory(n int64) {
	if n <= 0 {
		return
	}
	s.clock.AdvanceSeconds(float64(n) / (s.opts.MemoryMBps * float64(units.MB)))
}

// --- LRU maintenance (callers hold s.mu) ---

func (s *Store) pushFront(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// drop removes e from the index and LRU list and returns its bytes to
// the budget.
func (s *Store) drop(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.resident -= e.bytes
}

// evictFor evicts LRU entries until the budget holds the cache's
// resident bytes. Callers hold s.mu.
func (s *Store) evictFor() {
	for s.resident > s.opts.CapacityBytes && s.tail != nil {
		victim := s.tail
		s.drop(victim)
		s.stats.Evictions++
	}
}

// invalidate drops key's entry and bumps its version — a commit or
// delete made the cached bytes a dead version.
func (s *Store) invalidate(key string) {
	s.mu.Lock()
	s.versions[key]++
	if e, ok := s.entries[key]; ok {
		s.drop(e)
		s.stats.Invalidations++
	}
	s.mu.Unlock()
}

// beginWrite marks a commit in flight for key; fills are suppressed
// until the matching endWrite.
func (s *Store) beginWrite(key string) {
	s.mu.Lock()
	s.writing[key]++
	s.mu.Unlock()
}

// endWrite clears key's in-flight mark and, when the commit published,
// invalidates atomically in the same critical section — no window where
// fills are re-enabled but the version is still old.
func (s *Store) endWrite(key string, published bool) {
	s.mu.Lock()
	if s.writing[key]--; s.writing[key] <= 0 {
		delete(s.writing, key)
	}
	if published {
		s.versions[key]++
		if e, ok := s.entries[key]; ok {
			s.drop(e)
			s.stats.Invalidations++
		}
	}
	s.mu.Unlock()
}

// fillFull installs a whole-object entry read at version v, unless the
// version moved on (replace/delete raced the fill — the stale data is
// discarded), the object exceeds the whole budget, or an entry for a
// newer read already exists.
func (s *Store) fillFull(key string, v uint64, size int64, data []byte) {
	if size > s.opts.CapacityBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.versions[key] != v || s.writing[key] > 0 {
		return
	}
	if e, ok := s.entries[key]; ok {
		if e.full {
			return
		}
		s.drop(e) // promote: the full object supersedes cached ranges
	}
	e := &entry{key: key, size: size, full: true, data: clone(data), bytes: size}
	s.entries[key] = e
	s.pushFront(e)
	s.resident += size
	s.evictFor()
}

// fillRange records one ranged read at version v on key's (possibly
// new) partial entry. Overlapping or adjacent cached ranges are merged
// into one contiguous range, so sliding-window reads cannot charge the
// same bytes against the budget more than once.
func (s *Store) fillRange(key string, v uint64, size, off, length int64, data []byte) {
	if length > s.opts.CapacityBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.versions[key] != v || s.writing[key] > 0 {
		return
	}
	e, ok := s.entries[key]
	if ok && e.full {
		return // whole object already resident
	}
	if !ok {
		e = &entry{key: key, size: size}
		s.entries[key] = e
		s.pushFront(e)
	} else {
		// The object is being actively read even though this range
		// missed; keep its recency fresh so striding ranged reads do
		// not drift a hot entry to the eviction tail.
		s.touch(e)
	}
	if covers(e, off, length) != nil {
		return
	}
	// Coalesce: collect every cached range overlapping or abutting the
	// new one, widen to their union, and splice the payloads together.
	lo, hi := off, off+length
	keep := e.ranges[:0]
	var absorbed []crange
	for _, r := range e.ranges {
		if r.off <= hi && lo <= r.off+r.length {
			absorbed = append(absorbed, r)
			lo = min(lo, r.off)
			hi = max(hi, r.off+r.length)
		} else {
			keep = append(keep, r)
		}
	}
	if len(keep) >= s.opts.MaxRanges {
		e.ranges = append(keep, absorbed...) // full: restore, skip the fill
		return
	}
	var buf []byte
	if data != nil {
		buf = make([]byte, hi-lo)
		for _, r := range absorbed {
			copy(buf[r.off-lo:], r.data)
		}
		copy(buf[off-lo:], data)
	}
	var freed int64
	for _, r := range absorbed {
		freed += r.length
	}
	e.ranges = append(keep, crange{off: lo, length: hi - lo, data: buf})
	delta := (hi - lo) - freed
	e.bytes += delta
	s.resident += delta
	s.evictFor()
}

// covers returns the cached range of a partial entry that covers
// [off, off+length), or nil. Full entries are handled by the callers.
func covers(e *entry, off, length int64) *crange {
	for i := range e.ranges {
		r := &e.ranges[i]
		if r.off <= off && off-r.off <= r.length-length {
			return r
		}
	}
	return nil
}

// checkRange validates a ranged read against an object size, mirroring
// the backends' overflow-safe bounds checks.
func checkRange(key string, size, off, length int64) error {
	if off < 0 || length < 0 || off > size || length > size-off {
		return fmt.Errorf("%w: [%d,+%d) of %s (size %d)", blob.ErrOutOfRange, off, length, key, size)
	}
	return nil
}

// Name implements blob.Store, e.g. "cache(filesystem)" or
// "cache(sharded-4(database+filesystem))".
func (s *Store) Name() string { return "cache(" + s.inner.Name() + ")" }

// Clock implements blob.Store.
func (s *Store) Clock() *vclock.Clock { return s.clock }

// Open implements blob.Store. A fully resident object opens a pure
// memory handle — no store access at all; anything else opens the
// wrapped store's Reader (which pins the version natively) and serves
// covered reads from memory, filling the cache on misses.
func (s *Store) Open(ctx context.Context, key string) (blob.Reader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && e.full {
		s.touch(e)
		r := hitReaderPool.Get().(*hitReader)
		*r = hitReader{s: s, ctx: ctx, key: key, size: e.size, data: e.data,
			version: s.versions[key]}
		s.mu.Unlock()
		return r, nil
	}
	v := s.versions[key]
	s.mu.Unlock()
	inner, err := s.inner.Open(ctx, key)
	if err != nil {
		return nil, err
	}
	r := missReaderPool.Get().(*missReader)
	*r = missReader{s: s, ctx: ctx, key: key, r: inner, version: v}
	return r, nil
}

// Reader handles are recycled: Open is one per read op, so at hundreds
// of streams the two wrapper types dominate the cache layer's alloc
// profile. First Close retires a handle; use-after-Close remains the
// same misuse it always was.
var (
	hitReaderPool  = sync.Pool{New: func() any { return new(hitReader) }}
	missReaderPool = sync.Pool{New: func() any { return new(missReader) }}
)

// hitReader serves one fully resident object version from memory. It
// snapshots the payload at Open, so a concurrent eviction cannot
// affect it; version pinning is enforced against the cache's version
// counter, which every commit and delete through the cache bumps.
type hitReader struct {
	s       *Store
	ctx     context.Context
	key     string
	size    int64
	data    []byte
	version uint64
	closed  bool
}

// Size implements blob.Reader.
func (r *hitReader) Size() int64 { return r.size }

// validate checks handle liveness and version pinning before a read.
func (r *hitReader) validate() error {
	if r.closed {
		return fmt.Errorf("%w: reader for %s", blob.ErrClosed, r.key)
	}
	if err := r.ctx.Err(); err != nil {
		return err
	}
	r.s.mu.Lock()
	live := r.s.versions[r.key] == r.version
	if e, ok := r.s.entries[r.key]; ok && live {
		r.s.touch(e)
	}
	r.s.mu.Unlock()
	if !live {
		return fmt.Errorf("%w: %s (version replaced or deleted)", blob.ErrNotFound, r.key)
	}
	return nil
}

// ReadAll implements blob.Reader at memory speed.
func (r *hitReader) ReadAll() ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	r.s.mu.Lock()
	r.s.stats.Hits++
	r.s.mu.Unlock()
	r.s.chargeMemory(r.size)
	return clone(r.data), nil
}

// ReadAt implements blob.Reader at memory speed.
func (r *hitReader) ReadAt(off, length int64) ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	if err := checkRange(r.key, r.size, off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	r.s.mu.Lock()
	r.s.stats.Hits++
	r.s.mu.Unlock()
	r.s.chargeMemory(length)
	if r.data == nil {
		return nil, nil
	}
	return clone(r.data[off : off+length]), nil
}

// Close implements blob.Reader. The first Close retires the handle to
// the pool.
func (r *hitReader) Close() error {
	if !r.closed {
		r.closed = true
		r.data = nil // don't pin evicted payloads from the pool
		hitReaderPool.Put(r)
	}
	return nil
}

// missReader wraps the inner store's Reader for an object that was not
// fully resident at Open. Reads covered by cached ranges (or a full
// entry another reader filled meanwhile) are served from memory; the
// rest read through at disk cost and fill the cache. The inner Reader
// enforces version pinning for read-through; the version tag gates
// fills and memory serves.
type missReader struct {
	s       *Store
	ctx     context.Context
	key     string
	r       blob.Reader
	version uint64
	closed  bool
}

// Size implements blob.Reader.
func (r *missReader) Size() int64 { return r.r.Size() }

// fromCache returns resident bytes covering [off, off+length) at the
// pinned version, or ok=false to read through. length < 0 requests the
// whole object. The mutex only guards the index lookup; the payload
// clone runs outside it — entry buffers are immutable once installed
// (fills always allocate fresh buffers), so MB-scale memcpys must not
// serialize every other cache operation.
func (r *missReader) fromCache(off, length int64) (data []byte, ok bool) {
	view, ok := r.lookup(off, length)
	if !ok {
		return nil, false
	}
	return clone(view), true
}

// lookup finds the resident view under the mutex; callers clone it
// outside.
func (r *missReader) lookup(off, length int64) (view []byte, ok bool) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if r.s.versions[r.key] != r.version {
		return nil, false
	}
	e, present := r.s.entries[r.key]
	if !present {
		return nil, false
	}
	whole := length < 0
	if whole {
		off, length = 0, e.size
	}
	if e.full {
		r.s.touch(e)
		r.s.stats.Hits++
		if e.data == nil {
			return nil, true
		}
		return e.data[off : off+length], true
	}
	if whole {
		return nil, false
	}
	if cr := covers(e, off, length); cr != nil {
		r.s.touch(e)
		r.s.stats.Hits++
		if cr.data == nil {
			return nil, true
		}
		lo := off - cr.off
		return cr.data[lo : lo+length], true
	}
	return nil, false
}

// ReadAll implements blob.Reader: memory speed when fully resident,
// read-through plus fill otherwise.
func (r *missReader) ReadAll() ([]byte, error) {
	if r.closed {
		return nil, fmt.Errorf("%w: reader for %s", blob.ErrClosed, r.key)
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if data, ok := r.fromCache(0, -1); ok {
		r.s.chargeMemory(r.r.Size())
		return data, nil
	}
	data, err := r.r.ReadAll()
	if err != nil {
		return nil, err
	}
	r.s.mu.Lock()
	r.s.stats.Misses++
	r.s.mu.Unlock()
	r.s.fillFull(r.key, r.version, r.r.Size(), data)
	return data, nil
}

// ReadAt implements blob.Reader: a cached covering range serves at
// memory speed; otherwise the inner store charges only the physical
// runs covering the range, and the range joins the cache.
func (r *missReader) ReadAt(off, length int64) ([]byte, error) {
	if r.closed {
		return nil, fmt.Errorf("%w: reader for %s", blob.ErrClosed, r.key)
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkRange(r.key, r.r.Size(), off, length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	if data, ok := r.fromCache(off, length); ok {
		r.s.chargeMemory(length)
		return data, nil
	}
	data, err := r.r.ReadAt(off, length)
	if err != nil {
		return nil, err
	}
	r.s.mu.Lock()
	r.s.stats.Misses++
	r.s.mu.Unlock()
	r.s.fillRange(r.key, r.version, r.r.Size(), off, length, data)
	return data, nil
}

// Close implements blob.Reader. The first Close retires the handle to
// the pool after closing the inner reader.
func (r *missReader) Close() error {
	if r.closed {
		return r.r.Close()
	}
	r.closed = true
	inner := r.r
	missReaderPool.Put(r)
	return inner.Close()
}

// cacheWriter wraps an inner Writer to invalidate the cached entry when
// the new version becomes visible. Commit blocks until the inner store
// reports the version durable — through the group-commit pipeline when
// one is enabled, and through the shard layer's accounting when the
// inner store is sharded — so invalidation happens strictly after
// publish and before the writer's caller proceeds.
type cacheWriter struct {
	blob.Writer
	s   *Store
	key string
}

// Commit implements blob.Writer: write-through invalidation. The
// in-flight mark brackets the inner commit so no racing reader can
// fill the cache with the new version's bytes under the old version
// number; endWrite then invalidates in the same critical section that
// clears the mark.
func (w *cacheWriter) Commit() error {
	w.s.beginWrite(w.key)
	err := w.Writer.Commit()
	w.s.endWrite(w.key, err == nil)
	return err
}

// Create implements blob.Store.
func (s *Store) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := s.inner.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &cacheWriter{Writer: w, s: s, key: key}, nil
}

// Replace implements blob.Store.
func (s *Store) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := s.inner.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &cacheWriter{Writer: w, s: s, key: key}, nil
}

// Delete implements blob.Store, dropping the cached entry once the
// inner store confirms the delete.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.inner.Delete(ctx, key); err != nil {
		return err
	}
	s.invalidate(key)
	return nil
}

// Stat implements blob.Store. Metadata stays authoritative in the
// wrapped store: the cache holds payload residency, not the name map.
func (s *Store) Stat(ctx context.Context, key string) (blob.Info, error) {
	return s.inner.Stat(ctx, key)
}

// Keys implements blob.Store.
func (s *Store) Keys() []string { return s.inner.Keys() }

// ObjectCount implements blob.Store.
func (s *Store) ObjectCount() int { return s.inner.ObjectCount() }

// LiveBytes implements blob.Store.
func (s *Store) LiveBytes() int64 { return s.inner.LiveBytes() }

// FreeBytes implements blob.Store.
func (s *Store) FreeBytes() int64 { return s.inner.FreeBytes() }

// CapacityBytes implements blob.Store: the wrapped store's data
// capacity (the cache's own budget is Capacity).
func (s *Store) CapacityBytes() int64 { return s.inner.CapacityBytes() }

// EachObjectRuns implements frag.Source via the wrapped store.
func (s *Store) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.inner.EachObjectRuns(fn)
}

// EachObjectTag implements frag.TagSource via the wrapped store.
func (s *Store) EachObjectTag(fn func(key string, tag uint32)) {
	s.inner.EachObjectTag(fn)
}

// CommitStats passes the wrapped store's group-commit counters through,
// so blob.CommitStatsOf works on a cached store.
func (s *Store) CommitStats() blob.CommitStats {
	cs, _ := blob.CommitStatsOf(s.inner)
	return cs
}

// Close shuts the wrapped store's commit pipeline down via
// blob.CloseStore; the cache itself holds no goroutines.
func (s *Store) Close() error { return blob.CloseStore(s.inner) }

var _ blob.Store = (*Store)(nil)
