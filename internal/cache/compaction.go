package cache

import (
	"context"
	"errors"
	"fmt"
)

// This file makes the cache layer observe compactor rewrites. A
// relocation at the store level publishes a fresh version, which kills
// store-level readers — but a cache hit never touches the store, so
// without a version bump here a pinned hit-reader (or a later fill
// check) would keep serving the old layout's bytes forever: the ABA
// hazard. Routing the rewrite through these wrappers brackets it with
// the same beginWrite/endWrite protocol commits use, so the version
// bump and entry drop happen atomically with the relocation becoming
// visible, and concurrent fills are suppressed for the duration.

type rewriter interface {
	CompactObject(ctx context.Context, key string) (int64, error)
}

type packer interface {
	PackObjects(ctx context.Context, keys []string) ([]string, error)
}

// CompactObject forwards a compactor rewrite to the wrapped store,
// bumping key's version when the object actually moved.
func (s *Store) CompactObject(ctx context.Context, key string) (int64, error) {
	rw, ok := s.inner.(rewriter)
	if !ok {
		return 0, fmt.Errorf("%w: %s cannot compact objects", errors.ErrUnsupported, s.inner.Name())
	}
	s.beginWrite(key)
	n, err := rw.CompactObject(ctx, key)
	s.endWrite(key, err == nil && n > 0)
	return n, err
}

// PackObjects forwards a pack attempt to the wrapped store, bumping the
// version of every key that was actually packed (relocated).
func (s *Store) PackObjects(ctx context.Context, keys []string) ([]string, error) {
	pk, ok := s.inner.(packer)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot pack objects", errors.ErrUnsupported, s.inner.Name())
	}
	for _, k := range keys {
		s.beginWrite(k)
	}
	packed, err := pk.PackObjects(ctx, keys)
	moved := make(map[string]bool, len(packed))
	for _, k := range packed {
		moved[k] = true
	}
	for _, k := range keys {
		s.endWrite(k, moved[k])
	}
	return packed, err
}
