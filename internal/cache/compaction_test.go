package cache_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/units"
)

// opaque hides every capability beyond the plain blob.Store methods.
type opaque struct{ blob.Store }

func cacheOverOpaque(inner blob.Store) (*cache.Store, error) {
	return cache.New(opaque{inner}, cache.WithCapacity(units.MB))
}

// TestCompactionInvalidatesPinnedHitReader is the ABA regression test:
// a reader pinned to a cache hit must observe a compactor rewrite of
// its object. Without the version bump in Store.CompactObject the hit
// reader never touches the store, so it would keep serving the
// pre-relocation bytes forever.
func TestCompactionInvalidatesPinnedHitReader(t *testing.T) {
	ctx := context.Background()
	c := newCachedFS(t, 64*units.MB)
	data := make([]byte, units.MB)
	for i := range data {
		data[i] = byte(i % 127)
	}
	if err := blob.Put(ctx, c, "a", int64(len(data)), data); err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then fragment the object so compaction will move it.
	if _, _, err := blob.Get(ctx, c, "a"); err != nil {
		t.Fatal(err)
	}
	c.Inner().(*core.FileStore).Volume().ShatterFiles(4)

	// Pin a reader across the compaction. It is served from memory — the
	// store never sees it — which is exactly the ABA window.
	r, err := c.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadAt(0, units.KB); err != nil {
		t.Fatal(err)
	}

	n, err := c.CompactObject(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("compaction moved %d bytes, want %d", n, len(data))
	}

	if _, err := r.ReadAt(0, units.KB); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("pinned hit reader survived relocation: err = %v, want ErrNotFound", err)
	}
	// A fresh read sees the relocated object, byte for byte.
	if _, got, err := blob.Get(ctx, c, "a"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-compaction read: %v", err)
	}
}

// TestCompactionUnsupportedInner pins the typed error for a wrapped
// store without the rewrite capability.
func TestCompactionUnsupportedInner(t *testing.T) {
	c := newCachedFS(t, units.MB)
	wrapped, err := cacheOverOpaque(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.CompactObject(context.Background(), "a"); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("CompactObject over opaque inner = %v, want errors.ErrUnsupported", err)
	}
	if _, err := wrapped.PackObjects(context.Background(), []string{"a", "b"}); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("PackObjects over opaque inner = %v, want errors.ErrUnsupported", err)
	}
}
