// Package wire defines the HTTP wire contract shared by the network
// blob service (internal/server) and its remote-store client
// (internal/client): header names, URL layout, and the JSON bodies of
// the non-payload endpoints. Keeping it in one place means the two
// sides cannot drift — both import these constants instead of
// spelling strings.
//
// The protocol is plain HTTP/1.1:
//
//	GET    /v1/blobs/{key}          whole object (or Range: bytes=a-b)
//	HEAD   /v1/blobs/{key}          stat
//	PUT    /v1/blobs/{key}?mode=m   one-shot streaming put (create|replace)
//	DELETE /v1/blobs/{key}          delete
//	GET    /v1/keys                 key listing
//	GET    /v1/stats                store accounting + virtual clock
//	GET    /v1/layout               per-object physical runs + tags
//	POST   /v1/read/{key}           open a pinned reader session
//	GET    /v1/readh/{h}?off=&len=  ranged read on a session (no params: whole object)
//	DELETE /v1/readh/{h}            close the reader
//	POST   /v1/write/{key}?mode=m&size=n   open a writer session
//	POST   /v1/writeh/{h}           append one chunk (body, or MetaBytes header)
//	POST   /v1/writeh/{h}/commit    commit
//	DELETE /v1/writeh/{h}           abort
//	GET    /metrics                 live wall-clock metrics (PhaseReport JSON)
//	GET    /report                  full RunReport JSON
//	GET    /healthz                 liveness
//
// Errors travel primarily by name: every failure response carries the
// sentinel's wire name (blob.ErrName) in HeaderError, and the HTTP
// status (blob.HTTPStatus) is the fallback for plain HTTP clients and
// header-stripping proxies. Every response — success or failure —
// carries the store's virtual clock in HeaderClock, which the client
// ratchets into its local clock so virtual-time costs survive the
// network hop.
package wire

import "repro/internal/extent"

// Header names of the wire contract.
const (
	// HeaderSize carries an object's logical size in bytes: the full
	// object size on GET/HEAD responses (even ranged ones) and the
	// declared stream size on PUT requests without a usable
	// Content-Length.
	HeaderSize = "X-Blob-Size"

	// HeaderError carries the sentinel wire name (blob.ErrName) on every
	// failure response. The primary error carrier; the HTTP status is
	// the fallback.
	HeaderError = "X-Blob-Error"

	// HeaderClock carries the store's virtual clock (ns) at response
	// time. Clients ratchet it into their local vclock.Clock.
	HeaderClock = "X-Blob-Clock-Ns"

	// HeaderMeta set to "1" on a read response means the store runs in
	// metadata-only simulation: the logical bytes exist but no payload
	// travels (the body is empty and the client returns a nil slice).
	HeaderMeta = "X-Blob-Meta"

	// HeaderMetaBytes on a PUT or append request declares n logical
	// bytes with no payload (a metadata-only append: Writer.Append(n,
	// nil) server-side). Mutually exclusive with a request body.
	HeaderMetaBytes = "X-Blob-Meta-Bytes"
)

// Path prefixes of the wire contract (each followed by a key or
// handle).
const (
	PathBlobs  = "/v1/blobs/"
	PathKeys   = "/v1/keys"
	PathStats  = "/v1/stats"
	PathLayout = "/v1/layout"
	PathRead   = "/v1/read/"
	PathReadH  = "/v1/readh/"
	PathWrite  = "/v1/write/"
	PathWriteH = "/v1/writeh/"

	PathMetrics = "/metrics"
	PathReport  = "/report"
	PathHealthz = "/healthz"
)

// Write modes for the mode query parameter.
const (
	ModeCreate  = "create"
	ModeReplace = "replace"
)

// StatsResponse is the body of GET /v1/stats: the store's accounting
// surface plus its identity and virtual clock.
type StatsResponse struct {
	Name          string `json:"name"`
	ObjectCount   int    `json:"object_count"`
	LiveBytes     int64  `json:"live_bytes"`
	FreeBytes     int64  `json:"free_bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
	ClockNs       int64  `json:"clock_ns"`
}

// KeysResponse is the body of GET /v1/keys.
type KeysResponse struct {
	Keys []string `json:"keys"`
}

// OpenResponse is the body of POST /v1/read/{key}: a pinned reader
// session.
type OpenResponse struct {
	Handle string `json:"handle"`
	Size   int64  `json:"size"`
}

// WriteOpenResponse is the body of POST /v1/write/{key}: a writer
// session.
type WriteOpenResponse struct {
	Handle string `json:"handle"`
}

// LayoutObject is one object in GET /v1/layout: its physical cluster
// runs and disk owner tag, the inputs of fragmentation analysis
// (frag.Source / frag.TagSource) serialized for a remote store.
type LayoutObject struct {
	Key   string       `json:"key"`
	Bytes int64        `json:"bytes"`
	Runs  []extent.Run `json:"runs"`
	Tag   uint32       `json:"tag"`
}
