package server

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/obs"
)

// The session table gives stateful blob handles an identity over a
// stateless protocol. A remote client that opens a reader must keep
// the version-pinning contract (reads fail with ErrNotFound after a
// replace, never serve different bytes), and a remote writer must keep
// the one-uncommitted-writer-per-key contract (ErrBusy) — both are
// properties of a live server-side blob.Reader/blob.Writer, not of any
// per-request re-open. So the server holds the real handle and hands
// the client an opaque id; every /v1/readh//v1/writeh request resolves
// the id back to the handle.
//
// Handles opened by a request deliberately outlive it (the opening
// context is detached with context.WithoutCancel at the call site):
// the session ends when the client closes it, or when the janitor
// sweeps it after SessionTTL idle wall time — the abandoned-client
// backstop that keeps a crashed client from pinning a key's write
// lock forever.

// readerSession is one open reader handle.
type readerSession struct {
	id       string
	r        blob.Reader
	lastUsed atomic.Int64 // wall ns of last use
}

// writerSession is one open writer handle.
type writerSession struct {
	id       string
	w        blob.Writer
	lastUsed atomic.Int64 // wall ns of last use
}

// sessionTable tracks every live session by id.
type sessionTable struct {
	mu      sync.Mutex
	nextID  atomic.Int64
	readers map[string]*readerSession
	writers map[string]*writerSession
	ttlNs   int64 // idle wall ns before the janitor reaps a session
}

func newSessionTable(ttlNs int64) *sessionTable {
	return &sessionTable{
		readers: make(map[string]*readerSession),
		writers: make(map[string]*writerSession),
		ttlNs:   ttlNs,
	}
}

// addReader registers r and returns its handle id.
func (t *sessionTable) addReader(r blob.Reader) string {
	s := &readerSession{id: "r" + strconv.FormatInt(t.nextID.Add(1), 10), r: r}
	s.lastUsed.Store(obs.WallNow())
	t.mu.Lock()
	t.readers[s.id] = s
	t.mu.Unlock()
	return s.id
}

// addWriter registers w and returns its handle id.
func (t *sessionTable) addWriter(w blob.Writer) string {
	s := &writerSession{id: "w" + strconv.FormatInt(t.nextID.Add(1), 10), w: w}
	s.lastUsed.Store(obs.WallNow())
	t.mu.Lock()
	t.writers[s.id] = s
	t.mu.Unlock()
	return s.id
}

// reader resolves a reader handle, stamping its idle clock. An unknown
// id — never issued, already closed, or reaped — is ErrNotFound.
func (t *sessionTable) reader(id string) (*readerSession, error) {
	t.mu.Lock()
	s := t.readers[id]
	t.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: reader session %s", blob.ErrNotFound, id)
	}
	s.lastUsed.Store(obs.WallNow())
	return s, nil
}

// writer resolves a writer handle, stamping its idle clock.
func (t *sessionTable) writer(id string) (*writerSession, error) {
	t.mu.Lock()
	s := t.writers[id]
	t.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: writer session %s", blob.ErrNotFound, id)
	}
	s.lastUsed.Store(obs.WallNow())
	return s, nil
}

// closeReader removes and closes a reader session.
func (t *sessionTable) closeReader(id string) error {
	t.mu.Lock()
	s := t.readers[id]
	delete(t.readers, id)
	t.mu.Unlock()
	if s == nil {
		return fmt.Errorf("%w: reader session %s", blob.ErrNotFound, id)
	}
	return s.r.Close()
}

// abortWriter removes a writer session, aborting it unless committed
// is set (a committed writer is already closed; aborting again is a
// no-op server-side, but the session must leave the table either way).
func (t *sessionTable) removeWriter(id string, committed bool) error {
	t.mu.Lock()
	s := t.writers[id]
	delete(t.writers, id)
	t.mu.Unlock()
	if s == nil {
		return fmt.Errorf("%w: writer session %s", blob.ErrNotFound, id)
	}
	if committed {
		return nil
	}
	return s.w.Abort()
}

// sweep closes every session idle longer than the TTL as of nowNs,
// returning how many it reaped. The janitor calls it on a wall
// ticker; tests call it directly with a synthetic now.
func (t *sessionTable) sweep(nowNs int64) int {
	t.mu.Lock()
	var deadR []*readerSession
	var deadW []*writerSession
	for id, s := range t.readers {
		if nowNs-s.lastUsed.Load() > t.ttlNs {
			deadR = append(deadR, s)
			delete(t.readers, id)
		}
	}
	for id, s := range t.writers {
		if nowNs-s.lastUsed.Load() > t.ttlNs {
			deadW = append(deadW, s)
			delete(t.writers, id)
		}
	}
	t.mu.Unlock()
	for _, s := range deadR {
		s.r.Close()
	}
	for _, s := range deadW {
		s.w.Abort() // releases the key's write lock; prior version intact
	}
	return len(deadR) + len(deadW)
}

// closeAll force-closes every session (server shutdown).
func (t *sessionTable) closeAll() {
	t.mu.Lock()
	readers := t.readers
	writers := t.writers
	t.readers = make(map[string]*readerSession)
	t.writers = make(map[string]*writerSession)
	t.mu.Unlock()
	for _, s := range readers {
		s.r.Close()
	}
	for _, s := range writers {
		s.w.Abort()
	}
}

// counts returns the live session totals (for /v1/stats-adjacent
// introspection and tests).
func (t *sessionTable) counts() (readers, writers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.readers), len(t.writers)
}
