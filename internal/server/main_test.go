package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any goroutine survives the tests —
// goroutine-per-connection server code is exactly where leaks live
// (janitors not stopped, handlers blocked on dead clients).
func TestMain(m *testing.M) { leakcheck.Main(m) }
