package server

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/blob"
	"repro/internal/obs"
)

// admission is the connection-level admission controller: a bounded
// in-flight limit with a bounded wait queue in front of it, so the
// service sheds overload with typed errors instead of queueing without
// bound (the tail-latency failure mode a storage front-end must not
// have).
//
// The policy is two thresholds:
//
//   - At most MaxInFlight operations run against the store at once.
//   - At most MaxQueue further operations wait for a slot. An arrival
//     beyond in-flight+queued is shed immediately with ErrOverloaded
//     (HTTP 429): the client should back off and retry.
//   - A queued operation that waits longer than QueueTimeout is
//     refused with ErrUnavailable (HTTP 503): the service is saturated
//     beyond its latency budget, not merely bursty.
//
// Caller cancellation passes through: an op whose own context ends
// while queued reports the context's error, not a shed.
type admission struct {
	slots   chan struct{} // capacity MaxInFlight; holding a token = running
	pending atomic.Int64  // running + queued
	limit   int64         // MaxInFlight + MaxQueue
	timeout time.Duration // max queue wait; 0 = wait as long as the caller's ctx allows
	reg     *obs.Registry // wall registry for shed/timeout counters; may be nil
}

// newAdmission builds the controller; maxInFlight must be positive.
func newAdmission(maxInFlight, maxQueue int, timeout time.Duration, reg *obs.Registry) *admission {
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		limit:   int64(maxInFlight + maxQueue),
		timeout: timeout,
		reg:     reg,
	}
}

// acquire admits one operation, blocking in the queue if the service
// is at its in-flight limit. On success it returns a release func the
// caller must run when the operation finishes. On refusal it returns
// the typed reason: ErrOverloaded (queue full), ErrUnavailable (queue
// wait exceeded the budget), or the caller context's own error.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if a.pending.Add(1) > a.limit {
		a.pending.Add(-1)
		a.count("admission.shed")
		return nil, blob.ErrOverloaded
	}
	wait := ctx
	if a.timeout > 0 {
		var cancel context.CancelFunc
		wait, cancel = context.WithTimeout(ctx, a.timeout)
		defer cancel()
	}
	select {
	case a.slots <- struct{}{}:
		a.gauge()
		return a.release, nil
	case <-wait.Done():
		a.pending.Add(-1)
		if err := ctx.Err(); err != nil {
			// The caller gave up (cancel or deadline) — report that, not
			// a service condition.
			return nil, err
		}
		a.count("admission.timeout")
		return nil, blob.ErrUnavailable
	}
}

// release returns one slot and retires the op from the pending count.
func (a *admission) release() {
	<-a.slots
	a.pending.Add(-1)
	a.gauge()
}

// count bumps an admission counter when metrics are on.
func (a *admission) count(name string) {
	if a.reg != nil {
		a.reg.Counter(name).Inc()
	}
}

// gauge publishes the current in-flight level.
func (a *admission) gauge() {
	if a.reg != nil {
		a.reg.Gauge("admission.inflight").Set(float64(len(a.slots)))
	}
}
