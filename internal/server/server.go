// Package server is the network front-end of the blob store: an
// HTTP/1.1 service exposing any blob.Store stack (core, shard, cache,
// group-commit, obs — the server is agnostic) to remote clients.
//
// The request path is client → admission control → handler → store:
// every store-touching request first passes the bounded
// in-flight/queue admission controller (admission.go), runs under a
// per-request context deadline, and records its wall-clock latency
// into a UnitWall obs.Registry — the tail-latency SLO view, reported
// through the same histogram/report pipeline the simulation uses for
// virtual time (the time_unit tag keeps the two apart).
//
// Stateless operations (GET/HEAD/PUT/DELETE on /v1/blobs/) map one
// request to one whole store operation. Stateful reader/writer
// sessions (/v1/read*, /v1/write*) hold real blob.Reader/blob.Writer
// handles server-side (session.go), so the remote client preserves the
// full store contract — version-pinned readers, exclusive writers,
// streaming appends — and the cross-backend conformance suite passes
// end-to-end over a live listener (see internal/client).
//
// Every response carries the store's virtual clock in a header;
// clients ratchet it into a local clock so virtual-time accounting
// (the simulation's cost model) survives the network hop. Errors
// travel by sentinel name plus mapped HTTP status (blob/httpmap.go).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/obs"
	"repro/internal/server/wire"
)

// Config tunes one Server.
type Config struct {
	// MaxInFlight bounds concurrently executing store operations.
	// Zero or negative takes DefaultMaxInFlight.
	MaxInFlight int

	// MaxQueue bounds operations waiting for an in-flight slot; an
	// arrival beyond MaxInFlight+MaxQueue is shed with ErrOverloaded
	// (429). Negative means zero (no queue: at the limit, shed).
	MaxQueue int

	// QueueTimeout bounds how long an admitted operation may wait for a
	// slot before being refused with ErrUnavailable (503). Zero waits
	// as long as the request's own context allows.
	QueueTimeout time.Duration

	// RequestTimeout is the per-request context deadline applied to
	// every store-touching request. Zero applies none.
	RequestTimeout time.Duration

	// SessionTTL is the idle wall time after which an abandoned
	// reader/writer session is reaped (writers aborted, so the key's
	// write lock is released). Zero or negative takes
	// DefaultSessionTTL.
	SessionTTL time.Duration

	// Registry receives the service's wall-clock metrics: "serve.<op>"
	// latency histograms, "serve.<op>.err.<name>" counters, and
	// admission counters. Must be a wall-unit registry
	// (obs.NewWallRegistry); nil disables metrics.
	Registry *obs.Registry
}

// Defaults for Config zero values.
const (
	DefaultMaxInFlight = 256
	DefaultSessionTTL  = 2 * time.Minute
)

// Server serves one blob.Store over HTTP. Create with New, mount as an
// http.Handler, and Close when done (stops the session janitor and
// aborts live sessions). The wrapped store's lifecycle belongs to the
// caller.
type Server struct {
	store    blob.Store
	cfg      Config
	reg      *obs.Registry
	adm      *admission
	sessions *sessionTable
	mux      *http.ServeMux

	janitorStop chan struct{}
	janitorDone chan struct{}
	closed      bool
}

// New builds a Server over store. The config's Registry must be
// wall-unit: the server measures real round-trip time, and recording
// it into a virtual-time registry would silently mix units (the exact
// confusion the time_unit tag exists to prevent).
func New(store blob.Store, cfg Config) (*Server, error) {
	if cfg.Registry != nil && cfg.Registry.Unit() != obs.UnitWall {
		return nil, fmt.Errorf("%w: server registry must be wall-unit (obs.NewWallRegistry), got %s",
			blob.ErrBadOption, cfg.Registry.Unit())
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = DefaultSessionTTL
	}
	s := &Server{
		store:       store,
		cfg:         cfg,
		reg:         cfg.Registry,
		adm:         newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueTimeout, cfg.Registry),
		sessions:    newSessionTable(cfg.SessionTTL.Nanoseconds()),
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.routes()
	go s.janitor()
	return s, nil
}

// routes wires the wire-contract URL layout to handlers. Every
// store-touching route runs through op() for deadline, admission, and
// metrics; the introspection routes bypass admission so a saturated
// service can still be observed.
func (s *Server) routes() {
	m := s.mux
	m.HandleFunc("GET "+wire.PathBlobs+"{key...}", s.op("get", true, s.handleGet))
	m.HandleFunc("HEAD "+wire.PathBlobs+"{key...}", s.op("head", true, s.handleHead))
	m.HandleFunc("PUT "+wire.PathBlobs+"{key...}", s.op("put", true, s.handlePut))
	m.HandleFunc("DELETE "+wire.PathBlobs+"{key...}", s.op("delete", true, s.handleDelete))

	m.HandleFunc("GET "+wire.PathKeys, s.op("keys", true, s.handleKeys))
	m.HandleFunc("GET "+wire.PathStats, s.op("stats", true, s.handleStats))
	m.HandleFunc("GET "+wire.PathLayout, s.op("layout", true, s.handleLayout))

	m.HandleFunc("POST "+wire.PathRead+"{key...}", s.op("read.open", true, s.handleReadOpen))
	m.HandleFunc("GET "+wire.PathReadH+"{handle}", s.op("read.at", true, s.handleReadAt))
	m.HandleFunc("DELETE "+wire.PathReadH+"{handle}", s.op("read.close", true, s.handleReadClose))

	m.HandleFunc("POST "+wire.PathWrite+"{key...}", s.op("write.open", true, s.handleWriteOpen))
	m.HandleFunc("POST "+wire.PathWriteH+"{handle}", s.op("write.append", true, s.handleAppend))
	m.HandleFunc("POST "+wire.PathWriteH+"{handle}/commit", s.op("write.commit", true, s.handleCommit))
	m.HandleFunc("DELETE "+wire.PathWriteH+"{handle}", s.op("write.abort", true, s.handleAbort))

	m.HandleFunc("GET "+wire.PathMetrics, s.handleMetrics)
	m.HandleFunc("GET "+wire.PathReport, s.handleReport)
	m.HandleFunc("GET "+wire.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		s.setClock(w.Header())
		io.WriteString(w, "ok\n")
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the session janitor and force-closes every live session
// (readers closed, writers aborted — uncommitted streams vanish, prior
// versions intact). Safe to call once; the store itself is not closed.
func (s *Server) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.janitorStop)
	<-s.janitorDone
	s.sessions.closeAll()
	return nil
}

// janitor periodically reaps idle sessions. Session TTLs are real
// wall-clock idle timeouts of remote network clients — a crashed
// client must not pin a key's write lock — so this is one of the two
// sanctioned wall-time call sites (with obs.WallNow).
func (s *Server) janitor() {
	defer close(s.janitorDone)
	interval := s.cfg.SessionTTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	//fragvet:ignore vclockpurity session TTLs reap abandoned network clients on real wall time, not simulated time
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			if n := s.sessions.sweep(obs.WallNow()); n > 0 && s.reg != nil {
				s.reg.Counter("sessions.reaped").Add(int64(n))
			}
		}
	}
}

// op wraps a handler with the request path's cross-cutting layers:
// per-request deadline, admission control, wall-latency recording, and
// typed error rendering. fn must write its success response last (all
// store work first), so a failure can still set status and headers.
func (s *Server) op(name string, admit bool, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := obs.WallNow()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		err := func() error {
			if admit {
				release, aerr := s.adm.acquire(r.Context())
				if aerr != nil {
					return aerr
				}
				defer release()
			}
			return fn(w, r)
		}()
		if err != nil {
			s.fail(w, name, err)
			return
		}
		if s.reg != nil {
			s.reg.Histogram("serve." + name).Observe(obs.WallNow() - start)
		}
	}
}

// fail renders a typed failure: sentinel name in the error header,
// mapped HTTP status, message body; plus an error counter.
func (s *Server) fail(w http.ResponseWriter, op string, err error) {
	name := blob.ErrName(err)
	if s.reg != nil {
		s.reg.Counter("serve." + op + ".err." + name).Inc()
	}
	h := w.Header()
	h.Set(wire.HeaderError, name)
	s.setClock(h)
	http.Error(w, err.Error(), blob.HTTPStatus(err))
}

// setClock stamps the store's virtual clock onto a response.
func (s *Server) setClock(h http.Header) {
	h.Set(wire.HeaderClock, strconv.FormatInt(s.store.Clock().Now(), 10))
}

// writeJSON renders a success JSON body.
func (s *Server) writeJSON(w http.ResponseWriter, v any) error {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	s.setClock(h)
	return json.NewEncoder(w).Encode(v)
}

// writePayload renders read bytes: the object's full size in the size
// header, the metadata marker when the store retains no payload, and
// the (possibly empty) body.
func (s *Server) writePayload(w http.ResponseWriter, status int, size int64, data []byte) error {
	h := w.Header()
	h.Set(wire.HeaderSize, strconv.FormatInt(size, 10))
	if data == nil {
		h.Set(wire.HeaderMeta, "1")
	}
	h.Set("Content-Type", "application/octet-stream")
	s.setClock(h)
	w.WriteHeader(status)
	_, err := w.Write(data)
	return err
}

// writeEmpty renders a bodiless success.
func (s *Server) writeEmpty(w http.ResponseWriter) error {
	s.setClock(w.Header())
	w.WriteHeader(http.StatusOK)
	return nil
}

// --- stateless front door -------------------------------------------

// handleGet serves a whole object, or — with a Range header — a ranged
// read riding blob.Reader.ReadAt, touching only the physical runs that
// cover the range. The reader lives only for this request.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) error {
	key := r.PathValue("key")
	rd, err := s.store.Open(r.Context(), key)
	if err != nil {
		return err
	}
	defer rd.Close()
	size := rd.Size()

	if rng := r.Header.Get("Range"); rng != "" {
		off, length, ok := parseRange(rng, size)
		if ok {
			data, err := rd.ReadAt(off, length)
			if err != nil {
				return err
			}
			w.Header().Set("Content-Range",
				fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
			return s.writePayload(w, http.StatusPartialContent, size, data)
		}
		// Unsatisfiable ranges are typed; malformed ones are served whole
		// (RFC 9110 allows ignoring an invalid Range).
		if rangeUnsatisfiable(rng, size) {
			return fmt.Errorf("%w: range %q of %d-byte object", blob.ErrOutOfRange, rng, size)
		}
	}
	data, err := rd.ReadAll()
	if err != nil {
		return err
	}
	return s.writePayload(w, http.StatusOK, size, data)
}

// handleHead serves object metadata.
func (s *Server) handleHead(w http.ResponseWriter, r *http.Request) error {
	info, err := s.store.Stat(r.Context(), r.PathValue("key"))
	if err != nil {
		return err
	}
	h := w.Header()
	h.Set(wire.HeaderSize, strconv.FormatInt(info.Size, 10))
	s.setClock(h)
	w.WriteHeader(http.StatusOK)
	return nil
}

// handlePut streams one whole object in: the body flows through the
// store's blob.Writer in chunks, so a large upload never buffers
// wholly in server memory. mode=create fails on an existing key;
// mode=replace (the default) is the safe replace. A request with the
// meta-bytes header performs a metadata-only write of that many
// logical bytes.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) error {
	key := r.PathValue("key")
	metaBytes := int64(-1)
	if v := r.Header.Get(wire.HeaderMetaBytes); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad %s %q", blob.ErrInvalidSize, wire.HeaderMetaBytes, v)
		}
		metaBytes = n
	}
	size := metaBytes
	if size < 0 {
		size = r.ContentLength
		if v := r.Header.Get(wire.HeaderSize); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("%w: bad %s %q", blob.ErrInvalidSize, wire.HeaderSize, v)
			}
			size = n
		}
		if size < 0 {
			return fmt.Errorf("%w: PUT without a declared size (chunked body and no %s header)",
				blob.ErrInvalidSize, wire.HeaderSize)
		}
	}

	var wr blob.Writer
	var err error
	switch mode := r.URL.Query().Get("mode"); mode {
	case wire.ModeCreate:
		wr, err = s.store.Create(r.Context(), key, size)
	case wire.ModeReplace, "":
		wr, err = s.store.Replace(r.Context(), key, size)
	default:
		return fmt.Errorf("%w: unknown write mode %q", blob.ErrBadOption, mode)
	}
	if err != nil {
		return err
	}

	if metaBytes >= 0 {
		if err := wr.Append(metaBytes, nil); err != nil {
			wr.Abort()
			return err
		}
	} else if err := copyBody(wr, r.Body); err != nil {
		wr.Abort()
		return err
	}
	if err := wr.Commit(); err != nil {
		wr.Abort()
		return err
	}
	return s.writeEmpty(w)
}

// copyBody streams a request body into a writer in bounded chunks.
func copyBody(w blob.Writer, body io.Reader) error {
	buf := make([]byte, 256<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if aerr := w.Append(int64(n), buf[:n]); aerr != nil {
				return aerr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// handleDelete removes an object.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.store.Delete(r.Context(), r.PathValue("key")); err != nil {
		return err
	}
	return s.writeEmpty(w)
}

// --- introspection ---------------------------------------------------

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) error {
	keys := s.store.Keys()
	if keys == nil {
		keys = []string{}
	}
	return s.writeJSON(w, wire.KeysResponse{Keys: keys})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	return s.writeJSON(w, wire.StatsResponse{
		Name:          s.store.Name(),
		ObjectCount:   s.store.ObjectCount(),
		LiveBytes:     s.store.LiveBytes(),
		FreeBytes:     s.store.FreeBytes(),
		CapacityBytes: s.store.CapacityBytes(),
		ClockNs:       s.store.Clock().Now(),
	})
}

// handleLayout serializes every object's physical runs and owner tag —
// the remote half of frag.Source/frag.TagSource, so fragmentation
// analysis runs against a served store too.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) error {
	objs := []wire.LayoutObject{}
	idx := make(map[string]int)
	s.store.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
		idx[key] = len(objs)
		objs = append(objs, wire.LayoutObject{
			Key: key, Bytes: bytes, Runs: append([]extent.Run(nil), runs...),
		})
	})
	s.store.EachObjectTag(func(key string, tag uint32) {
		if i, ok := idx[key]; ok {
			objs[i].Tag = tag
		}
	})
	return s.writeJSON(w, objs)
}

// --- reader sessions -------------------------------------------------

// handleReadOpen opens a version-pinned reader session. The handle is
// detached from this request's context (it must outlive it); the TTL
// janitor is the backstop for clients that never close.
func (s *Server) handleReadOpen(w http.ResponseWriter, r *http.Request) error {
	rd, err := s.store.Open(context.WithoutCancel(r.Context()), r.PathValue("key"))
	if err != nil {
		return err
	}
	id := s.sessions.addReader(rd)
	return s.writeJSON(w, wire.OpenResponse{Handle: id, Size: rd.Size()})
}

// handleReadAt reads from a session: with off/len query parameters a
// ranged ReadAt, without them a whole-object ReadAll.
func (s *Server) handleReadAt(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.sessions.reader(r.PathValue("handle"))
	if err != nil {
		return err
	}
	q := r.URL.Query()
	var data []byte
	if q.Has("off") || q.Has("len") {
		off, err1 := strconv.ParseInt(q.Get("off"), 10, 64)
		length, err2 := strconv.ParseInt(q.Get("len"), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%w: bad off/len query", blob.ErrOutOfRange)
		}
		data, err = sess.r.ReadAt(off, length)
	} else {
		data, err = sess.r.ReadAll()
	}
	if err != nil {
		return err
	}
	return s.writePayload(w, http.StatusOK, sess.r.Size(), data)
}

// handleReadClose closes a reader session.
func (s *Server) handleReadClose(w http.ResponseWriter, r *http.Request) error {
	if err := s.sessions.closeReader(r.PathValue("handle")); err != nil {
		return err
	}
	return s.writeEmpty(w)
}

// --- writer sessions -------------------------------------------------

// handleWriteOpen starts a streaming writer session (mode=create or
// mode=replace, size=n declared bytes). The store's own ErrBusy
// exclusivity applies: a second session for the same key is refused
// while this one is uncommitted.
func (s *Server) handleWriteOpen(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	size, err := strconv.ParseInt(q.Get("size"), 10, 64)
	if err != nil {
		return fmt.Errorf("%w: bad size query %q", blob.ErrInvalidSize, q.Get("size"))
	}
	ctx := context.WithoutCancel(r.Context())
	var wr blob.Writer
	switch mode := q.Get("mode"); mode {
	case wire.ModeCreate:
		wr, err = s.store.Create(ctx, r.PathValue("key"), size)
	case wire.ModeReplace, "":
		wr, err = s.store.Replace(ctx, r.PathValue("key"), size)
	default:
		return fmt.Errorf("%w: unknown write mode %q", blob.ErrBadOption, mode)
	}
	if err != nil {
		return err
	}
	return s.writeJSON(w, wire.WriteOpenResponse{Handle: s.sessions.addWriter(wr)})
}

// handleAppend appends one chunk to a writer session: the request body
// as payload bytes, or — with the meta-bytes header — that many
// logical bytes with no payload.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.sessions.writer(r.PathValue("handle"))
	if err != nil {
		return err
	}
	if v := r.Header.Get(wire.HeaderMetaBytes); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return fmt.Errorf("%w: bad %s %q", blob.ErrInvalidSize, wire.HeaderMetaBytes, v)
		}
		if err := sess.w.Append(n, nil); err != nil {
			return err
		}
		return s.writeEmpty(w)
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	if err := sess.w.Append(int64(len(data)), data); err != nil {
		return err
	}
	return s.writeEmpty(w)
}

// handleCommit commits a writer session. On success the session is
// retired; on failure (short commit, expired stream) the session stays
// open and abortable, exactly like a local blob.Writer.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.sessions.writer(r.PathValue("handle"))
	if err != nil {
		return err
	}
	if err := sess.w.Commit(); err != nil {
		return err
	}
	s.sessions.removeWriter(sess.id, true)
	return s.writeEmpty(w)
}

// handleAbort aborts a writer session, releasing the key.
func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) error {
	if err := s.sessions.removeWriter(r.PathValue("handle"), false); err != nil {
		return err
	}
	return s.writeEmpty(w)
}

// --- observability ---------------------------------------------------

// handleMetrics serves the live wall-clock metrics as a PhaseReport.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if s.reg != nil {
		snap = s.reg.Snapshot()
	} else {
		snap.Unit = obs.UnitWall
	}
	s.writeJSON(w, obs.PhaseFromSnapshot("live", snap))
}

// handleReport serves a full schema-valid RunReport with one "serve"
// experiment holding the live phase.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := obs.NewRunReport()
	e := rep.Experiment("serve", "network blob service", "")
	if s.reg != nil {
		e.AddPhase("live", s.reg.Snapshot())
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	s.setClock(h)
	rep.WriteJSON(w)
}

// --- range parsing ---------------------------------------------------

// parseRange parses a single-range "bytes=a-b" header against an
// object size, returning the offset/length to read and whether the
// header yielded a satisfiable range. Suffix ranges ("bytes=-n") and
// open ends ("bytes=a-") follow RFC 9110; ends past EOF clamp.
func parseRange(h string, size int64) (off, length int64, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	first, last, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return 0, 0, false
	}
	if first == "" {
		// Suffix: last n bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n <= 0 {
			return 0, 0, false
		}
		if n > size {
			n = size
		}
		return size - n, n, size > 0
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	end := size - 1
	if last != "" {
		end, err = strconv.ParseInt(last, 10, 64)
		if err != nil || end < start {
			return 0, 0, false
		}
		if end > size-1 {
			end = size - 1
		}
	}
	return start, end - start + 1, true
}

// rangeUnsatisfiable reports whether a syntactically valid bytes range
// exists but lies wholly outside the object — the 416 case, distinct
// from a malformed header (served whole).
func rangeUnsatisfiable(h string, size int64) bool {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return false
	}
	first, _, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found || first == "" {
		return false
	}
	start, err := strconv.ParseInt(first, 10, 64)
	return err == nil && start >= size
}
