package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/server/wire"
	"repro/internal/units"
	"repro/internal/vclock"
)

// newTestServer spins a Server over store on a real listener, with
// cleanup that drains every goroutine (leakcheck enforces it).
func newTestServer(t *testing.T, store blob.Store, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	srv, err := New(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	t.Cleanup(func() {
		tr.CloseIdleConnections()
		ts.Close()
		srv.Close()
	})
	return srv, ts, client
}

func dataStore(t *testing.T) blob.Store {
	t.Helper()
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doReq(t *testing.T, client *http.Client, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFrontDoorRoundTrip pins the stateless path: PUT streams through
// a writer, GET serves the bytes back with size and clock headers,
// HEAD stats, DELETE removes, and every error is typed by header and
// status.
func TestFrontDoorRoundTrip(t *testing.T) {
	_, ts, client := newTestServer(t, dataStore(t), Config{Registry: obs.NewWallRegistry()})
	data := make([]byte, 300*units.KB)
	for i := range data {
		data[i] = byte(i % 251)
	}

	resp := doReq(t, client, "PUT", ts.URL+wire.PathBlobs+"a?mode=create", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if resp.Header.Get(wire.HeaderClock) == "" {
		t.Fatal("PUT response missing clock header")
	}

	resp = doReq(t, client, "GET", ts.URL+wire.PathBlobs+"a", nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, data) {
		t.Fatalf("GET status=%d len=%d, want 200 with %d bytes", resp.StatusCode, len(got), len(data))
	}
	if resp.Header.Get(wire.HeaderSize) != strconv.Itoa(len(data)) {
		t.Fatalf("GET size header = %q", resp.Header.Get(wire.HeaderSize))
	}

	resp = doReq(t, client, "HEAD", ts.URL+wire.PathBlobs+"a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(wire.HeaderSize) != strconv.Itoa(len(data)) {
		t.Fatalf("HEAD status=%d size=%q", resp.StatusCode, resp.Header.Get(wire.HeaderSize))
	}

	// Typed errors: create-existing is 409/exists, GET missing is
	// 404/notfound.
	resp = doReq(t, client, "PUT", ts.URL+wire.PathBlobs+"a?mode=create", data[:1])
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(wire.HeaderError) != "exists" {
		t.Fatalf("create existing: status=%d err=%q", resp.StatusCode, resp.Header.Get(wire.HeaderError))
	}
	resp = doReq(t, client, "GET", ts.URL+wire.PathBlobs+"ghost", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(wire.HeaderError) != "notfound" {
		t.Fatalf("get missing: status=%d err=%q", resp.StatusCode, resp.Header.Get(wire.HeaderError))
	}

	resp = doReq(t, client, "DELETE", ts.URL+wire.PathBlobs+"a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp = doReq(t, client, "GET", ts.URL+wire.PathBlobs+"a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

// TestRangeRequests pins ranged GETs riding blob.Reader.ReadAt:
// correct bytes with 206 + Content-Range, suffix and open-ended forms,
// and a typed 416 for a range past EOF.
func TestRangeRequests(t *testing.T) {
	_, ts, client := newTestServer(t, dataStore(t), Config{})
	data := make([]byte, 1*units.MB)
	for i := range data {
		data[i] = byte(i % 249)
	}
	resp := doReq(t, client, "PUT", ts.URL+wire.PathBlobs+"a", data)
	resp.Body.Close()

	get := func(rng string) (*http.Response, []byte) {
		req, _ := http.NewRequest("GET", ts.URL+wire.PathBlobs+"a", nil)
		req.Header.Set("Range", rng)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	resp, body := get("bytes=1000-1999")
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[1000:2000]) {
		t.Fatalf("mid range: status=%d len=%d", resp.StatusCode, len(body))
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes 1000-1999/%d", len(data)) {
		t.Fatalf("Content-Range = %q", cr)
	}

	resp, body = get(fmt.Sprintf("bytes=%d-", len(data)-512))
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[len(data)-512:]) {
		t.Fatalf("open-ended range: status=%d len=%d", resp.StatusCode, len(body))
	}

	resp, body = get("bytes=-256")
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, data[len(data)-256:]) {
		t.Fatalf("suffix range: status=%d len=%d", resp.StatusCode, len(body))
	}

	resp, _ = get(fmt.Sprintf("bytes=%d-", len(data)+10))
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable ||
		resp.Header.Get(wire.HeaderError) != "outofrange" {
		t.Fatalf("past-EOF range: status=%d err=%q", resp.StatusCode, resp.Header.Get(wire.HeaderError))
	}

	// A malformed Range header is ignored: whole object, 200.
	resp, body = get("bytes=banana")
	if resp.StatusCode != http.StatusOK || len(body) != len(data) {
		t.Fatalf("malformed range: status=%d len=%d", resp.StatusCode, len(body))
	}
}

// gateStore blocks Open until the gate closes — the deterministic
// saturation fixture: an admitted op holds its admission slot as long
// as the test wants.
type gateStore struct {
	blob.Store
	gate chan struct{}
}

func (g *gateStore) Open(ctx context.Context, key string) (blob.Reader, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Store.Open(ctx, key)
}

// TestAdmissionSaturation pins the shed contract exactly: with
// MaxInFlight=1 and MaxQueue=2, ten concurrent reads against a gated
// store resolve as 7 immediate 429s (overloaded), 2 queue-timeout 503s
// (unavailable), and 1 success once the gate opens. The pending
// counter makes the split deterministic regardless of arrival order.
func TestAdmissionSaturation(t *testing.T) {
	inner := dataStore(t)
	if err := blob.Put(context.Background(), inner, "a", 64*units.KB, make([]byte, 64*units.KB)); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	reg := obs.NewWallRegistry()
	_, ts, client := newTestServer(t, &gateStore{Store: inner, gate: gate}, Config{
		MaxInFlight:  1,
		MaxQueue:     2,
		QueueTimeout: 200 * time.Millisecond,
		Registry:     reg,
	})

	const N = 10
	type result struct {
		status int
		errHdr string
	}
	results := make(chan result, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(ts.URL + wire.PathBlobs + "a")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get(wire.HeaderError)}
		}()
	}

	// Release the gate once the queue-timeout refusals have drained:
	// wait for the two 503s and seven 429s, then open.
	counts := map[int]int{}
	hdrs := map[string]int{}
	for i := 0; i < N-1; i++ {
		r := <-results
		counts[r.status]++
		hdrs[r.errHdr]++
	}
	close(gate)
	r := <-results
	counts[r.status]++
	wg.Wait()

	if counts[http.StatusTooManyRequests] != 7 {
		t.Fatalf("429 count = %d, want 7 (counts: %v)", counts[http.StatusTooManyRequests], counts)
	}
	if counts[http.StatusServiceUnavailable] != 2 {
		t.Fatalf("503 count = %d, want 2 (counts: %v)", counts[http.StatusServiceUnavailable], counts)
	}
	if counts[http.StatusOK] != 1 {
		t.Fatalf("200 count = %d, want 1 (counts: %v)", counts[http.StatusOK], counts)
	}
	if hdrs["overloaded"] != 7 || hdrs["unavailable"] != 2 {
		t.Fatalf("error headers = %v, want 7 overloaded + 2 unavailable", hdrs)
	}
	snap := reg.Snapshot()
	if snap.Counters["admission.shed"] != 7 || snap.Counters["admission.timeout"] != 2 {
		t.Fatalf("admission counters = shed:%d timeout:%d, want 7/2",
			snap.Counters["admission.shed"], snap.Counters["admission.timeout"])
	}
}

// TestRequestDeadline pins the per-request deadline: a request stalled
// in the store past RequestTimeout fails typed as deadline (504).
func TestRequestDeadline(t *testing.T) {
	inner := dataStore(t)
	if err := blob.Put(context.Background(), inner, "a", 64*units.KB, make([]byte, 64*units.KB)); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	_, ts, client := newTestServer(t, &gateStore{Store: inner, gate: gate}, Config{
		RequestTimeout: 100 * time.Millisecond,
	})
	resp := doReq(t, client, "GET", ts.URL+wire.PathBlobs+"a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || resp.Header.Get(wire.HeaderError) != "deadline" {
		t.Fatalf("stalled GET: status=%d err=%q, want 504 deadline",
			resp.StatusCode, resp.Header.Get(wire.HeaderError))
	}
}

// TestSessionLifecycleAndTTL pins the stateful path: sessions resolve
// by handle, a reaped session releases its resources (a swept writer
// frees the key's write lock; a swept reader handle turns 404), and
// sweep honors last-use stamps.
func TestSessionLifecycleAndTTL(t *testing.T) {
	srv, ts, client := newTestServer(t, dataStore(t), Config{SessionTTL: time.Hour})
	if resp := doReq(t, client, "PUT", ts.URL+wire.PathBlobs+"a", make([]byte, 64*units.KB)); true {
		resp.Body.Close()
	}

	// Open a reader session and read through it.
	resp := doReq(t, client, "POST", ts.URL+wire.PathRead+"a", nil)
	var open wire.OpenResponse
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if open.Size != 64*units.KB || open.Handle == "" {
		t.Fatalf("open = %+v", open)
	}
	resp = doReq(t, client, "GET", ts.URL+wire.PathReadH+open.Handle+"?off=1024&len=512", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 512 {
		t.Fatalf("session read: status=%d len=%d", resp.StatusCode, len(body))
	}

	// Open a writer session: the key is now write-locked (ErrBusy for a
	// second writer).
	resp = doReq(t, client, "POST", ts.URL+wire.PathWrite+"a?mode=replace&size=1024", nil)
	var wopen wire.WriteOpenResponse
	json.NewDecoder(resp.Body).Decode(&wopen)
	resp.Body.Close()
	if wopen.Handle == "" {
		t.Fatal("no writer handle")
	}
	resp = doReq(t, client, "POST", ts.URL+wire.PathWrite+"a?mode=replace&size=1024", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusLocked || resp.Header.Get(wire.HeaderError) != "busy" {
		t.Fatalf("second writer: status=%d err=%q", resp.StatusCode, resp.Header.Get(wire.HeaderError))
	}

	// The janitor reaps both after the TTL: simulate the passage of an
	// hour by sweeping with a synthetic now.
	if r, w := srv.sessions.counts(); r != 1 || w != 1 {
		t.Fatalf("live sessions = %d readers, %d writers, want 1/1", r, w)
	}
	if n := srv.sessions.sweep(obs.WallNow() + (time.Hour + time.Minute).Nanoseconds()); n != 2 {
		t.Fatalf("sweep reaped %d, want 2", n)
	}
	resp = doReq(t, client, "GET", ts.URL+wire.PathReadH+open.Handle, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("read on reaped session = %d, want 404", resp.StatusCode)
	}
	// The swept writer released the key: a new writer session succeeds.
	resp = doReq(t, client, "POST", ts.URL+wire.PathWrite+"a?mode=replace&size=1024", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("writer after sweep = %d, want 200", resp.StatusCode)
	}
}

// TestMetricsAndReport pins the observability endpoints: /metrics is a
// wall-unit PhaseReport with serve histograms, /report is a
// schema-valid RunReport.
func TestMetricsAndReport(t *testing.T) {
	_, ts, client := newTestServer(t, dataStore(t), Config{Registry: obs.NewWallRegistry()})
	resp := doReq(t, client, "PUT", ts.URL+wire.PathBlobs+"a", make([]byte, 32*units.KB))
	resp.Body.Close()
	resp = doReq(t, client, "GET", ts.URL+wire.PathBlobs+"a", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp = doReq(t, client, "GET", ts.URL+wire.PathMetrics, nil)
	var phase obs.PhaseReport
	if err := json.NewDecoder(resp.Body).Decode(&phase); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if phase.TimeUnit != obs.UnitWall {
		t.Fatalf("metrics time_unit = %q, want wall_ns", phase.TimeUnit)
	}
	if h := phase.Histograms["serve.get"]; h == nil || h.Count < 1 {
		t.Fatalf("serve.get histogram missing from metrics: %+v", phase.Histograms)
	}
	if h := phase.Histograms["serve.put"]; h == nil || h.Count < 1 {
		t.Fatal("serve.put histogram missing from metrics")
	}

	resp = doReq(t, client, "GET", ts.URL+wire.PathReport, nil)
	var report map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if report["schema"] != obs.ReportSchema {
		t.Fatalf("report schema = %v, want %s", report["schema"], obs.ReportSchema)
	}
	exps, _ := report["experiments"].([]any)
	if len(exps) != 1 {
		t.Fatalf("report experiments = %d, want 1", len(exps))
	}
}

// TestMetadataModePut pins the metadata-only wire form: a PUT with the
// meta-bytes header writes logical bytes with no payload, and reads
// come back flagged metadata with an empty body.
func TestMetadataModePut(t *testing.T) {
	s, err := core.NewDBStore(vclock.New(),
		blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, client := newTestServer(t, s, Config{})

	req, _ := http.NewRequest("PUT", ts.URL+wire.PathBlobs+"m", nil)
	req.Header.Set(wire.HeaderMetaBytes, strconv.FormatInt(512*units.KB, 10))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta PUT = %d", resp.StatusCode)
	}

	resp = doReq(t, client, "GET", ts.URL+wire.PathBlobs+"m", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(wire.HeaderMeta) != "1" || len(body) != 0 {
		t.Fatalf("meta GET: status=%d meta=%q len=%d", resp.StatusCode, resp.Header.Get(wire.HeaderMeta), len(body))
	}
	if resp.Header.Get(wire.HeaderSize) != strconv.FormatInt(512*units.KB, 10) {
		t.Fatalf("meta GET size = %q", resp.Header.Get(wire.HeaderSize))
	}
}

// TestWallRegistryRequired pins the unit guard at the server boundary.
func TestWallRegistryRequired(t *testing.T) {
	_, err := New(dataStore(t), Config{Registry: obs.NewRegistry()})
	if err == nil {
		t.Fatal("virtual-unit registry accepted, want ErrBadOption")
	}
	srv, err := New(dataStore(t), Config{Registry: obs.NewWallRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
}
