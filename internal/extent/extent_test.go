package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunBasics(t *testing.T) {
	r := Run{Start: 10, Len: 5}
	if r.End() != 15 {
		t.Fatalf("End = %d", r.End())
	}
	if !r.Contains(10) || !r.Contains(14) || r.Contains(15) || r.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if !r.Overlaps(Run{Start: 14, Len: 1}) || r.Overlaps(Run{Start: 15, Len: 1}) {
		t.Fatal("Overlaps wrong")
	}
	if !r.Adjacent(Run{Start: 15, Len: 3}) || !r.Adjacent(Run{Start: 7, Len: 3}) {
		t.Fatal("Adjacent wrong")
	}
	if r.Adjacent(Run{Start: 16, Len: 3}) {
		t.Fatal("non-adjacent reported adjacent")
	}
}

func TestFreeCoalesce(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 10})
	f.Free(Run{Start: 20, Len: 10})
	if f.RunCount() != 2 {
		t.Fatalf("RunCount = %d, want 2", f.RunCount())
	}
	// Fill the gap: all three coalesce into one run.
	f.Free(Run{Start: 10, Len: 10})
	if f.RunCount() != 1 {
		t.Fatalf("RunCount after merge = %d, want 1", f.RunCount())
	}
	r, ok := f.LargestRun()
	if !ok || r != (Run{Start: 0, Len: 30}) {
		t.Fatalf("LargestRun = %v", r)
	}
	if f.FreeClusters() != 30 {
		t.Fatalf("FreeClusters = %d", f.FreeClusters())
	}
	f.CheckInvariants()
}

func TestDoubleFreePanics(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Free(Run{Start: 5, Len: 2})
}

func TestTakeFirstFit(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 100, Len: 4})
	f.Free(Run{Start: 0, Len: 2})
	f.Free(Run{Start: 50, Len: 8})
	r, ok := f.TakeFirstFit(3)
	if !ok || r != (Run{Start: 50, Len: 3}) {
		t.Fatalf("TakeFirstFit(3) = %v,%v; want [50,+3)", r, ok)
	}
	// Remainder of the split run must still be free.
	if !f.IsFree(Run{Start: 53, Len: 5}) {
		t.Fatal("split remainder not free")
	}
	if _, ok := f.TakeFirstFit(100); ok {
		t.Fatal("oversized TakeFirstFit succeeded")
	}
	f.CheckInvariants()
}

func TestTakeBestFit(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 10})
	f.Free(Run{Start: 20, Len: 4})
	f.Free(Run{Start: 40, Len: 6})
	r, ok := f.TakeBestFit(4)
	if !ok || r != (Run{Start: 20, Len: 4}) {
		t.Fatalf("TakeBestFit(4) = %v, want exact [20,+4)", r)
	}
	r, ok = f.TakeBestFit(5)
	if !ok || r != (Run{Start: 40, Len: 5}) {
		t.Fatalf("TakeBestFit(5) = %v, want [40,+5)", r)
	}
	f.CheckInvariants()
}

func TestTakeWorstFit(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 10})
	f.Free(Run{Start: 20, Len: 4})
	r, ok := f.TakeWorstFit(2)
	if !ok || r != (Run{Start: 0, Len: 2}) {
		t.Fatalf("TakeWorstFit = %v", r)
	}
	f.CheckInvariants()
}

func TestTakeNextFit(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 5})
	f.Free(Run{Start: 10, Len: 5})
	f.Free(Run{Start: 20, Len: 5})
	r, cur, ok := f.TakeNextFit(3, 8)
	if !ok || r.Start != 10 || cur != 13 {
		t.Fatalf("TakeNextFit from 8 = %v cur=%d", r, cur)
	}
	// Wraps around when nothing ahead fits.
	r, _, ok = f.TakeNextFit(5, 21)
	if !ok || r.Start != 0 {
		t.Fatalf("TakeNextFit wrap = %v", r)
	}
	f.CheckInvariants()
}

func TestTakeUpTo(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 3})
	f.Free(Run{Start: 10, Len: 8})
	r, ok := f.TakeUpTo(100)
	if !ok || r != (Run{Start: 10, Len: 8}) {
		t.Fatalf("TakeUpTo = %v", r)
	}
	r, ok = f.TakeUpTo(2)
	if !ok || r != (Run{Start: 0, Len: 2}) {
		t.Fatalf("TakeUpTo(2) = %v", r)
	}
	f.CheckInvariants()
}

func TestTakeAtAndExtendAt(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 10, Len: 10})
	if _, ok := f.TakeAt(5, 3); ok {
		t.Fatal("TakeAt outside free space succeeded")
	}
	r, ok := f.TakeAt(12, 3)
	if !ok || r != (Run{Start: 12, Len: 3}) {
		t.Fatalf("TakeAt = %v", r)
	}
	// [10,12) and [15,20) remain.
	if f.RunCount() != 2 || f.FreeClusters() != 7 {
		t.Fatalf("after TakeAt: runs=%d free=%d", f.RunCount(), f.FreeClusters())
	}
	r, ok = f.ExtendAt(15, 100)
	if !ok || r != (Run{Start: 15, Len: 5}) {
		t.Fatalf("ExtendAt = %v", r)
	}
	if _, ok := f.ExtendAt(15, 1); ok {
		t.Fatal("ExtendAt on used space succeeded")
	}
	f.CheckInvariants()
}

func TestReserve(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 100})
	if !f.Reserve(Run{Start: 40, Len: 20}) {
		t.Fatal("Reserve failed")
	}
	if f.IsFree(Run{Start: 40, Len: 1}) {
		t.Fatal("reserved space still free")
	}
	if !f.IsFree(Run{Start: 0, Len: 40}) || !f.IsFree(Run{Start: 60, Len: 40}) {
		t.Fatal("split remainders not free")
	}
	if f.Reserve(Run{Start: 30, Len: 20}) {
		t.Fatal("Reserve spanning used space succeeded")
	}
	f.CheckInvariants()
}

func TestAscendSizeDesc(t *testing.T) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 5})
	f.Free(Run{Start: 10, Len: 20})
	f.Free(Run{Start: 40, Len: 10})
	var lens []int64
	f.AscendSizeDesc(func(r Run) bool { lens = append(lens, r.Len); return true })
	want := []int64{20, 10, 5}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("size order %v, want %v", lens, want)
		}
	}
}

// Property: random alloc/free cycles conserve clusters exactly and never
// produce overlapping or uncoalesced free runs.
func TestQuickConservation(t *testing.T) {
	const volume = 1 << 14
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fi := NewFreeIndex()
		fi.Free(Run{Start: 0, Len: volume})
		var held []Run
		for op := 0; op < 400; op++ {
			if rng.Intn(2) == 0 && fi.FreeClusters() > 0 {
				n := rng.Int63n(64) + 1
				var r Run
				var ok bool
				switch rng.Intn(4) {
				case 0:
					r, ok = fi.TakeFirstFit(n)
				case 1:
					r, ok = fi.TakeBestFit(n)
				case 2:
					r, ok = fi.TakeWorstFit(n)
				case 3:
					r, ok = fi.TakeUpTo(n)
				}
				if ok {
					held = append(held, r)
				}
			} else if len(held) > 0 {
				i := rng.Intn(len(held))
				fi.Free(held[i])
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}
			var heldSum int64
			for _, r := range held {
				heldSum += r.Len
			}
			if heldSum+fi.FreeClusters() != volume {
				return false
			}
		}
		fi.CheckInvariants()
		// Free everything back: must coalesce to a single full-volume run.
		for _, r := range held {
			fi.Free(r)
		}
		return fi.RunCount() == 1 && fi.FreeClusters() == volume
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
