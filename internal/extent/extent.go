// Package extent defines the contiguous-run abstraction used throughout the
// storage stack and a free-space index with the two orderings every
// allocation policy in the paper's discussion needs:
//
//   - by volume offset, with automatic neighbour coalescing on free — the
//     structure a filesystem bitmap or run list provides, and
//   - by (length, offset) — the structure behind best-fit, worst-fit and the
//     NTFS run cache's "runs of contiguous free clusters ordered in
//     decreasing size" (paper §2).
//
// All quantities are in clusters; the disk layer converts bytes to clusters.
package extent

import (
	"fmt"

	"repro/internal/btree"
)

// Run is a contiguous range of clusters [Start, Start+Len).
type Run struct {
	Start int64 // first cluster
	Len   int64 // number of clusters, > 0 for valid runs
}

// End returns the first cluster after the run.
func (r Run) End() int64 { return r.Start + r.Len }

// Contains reports whether cluster c lies inside the run.
func (r Run) Contains(c int64) bool { return c >= r.Start && c < r.End() }

// Overlaps reports whether two runs share any cluster.
func (r Run) Overlaps(o Run) bool { return r.Start < o.End() && o.Start < r.End() }

// Adjacent reports whether o begins exactly where r ends or vice versa.
func (r Run) Adjacent(o Run) bool { return r.End() == o.Start || o.End() == r.Start }

func (r Run) String() string { return fmt.Sprintf("[%d,+%d)", r.Start, r.Len) }

// SumLen returns the total cluster count of runs.
func SumLen(runs []Run) int64 {
	var n int64
	for _, r := range runs {
		n += r.Len
	}
	return n
}

// sizeKey orders runs by length then offset so that best-fit (Ceiling) and
// largest-first (Descend) are both single tree operations.
type sizeKey struct {
	len   int64
	start int64
}

// FreeIndex tracks the free runs of a volume. It maintains both orderings
// and coalesces adjacent runs on Free. The zero value is not usable; create
// one with NewFreeIndex.
type FreeIndex struct {
	byOffset *btree.Map[int64, int64]      // start -> len
	bySize   *btree.Map[sizeKey, struct{}] // (len,start) -> {}
	free     int64                         // total free clusters
}

// NewFreeIndex returns an empty index.
func NewFreeIndex() *FreeIndex {
	return &FreeIndex{
		byOffset: btree.New[int64, int64](func(a, b int64) bool { return a < b }),
		bySize: btree.New[sizeKey, struct{}](func(a, b sizeKey) bool {
			if a.len != b.len {
				return a.len < b.len
			}
			return a.start < b.start
		}),
	}
}

// FreeClusters returns the total number of free clusters tracked.
func (f *FreeIndex) FreeClusters() int64 { return f.free }

// RunCount returns the number of distinct free runs.
func (f *FreeIndex) RunCount() int { return f.byOffset.Len() }

// LargestRun returns the largest free run, or ok=false when empty.
func (f *FreeIndex) LargestRun() (Run, bool) {
	k, _, ok := f.bySize.Max()
	if !ok {
		return Run{}, false
	}
	return Run{Start: k.start, Len: k.len}, true
}

func (f *FreeIndex) insert(r Run) {
	f.byOffset.Put(r.Start, r.Len)
	f.bySize.Put(sizeKey{r.Len, r.Start}, struct{}{})
	f.free += r.Len
}

func (f *FreeIndex) remove(r Run) {
	if !f.byOffset.Delete(r.Start) {
		panic(fmt.Sprintf("extent: remove of untracked run %v", r))
	}
	if !f.bySize.Delete(sizeKey{r.Len, r.Start}) {
		panic(fmt.Sprintf("extent: size index missing run %v", r))
	}
	f.free -= r.Len
}

// Free returns run r to the index, coalescing with adjacent free runs.
// It panics if r overlaps space that is already free (a double free).
func (f *FreeIndex) Free(r Run) {
	if r.Len <= 0 {
		panic(fmt.Sprintf("extent: Free of empty run %v", r))
	}
	// Check and absorb the predecessor.
	if ps, pl, ok := f.byOffset.Floor(r.Start); ok {
		prev := Run{Start: ps, Len: pl}
		if prev.Overlaps(r) {
			panic(fmt.Sprintf("extent: double free: %v overlaps free %v", r, prev))
		}
		if prev.End() == r.Start {
			f.remove(prev)
			r = Run{Start: prev.Start, Len: prev.Len + r.Len}
		}
	}
	// Check and absorb the successor.
	if ns, nl, ok := f.byOffset.Ceiling(r.Start + 1); ok {
		next := Run{Start: ns, Len: nl}
		if next.Overlaps(r) {
			panic(fmt.Sprintf("extent: double free: %v overlaps free %v", r, next))
		}
		if r.End() == next.Start {
			f.remove(next)
			r = Run{Start: r.Start, Len: r.Len + next.Len}
		}
	}
	f.insert(r)
}

// Reserve removes the specific run r from the free index, splitting a
// containing run as needed. It reports whether r was entirely free.
func (f *FreeIndex) Reserve(r Run) bool {
	if r.Len <= 0 {
		return false
	}
	s, l, ok := f.byOffset.Floor(r.Start)
	if !ok {
		return false
	}
	host := Run{Start: s, Len: l}
	if r.Start < host.Start || r.End() > host.End() {
		return false
	}
	f.remove(host)
	if host.Start < r.Start {
		f.insert(Run{Start: host.Start, Len: r.Start - host.Start})
	}
	if r.End() < host.End() {
		f.insert(Run{Start: r.End(), Len: host.End() - r.End()})
	}
	return true
}

// IsFree reports whether the entire run r is currently free.
func (f *FreeIndex) IsFree(r Run) bool {
	s, l, ok := f.byOffset.Floor(r.Start)
	if !ok {
		return false
	}
	host := Run{Start: s, Len: l}
	return r.Start >= host.Start && r.End() <= host.End()
}

// TakeFirstFit removes and returns the lowest-offset free run of at least n
// clusters, trimmed to exactly n. ok=false if no run is large enough.
func (f *FreeIndex) TakeFirstFit(n int64) (Run, bool) {
	var got Run
	found := false
	f.byOffset.Ascend(func(start, length int64) bool {
		if length >= n {
			got = Run{Start: start, Len: length}
			found = true
			return false
		}
		return true
	})
	if !found {
		return Run{}, false
	}
	f.takePrefix(got, n)
	return Run{Start: got.Start, Len: n}, true
}

// TakeFirstFitBelow removes and returns the lowest-offset free run of at
// least n clusters that starts below limit, trimmed to exactly n.
func (f *FreeIndex) TakeFirstFitBelow(n, limit int64) (Run, bool) {
	var got Run
	found := false
	f.byOffset.Ascend(func(start, length int64) bool {
		if start >= limit {
			return false
		}
		if length >= n {
			got = Run{Start: start, Len: length}
			found = true
			return false
		}
		return true
	})
	if !found {
		return Run{}, false
	}
	f.takePrefix(got, n)
	return Run{Start: got.Start, Len: n}, true
}

// TakeBestFit removes and returns the smallest free run of at least n
// clusters (ties to lowest offset), trimmed to exactly n.
func (f *FreeIndex) TakeBestFit(n int64) (Run, bool) {
	k, _, ok := f.bySize.Ceiling(sizeKey{len: n, start: -1 << 62})
	if !ok {
		return Run{}, false
	}
	got := Run{Start: k.start, Len: k.len}
	f.takePrefix(got, n)
	return Run{Start: got.Start, Len: n}, true
}

// TakeWorstFit removes and returns the prefix of the largest free run,
// trimmed to exactly n clusters.
func (f *FreeIndex) TakeWorstFit(n int64) (Run, bool) {
	k, _, ok := f.bySize.Max()
	if !ok || k.len < n {
		return Run{}, false
	}
	got := Run{Start: k.start, Len: k.len}
	f.takePrefix(got, n)
	return Run{Start: got.Start, Len: n}, true
}

// TakeNextFit behaves like first fit but starts scanning at cursor,
// wrapping around. It returns the new cursor (end of the allocation).
func (f *FreeIndex) TakeNextFit(n, cursor int64) (Run, int64, bool) {
	var got Run
	found := false
	scan := func(start, length int64) bool {
		if length >= n {
			got = Run{Start: start, Len: length}
			found = true
			return false
		}
		return true
	}
	f.byOffset.AscendFrom(cursor, scan)
	if !found {
		f.byOffset.Ascend(scan)
	}
	if !found {
		return Run{}, cursor, false
	}
	f.takePrefix(got, n)
	r := Run{Start: got.Start, Len: n}
	return r, r.End(), true
}

// TakeUpTo removes and returns the prefix of the largest free run, with
// length min(n, run length). Used by allocators that accept fragmentation:
// callers loop until they have n clusters total.
func (f *FreeIndex) TakeUpTo(n int64) (Run, bool) {
	k, _, ok := f.bySize.Max()
	if !ok {
		return Run{}, false
	}
	got := Run{Start: k.start, Len: k.len}
	take := min(n, got.Len)
	f.takePrefix(got, take)
	return Run{Start: got.Start, Len: take}, true
}

// TakeAt attempts to reserve exactly n clusters starting at cluster start.
// Used for sequential tail extension (NTFS's contiguous-append behaviour).
func (f *FreeIndex) TakeAt(start, n int64) (Run, bool) {
	r := Run{Start: start, Len: n}
	if !f.Reserve(r) {
		return Run{}, false
	}
	return r, true
}

// ExtendAt reserves as many clusters as are free at start, up to n.
// Returns ok=false if even one cluster at start is unavailable.
func (f *FreeIndex) ExtendAt(start, n int64) (Run, bool) {
	s, l, ok := f.byOffset.Floor(start)
	if !ok {
		return Run{}, false
	}
	host := Run{Start: s, Len: l}
	if !host.Contains(start) {
		return Run{}, false
	}
	avail := host.End() - start
	take := min(n, avail)
	r := Run{Start: start, Len: take}
	if !f.Reserve(r) {
		panic("extent: ExtendAt reserve failed after check")
	}
	return r, true
}

// takePrefix removes the first n clusters of tracked run got.
func (f *FreeIndex) takePrefix(got Run, n int64) {
	if n > got.Len {
		panic(fmt.Sprintf("extent: takePrefix %d from %v", n, got))
	}
	f.remove(got)
	if n < got.Len {
		f.insert(Run{Start: got.Start + n, Len: got.Len - n})
	}
}

// Runs returns all free runs in offset order. Intended for tools and tests.
func (f *FreeIndex) Runs() []Run {
	out := make([]Run, 0, f.byOffset.Len())
	f.byOffset.Ascend(func(s, l int64) bool {
		out = append(out, Run{Start: s, Len: l})
		return true
	})
	return out
}

// AscendSizeDesc visits free runs from largest to smallest (ties by higher
// offset first, matching NTFS's "decreasing size and volume offset" cache
// order) until fn returns false.
func (f *FreeIndex) AscendSizeDesc(fn func(Run) bool) {
	f.bySize.Descend(func(k sizeKey, _ struct{}) bool {
		return fn(Run{Start: k.start, Len: k.len})
	})
}

// CheckInvariants panics if the two indexes disagree, runs overlap, or
// adjacent runs were left uncoalesced. Intended for tests.
func (f *FreeIndex) CheckInvariants() {
	if f.byOffset.Len() != f.bySize.Len() {
		panic("extent: index length mismatch")
	}
	var prev *Run
	var total int64
	f.byOffset.Ascend(func(s, l int64) bool {
		r := Run{Start: s, Len: l}
		if l <= 0 {
			panic(fmt.Sprintf("extent: empty run %v in index", r))
		}
		if _, ok := f.bySize.Get(sizeKey{l, s}); !ok {
			panic(fmt.Sprintf("extent: run %v missing from size index", r))
		}
		if prev != nil {
			if prev.Overlaps(r) {
				panic(fmt.Sprintf("extent: overlapping free runs %v %v", *prev, r))
			}
			if prev.End() == r.Start {
				panic(fmt.Sprintf("extent: uncoalesced free runs %v %v", *prev, r))
			}
		}
		rr := r
		prev = &rr
		total += l
		return true
	})
	if total != f.free {
		panic(fmt.Sprintf("extent: free count %d != sum %d", f.free, total))
	}
}
