package extent

import (
	"math/rand"
	"testing"
)

// BenchmarkAllocFreeCycle measures the free-index hot path under the
// churn pattern the aging workload produces.
func BenchmarkAllocFreeCycle(b *testing.B) {
	f := NewFreeIndex()
	f.Free(Run{Start: 0, Len: 1 << 22})
	rng := rand.New(rand.NewSource(1))
	var held []Run
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(held) < 512 || rng.Intn(2) == 0 {
			if r, ok := f.TakeFirstFit(int64(rng.Intn(256) + 1)); ok {
				held = append(held, r)
				continue
			}
		}
		if len(held) > 0 {
			j := rng.Intn(len(held))
			f.Free(held[j])
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
}

func BenchmarkTakeBestFit(b *testing.B) {
	f := NewFreeIndex()
	// Many holes of varied sizes.
	for i := int64(0); i < 4096; i++ {
		f.Free(Run{Start: i * 1000, Len: 1 + i%512})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, ok := f.TakeBestFit(int64(i%500 + 1)); ok {
			f.Free(r)
		}
	}
}

func BenchmarkCoalescingFree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := NewFreeIndex()
		b.StartTimer()
		// Free alternating then fill gaps: every second op coalesces.
		for j := int64(0); j < 128; j++ {
			f.Free(Run{Start: j * 2 * 16, Len: 16})
		}
		for j := int64(0); j < 128; j++ {
			f.Free(Run{Start: j*2*16 + 16, Len: 16})
		}
	}
}
