package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/vclock"
)

func fileInner(opts ...blob.Option) blob.Store {
	s, err := core.NewFileStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

func dbInner(opts ...blob.Option) blob.Store {
	s, err := core.NewDBStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// mixedShardInner builds a 4-shard mixed fleet (2 filesystem + 2
// database children on one clock).
func mixedShardInner(opts ...blob.Option) blob.Store {
	clock := vclock.New()
	children := make([]blob.Store, 4)
	for i := range children {
		var err error
		if i%2 == 0 {
			children[i], err = core.NewFileStore(clock, opts...)
		} else {
			children[i], err = core.NewDBStore(clock, opts...)
		}
		if err != nil {
			panic(err)
		}
	}
	s, err := shard.New(children...)
	if err != nil {
		panic(err)
	}
	return s
}

// serve wraps an inner-store factory so that every store the
// conformance suite asks for is served by a real fragserve front-end
// on a live TCP listener and accessed through a dialed client. Each
// store gets its own server and listener; all of them are torn down
// via t.Cleanup, and leakcheck verifies nothing survives.
func serve(t *testing.T, mk conformance.Factory) conformance.Factory {
	t.Helper()
	return func(opts ...blob.Option) blob.Store {
		srv, err := server.New(mk(opts...), server.Config{
			// The suite abandons handles on purpose (version-pinning
			// tests); a long TTL keeps the janitor from racing them.
			SessionTTL: time.Hour,
		})
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(srv)
		c, err := client.Dial(ts.URL)
		if err != nil {
			ts.Close()
			srv.Close()
			panic(err)
		}
		t.Cleanup(func() {
			c.Close()
			ts.Close()
			srv.Close()
		})
		return c
	}
}

// TestClientConformance is the tentpole proof: the remote store passes
// the exact cross-backend contract suite — typed sentinels, version
// pinning, exclusive writers, streaming appends, safe replace, context
// cancellation and deadlines — end to end through a real HTTP listener,
// against both single-volume backends and a 4-shard mixed fleet.
func TestClientConformance(t *testing.T) {
	inners := []struct {
		name string
		mk   conformance.Factory
	}{
		{"Filesystem", fileInner},
		{"Database", dbInner},
		{"Sharded4Mixed", mixedShardInner},
	}
	for _, in := range inners {
		t.Run(in.name, func(t *testing.T) {
			conformance.Run(t, serve(t, in.mk))
		})
	}
}

// TestClientClockRatchet pins the virtual-time bridge: the client's
// clock mirrors the served store's clock after each response, and never
// runs backwards.
func TestClientClockRatchet(t *testing.T) {
	ctx := context.Background()
	inner := fileInner(blob.WithCapacity(1<<20), blob.WithDiskMode(disk.DataMode))
	mk := serve(t, func(opts ...blob.Option) blob.Store { return inner })
	c := mk().(*client.Store)

	if got := c.Clock().Now(); got != inner.Clock().Now() {
		t.Fatalf("clock after dial = %d, server at %d", got, inner.Clock().Now())
	}
	if err := blob.Put(ctx, c, "k", 256<<10, make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Get(ctx, c, "k"); err != nil {
		t.Fatal(err)
	}
	after := c.Clock().Now()
	if after == 0 {
		t.Fatal("client clock did not advance with served ops")
	}
	if after != inner.Clock().Now() {
		t.Fatalf("client clock %d != server clock %d", after, inner.Clock().Now())
	}
	// A ranged read must cost less virtual time than the full read —
	// the paper's core asymmetry, observed from the far side of the wire.
	r, err := c.Open(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	t0 := c.Clock().Now()
	if _, err := r.ReadAt(0, 4096); err != nil {
		t.Fatal(err)
	}
	rangedCost := c.Clock().Now() - t0
	t1 := c.Clock().Now()
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	fullCost := c.Clock().Now() - t1
	if rangedCost <= 0 || fullCost <= rangedCost {
		t.Fatalf("ranged read cost %dns, full read cost %dns; want 0 < ranged < full", rangedCost, fullCost)
	}
}

// TestClientOneShotPaths covers the loadgen fast paths (Fetch, FetchAt,
// Upload) that bypass the session protocol.
func TestClientOneShotPaths(t *testing.T) {
	ctx := context.Background()
	mk := serve(t, fileInner)
	c := mk(blob.WithCapacity(1<<20), blob.WithDiskMode(disk.DataMode)).(*client.Store)

	payload := []byte("hello, network blob service")
	if err := c.Upload(ctx, "one", int64(len(payload)), payload, false); err != nil {
		t.Fatal(err)
	}
	size, data, err := c.Fetch(ctx, "one")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) || string(data) != string(payload) {
		t.Fatalf("fetch = (%d, %q), want (%d, %q)", size, data, len(payload), payload)
	}
	part, err := c.FetchAt(ctx, "one", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(part) != "network" {
		t.Fatalf("fetchAt = %q, want %q", part, "network")
	}
	// Create mode refuses to clobber; replace mode is the safe overwrite.
	if err := c.Upload(ctx, "one", 3, []byte("new"), false); !errors.Is(err, blob.ErrAlreadyExists) {
		t.Fatalf("create-mode upload over live key = %v, want ErrAlreadyExists", err)
	}
	if err := c.Upload(ctx, "one", 3, []byte("new"), true); err != nil {
		t.Fatal(err)
	}
	if _, data, err := c.Fetch(ctx, "one"); err != nil || string(data) != "new" {
		t.Fatalf("after replace: (%q, %v)", data, err)
	}
	if _, _, err := c.Fetch(ctx, "absent"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("fetch of absent key = %v, want ErrNotFound", err)
	}
	if _, err := c.FetchAt(ctx, "one", 5, 1); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("out-of-range fetchAt = %v, want ErrOutOfRange", err)
	}
}

// TestClientAccountingSurface covers the no-context accounting methods
// and the layout bridge used by fragmentation analysis.
func TestClientAccountingSurface(t *testing.T) {
	ctx := context.Background()
	inner := fileInner(blob.WithCapacity(1 << 20))
	mk := serve(t, func(opts ...blob.Option) blob.Store { return inner })
	c := mk().(*client.Store)

	for _, k := range []string{"a", "b", "c"} {
		if err := blob.Put(ctx, c, k, 1024, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := c.ObjectCount(), inner.ObjectCount(); got != want {
		t.Fatalf("ObjectCount = %d, want %d", got, want)
	}
	if got, want := c.LiveBytes(), inner.LiveBytes(); got != want {
		t.Fatalf("LiveBytes = %d, want %d", got, want)
	}
	if got, want := c.CapacityBytes(), inner.CapacityBytes(); got != want {
		t.Fatalf("CapacityBytes = %d, want %d", got, want)
	}
	if got, want := c.FreeBytes(), inner.FreeBytes(); got != want {
		t.Fatalf("FreeBytes = %d, want %d", got, want)
	}
	keys := c.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v, want 3 keys", keys)
	}
	if c.Name() != inner.Name() {
		t.Fatalf("Name = %q, want %q", c.Name(), inner.Name())
	}

	type layout struct {
		bytes int64
		runs  int
	}
	local := map[string]layout{}
	inner.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
		local[key] = layout{bytes, len(runs)}
	})
	remote := map[string]layout{}
	c.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
		remote[key] = layout{bytes, len(runs)}
	})
	if len(remote) != len(local) {
		t.Fatalf("layout objects: remote %d, local %d", len(remote), len(local))
	}
	for k, l := range local {
		if remote[k] != l {
			t.Fatalf("layout for %q: remote %+v, local %+v", k, remote[k], l)
		}
	}
	localTags := map[string]uint32{}
	inner.EachObjectTag(func(key string, tag uint32) { localTags[key] = tag })
	remoteTags := map[string]uint32{}
	c.EachObjectTag(func(key string, tag uint32) { remoteTags[key] = tag })
	for k, tag := range localTags {
		if remoteTags[k] != tag {
			t.Fatalf("tag for %q: remote %d, local %d", k, remoteTags[k], tag)
		}
	}
}
