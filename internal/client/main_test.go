package client_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any goroutine survives the tests — the
// client spawns per-host connection goroutines and every conformance
// subtest stands up a live listener, so a missed Close shows up here.
func TestMain(m *testing.M) { leakcheck.Main(m) }
