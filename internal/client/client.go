// Package client implements blob.Store over the network blob
// service's wire protocol (internal/server, internal/server/wire): a
// remote store that is contract-identical to a local one. The
// cross-backend conformance suite runs end-to-end through a real
// listener — version-pinned readers, exclusive writers, streaming
// appends, typed sentinels, and context deadlines all survive the hop.
//
// Three mechanisms carry the contract across:
//
//   - Errors travel by name. Every failure response names its sentinel
//     (wire.HeaderError); the client resolves it with blob.Sentinel and
//     wraps, so errors.Is dispatch works on a remote store exactly as
//     on a local one. The HTTP status is the fallback for responses
//     from header-stripping middle boxes.
//
//   - Virtual time travels by ratchet. Every response carries the
//     server store's vclock (wire.HeaderClock); the client advances a
//     local clock monotonically to match, so virtual-cost assertions
//     (ranged reads cheaper than full reads, ...) hold against the
//     client's own Clock().
//
//   - Handles travel by session. Open/Create/Replace map to
//     server-side sessions holding real blob.Reader/blob.Writer
//     handles; the client revalidates locally (blob.StreamState — the
//     same ladder backend writers use) so closed-handle, cancellation,
//     and size-precedence semantics are bit-compatible without a round
//     trip.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/server/wire"
	"repro/internal/vclock"
)

// Store is a blob.Store backed by a remote network blob service.
// Safe for concurrent use. Close releases idle connections.
type Store struct {
	base  string // service base URL, no trailing slash
	hc    *http.Client
	name  string
	clock *vclock.Clock
	mu    sync.Mutex // serializes clock ratcheting (advance-by-delta must not interleave)
}

// Dial connects to a network blob service and verifies it is alive
// (one stats round trip, which also seeds the local virtual clock and
// the store's reported name).
func Dial(baseURL string) (*Store, error) {
	s := &Store{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{Transport: &http.Transport{}},
		clock: vclock.New(),
	}
	st, err := s.stats(context.Background())
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", baseURL, err)
	}
	s.name = st.Name
	return s, nil
}

// Close releases the client's idle connections. Open sessions on the
// server are left to their own Close/Abort (or the server's TTL
// janitor).
func (s *Store) Close() error {
	s.hc.CloseIdleConnections()
	return nil
}

// ratchet advances the local clock to the server clock carried by a
// response, never backwards — concurrent responses may arrive out of
// order, and virtual time is monotonic.
func (s *Store) ratchet(h http.Header) {
	ns, err := strconv.ParseInt(h.Get(wire.HeaderClock), 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	if d := ns - s.clock.Now(); d > 0 {
		s.clock.Advance(d)
	}
	s.mu.Unlock()
}

// do performs one wire call: context pre-check, request, clock
// ratchet, and typed error mapping. On success the caller owns the
// response body. On failure the sentinel named by the response (or
// mapped from its status) is wrapped into the returned error.
func (s *Store) do(ctx context.Context, method, path string, body io.Reader, hdr map[string]string) (*http.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, method, s.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		// A canceled/expired context surfaces wrapped in *url.Error;
		// errors.Is still resolves it, but prefer the bare context error
		// so messages match local-store behavior.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	s.ratchet(resp.Header)
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		sentinel := blob.Sentinel(resp.Header.Get(wire.HeaderError))
		if sentinel == nil {
			sentinel = blob.StatusSentinel(resp.StatusCode)
		}
		if sentinel == nil {
			return nil, fmt.Errorf("client: %s %s: http %d: %s",
				method, path, resp.StatusCode, strings.TrimSpace(string(msg)))
		}
		return nil, fmt.Errorf("%w (remote: %s)", sentinel, strings.TrimSpace(string(msg)))
	}
	return resp, nil
}

// doJSON performs a wire call and decodes a JSON success body into v.
func (s *Store) doJSON(ctx context.Context, method, path string, v any) error {
	resp, err := s.do(ctx, method, path, nil, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// drain consumes and closes a success body the caller doesn't need,
// keeping the connection reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// --- blob.Store ------------------------------------------------------

// Name reports the remote store's own name, so reports and logs label
// a served filesystem store exactly like a local one.
func (s *Store) Name() string { return s.name }

// Clock returns the client's mirror of the server store's virtual
// clock (ratcheted from response headers).
func (s *Store) Clock() *vclock.Clock { return s.clock }

// Open opens a version-pinned reader session on the server.
func (s *Store) Open(ctx context.Context, key string) (blob.Reader, error) {
	resp, err := s.do(ctx, "POST", wire.PathRead+escape(key), nil, nil)
	if err != nil {
		return nil, err
	}
	var open wire.OpenResponse
	err = json.NewDecoder(resp.Body).Decode(&open)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("client: open %s: %w", key, err)
	}
	return &reader{s: s, ctx: ctx, handle: open.Handle, size: open.Size}, nil
}

// Create starts a streaming write of a new object via a server writer
// session.
func (s *Store) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.openWriter(ctx, key, size, wire.ModeCreate)
}

// Replace starts a streaming safe replace via a server writer session.
func (s *Store) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.openWriter(ctx, key, size, wire.ModeReplace)
}

func (s *Store) openWriter(ctx context.Context, key string, size int64, mode string) (blob.Writer, error) {
	path := fmt.Sprintf("%s%s?mode=%s&size=%d", wire.PathWrite, escape(key), mode, size)
	resp, err := s.do(ctx, "POST", path, nil, nil)
	if err != nil {
		return nil, err
	}
	var open wire.WriteOpenResponse
	err = json.NewDecoder(resp.Body).Decode(&open)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", mode, key, err)
	}
	return &writer{s: s, ctx: ctx, handle: open.Handle, st: blob.NewStreamState(key, size)}, nil
}

// Delete removes an object.
func (s *Store) Delete(ctx context.Context, key string) error {
	resp, err := s.do(ctx, "DELETE", wire.PathBlobs+escape(key), nil, nil)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// Stat returns object metadata (one HEAD round trip).
func (s *Store) Stat(ctx context.Context, key string) (blob.Info, error) {
	resp, err := s.do(ctx, "HEAD", wire.PathBlobs+escape(key), nil, nil)
	if err != nil {
		return blob.Info{}, err
	}
	drain(resp)
	size, err := strconv.ParseInt(resp.Header.Get(wire.HeaderSize), 10, 64)
	if err != nil {
		return blob.Info{}, fmt.Errorf("client: stat %s: bad size header: %w", key, err)
	}
	return blob.Info{Key: key, Size: size}, nil
}

// stats fetches the remote accounting surface.
func (s *Store) stats(ctx context.Context) (wire.StatsResponse, error) {
	var st wire.StatsResponse
	err := s.doJSON(ctx, "GET", wire.PathStats, &st)
	return st, err
}

// Keys lists live objects. The blob.Store accounting surface has no
// context or error channel; a network failure reports an empty
// listing.
func (s *Store) Keys() []string {
	var kr wire.KeysResponse
	if err := s.doJSON(context.Background(), "GET", wire.PathKeys, &kr); err != nil {
		return nil
	}
	return kr.Keys
}

// ObjectCount implements blob.Store (one stats round trip).
func (s *Store) ObjectCount() int { st, _ := s.stats(context.Background()); return st.ObjectCount }

// LiveBytes implements blob.Store.
func (s *Store) LiveBytes() int64 { st, _ := s.stats(context.Background()); return st.LiveBytes }

// FreeBytes implements blob.Store.
func (s *Store) FreeBytes() int64 { st, _ := s.stats(context.Background()); return st.FreeBytes }

// CapacityBytes implements blob.Store.
func (s *Store) CapacityBytes() int64 {
	st, _ := s.stats(context.Background())
	return st.CapacityBytes
}

// EachObjectRuns implements frag.Source over the layout endpoint, so
// fragmentation analysis runs against a served store.
func (s *Store) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	for _, o := range s.layout() {
		fn(o.Key, o.Bytes, o.Runs)
	}
}

// EachObjectTag implements frag.TagSource over the layout endpoint.
func (s *Store) EachObjectTag(fn func(key string, tag uint32)) {
	for _, o := range s.layout() {
		fn(o.Key, o.Tag)
	}
}

func (s *Store) layout() []wire.LayoutObject {
	var objs []wire.LayoutObject
	if err := s.doJSON(context.Background(), "GET", wire.PathLayout, &objs); err != nil {
		return nil
	}
	return objs
}

var _ blob.Store = (*Store)(nil)

// --- one-shot fast paths ---------------------------------------------

// Fetch reads a whole object in one GET round trip (versus the three
// of Open/ReadAll/Close) — the load generator's read path. Returns the
// object's size and, when the store retains payloads, its bytes.
func (s *Store) Fetch(ctx context.Context, key string) (int64, []byte, error) {
	resp, err := s.do(ctx, "GET", wire.PathBlobs+escape(key), nil, nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	size, _ := strconv.ParseInt(resp.Header.Get(wire.HeaderSize), 10, 64)
	if resp.Header.Get(wire.HeaderMeta) == "1" {
		drain(resp)
		return size, nil, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("client: fetch %s: %w", key, err)
	}
	return size, data, nil
}

// FetchAt reads one byte range in one round trip via an HTTP Range
// GET, riding the server's blob.Reader.ReadAt.
func (s *Store) FetchAt(ctx context.Context, key string, off, length int64) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("%w: range [%d, +%d)", blob.ErrOutOfRange, off, length)
	}
	hdr := map[string]string{"Range": fmt.Sprintf("bytes=%d-%d", off, off+length-1)}
	resp, err := s.do(ctx, "GET", wire.PathBlobs+escape(key), nil, hdr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.Header.Get(wire.HeaderMeta) == "1" {
		drain(resp)
		return nil, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: fetch %s range: %w", key, err)
	}
	return data, nil
}

// Upload writes a whole object in one PUT round trip (versus the
// three of Create/Append/Commit) — the load generator's write path.
// data nil performs a metadata-only write of size logical bytes.
// replace selects safe-replace semantics; otherwise create.
func (s *Store) Upload(ctx context.Context, key string, size int64, data []byte, replace bool) error {
	mode := wire.ModeCreate
	if replace {
		mode = wire.ModeReplace
	}
	path := fmt.Sprintf("%s%s?mode=%s", wire.PathBlobs, escape(key), mode)
	var body io.Reader
	hdr := map[string]string{}
	if data == nil {
		hdr[wire.HeaderMetaBytes] = strconv.FormatInt(size, 10)
	} else {
		body = strings.NewReader(string(data)) // avoid aliasing caller's buffer after return
		hdr[wire.HeaderSize] = strconv.FormatInt(size, 10)
	}
	resp, err := s.do(ctx, "PUT", path, body, hdr)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// escape makes a key safe as a URL path suffix while keeping slashes
// (the server route uses a trailing wildcard).
func escape(key string) string {
	parts := strings.Split(key, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}

// --- reader ----------------------------------------------------------

// reader is a client-side handle to a server reader session. The
// closed flag and context are enforced locally (matching local reader
// semantics and saving a doomed round trip); everything else —
// version pinning above all — is the server-side blob.Reader's.
type reader struct {
	s      *Store
	ctx    context.Context
	handle string
	size   int64
	closed atomic.Bool
}

// Size implements blob.Reader.
func (r *reader) Size() int64 { return r.size }

// ReadAll implements blob.Reader.
func (r *reader) ReadAll() ([]byte, error) {
	return r.read(wire.PathReadH + r.handle)
}

// ReadAt implements blob.Reader. Bounds are checked locally
// (overflow-safe), matching backend reader behavior exactly.
func (r *reader) ReadAt(off, length int64) ([]byte, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("%w: reader for session %s", blob.ErrClosed, r.handle)
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off > r.size || length > r.size-off {
		return nil, fmt.Errorf("%w: [%d, +%d) of %d-byte object", blob.ErrOutOfRange, off, length, r.size)
	}
	return r.read(fmt.Sprintf("%s%s?off=%d&len=%d", wire.PathReadH, r.handle, off, length))
}

func (r *reader) read(path string) ([]byte, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("%w: reader for session %s", blob.ErrClosed, r.handle)
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := r.s.do(r.ctx, "GET", path, nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.Header.Get(wire.HeaderMeta) == "1" {
		drain(resp)
		return nil, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: session read: %w", err)
	}
	return data, nil
}

// Close implements blob.Reader: idempotent, and detached from the
// opening context so a canceled op can still release its session.
func (r *reader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	resp, err := r.s.do(context.WithoutCancel(r.ctx), "DELETE", wire.PathReadH+r.handle, nil, nil)
	if err != nil {
		// The server may have reaped the session already (TTL) — the
		// handle is gone either way.
		if errors.Is(err, blob.ErrNotFound) {
			return nil
		}
		return err
	}
	drain(resp)
	return nil
}

// --- writer ----------------------------------------------------------

// writer is a client-side handle to a server writer session. The full
// local validation ladder (blob.StreamState — the same one backend
// writers run) guards every call, so closed/canceled/size-precedence
// semantics match a local writer without a round trip; bytes that pass
// it stream to the server session in per-append requests.
type writer struct {
	s      *Store
	ctx    context.Context
	handle string
	st     blob.StreamState
}

// Append implements blob.Writer.
func (w *writer) Append(n int64, data []byte) error {
	if err := w.st.BeginAppend(w.ctx, n, data); err != nil {
		return err
	}
	var resp *http.Response
	var err error
	if data == nil {
		hdr := map[string]string{wire.HeaderMetaBytes: strconv.FormatInt(n, 10)}
		resp, err = w.s.do(w.ctx, "POST", wire.PathWriteH+w.handle, nil, hdr)
	} else {
		resp, err = w.s.do(w.ctx, "POST", wire.PathWriteH+w.handle, strings.NewReader(string(data)), nil)
	}
	if err != nil {
		return err
	}
	drain(resp)
	w.st.NoteAppended(n)
	return nil
}

// Write implements io.Writer over Append.
func (w *writer) Write(p []byte) (int, error) {
	if err := w.Append(int64(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Commit implements blob.Writer. A commit the local ladder refuses
// (short stream) never reaches the wire; a commit the server refuses
// leaves the writer open and abortable, exactly like a local writer.
func (w *writer) Commit() error {
	if err := w.st.BeginCommit(w.ctx); err != nil {
		return err
	}
	resp, err := w.s.do(w.ctx, "POST", wire.PathWriteH+w.handle+"/commit", nil, nil)
	if err != nil {
		return err
	}
	drain(resp)
	w.st.Close()
	return nil
}

// Abort implements blob.Writer: idempotent, detached from the opening
// context, and tolerant of a server session already reaped by TTL.
func (w *writer) Abort() error {
	if w.st.Closed() {
		return nil
	}
	w.st.Close()
	resp, err := w.s.do(context.WithoutCancel(w.ctx), "DELETE", wire.PathWriteH+w.handle, nil, nil)
	if err != nil {
		if errors.Is(err, blob.ErrNotFound) {
			return nil
		}
		return err
	}
	drain(resp)
	return nil
}
