package trace

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func newFS(capacity int64) blob.Store {
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		panic(err)
	}
	return s
}

func newDBr(capacity int64) blob.Store {
	s, err := core.NewDBStore(vclock.New(),
		blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		panic(err)
	}
	return s
}

func TestParseAndFormatRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: Put, Key: "a", Size: 1024},
		{Kind: Replace, Key: "a", Size: 2048},
		{Kind: Get, Key: "a"},
		{Kind: GetRange, Key: "a", Off: 512, Len: 1024},
		{Kind: Put, Key: "b", Size: 4096, Stream: 3},
		{Kind: GetRange, Key: "b", Off: 0, Len: 100, Stream: 12},
		{Kind: Delete, Key: "a"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops", len(got))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nput a 100\n  \n# trailing\nget a\n"
	ops, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("got %d ops", len(ops))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"put a",           // missing size
		"put a -5",        // negative size
		"put a xyz",       // non-numeric
		"delete",          // missing key
		"frobnicate a 10", // unknown op
		"getrange a 10",   // missing length
		"getrange a -1 5", // negative offset
		"getrange a 0 0",  // empty range
		"put a 10 0",      // stream ids are positive
		"put a 10 -2",     // negative stream
		"get a 1 extra",   // trailing junk
		"put a 10 1 junk", // trailing junk after stream
	} {
		if _, ok, err := ParseOp(bad); err == nil && ok {
			t.Errorf("ParseOp(%q) accepted", bad)
		}
	}
}

func TestRecorderCapturesWorkload(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.Constant{Size: 512 * units.KB}, 3)
	if _, err := runner.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(1, workload.ChurnOptions{ReadsPerWrite: 1}); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("nothing recorded")
	}
	var puts, replaces, gets int
	for _, op := range ops {
		switch op.Kind {
		case Put:
			puts++
		case Replace:
			replaces++
		case Get:
			gets++
		}
	}
	if puts == 0 || replaces == 0 || gets == 0 {
		t.Fatalf("incomplete recording: %d puts %d replaces %d gets", puts, replaces, gets)
	}
}

// TestReplayReproducesStateAndAge is the core trace-based-generation
// property: replaying a recorded trace onto a fresh store of EITHER
// backend reproduces the live object set and the storage age — §4.4's
// claim that storage age is comparable across systems.
func TestReplayReproducesStateAndAge(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.UniformAround(512*units.KB), 7)
	if _, err := runner.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(2, workload.ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	wantAge := runner.Tracker().Age()
	wantCount := rec.ObjectCount()
	wantLive := rec.LiveBytes()

	for _, fresh := range []blob.Store{newFS(128 * units.MB), newDBr(128 * units.MB)} {
		res, err := Replay(context.Background(), rec.Ops(), fresh)
		if err != nil {
			t.Fatalf("%s replay: %v", fresh.Name(), err)
		}
		if fresh.ObjectCount() != wantCount {
			t.Fatalf("%s: %d objects, want %d", fresh.Name(), fresh.ObjectCount(), wantCount)
		}
		if fresh.LiveBytes() != wantLive {
			t.Fatalf("%s: %d live bytes, want %d", fresh.Name(), fresh.LiveBytes(), wantLive)
		}
		if diff := res.StorageAge - wantAge; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: replay age %.4f, want %.4f", fresh.Name(), res.StorageAge, wantAge)
		}
		// Every object readable.
		for _, k := range fresh.Keys() {
			if _, _, err := blob.Get(context.Background(), fresh, k); err != nil {
				t.Fatalf("%s: %v", fresh.Name(), err)
			}
		}
	}
}

// TestAnalyzeMatchesExecution checks §4.4: storage age computed from the
// trace alone equals the age measured during execution.
func TestAnalyzeMatchesExecution(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.Constant{Size: 1 * units.MB}, 5)
	if _, err := runner.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(3, workload.ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(rec.Ops())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.StorageAge, runner.Tracker().Age(); got != want {
		t.Fatalf("analyzed age %.4f != executed age %.4f", got, want)
	}
	if a.LiveObjects != rec.ObjectCount() {
		t.Fatalf("analyzed %d live, store has %d", a.LiveObjects, rec.ObjectCount())
	}
	if a.LiveBytes != rec.LiveBytes() {
		t.Fatalf("analyzed %d live bytes, store has %d", a.LiveBytes, rec.LiveBytes())
	}
}

func TestAnalyzeRejectsBrokenTraces(t *testing.T) {
	cases := [][]Op{
		{{Kind: Put, Key: "a", Size: 10}, {Kind: Put, Key: "a", Size: 10}},
		{{Kind: Delete, Key: "ghost"}},
		{{Kind: Get, Key: "ghost"}},
	}
	for i, ops := range cases {
		if _, err := Analyze(ops); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReplayFailsCleanlyOnBadTrace(t *testing.T) {
	repo := newFS(64 * units.MB)
	_, err := Replay(context.Background(), []Op{{Kind: Delete, Key: "ghost"}}, repo)
	if err == nil {
		t.Fatal("replay of broken trace succeeded")
	}
}

func TestReplayGroupedDeletePattern(t *testing.T) {
	// A hand-written trace with §3.2's grouped deallocation.
	var ops []Op
	for album := 0; album < 3; album++ {
		for p := 0; p < 10; p++ {
			ops = append(ops, Op{Kind: Put, Key: key(album, p), Size: 256 * units.KB})
		}
	}
	for p := 0; p < 10; p++ {
		ops = append(ops, Op{Kind: Delete, Key: key(1, p)})
	}
	repo := newFS(64 * units.MB)
	res, err := Replay(context.Background(), ops, repo)
	if err != nil {
		t.Fatal(err)
	}
	if repo.ObjectCount() != 20 {
		t.Fatalf("count = %d", repo.ObjectCount())
	}
	// 10 deleted of 20 live: age 0.5.
	if res.StorageAge != 0.5 {
		t.Fatalf("age = %g", res.StorageAge)
	}
}

func key(album, p int) string {
	return "album" + string(rune('A'+album)) + "/" + string(rune('0'+p))
}

// TestRecorderCapturesRangedReads pins the satellite fix: ReadAt
// through a Recorder lands in the trace as a getrange op with the exact
// bounds the reader saw, and the recorded trace replays cleanly.
func TestRecorderCapturesRangedReads(t *testing.T) {
	ctx := context.Background()
	rec := NewRecorder(newFS(64 * units.MB))
	if err := blob.Put(ctx, rec, "obj", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	r, err := rec.Open(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(128*units.KB, 256*units.KB); err != nil {
		t.Fatal(err)
	}
	// A failed ranged read must not be recorded.
	if _, err := r.ReadAt(900*units.KB, 200*units.KB); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	r.Close()

	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops, want put+getrange", len(ops))
	}
	want := Op{Kind: GetRange, Key: "obj", Off: 128 * units.KB, Len: 256 * units.KB}
	if ops[1] != want {
		t.Fatalf("recorded %+v, want %+v", ops[1], want)
	}

	a, err := Analyze(ops)
	if err != nil {
		t.Fatal(err)
	}
	if a.RangedGets != 1 {
		t.Fatalf("Analyze counted %d ranged gets", a.RangedGets)
	}
	res, err := Replay(ctx, ops, newDBr(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead != 256*units.KB {
		t.Fatalf("replay read %d bytes, want the recorded range", res.BytesRead)
	}
}

// TestRecordReplayDeterminism is the satellite acceptance test: a
// seeded churn+read workload recorded through trace.Recorder and
// replayed through the shared Executor at k=1 reproduces the original
// run exactly — fragments/object, live bytes, and op counts.
func TestRecordReplayDeterminism(t *testing.T) {
	store := newFS(128 * units.MB)
	rec := NewRecorder(store)
	runner := workload.NewRunner(rec, workload.UniformAround(1*units.MB), 11)
	if _, err := runner.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	churn, err := runner.ChurnToAge(2, workload.ChurnOptions{ReadsPerWrite: 1})
	if err != nil {
		t.Fatal(err)
	}
	read, err := runner.MeasureReadThroughput(40)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	wantFrags := frag.Analyze(store).MeanFragments()
	wantLive := store.LiveBytes()
	wantCount := store.ObjectCount()
	wantAge := runner.Tracker().Age()

	fresh := newFS(128 * units.MB)
	res, err := ReplayStreams(context.Background(), fresh, Partition(ops, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(ops) {
		t.Fatalf("replayed %d ops, recorded %d", res.Ops, len(ops))
	}
	if gotReads := churn.Ops + read.Ops; res.Ops <= gotReads {
		t.Fatalf("op accounting off: replay %d ops vs churn+read %d", res.Ops, gotReads)
	}
	if got := frag.Analyze(fresh).MeanFragments(); got != wantFrags {
		t.Fatalf("replayed layout %.4f frags/obj, original %.4f", got, wantFrags)
	}
	if fresh.LiveBytes() != wantLive {
		t.Fatalf("replayed %d live bytes, original %d", fresh.LiveBytes(), wantLive)
	}
	if fresh.ObjectCount() != wantCount {
		t.Fatalf("replayed %d objects, original %d", fresh.ObjectCount(), wantCount)
	}
	if diff := res.StorageAge - wantAge; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("replayed age %.6f, original %.6f", res.StorageAge, wantAge)
	}
}

// TestPartition pins the replay-partitioning contract: per-key op order
// survives any k, k=1 is the identity, and v2 stream tags override the
// hash routing.
func TestPartition(t *testing.T) {
	var ops []Op
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		ops = append(ops,
			Op{Kind: Put, Key: k, Size: 100},
			Op{Kind: Replace, Key: k, Size: 200},
			Op{Kind: Delete, Key: k})
	}
	if got := Partition(ops, 1); len(got) != 1 || len(got[0]) != len(ops) {
		t.Fatalf("k=1 partition reshaped the trace")
	} else {
		for i := range ops {
			if got[0][i] != ops[i] {
				t.Fatalf("k=1 partition reordered op %d", i)
			}
		}
	}
	streams := Partition(ops, 3)
	total := 0
	for _, s := range streams {
		total += len(s)
		perKey := map[string]int{}
		for _, op := range s {
			// Ops for one key appear in put < replace < delete order, and
			// never split across streams.
			switch op.Kind {
			case Put:
				if perKey[op.Key] != 0 {
					t.Fatalf("put out of order for %s", op.Key)
				}
			case Replace:
				if perKey[op.Key] != 1 {
					t.Fatalf("replace out of order for %s", op.Key)
				}
			case Delete:
				if perKey[op.Key] != 2 {
					t.Fatalf("delete out of order for %s", op.Key)
				}
			}
			perKey[op.Key]++
		}
		for k, n := range perKey {
			if n != 3 {
				t.Fatalf("key %s split across streams (%d ops here)", k, n)
			}
		}
	}
	if total != len(ops) {
		t.Fatalf("partition dropped ops: %d of %d", total, len(ops))
	}

	// A fully tagged trace routes by id, not hash.
	tagged := []Op{
		{Kind: Put, Key: "x", Size: 10, Stream: 1},
		{Kind: Put, Key: "y", Size: 10, Stream: 2},
	}
	byTag := Partition(tagged, 2)
	if len(byTag[1]) != 1 || byTag[1][0].Key != "x" {
		t.Fatalf("stream 1 ops routed to %+v", byTag)
	}
	if len(byTag[0]) != 1 || byTag[0][0].Key != "y" {
		t.Fatalf("stream 2 (mod 2 = 0) ops routed to %+v", byTag)
	}

	// A MIXED trace (some ops tagged, some not) must fall back to
	// per-key hash routing for every op: otherwise a tagged put and an
	// untagged delete of the same key could land on different concurrent
	// streams and replay out of order.
	mixed := []Op{
		{Kind: Put, Key: "a", Size: 10, Stream: 2},
		{Kind: Delete, Key: "a"},
	}
	for k := 2; k <= 5; k++ {
		parts := Partition(mixed, k)
		for _, s := range parts {
			if len(s) == 1 {
				t.Fatalf("k=%d: mixed-tag ops for one key split across streams", k)
			}
			if len(s) == 2 && (s[0].Kind != Put || s[1].Kind != Delete) {
				t.Fatalf("k=%d: per-key order lost: %+v", k, s)
			}
		}
	}
}

// TestConcurrentReplayPreservesState pins the k>1 replay path: any
// partitioning replays the full op set — same live bytes, same object
// count, same storage age — only the allocation ORDER (and therefore
// the physical layout) may differ.
func TestConcurrentReplayPreservesState(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.Constant{Size: 1 * units.MB}, 13)
	if _, err := runner.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(2, workload.ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	wantLive := rec.LiveBytes()
	wantCount := rec.ObjectCount()
	wantAge := runner.Tracker().Age()

	for _, k := range []int{2, 8} {
		fresh := newDBr(128 * units.MB)
		res, err := ReplayStreams(context.Background(), fresh, Partition(ops, k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Streams != k || res.Ops != len(ops) {
			t.Fatalf("k=%d: replayed %d ops on %d streams", k, res.Ops, res.Streams)
		}
		if fresh.LiveBytes() != wantLive || fresh.ObjectCount() != wantCount {
			t.Fatalf("k=%d: state diverged: %d bytes/%d objects, want %d/%d",
				k, fresh.LiveBytes(), fresh.ObjectCount(), wantLive, wantCount)
		}
		if diff := res.StorageAge - wantAge; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("k=%d: age %.6f, want %.6f", k, res.StorageAge, wantAge)
		}
	}
}

// TestSourceStreamsWithoutMaterializing pins the streaming contract: a
// Source over an io.Reader replays a log it never holds in memory, and
// a parse error mid-stream surfaces through the executor as an error,
// not a silent truncation.
func TestSourceStreamsWithoutMaterializing(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&buf, "put k%02d %d\n", i, 256*units.KB)
	}
	store := newFS(64 * units.MB)
	res, err := ReplaySources(context.Background(), store, []*Source{NewSource(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 50 || store.ObjectCount() != 50 {
		t.Fatalf("streamed replay: %d ops, %d objects", res.Ops, store.ObjectCount())
	}

	bad := strings.NewReader("put a 1024\nput b broken\nput c 1024\n")
	if _, err := ReplaySources(context.Background(), newFS(64*units.MB), []*Source{NewSource(bad)}); err == nil {
		t.Fatal("mid-stream parse error swallowed")
	}
}

// TestSourceOnlyStream pins the v2 per-stream filter: k Sources over k
// readings of one tagged log replay only their own stream's ops.
func TestSourceOnlyStream(t *testing.T) {
	log := "put a 1024 1\nput b 1024 2\nreplace a 2048 1\nget b 2\n"
	src := NewSource(strings.NewReader(log)).OnlyStream(1)
	var kinds []workload.OpKind
	for {
		op, ok := src.Next(nil)
		if !ok {
			break
		}
		if op.Key != "a" {
			t.Fatalf("stream 1 saw key %s", op.Key)
		}
		kinds = append(kinds, op.Kind)
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if len(kinds) != 2 || kinds[0] != workload.OpCreate || kinds[1] != workload.OpReplace {
		t.Fatalf("stream 1 ops: %v", kinds)
	}
}
