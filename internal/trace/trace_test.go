package trace

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func newFS(capacity int64) blob.Store {
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		panic(err)
	}
	return s
}

func newDBr(capacity int64) blob.Store {
	s, err := core.NewDBStore(vclock.New(),
		blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		panic(err)
	}
	return s
}

func TestParseAndFormatRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: Put, Key: "a", Size: 1024},
		{Kind: Replace, Key: "a", Size: 2048},
		{Kind: Get, Key: "a"},
		{Kind: Delete, Key: "a"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops", len(got))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nput a 100\n  \n# trailing\nget a\n"
	ops, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("got %d ops", len(ops))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"put a",           // missing size
		"put a -5",        // negative size
		"put a xyz",       // non-numeric
		"delete",          // missing key
		"frobnicate a 10", // unknown op
	} {
		if _, ok, err := ParseOp(bad); err == nil && ok {
			t.Errorf("ParseOp(%q) accepted", bad)
		}
	}
}

func TestRecorderCapturesWorkload(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.Constant{Size: 512 * units.KB}, 3)
	if _, err := runner.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(1, workload.ChurnOptions{ReadsPerWrite: 1}); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("nothing recorded")
	}
	var puts, replaces, gets int
	for _, op := range ops {
		switch op.Kind {
		case Put:
			puts++
		case Replace:
			replaces++
		case Get:
			gets++
		}
	}
	if puts == 0 || replaces == 0 || gets == 0 {
		t.Fatalf("incomplete recording: %d puts %d replaces %d gets", puts, replaces, gets)
	}
}

// TestReplayReproducesStateAndAge is the core trace-based-generation
// property: replaying a recorded trace onto a fresh store of EITHER
// backend reproduces the live object set and the storage age — §4.4's
// claim that storage age is comparable across systems.
func TestReplayReproducesStateAndAge(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.UniformAround(512*units.KB), 7)
	if _, err := runner.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(2, workload.ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	wantAge := runner.Tracker().Age()
	wantCount := rec.ObjectCount()
	wantLive := rec.LiveBytes()

	for _, fresh := range []blob.Store{newFS(128 * units.MB), newDBr(128 * units.MB)} {
		res, err := Replay(context.Background(), rec.Ops(), fresh)
		if err != nil {
			t.Fatalf("%s replay: %v", fresh.Name(), err)
		}
		if fresh.ObjectCount() != wantCount {
			t.Fatalf("%s: %d objects, want %d", fresh.Name(), fresh.ObjectCount(), wantCount)
		}
		if fresh.LiveBytes() != wantLive {
			t.Fatalf("%s: %d live bytes, want %d", fresh.Name(), fresh.LiveBytes(), wantLive)
		}
		if diff := res.StorageAge - wantAge; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: replay age %.4f, want %.4f", fresh.Name(), res.StorageAge, wantAge)
		}
		// Every object readable.
		for _, k := range fresh.Keys() {
			if _, _, err := blob.Get(context.Background(), fresh, k); err != nil {
				t.Fatalf("%s: %v", fresh.Name(), err)
			}
		}
	}
}

// TestAnalyzeMatchesExecution checks §4.4: storage age computed from the
// trace alone equals the age measured during execution.
func TestAnalyzeMatchesExecution(t *testing.T) {
	rec := NewRecorder(newFS(128 * units.MB))
	runner := workload.NewRunner(rec, workload.Constant{Size: 1 * units.MB}, 5)
	if _, err := runner.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ChurnToAge(3, workload.ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(rec.Ops())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.StorageAge, runner.Tracker().Age(); got != want {
		t.Fatalf("analyzed age %.4f != executed age %.4f", got, want)
	}
	if a.LiveObjects != rec.ObjectCount() {
		t.Fatalf("analyzed %d live, store has %d", a.LiveObjects, rec.ObjectCount())
	}
	if a.LiveBytes != rec.LiveBytes() {
		t.Fatalf("analyzed %d live bytes, store has %d", a.LiveBytes, rec.LiveBytes())
	}
}

func TestAnalyzeRejectsBrokenTraces(t *testing.T) {
	cases := [][]Op{
		{{Kind: Put, Key: "a", Size: 10}, {Kind: Put, Key: "a", Size: 10}},
		{{Kind: Delete, Key: "ghost"}},
		{{Kind: Get, Key: "ghost"}},
	}
	for i, ops := range cases {
		if _, err := Analyze(ops); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReplayFailsCleanlyOnBadTrace(t *testing.T) {
	repo := newFS(64 * units.MB)
	_, err := Replay(context.Background(), []Op{{Kind: Delete, Key: "ghost"}}, repo)
	if err == nil {
		t.Fatal("replay of broken trace succeeded")
	}
}

func TestReplayGroupedDeletePattern(t *testing.T) {
	// A hand-written trace with §3.2's grouped deallocation.
	var ops []Op
	for album := 0; album < 3; album++ {
		for p := 0; p < 10; p++ {
			ops = append(ops, Op{Kind: Put, Key: key(album, p), Size: 256 * units.KB})
		}
	}
	for p := 0; p < 10; p++ {
		ops = append(ops, Op{Kind: Delete, Key: key(1, p)})
	}
	repo := newFS(64 * units.MB)
	res, err := Replay(context.Background(), ops, repo)
	if err != nil {
		t.Fatal(err)
	}
	if repo.ObjectCount() != 20 {
		t.Fatalf("count = %d", repo.ObjectCount())
	}
	// 10 deleted of 20 live: age 0.5.
	if res.StorageAge != 0.5 {
		t.Fatalf("age = %g", res.StorageAge)
	}
}

func key(album, p int) string {
	return "album" + string(rune('A'+album)) + "/" + string(rune('0'+p))
}
