// Package trace implements trace-based load generation, the complement
// the paper calls for: "Trace-based workload generation and a better
// understanding of real-world large object workloads would complement
// this study" (§5.4); §3.3 contrasts trace-based with the vector-based
// generation package workload provides.
//
// A trace is a sequence of allocation events (§1's get/put operations)
// in a line-oriented text format:
//
//	put <key> <size>
//	replace <key> <size>
//	delete <key>
//	get <key>
//
// Traces can be recorded from live store activity (Recorder),
// replayed against any blob.Store (Replay), and analysed without
// execution: storage age "can be computed from the data allocation rate"
// (§4.4), which Analyze does.
package trace

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Kind enumerates trace event types.
type Kind int

const (
	// Put creates a new object.
	Put Kind = iota
	// Replace safe-writes an existing (or new) object.
	Replace
	// Delete removes an object.
	Delete
	// Get reads an object.
	Get
)

var kindNames = [...]string{"put", "replace", "delete", "get"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is one trace event.
type Op struct {
	Kind Kind
	Key  string
	Size int64 // bytes; meaningful for Put and Replace
}

// Format renders the op in trace format.
func (o Op) Format() string {
	switch o.Kind {
	case Put, Replace:
		return fmt.Sprintf("%s %s %d", o.Kind, o.Key, o.Size)
	default:
		return fmt.Sprintf("%s %s", o.Kind, o.Key)
	}
}

// ParseOp parses one trace line. Blank lines and lines starting with '#'
// yield ok=false with no error.
func ParseOp(line string) (Op, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Op{}, false, nil
	}
	fields := strings.Fields(line)
	var op Op
	switch fields[0] {
	case "put", "replace":
		if len(fields) != 3 {
			return Op{}, false, fmt.Errorf("trace: %q needs key and size", line)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size <= 0 {
			return Op{}, false, fmt.Errorf("trace: bad size in %q", line)
		}
		op = Op{Key: fields[1], Size: size}
		if fields[0] == "put" {
			op.Kind = Put
		} else {
			op.Kind = Replace
		}
	case "delete", "get":
		if len(fields) != 2 {
			return Op{}, false, fmt.Errorf("trace: %q needs a key", line)
		}
		op = Op{Key: fields[1]}
		if fields[0] == "delete" {
			op.Kind = Delete
		} else {
			op.Kind = Get
		}
	default:
		return Op{}, false, fmt.Errorf("trace: unknown op %q", fields[0])
	}
	return op, true, nil
}

// Write emits ops in trace format.
func Write(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintln(bw, op.Format()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a whole trace.
func Read(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		op, ok, err := ParseOp(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			ops = append(ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Recorder wraps a blob.Store, recording every mutation and read as a
// trace while passing operations through. Mutations are recorded when
// their streaming writer COMMITS — an aborted stream never reaches the
// trace, mirroring what the store itself made durable. Recording is safe
// for concurrent use, like the store it wraps.
type Recorder struct {
	blob.Store

	mu  sync.Mutex
	ops []Op
}

// NewRecorder wraps store.
func NewRecorder(store blob.Store) *Recorder {
	return &Recorder{Store: store}
}

// Ops returns the recorded trace.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

func (r *Recorder) record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Create implements blob.Store; the put is recorded at commit.
func (r *Recorder) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := r.Store.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &recordingWriter{Writer: w, rec: r, op: Op{Kind: Put, Key: key, Size: size}}, nil
}

// Replace implements blob.Store; the replace is recorded at commit.
func (r *Recorder) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := r.Store.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &recordingWriter{Writer: w, rec: r, op: Op{Kind: Replace, Key: key, Size: size}}, nil
}

// Delete implements blob.Store.
func (r *Recorder) Delete(ctx context.Context, key string) error {
	if err := r.Store.Delete(ctx, key); err != nil {
		return err
	}
	r.record(Op{Kind: Delete, Key: key})
	return nil
}

// Open implements blob.Store. The get is recorded when the reader
// completes a whole-object read — the operation the trace format's
// "get" replays — not at open, so stat-only opens and ranged reads do
// not inflate a replay's read volume.
func (r *Recorder) Open(ctx context.Context, key string) (blob.Reader, error) {
	rd, err := r.Store.Open(ctx, key)
	if err != nil {
		return nil, err
	}
	return &recordingReader{Reader: rd, rec: r, key: key}, nil
}

// recordingReader records one get per completed whole-object read.
type recordingReader struct {
	blob.Reader
	rec *Recorder
	key string
}

// ReadAll reads the whole object, then records the get.
func (r *recordingReader) ReadAll() ([]byte, error) {
	data, err := r.Reader.ReadAll()
	if err != nil {
		return data, err
	}
	r.rec.record(Op{Kind: Get, Key: r.key})
	return data, nil
}

// recordingWriter appends its op to the trace once, when the underlying
// writer commits.
type recordingWriter struct {
	blob.Writer
	rec      *Recorder
	op       Op
	recorded bool
}

// Commit commits the underlying writer, then records the mutation.
func (w *recordingWriter) Commit() error {
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	if !w.recorded {
		w.rec.record(w.op)
		w.recorded = true
	}
	return nil
}

// Result summarises a replay.
type Result struct {
	Ops          int
	BytesWritten int64
	BytesRead    int64
	Seconds      float64
	WriteMBps    float64
	StorageAge   float64
}

// Replay executes a trace against store, tracking storage age. Objects
// must exist before replace/delete/get events reference them (Replace
// creates when absent, as the safe-write protocol allows).
func Replay(ctx context.Context, ops []Op, store blob.Store) (Result, error) {
	tracker := core.NewAgeTracker(store)
	w := vclock.StartWatch(store.Clock())
	var res Result
	for i, op := range ops {
		var err error
		switch op.Kind {
		case Put:
			err = tracker.Put(ctx, op.Key, op.Size, nil)
			res.BytesWritten += op.Size
		case Replace:
			err = tracker.Replace(ctx, op.Key, op.Size, nil)
			res.BytesWritten += op.Size
		case Delete:
			err = tracker.Delete(ctx, op.Key)
		case Get:
			var n int64
			n, _, err = blob.Get(ctx, store, op.Key)
			res.BytesRead += n
		}
		if err != nil {
			return res, fmt.Errorf("trace: op %d (%s): %w", i, op.Format(), err)
		}
		res.Ops++
	}
	res.Seconds = w.Seconds()
	res.WriteMBps = units.MBps(res.BytesWritten, res.Seconds)
	res.StorageAge = tracker.Age()
	return res, nil
}

// Analysis is what a trace implies without executing it.
type Analysis struct {
	Ops          int
	Puts         int
	Replaces     int
	Deletes      int
	Gets         int
	LiveObjects  int
	LiveBytes    int64
	RetiredBytes int64
	// StorageAge is computed from the allocation rate alone, per §4.4:
	// "Given an application trace, storage age can be computed from the
	// data allocation rate."
	StorageAge float64
	// MeanObjectBytes is the mean live object size at trace end.
	MeanObjectBytes int64
}

// Analyze computes trace statistics and the storage age the trace would
// produce, without touching any store.
func Analyze(ops []Op) (Analysis, error) {
	var a Analysis
	live := map[string]int64{}
	for i, op := range ops {
		a.Ops++
		switch op.Kind {
		case Put:
			if _, ok := live[op.Key]; ok {
				return a, fmt.Errorf("trace: op %d puts existing key %s", i, op.Key)
			}
			live[op.Key] = op.Size
			a.Puts++
		case Replace:
			if old, ok := live[op.Key]; ok {
				a.RetiredBytes += old
			}
			live[op.Key] = op.Size
			a.Replaces++
		case Delete:
			old, ok := live[op.Key]
			if !ok {
				return a, fmt.Errorf("trace: op %d deletes missing key %s", i, op.Key)
			}
			a.RetiredBytes += old
			delete(live, op.Key)
			a.Deletes++
		case Get:
			if _, ok := live[op.Key]; !ok {
				return a, fmt.Errorf("trace: op %d reads missing key %s", i, op.Key)
			}
			a.Gets++
		}
	}
	a.LiveObjects = len(live)
	for _, s := range live {
		a.LiveBytes += s
	}
	if a.LiveBytes > 0 {
		a.StorageAge = float64(a.RetiredBytes) / float64(a.LiveBytes)
	}
	if a.LiveObjects > 0 {
		a.MeanObjectBytes = a.LiveBytes / int64(a.LiveObjects)
	}
	return a, nil
}
