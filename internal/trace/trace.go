// Package trace implements trace-based load generation, the complement
// the paper calls for: "Trace-based workload generation and a better
// understanding of real-world large object workloads would complement
// this study" (§5.4); §3.3 contrasts trace-based with the vector-based
// generation package workload provides.
//
// A trace is a sequence of allocation events (§1's get/put operations)
// in a line-oriented text format (v2):
//
//	put <key> <size> [stream]
//	replace <key> <size> [stream]
//	delete <key> [stream]
//	get <key> [stream]
//	getrange <key> <off> <len> [stream]
//
// The trailing stream column is optional (v2): a positive integer
// tagging the op with the writer stream that issued it, so a recorded
// multi-stream workload can be replayed with its original partitioning.
// Ops without the column (every v1 trace) carry Stream 0, "untagged".
//
// Traces can be recorded from live store activity (Recorder), replayed
// against any blob.Store — single-stream (Replay) or as k concurrent
// writer streams (Partition + ReplayStreams), both through the shared
// workload.Executor — streamed from an io.Reader without materializing
// the whole log (Source), and analysed without execution: storage age
// "can be computed from the data allocation rate" (§4.4), which Analyze
// does.
package trace

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/blob"
	"repro/internal/units"
	"repro/internal/workload"
)

// Kind enumerates trace event types.
type Kind int

const (
	// Put creates a new object.
	Put Kind = iota
	// Replace safe-writes an existing (or new) object.
	Replace
	// Delete removes an object.
	Delete
	// Get reads a whole object.
	Get
	// GetRange reads the byte range [Off, Off+Len) of an object — what
	// the cache layer's ranged reads actually issue.
	GetRange
)

var kindNames = [...]string{"put", "replace", "delete", "get", "getrange"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is one trace event.
type Op struct {
	Kind Kind
	Key  string
	Size int64 // bytes; meaningful for Put and Replace
	// Off and Len bound a GetRange read.
	Off, Len int64
	// Stream tags the op with the writer stream that issued it (the v2
	// trace format's optional trailing column). 0 means untagged.
	Stream int
}

// Format renders the op in trace format.
func (o Op) Format() string {
	var s string
	switch o.Kind {
	case Put, Replace:
		s = fmt.Sprintf("%s %s %d", o.Kind, o.Key, o.Size)
	case GetRange:
		s = fmt.Sprintf("%s %s %d %d", o.Kind, o.Key, o.Off, o.Len)
	default:
		s = fmt.Sprintf("%s %s", o.Kind, o.Key)
	}
	if o.Stream > 0 {
		s += " " + strconv.Itoa(o.Stream)
	}
	return s
}

// workloadOp converts the trace event into the executor's typed op.
func (o Op) workloadOp() workload.Op {
	switch o.Kind {
	case Put:
		return workload.Op{Kind: workload.OpCreate, Key: o.Key, Size: o.Size}
	case Replace:
		return workload.Op{Kind: workload.OpReplace, Key: o.Key, Size: o.Size}
	case Delete:
		return workload.Op{Kind: workload.OpDelete, Key: o.Key}
	case GetRange:
		return workload.Op{Kind: workload.OpRead, Key: o.Key, Off: o.Off, Len: o.Len}
	default:
		return workload.Op{Kind: workload.OpRead, Key: o.Key}
	}
}

// parseStream interprets the optional trailing stream column: fields
// holds the tokens after an op's fixed arguments (none or one).
func parseStream(line string, rest []string) (int, error) {
	switch len(rest) {
	case 0:
		return 0, nil
	case 1:
		id, err := strconv.Atoi(rest[0])
		if err != nil || id < 1 {
			return 0, fmt.Errorf("trace: bad stream id in %q", line)
		}
		return id, nil
	default:
		return 0, fmt.Errorf("trace: trailing fields in %q", line)
	}
}

// ParseOp parses one trace line. Blank lines and lines starting with '#'
// yield ok=false with no error.
func ParseOp(line string) (Op, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Op{}, false, nil
	}
	fields := strings.Fields(line)
	var op Op
	var rest []string
	switch fields[0] {
	case "put", "replace":
		if len(fields) < 3 {
			return Op{}, false, fmt.Errorf("trace: %q needs key and size", line)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size <= 0 {
			return Op{}, false, fmt.Errorf("trace: bad size in %q", line)
		}
		op = Op{Key: fields[1], Size: size}
		if fields[0] == "put" {
			op.Kind = Put
		} else {
			op.Kind = Replace
		}
		rest = fields[3:]
	case "delete", "get":
		if len(fields) < 2 {
			return Op{}, false, fmt.Errorf("trace: %q needs a key", line)
		}
		op = Op{Key: fields[1]}
		if fields[0] == "delete" {
			op.Kind = Delete
		} else {
			op.Kind = Get
		}
		rest = fields[2:]
	case "getrange":
		if len(fields) < 4 {
			return Op{}, false, fmt.Errorf("trace: %q needs key, offset and length", line)
		}
		off, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || off < 0 {
			return Op{}, false, fmt.Errorf("trace: bad offset in %q", line)
		}
		length, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || length <= 0 {
			return Op{}, false, fmt.Errorf("trace: bad length in %q", line)
		}
		op = Op{Kind: GetRange, Key: fields[1], Off: off, Len: length}
		rest = fields[4:]
	default:
		return Op{}, false, fmt.Errorf("trace: unknown op %q", fields[0])
	}
	stream, err := parseStream(line, rest)
	if err != nil {
		return Op{}, false, err
	}
	op.Stream = stream
	return op, true, nil
}

// Write emits ops in trace format.
func Write(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintln(bw, op.Format()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a whole trace into memory. For logs too large to
// materialize, stream them with NewSource instead.
func Read(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		op, ok, err := ParseOp(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			ops = append(ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Source adapts a trace to the workload.Source interface, so recorded
// logs drive the same Executor as synthetic churn. A Source built over
// an io.Reader parses one line per Next and never materializes the
// whole log; parse and I/O failures end the stream and surface through
// Err, like bufio.Scanner.
type Source struct {
	name string
	next func() (Op, bool, error)
	// keep emits only matching ops; nil keeps everything.
	keep func(Op) bool
	err  error
}

// NewSource streams every op from r.
func NewSource(r io.Reader) *Source {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	lineNo := 0
	return &Source{
		name: "trace",
		next: func() (Op, bool, error) {
			for sc.Scan() {
				lineNo++
				op, ok, err := ParseOp(sc.Text())
				if err != nil {
					return Op{}, false, fmt.Errorf("line %d: %w", lineNo, err)
				}
				if !ok {
					continue
				}
				return op, true, nil
			}
			return Op{}, false, sc.Err()
		},
	}
}

// NewOpsSource streams an in-memory op slice.
func NewOpsSource(ops []Op) *Source {
	i := 0
	return &Source{
		name: "trace",
		next: func() (Op, bool, error) {
			if i >= len(ops) {
				return Op{}, false, nil
			}
			op := ops[i]
			i++
			return op, true, nil
		},
	}
}

// OnlyStream restricts the source to ops tagged with the given stream
// id (v2 traces), so k Sources over k readers of the same log replay a
// multi-stream recording with its original partitioning in constant
// memory. Returns the source for chaining.
func (s *Source) OnlyStream(id int) *Source {
	s.keep = func(op Op) bool { return op.Stream == id }
	s.name = fmt.Sprintf("trace stream %d", id)
	return s
}

// Name implements workload.Source.
func (s *Source) Name() string { return s.name }

// Err reports the parse or I/O failure that ended the stream, if any.
func (s *Source) Err() error { return s.err }

// Next implements workload.Source. Trace replay consumes no randomness:
// the op sequence is the trace itself.
func (s *Source) Next(*rand.Rand) (workload.Op, bool) {
	if s.err != nil {
		return workload.Op{}, false
	}
	for {
		op, ok, err := s.next()
		if err != nil {
			s.err = err
			return workload.Op{}, false
		}
		if !ok {
			return workload.Op{}, false
		}
		if s.keep != nil && !s.keep(op) {
			continue
		}
		return op.workloadOp(), true
	}
}

var _ workload.Source = (*Source)(nil)

// Partition splits a trace into k replay streams, preserving op order
// within each stream. The routing rule is decided once for the whole
// trace: a FULLY tagged log (every op carries a v2 stream id) keeps its
// recorded partitioning (stream id modulo k — the recording asserts its
// own cross-stream consistency); any untagged or mixed log routes every
// op by a hash of its key, so all ops touching one key land in the same
// stream and the per-key order — put before replace before delete —
// survives concurrent replay. Partition with k=1 returns the trace
// unchanged: a single-stream replay preserves the recorded allocation
// order exactly.
func Partition(ops []Op, k int) [][]Op {
	if k < 1 {
		k = 1
	}
	byTag := len(ops) > 0
	for _, op := range ops {
		if op.Stream <= 0 {
			byTag = false
			break
		}
	}
	streams := make([][]Op, k)
	for _, op := range ops {
		var idx int
		if byTag {
			idx = op.Stream % k
		} else {
			idx = int(hashKey(op.Key) % uint32(k))
		}
		streams[idx] = append(streams[idx], op)
	}
	return streams
}

// hashKey is an allocation-free FNV-1a over the key, for the per-key
// stream routing of untagged traces.
func hashKey(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Recorder wraps a blob.Store, recording every mutation and read as a
// trace while passing operations through. Mutations are recorded when
// their streaming writer COMMITS — an aborted stream never reaches the
// trace, mirroring what the store itself made durable. Recording is safe
// for concurrent use, like the store it wraps.
type Recorder struct {
	blob.Store

	mu  sync.Mutex
	ops []Op
}

// NewRecorder wraps store.
func NewRecorder(store blob.Store) *Recorder {
	return &Recorder{Store: store}
}

// Ops returns the recorded trace.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

func (r *Recorder) record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Create implements blob.Store; the put is recorded at commit.
func (r *Recorder) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := r.Store.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &recordingWriter{Writer: w, rec: r, op: Op{Kind: Put, Key: key, Size: size}}, nil
}

// Replace implements blob.Store; the replace is recorded at commit.
func (r *Recorder) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := r.Store.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &recordingWriter{Writer: w, rec: r, op: Op{Kind: Replace, Key: key, Size: size}}, nil
}

// Delete implements blob.Store.
func (r *Recorder) Delete(ctx context.Context, key string) error {
	if err := r.Store.Delete(ctx, key); err != nil {
		return err
	}
	r.record(Op{Kind: Delete, Key: key})
	return nil
}

// Open implements blob.Store. Reads are recorded when they complete —
// one "get" per whole-object read, one "getrange" per ranged read — not
// at open, so stat-only opens do not inflate a replay's read volume.
func (r *Recorder) Open(ctx context.Context, key string) (blob.Reader, error) {
	rd, err := r.Store.Open(ctx, key)
	if err != nil {
		return nil, err
	}
	return &recordingReader{Reader: rd, rec: r, key: key}, nil
}

// recordingReader records completed reads: whole-object and ranged.
type recordingReader struct {
	blob.Reader
	rec *Recorder
	key string
}

// ReadAll reads the whole object, then records the get.
func (r *recordingReader) ReadAll() ([]byte, error) {
	data, err := r.Reader.ReadAll()
	if err != nil {
		return data, err
	}
	r.rec.record(Op{Kind: Get, Key: r.key})
	return data, nil
}

// ReadAt reads one range, then records it as a getrange — so replayed
// read traffic matches what a cache layer above the store actually saw,
// range bounds included.
func (r *recordingReader) ReadAt(off, length int64) ([]byte, error) {
	data, err := r.Reader.ReadAt(off, length)
	if err != nil {
		return data, err
	}
	r.rec.record(Op{Kind: GetRange, Key: r.key, Off: off, Len: length})
	return data, nil
}

// recordingWriter appends its op to the trace once, when the underlying
// writer commits.
type recordingWriter struct {
	blob.Writer
	rec      *Recorder
	op       Op
	recorded bool
}

// Commit commits the underlying writer, then records the mutation.
func (w *recordingWriter) Commit() error {
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	if !w.recorded {
		w.rec.record(w.op)
		w.recorded = true
	}
	return nil
}

// Result summarises a replay.
type Result struct {
	Ops          int
	Streams      int
	BytesWritten int64
	BytesRead    int64
	Seconds      float64
	WriteMBps    float64
	StorageAge   float64
}

// Replay executes a trace against store as one sequential stream,
// preserving the recorded allocation order. Objects must exist before
// replace/delete/get events reference them (Replace creates when
// absent, as the safe-write protocol allows).
func Replay(ctx context.Context, ops []Op, store blob.Store) (Result, error) {
	return ReplayStreams(ctx, store, [][]Op{ops})
}

// ReplayStreams replays one op slice per concurrent writer stream —
// normally a Partition of one recorded log — against store through the
// shared workload.Executor: k goroutine streams whose appends
// interleave in allocation order, the §6 regime driven by a real
// operation log instead of synthetic churn.
func ReplayStreams(ctx context.Context, store blob.Store, streams [][]Op) (Result, error) {
	sources := make([]*Source, len(streams))
	for i, ops := range streams {
		sources[i] = NewOpsSource(ops)
	}
	return ReplaySources(ctx, store, sources)
}

// ReplaySources is the streaming form of ReplayStreams: each Source —
// in-memory or reading a log line by line — drives one executor stream.
func ReplaySources(ctx context.Context, store blob.Store, sources []*Source) (Result, error) {
	exec := workload.NewExecutor(store).WithContext(ctx)
	specs := make([]workload.Stream, len(sources))
	for i, src := range sources {
		// Trace sources draw no randomness; the RNG is the executor
		// contract's, not the trace's.
		specs[i] = workload.Stream{Source: src, RNG: rand.New(rand.NewSource(int64(i) + 1))}
	}
	rr, err := exec.Run(specs, workload.RunOptions{})
	total := rr.Total()
	res := Result{
		Ops:          total.Ops(),
		Streams:      len(sources),
		BytesWritten: total.BytesWritten,
		BytesRead:    total.BytesRead,
		Seconds:      rr.Seconds,
		WriteMBps:    units.MBps(total.BytesWritten, rr.Seconds),
		StorageAge:   exec.Tracker().Age(),
	}
	if err != nil {
		return res, fmt.Errorf("trace: %w", err)
	}
	return res, nil
}

// Analysis is what a trace implies without executing it.
type Analysis struct {
	Ops          int
	Puts         int
	Replaces     int
	Deletes      int
	Gets         int
	RangedGets   int
	LiveObjects  int
	LiveBytes    int64
	RetiredBytes int64
	// StorageAge is computed from the allocation rate alone, per §4.4:
	// "Given an application trace, storage age can be computed from the
	// data allocation rate."
	StorageAge float64
	// MeanObjectBytes is the mean live object size at trace end.
	MeanObjectBytes int64
}

// Analyze computes trace statistics and the storage age the trace would
// produce, without touching any store.
func Analyze(ops []Op) (Analysis, error) {
	var a Analysis
	live := map[string]int64{}
	for i, op := range ops {
		a.Ops++
		switch op.Kind {
		case Put:
			if _, ok := live[op.Key]; ok {
				return a, fmt.Errorf("trace: op %d puts existing key %s", i, op.Key)
			}
			live[op.Key] = op.Size
			a.Puts++
		case Replace:
			if old, ok := live[op.Key]; ok {
				a.RetiredBytes += old
			}
			live[op.Key] = op.Size
			a.Replaces++
		case Delete:
			old, ok := live[op.Key]
			if !ok {
				return a, fmt.Errorf("trace: op %d deletes missing key %s", i, op.Key)
			}
			a.RetiredBytes += old
			delete(live, op.Key)
			a.Deletes++
		case Get:
			if _, ok := live[op.Key]; !ok {
				return a, fmt.Errorf("trace: op %d reads missing key %s", i, op.Key)
			}
			a.Gets++
		case GetRange:
			size, ok := live[op.Key]
			if !ok {
				return a, fmt.Errorf("trace: op %d reads missing key %s", i, op.Key)
			}
			if op.Off < 0 || op.Len <= 0 || op.Off+op.Len > size {
				return a, fmt.Errorf("trace: op %d range [%d,%d) outside %s (%d bytes)",
					i, op.Off, op.Off+op.Len, op.Key, size)
			}
			a.RangedGets++
		}
	}
	a.LiveObjects = len(live)
	for _, s := range live {
		a.LiveBytes += s
	}
	if a.LiveBytes > 0 {
		a.StorageAge = float64(a.RetiredBytes) / float64(a.LiveBytes)
	}
	if a.LiveObjects > 0 {
		a.MeanObjectBytes = a.LiveBytes / int64(a.LiveObjects)
	}
	return a, nil
}
