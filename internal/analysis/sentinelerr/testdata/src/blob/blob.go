// Package blob is a miniature stand-in for the repo's internal/blob:
// just enough surface (sentinels + boundary interfaces) for the
// sentinelerr fixtures to type-check.
package blob

import "errors"

var (
	ErrNotFound = errors.New("blob: object not found")
	ErrClosed   = errors.New("blob: handle closed")
	ErrBusy     = errors.New("blob: object busy")
)

type Reader interface {
	Size() int64
	ReadAll() ([]byte, error)
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

type Writer interface {
	Append(n int64, data []byte) error
	Commit() error
	Abort() error
}

type Store interface {
	Name() string
}
