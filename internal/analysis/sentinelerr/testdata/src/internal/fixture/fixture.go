// Package fixture exercises the sentinelerr analyzer: unwrapped errors
// returned from blob-boundary methods and constructors, properly
// wrapped sentinels, out-of-scope helpers, and a justified suppression.
package fixture

import (
	"errors"
	"fmt"

	"blob"
)

// reader implements blob.Reader, so its interface methods are boundary
// functions.
type reader struct{ closed bool }

func (r *reader) Size() int64 { return 0 }

func (r *reader) ReadAll() ([]byte, error) {
	return nil, errors.New("boom") // want `unwrapped error escapes the blob\.Store boundary`
}

func (r *reader) ReadAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("short read at %d: %w", off, blob.ErrClosed)
}

func (r *reader) Close() error {
	err := fmt.Errorf("close failed") // want `unwrapped error escapes the blob\.Store boundary`
	return err
}

// open returns a boundary interface, so it is in scope too.
func open(key string) (blob.Reader, error) {
	if key == "" {
		//fragvet:ignore sentinelerr fixture pins the suppression path
		return nil, fmt.Errorf("empty key")
	}
	return nil, fmt.Errorf("open %q: %w", key, blob.ErrNotFound)
}

// helper is a plain error-returning function, out of scope: callers
// above the boundary may mint their own errors.
func helper() error {
	return errors.New("fine here")
}
