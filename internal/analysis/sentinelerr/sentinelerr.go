// Package sentinelerr enforces the blob.Store error contract: every
// failure crossing the Store/Reader/Writer boundary wraps one of the
// sentinels in blob/errors.go, so callers dispatch with errors.Is and
// never by message text. An errors.New or a fmt.Errorf without %w
// returned from a boundary method mints an unmatchable error — the
// conformance suite, the workload executor's ErrNoSpaceLeft tolerance,
// and the compactor's ErrBusy/ErrNotFound handling all silently
// misclassify it.
//
// Scope: methods of types implementing blob.Store, blob.Reader, or
// blob.Writer whose name belongs to the implemented interface, plus
// any function whose results include one of those interface types
// (constructors and forwarders like core.newWriter). Within scope a
// return statement whose error operand is a direct errors.New(...) or
// a fmt.Errorf(...) with no %w verb — or a local variable assigned
// exactly once from such a call — is flagged.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the sentinelerr check.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc: "flag unwrapped errors.New/fmt.Errorf-without-%w escaping the " +
		"blob.Store boundary instead of wrapping a blob.Err* sentinel",
	Run: run,
}

func run(pass *analysis.Pass) error {
	blobPkg := analysis.BlobPackage(pass.Pkg)
	if blobPkg == nil {
		return nil
	}
	ifaces := map[string]*types.Interface{}
	for _, name := range []string{"Store", "Reader", "Writer"} {
		if iface := analysis.BlobInterface(blobPkg, name); iface != nil {
			ifaces[name] = iface
		}
	}
	if len(ifaces) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inScope(pass, fd, ifaces) {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// inScope reports whether fd is a blob-boundary function: an interface
// method on an implementing type, or a function returning one of the
// boundary interfaces.
func inScope(pass *analysis.Pass, fd *ast.FuncDecl, ifaces map[string]*types.Interface) bool {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		for _, iface := range ifaces {
			if !analysis.Implements(recv.Type(), iface) {
				continue
			}
			for m := range iface.NumMethods() {
				if iface.Method(m).Name() == fn.Name() {
					return true
				}
			}
		}
		// Fall through: a method may still be a constructor/forwarder
		// returning a boundary interface.
	}
	results := sig.Results()
	for i := range results.Len() {
		rt := results.At(i).Type()
		for _, iface := range ifaces {
			if tIface, ok := rt.Underlying().(*types.Interface); ok && types.Identical(tIface, iface) {
				return true
			}
		}
	}
	return false
}

// checkFunc flags unwrapped error constructions returned by fd.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// singleAssign maps a local error variable to the sole unwrapped
	// construction assigned to it; variables assigned more than once
	// (or from clean expressions) drop out.
	singleAssign := map[types.Object]token.Pos{}
	multi := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || i >= len(as.Rhs) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if _, seen := singleAssign[obj]; seen || multi[obj] {
				multi[obj] = true
				delete(singleAssign, obj)
				continue
			}
			if pos, bad := unwrappedConstruction(pass, as.Rhs[i]); bad {
				singleAssign[obj] = pos
			} else {
				multi[obj] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			tv, ok := pass.TypesInfo.Types[res]
			if !ok || tv.Type == nil || !isErrorType(tv.Type) {
				continue
			}
			if pos, bad := unwrappedConstruction(pass, res); bad {
				report(pass, pos)
				continue
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && !multi[obj] {
					if pos, tracked := singleAssign[obj]; tracked {
						report(pass, pos)
					}
				}
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos) {
	pass.Reportf(pos,
		"unwrapped error escapes the blob.Store boundary: wrap a blob.Err* sentinel with %%w so errors.Is holds end-to-end")
}

// unwrappedConstruction reports whether expr is errors.New(...) or
// fmt.Errorf(...) without a %w verb.
func unwrappedConstruction(pass *analysis.Pass, expr ast.Expr) (token.Pos, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return token.NoPos, false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return token.NoPos, false
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return call.Pos(), true
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return token.NoPos, false
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			// Non-literal format: cannot prove a missing %w; stay quiet.
			return token.NoPos, false
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil || strings.Contains(format, "%w") {
			return token.NoPos, false
		}
		return call.Pos(), true
	}
	return token.NoPos, false
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error" && types.IsInterface(t)
}
