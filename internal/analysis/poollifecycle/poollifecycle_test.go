package poollifecycle_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poollifecycle"
)

func TestPoolLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", poollifecycle.Analyzer, "internal/fixture")
}
