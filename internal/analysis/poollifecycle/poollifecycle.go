// Package poollifecycle enforces the recycled-handle contract from the
// high-k executor work: blob.Reader and blob.Writer handles are pooled
// (core recycles fileReader/fileWriter and their db twins through
// sync.Pool), so a leaked handle is not just a GC'd struct — a leaked
// reader never returns to the pool and a leaked writer holds the key's
// in-flight claim forever, turning every later Create/Replace of that
// key into ErrBusy. Use after Close is worse: the pool may have handed
// the struct to another goroutine's Open, so the stale handle reads
// someone else's object.
//
// Three rules, all intra-function:
//
//  1. A reader obtained from Store.Open must be Closed (directly or
//     deferred) unless the handle escapes (returned, stored, passed on).
//  2. A writer obtained from Store.Create/Replace must reach Commit or
//     Abort (or Close) unless it escapes.
//  3. A handle must not be used again in the same statement list after
//     the statement that Closed/Committed/Aborted it.
package poollifecycle

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poollifecycle check.
var Analyzer = &analysis.Analyzer{
	Name: "poollifecycle",
	Doc: "flag pooled blob.Reader/Writer handles leaked without " +
		"Close/Commit/Abort or used after being released to the pool",
	Run: run,
}

// closers names the methods that release each kind of handle.
var closers = map[string]map[string]bool{
	"reader": {"Close": true},
	"writer": {"Commit": true, "Abort": true, "Close": true},
}

func run(pass *analysis.Pass) error {
	blobPkg := analysis.BlobPackage(pass.Pkg)
	if blobPkg == nil {
		return nil
	}
	reader := analysis.BlobInterface(blobPkg, "Reader")
	writer := analysis.BlobInterface(blobPkg, "Writer")
	if reader == nil && writer == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body, reader, writer)
			}
			return true
		})
	}
	return nil
}

// handle is one tracked reader/writer variable within a function body.
type handle struct {
	obj      types.Object
	kind     string // "reader" or "writer"
	declPos  ast.Node
	method   string // the acquiring method name, for diagnostics
	released bool
	escapes  bool
}

// checkBody applies the three rules to one function body. Nested
// function literals are walked by the caller separately; uses inside
// them count as escapes for handles of the enclosing body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, reader, writer *types.Interface) {
	info := pass.TypesInfo
	handles := map[types.Object]*handle{}

	// Pass 1: find acquisitions — x, err := <expr>.Open/Create/Replace(...)
	// whose first result is a blob.Reader/Writer.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		fn := analysis.Callee(info, call)
		if fn == nil {
			return true
		}
		var kind string
		switch fn.Name() {
		case "Open":
			kind = "reader"
		case "Create", "Replace":
			kind = "writer"
		default:
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		iface := reader
		if kind == "writer" {
			iface = writer
		}
		if iface == nil || !analysis.Implements(obj.Type(), iface) {
			return true
		}
		handles[obj] = &handle{obj: obj, kind: kind, declPos: as, method: fn.Name()}
		return true
	})
	if len(handles) == 0 {
		return
	}

	// Pass 2: classify every other use of each handle.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A handle captured by a nested closure escapes this body's
			// tracking (the closure may close it on another path).
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil {
						h.escapes = true
					}
				}
				return true
			})
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// x.Close() / x.Commit() / x.Abort() releases; x as an
			// argument escapes.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil && closers[h.kind][sel.Sel.Name] {
						h.released = true
					}
				}
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil {
						h.escapes = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil {
						h.escapes = true
					}
				}
			}
		case *ast.AssignStmt:
			// Handle on the right of a plain assignment (stored into a
			// field, another variable, a map) escapes.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil {
						h.escapes = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if h := handles[info.Uses[id]]; h != nil {
						h.escapes = true
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				if h := handles[info.Uses[id]]; h != nil {
					h.escapes = true
				}
			}
		}
		return true
	})

	// Rule 1+2: neither released nor escaping.
	for _, h := range handles {
		if !h.released && !h.escapes {
			verb := "Closed"
			if h.kind == "writer" {
				verb = "Committed or Aborted"
			}
			pass.Reportf(h.declPos.Pos(),
				"pooled %s handle from %s is never %s: the handle leaks its pool slot%s",
				h.kind, h.method, verb,
				map[string]string{"reader": "", "writer": " and holds the key's in-flight claim"}[h.kind])
		}
	}

	// Rule 3: use after release, per statement list.
	checkUseAfterRelease(pass, body, handles)
}

// checkUseAfterRelease walks every statement list: once a statement
// releases handle x (non-deferred x.Close/Commit/Abort), any later
// statement in the same list that mentions x is flagged. Nested blocks
// inherit the released set by value, so an error-branch Abort does not
// poison the happy path after the branch.
func checkUseAfterRelease(pass *analysis.Pass, body *ast.BlockStmt, handles map[types.Object]*handle) {
	info := pass.TypesInfo
	releasedBy := func(stmt ast.Stmt) *handle {
		var found *handle
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if h := handles[info.Uses[id]]; h != nil && closers[h.kind][sel.Sel.Name] {
				found = h
			}
			return true
		})
		return found
	}

	var walkList func(stmts []ast.Stmt, released map[*handle]bool)
	walkList = func(stmts []ast.Stmt, released map[*handle]bool) {
		for _, stmt := range stmts {
			// Reassigning a released handle variable is not a use of the
			// stale handle; un-track it.
			lhsRoots := map[*ast.Ident]bool{}
			ast.Inspect(stmt, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							lhsRoots[id] = true
							if h := handles[info.Uses[id]]; h != nil {
								released[h] = false
							}
						}
					}
				}
				return true
			})
			// A cleanup call (Close/Commit/Abort) on an already-released
			// handle is contract-safe — it fails typed with ErrClosed
			// without touching pooled state — and Abort after a failed
			// Commit is the documented recovery path. Only data
			// operations on a released handle are dangerous.
			cleanup := map[*ast.Ident]bool{}
			ast.Inspect(stmt, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							if h := handles[info.Uses[id]]; h != nil && closers[h.kind][sel.Sel.Name] {
								cleanup[id] = true
							}
						}
					}
				}
				return true
			})
			// Flag uses of already-released handles anywhere in this
			// statement (skipping nested closures, which escaped).
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if id, ok := n.(*ast.Ident); ok && (lhsRoots[id] || cleanup[id]) {
					return true
				}
				switch n := n.(type) {
				case *ast.BlockStmt:
					// Nested lists get their own copy of the released
					// set below; stop here to avoid double-walking.
					inner := make(map[*handle]bool, len(released))
					for k, v := range released {
						inner[k] = v
					}
					walkList(n.List, inner)
					return false
				case *ast.Ident:
					if h := handles[info.Uses[n]]; h != nil && released[h] {
						pass.Reportf(n.Pos(),
							"use of pooled %s handle after %s released it to the pool: the struct may already belong to another goroutine's open",
							h.kind, releaseVerb(h.kind))
						// One report per handle per list.
						released[h] = false
					}
				}
				return true
			})
			if h := releasedBy(stmt); h != nil {
				released[h] = true
			}
		}
	}
	walkList(body.List, map[*handle]bool{})
}

func releaseVerb(kind string) string {
	if kind == "writer" {
		return "Commit/Abort"
	}
	return "Close"
}
