// Package blob is a miniature stand-in for the repo's internal/blob:
// just enough surface (handle interfaces) for the poollifecycle
// fixtures to type-check.
package blob

type Reader interface {
	Size() int64
	ReadAll() ([]byte, error)
	Close() error
}

type Writer interface {
	Append(n int64, data []byte) error
	Commit() error
	Abort() error
}
