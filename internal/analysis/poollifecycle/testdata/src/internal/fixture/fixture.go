// Package fixture exercises the poollifecycle analyzer: leaked pooled
// handles, use after release, the Abort-after-failed-Commit recovery
// path, escapes, and a justified suppression.
package fixture

import (
	"context"

	"blob"
)

type store struct{}

func (s *store) Open(ctx context.Context, key string) (blob.Reader, error) { return nil, nil }

func (s *store) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return nil, nil
}

func leakReader(ctx context.Context, s *store) int64 {
	r, err := s.Open(ctx, "k") // want `pooled reader handle from Open is never Closed`
	if err != nil {
		return 0
	}
	return r.Size()
}

func leakWriter(ctx context.Context, s *store) {
	w, err := s.Create(ctx, "k", 8) // want `pooled writer handle from Create is never Committed or Aborted`
	if err != nil {
		return
	}
	_ = w.Append(8, nil)
}

func goodDefer(ctx context.Context, s *store) ([]byte, error) {
	r, err := s.Open(ctx, "k")
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.ReadAll()
}

func useAfterClose(ctx context.Context, s *store) int64 {
	r, err := s.Open(ctx, "k")
	if err != nil {
		return 0
	}
	r.Close()
	return r.Size() // want `use of pooled reader handle after Close released it to the pool`
}

func commitRecovery(ctx context.Context, s *store) error {
	w, err := s.Create(ctx, "k", 8)
	if err != nil {
		return err
	}
	if err := w.Commit(); err != nil {
		return w.Abort() // cleanup after a failed Commit is the contract
	}
	return nil
}

func escapes(ctx context.Context, s *store) (blob.Reader, error) {
	r, err := s.Open(ctx, "k")
	if err != nil {
		return nil, err
	}
	return r, nil // escaping handles are the caller's to close
}

func suppressed(ctx context.Context, s *store) int64 {
	r, err := s.Open(ctx, "k")
	if err != nil {
		return 0
	}
	r.Close()
	//fragvet:ignore poollifecycle fixture pins the suppression path
	return r.Size()
}
