package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BlobPackage locates the blob API package (repro/internal/blob, or any
// import path ending in "/blob" — fixture packages use short paths)
// from the analyzed package: the package itself when it IS blob,
// otherwise a breadth-first search of its import graph. Returns nil
// when the package cannot see the blob API, in which case the
// blob-boundary analyzers have nothing to check.
func BlobPackage(pkg *types.Package) *types.Package {
	isBlob := func(p *types.Package) bool {
		return p.Path() == "blob" || strings.HasSuffix(p.Path(), "/blob")
	}
	if isBlob(pkg) {
		return pkg
	}
	seen := map[*types.Package]bool{pkg: true}
	queue := pkg.Imports()
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if isBlob(p) {
			return p
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// BlobInterface returns the named interface (Store, Reader, Writer)
// from the blob package, or nil.
func BlobInterface(blobPkg *types.Package, name string) *types.Interface {
	if blobPkg == nil {
		return nil
	}
	obj := blobPkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// BlobNamed returns the named (non-interface) type from the blob
// package — KeyLocks, GroupCommitter — or nil.
func BlobNamed(blobPkg *types.Package, name string) types.Type {
	if blobPkg == nil {
		return nil
	}
	obj := blobPkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// Implements reports whether t (or *t) satisfies iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// Callee resolves the *types.Func a call expression invokes (methods
// and plain functions), or nil for indirect calls through function
// values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ReceiverType returns the (possibly pointer) receiver type of a
// method call's receiver expression, or nil when the call is not a
// selector-based method call.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// IsMethodOn reports whether call invokes a method named name on a
// value whose type is (or points to) the named type typeName from the
// blob package.
func IsMethodOn(info *types.Info, call *ast.CallExpr, blobPkg *types.Package, typeName, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := ReceiverType(info, call)
	if recv == nil {
		return false
	}
	want := BlobNamed(blobPkg, typeName)
	if want == nil {
		return false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	return types.Identical(recv, want)
}

// InternalSimPackage reports whether path names a package inside the
// simulation tree — the scope where wall-clock use is an invariant
// violation. cmd/, examples/, and external code are out of scope.
func InternalSimPackage(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
