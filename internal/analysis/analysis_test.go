package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// parseOne parses src as a single file and returns it with its fileset.
func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// lineStart returns a Pos on the given 1-based line of the sole file.
func lineStart(fset *token.FileSet, files []*ast.File, line int) token.Pos {
	return fset.File(files[0].Pos()).LineStart(line)
}

func TestFilterSuppressesOnSameAndPreviousLine(t *testing.T) {
	fset, files := parseOne(t, `package p

//fragvet:ignore demo reason above
var a = 1
var b = 2 //fragvet:ignore demo reason inline

var c = 3
`)
	diags := []analysis.Diagnostic{
		{Pos: lineStart(fset, files, 4), Analyzer: "demo", Message: "finding on a"},
		{Pos: lineStart(fset, files, 5), Analyzer: "demo", Message: "finding on b"},
		{Pos: lineStart(fset, files, 7), Analyzer: "demo", Message: "finding on c"},
	}
	got := analysis.Filter(fset, files, diags)
	if len(got) != 1 || got[0].Message != "finding on c" {
		t.Fatalf("Filter kept %v, want only the unsuppressed finding on c", got)
	}
}

func TestFilterFlagsMalformedAndStaleIgnores(t *testing.T) {
	fset, files := parseOne(t, `package p

//fragvet:ignore demo
var a = 1

//fragvet:ignore demo nothing here to suppress
var b = 2
`)
	got := analysis.Filter(fset, files, nil)
	if len(got) != 2 {
		t.Fatalf("Filter returned %d diagnostics, want 2 (malformed + stale): %v", len(got), got)
	}
	var sawMalformed, sawStale bool
	for _, d := range got {
		if d.Analyzer != analysis.IgnoreName {
			t.Errorf("machinery diagnostic attributed to %q, want %q", d.Analyzer, analysis.IgnoreName)
		}
		if strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "stale") {
			sawStale = true
		}
	}
	if !sawMalformed || !sawStale {
		t.Fatalf("want one malformed and one stale diagnostic, got %v", got)
	}
}

func TestFilterIgnoreDoesNotCrossAnalyzers(t *testing.T) {
	fset, files := parseOne(t, `package p

//fragvet:ignore other justified elsewhere
var a = 1
`)
	diags := []analysis.Diagnostic{
		{Pos: lineStart(fset, files, 4), Analyzer: "demo", Message: "finding on a"},
	}
	got := analysis.Filter(fset, files, diags)
	// The demo finding survives (wrong analyzer name) and the ignore is
	// stale, so both come back.
	if len(got) != 2 {
		t.Fatalf("Filter returned %d diagnostics, want 2 (finding + stale ignore): %v", len(got), got)
	}
}
