// Package vclockpurity enforces the simulation's first invariant: cost
// and time inside internal/ packages flow through the shared virtual
// clock (internal/vclock), never the wall clock. A single time.Now or
// time.Sleep on a disk-cost path silently decouples reported
// throughput from the disk model and corrupts the §6 fragmentation
// curves, because virtual seconds stop covering the work performed.
//
// Two rules:
//
//  1. Calls to wall-clock time functions (time.Now, time.Since,
//     time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc, time.Until) are flagged in every internal/
//     package. Genuine wall-clock sites — the compactor's duty-gate
//     waits, report timestamps, the group-commit batcher's coalescing
//     delay — carry a //fragvet:ignore vclockpurity <reason>.
//
//  2. Functions named charge* are the convention for accounting a disk
//     or memory cost; one that neither advances a vclock.Clock nor
//     delegates to another charge* helper is a cost path that returns
//     without charging, and is flagged.
package vclockpurity

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the vclockpurity check.
var Analyzer = &analysis.Analyzer{
	Name: "vclockpurity",
	Doc: "flag wall-clock time use in simulation packages and charge* " +
		"helpers that never advance the virtual clock",
	Run: run,
}

// wallFuncs are the time package functions that read or wait on the
// wall clock. time.Duration arithmetic and time.Time formatting are
// fine; acquiring wall time is not.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true, "Until": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InternalSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallCall(pass, n)
			case *ast.FuncDecl:
				checkChargeFunc(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWallCall flags direct calls to the wall-clock time functions.
func checkWallCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if !wallFuncs[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(),
		"wall-clock time.%s in simulation package %s: charge the shared vclock.Clock instead",
		fn.Name(), pass.Pkg.Name())
}

// checkChargeFunc flags charge*-named functions that never advance a
// virtual clock and never delegate to another charge* helper.
func checkChargeFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	name := decl.Name.Name
	if decl.Body == nil || !strings.HasPrefix(strings.ToLower(name), "charge") {
		return
	}
	charges := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || charges {
			return !charges
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			switch {
			case fn.Name() == "Advance" || fn.Name() == "AdvanceSeconds":
				charges = true
			case fn != pass.TypesInfo.Defs[decl.Name] &&
				strings.HasPrefix(strings.ToLower(fn.Name()), "charge"):
				charges = true
			}
		}
		return !charges
	})
	if !charges {
		pass.Reportf(decl.Name.Pos(),
			"charge path %s returns without advancing a vclock.Clock (no Advance/AdvanceSeconds or charge* delegation)",
			name)
	}
}
