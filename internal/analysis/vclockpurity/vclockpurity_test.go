package vclockpurity_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/vclockpurity"
)

func TestVclockPurity(t *testing.T) {
	analysistest.Run(t, "testdata", vclockpurity.Analyzer, "internal/fixture")
}
