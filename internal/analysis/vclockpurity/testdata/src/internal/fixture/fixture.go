// Package fixture exercises the vclockpurity analyzer: wall-clock time
// calls in a simulation package, charge* helpers that do or do not
// advance the virtual clock, and a justified suppression.
package fixture

import "time"

// clock is a stand-in for vclock.Clock.
type clock struct{ ns int64 }

func (c *clock) Advance(ns int64) { c.ns += ns }

func bad() int64 {
	t := time.Now() // want `wall-clock time\.Now in simulation package fixture`
	return t.UnixNano()
}

func alsoBad() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
}

func good(c *clock) {
	c.Advance(10)
}

func durationMathIsFine() time.Duration {
	return 3 * time.Millisecond
}

func allowed() {
	//fragvet:ignore vclockpurity fixture models a real scheduling wait between goroutines
	time.Sleep(time.Microsecond)
}

func chargeRead(c *clock) {
	c.Advance(5)
}

func chargeWrite(c *clock) { // want `charge path chargeWrite returns without advancing a vclock\.Clock`
	_ = c
}

func chargeDelete(c *clock) {
	chargeRead(c)
}
