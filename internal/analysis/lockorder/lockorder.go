// Package lockorder enforces the stripe/force ordering invariant: a
// blob.KeyLocks stripe must never be held across a call that can reach
// the group-commit force. The committer's Do blocks the caller until
// its batch's one group force is issued, and the apply closures inside
// that batch re-acquire key stripes (core's commitApply takes the
// key's stripe lock). A caller entering Do while holding a stripe
// therefore deadlocks as soon as its batch contains a commit for a key
// on the same stripe — a 1-in-stripes chance per batch that soak runs
// hit and unit tests do not.
//
// The analyzer tracks, per statement list, the region between a
// KeyLocks Lock/RLock and its Unlock/RUnlock (a deferred Unlock holds
// to function end). Inside a held region it flags calls that force:
// GroupCommitter.Do/Close, blob.Writer.Commit (Commit rides the
// pipeline), and any same-package function that transitively makes
// such a call (one intra-package fixpoint, so helpers don't hide the
// force).
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag calls that can reach the group-commit force while a " +
		"KeyLocks stripe is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	blobPkg := analysis.BlobPackage(pass.Pkg)
	if blobPkg == nil {
		return nil
	}
	writer := analysis.BlobInterface(blobPkg, "Writer")

	// forces reports whether call directly reaches the pipeline.
	forces := func(call *ast.CallExpr) bool {
		if analysis.IsMethodOn(pass.TypesInfo, call, blobPkg, "GroupCommitter", "Do") ||
			analysis.IsMethodOn(pass.TypesInfo, call, blobPkg, "GroupCommitter", "Close") {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Commit" {
			return false
		}
		recv := analysis.ReceiverType(pass.TypesInfo, call)
		return recv != nil && writer != nil && analysis.Implements(recv, writer)
	}

	// Intra-package fixpoint: funcs whose body contains a forcing call,
	// directly or through same-package callees.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	mayForce := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if mayForce[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if forces(call) {
					found = true
					return false
				}
				if callee := analysis.Callee(pass.TypesInfo, call); callee != nil && mayForce[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				mayForce[fn] = true
				changed = true
			}
		}
	}

	// lockMethod classifies a statement's KeyLocks call: +1 acquire,
	// -1 release, 0 neither.
	lockDelta := func(call *ast.CallExpr) int {
		for _, m := range []string{"Lock", "RLock"} {
			if analysis.IsMethodOn(pass.TypesInfo, call, blobPkg, "KeyLocks", m) {
				return 1
			}
		}
		for _, m := range []string{"Unlock", "RUnlock"} {
			if analysis.IsMethodOn(pass.TypesInfo, call, blobPkg, "KeyLocks", m) {
				return -1
			}
		}
		return 0
	}

	for _, fd := range decls {
		checkFunc(pass, fd, lockDelta, forces, mayForce)
	}
	return nil
}

// checkFunc walks fd's statement lists tracking how many stripe locks
// are held, flagging forcing calls inside held regions.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl,
	lockDelta func(*ast.CallExpr) int,
	forces func(*ast.CallExpr) bool,
	mayForce map[*types.Func]bool) {

	flagCalls := func(stmt ast.Stmt) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures run later, outside the region
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if forces(call) {
				pass.Reportf(call.Pos(),
					"group-commit force reached while a KeyLocks stripe is held: the batch's apply closures re-acquire stripes and deadlock")
				return true
			}
			if callee := analysis.Callee(pass.TypesInfo, call); callee != nil && mayForce[callee] {
				pass.Reportf(call.Pos(),
					"call to %s while a KeyLocks stripe is held: it can reach the group-commit force, whose apply closures re-acquire stripes",
					callee.Name())
			}
			return true
		})
	}

	// stmtDelta sums the lock acquires/releases of the non-deferred
	// calls in stmt; deferHolds reports a deferred Unlock/Lock.
	stmtDelta := func(stmt ast.Stmt) (delta int, deferAcquire bool) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred Unlock releases at return; the stripe stays
				// held for the rest of the function. A deferred Lock is
				// nonsense; ignore.
				return false
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				delta += lockDelta(n)
			}
			return true
		})
		// Detect `defer kl.Unlock(key)` directly.
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if lockDelta(ds.Call) == -1 {
				deferAcquire = true
			}
		}
		return delta, deferAcquire
	}

	var walkList func(stmts []ast.Stmt, held int)
	walkList = func(stmts []ast.Stmt, held int) {
		deferredHold := false
		for _, stmt := range stmts {
			if held > 0 || deferredHold {
				flagCalls(stmt)
			}
			delta, deferRelease := stmtDelta(stmt)
			held += delta
			if held < 0 {
				held = 0
			}
			if deferRelease {
				// Lock was (or will be) paired with a deferred Unlock:
				// the stripe is held from here to function end.
				deferredHold = true
			}
			// Recurse into nested statement lists with the current
			// held state.
			effective := held
			if deferredHold {
				effective++
			}
			for _, inner := range nestedLists(stmt) {
				walkList(inner, effective)
			}
		}
	}
	walkList(fd.Body.List, 0)
}

// nestedLists returns the statement lists directly nested in stmt.
func nestedLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedLists(s.Stmt)...)
	}
	return out
}
