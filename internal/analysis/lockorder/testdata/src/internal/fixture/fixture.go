// Package fixture exercises the lockorder analyzer: the group-commit
// force reached while a KeyLocks stripe is held (directly, through
// Writer.Commit, and through a same-package helper), the safe
// unlock-first ordering, and a justified suppression.
package fixture

import "blob"

type engine struct {
	locks *blob.KeyLocks
	gc    *blob.GroupCommitter
}

func forceUnderLock(e *engine, key string) error {
	e.locks.Lock(key)
	defer e.locks.Unlock(key)
	return e.gc.Do(func() error { return nil }) // want `group-commit force reached while a KeyLocks stripe is held`
}

func commitUnderLock(e *engine, w blob.Writer, key string) error {
	e.locks.Lock(key)
	defer e.locks.Unlock(key)
	return w.Commit() // want `group-commit force reached while a KeyLocks stripe is held`
}

func unlockFirst(e *engine, key string) error {
	e.locks.Lock(key)
	e.locks.Unlock(key)
	return e.gc.Do(func() error { return nil })
}

func helperForce(e *engine) {
	_ = e.gc.Do(func() error { return nil })
}

func transitive(e *engine, key string) {
	e.locks.RLock(key)
	helperForce(e) // want `call to helperForce while a KeyLocks stripe is held`
	e.locks.RUnlock(key)
}

func suppressed(e *engine, key string) error {
	e.locks.Lock(key)
	defer e.locks.Unlock(key)
	//fragvet:ignore lockorder fixture pins the suppression path
	return e.gc.Do(func() error { return nil })
}
