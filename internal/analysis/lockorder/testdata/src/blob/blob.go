// Package blob is a miniature stand-in for the repo's internal/blob:
// just enough surface (KeyLocks, GroupCommitter, Writer) for the
// lockorder fixtures to type-check.
package blob

type KeyLocks struct{}

func (*KeyLocks) Lock(key string)    {}
func (*KeyLocks) Unlock(key string)  {}
func (*KeyLocks) RLock(key string)   {}
func (*KeyLocks) RUnlock(key string) {}

type GroupCommitter struct{}

func (*GroupCommitter) Do(apply func() error) error { return nil }
func (*GroupCommitter) Close() error                { return nil }

type Writer interface {
	Append(n int64, data []byte) error
	Commit() error
	Abort() error
}
