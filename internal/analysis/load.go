package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// This file is fragvet's standalone package loader: a minimal
// stdlib-only stand-in for golang.org/x/tools/go/packages. It shells
// out to `go list -export -deps` so the toolchain compiles export data
// for every dependency (standard library included — the environment
// ships no precompiled stdlib), then parses and type-checks the target
// packages from source against that export data.

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Load type-checks the packages matching patterns (go list syntax)
// under dir and returns them ready for analysis. Test files are not
// loaded; fragvet checks shipped code.
func Load(dir string, patterns []string) ([]*Package, error) {
	deps, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	byPath := make(map[string]*listPkg, len(deps))
	for _, p := range deps {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fragvet: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		p := byPath[t.ImportPath]
		if p == nil {
			p = t
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("fragvet: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("fragvet: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return out, nil
}

// goList runs `go list -json <args>` in dir and decodes the package
// stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("fragvet: go list: %w\n%s", err, stderr.String())
	}
	var out []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("fragvet: decoding go list output: %w", err)
		}
		out = append(out, &p)
	}
	return out, nil
}
