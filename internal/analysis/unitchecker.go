package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol —
// the same contract golang.org/x/tools/go/analysis/unitchecker speaks,
// reimplemented on the standard library. cmd/go drives the tool three
// ways:
//
//	fragvet -V=full          print a content-derived version for the
//	                         build cache
//	fragvet -flags           print the supported flags as JSON
//	fragvet <file>.cfg       analyze one compilation unit described by
//	                         the JSON config, exit 2 on findings
//
// The cfg supplies export-data paths for every import, so the checker
// runs fully offline and per-package, exactly as cmd/go schedules it.

// vetConfig mirrors the JSON cmd/go writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Vet runs the unit-checker protocol over args. It returns the process
// exit code: 0 clean, 1 tool failure, 2 findings.
func Vet(args []string, analyzers []*Analyzer) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion()
		case a == "-flags" || a == "--flags":
			// No tool-specific flags; cmd/go only needs valid JSON.
			fmt.Println("[]")
			return 0
		}
	}
	cfgFile := args[len(args)-1]
	code, err := vetUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	return code
}

// IsVetInvocation reports whether args look like cmd/go driving the
// tool as a vettool rather than a human running it standalone.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" {
			return true
		}
	}
	return len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg")
}

// printVersion emits the version line cmd/go fingerprints for its
// build cache: content-derived, so a rebuilt fragvet invalidates
// cached vet results.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "fragvet: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), string(h.Sum(nil)))
	return 0
}

// vetUnit analyzes one compilation unit.
func vetUnit(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// cmd/go expects the facts file regardless; fragvet's analyzers are
	// factless, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	// The generated test-main unit ("p.test") is synthesized code.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, nil
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	diags, err := Run(&Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
	if err != nil {
		return 1, err
	}
	// Test-augmented units ("p [p.test]") re-analyze the library files
	// together with in-package tests; report only shipped code so each
	// finding appears exactly once across units.
	code := 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
		code = 2
	}
	return code, nil
}
