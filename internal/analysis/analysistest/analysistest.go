// Package analysistest runs fragvet analyzers over fixture packages —
// a stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. Expected findings
// are marked with trailing comments of the form
//
//	// want "regexp" ["regexp" ...]
//
// on the flagged line. Every diagnostic must be matched by a want on
// its line and every want must match a diagnostic, so fixtures pin
// both true positives and true negatives. //fragvet:ignore directives
// are honored exactly as in production (including the stale-ignore and
// missing-reason machinery diagnostics, which can themselves be
// want-ed), so each analyzer's ignore path is testable.
//
// Fixture imports resolve inside testdata/src first (so fixtures can
// model the blob package with a miniature ".../blob"), then fall back
// to the standard library, type-checked from source — the environment
// ships no compiled stdlib export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package at <testdata>/src/<pkgpath>, applies a,
// and compares the (ignore-filtered) diagnostics against the // want
// expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    filepath.Join(testdata, "src"),
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*loadedPkg{},
		loading: map[string]bool{},
	}
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkgpath, err)
	}
	check(t, fset, pkg.files, diags)
}

// loadedPkg is one parsed+type-checked fixture package.
type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture-local imports under root, stdlib from source.
type loader struct {
	fset    *token.FileSet
	root    string
	std     types.Importer
	loaded  map[string]*loadedPkg
	loading map[string]bool
}

// Import implements types.Importer over the fixture tree + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(ld.root, path); dirExists(dir) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loadedPkg{files: files, types: tpkg, info: info}
	ld.loaded[path] = p
	return p, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// wantArgRE matches one expectation pattern, double-quoted or
// backquoted; both carry a regexp, backquotes just avoid escaping.
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// check compares diagnostics against the fixtures' // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantArgRE.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
