// Package fixture exercises the ctxflow analyzer: contexts minted
// mid-chain while a caller's context is in scope, nil contexts, roots
// that legitimately mint, and a justified suppression.
package fixture

import "context"

func op(ctx context.Context, n int) {}

func midChain(ctx context.Context) {
	op(context.Background(), 1) // want `context\.Background\(\) minted while a caller's context is in scope`
}

func root() {
	op(context.Background(), 1) // roots without a ctx parameter may mint
}

func nilArg() {
	op(nil, 1) // want `nil passed as context\.Context`
}

func closureInherits(ctx context.Context) {
	f := func() {
		op(context.TODO(), 2) // want `context\.TODO\(\) minted while a caller's context is in scope`
	}
	f()
}

func threaded(ctx context.Context) {
	op(ctx, 3)
}

func suppressed(ctx context.Context) {
	//fragvet:ignore ctxflow fixture pins the suppression path
	op(context.Background(), 4)
}
