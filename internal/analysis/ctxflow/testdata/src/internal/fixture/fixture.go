// Package fixture exercises the ctxflow analyzer: contexts minted
// mid-chain while a caller's context is in scope, nil contexts, roots
// that legitimately mint, and a justified suppression.
package fixture

import (
	"context"
	"net/http"
)

func op(ctx context.Context, n int) {}

func midChain(ctx context.Context) {
	op(context.Background(), 1) // want `context\.Background\(\) minted while a caller's context is in scope`
}

func root() {
	op(context.Background(), 1) // roots without a ctx parameter may mint
}

func nilArg() {
	op(nil, 1) // want `nil passed as context\.Context`
}

func closureInherits(ctx context.Context) {
	f := func() {
		op(context.TODO(), 2) // want `context\.TODO\(\) minted while a caller's context is in scope`
	}
	f()
}

func threaded(ctx context.Context) {
	op(ctx, 3)
}

func suppressed(ctx context.Context) {
	//fragvet:ignore ctxflow fixture pins the suppression path
	op(context.Background(), 4)
}

// HTTP handlers: the request IS the context root — minting a fresh
// background context inside one severs client-disconnect cancellation.

func handlerMints(w http.ResponseWriter, r *http.Request) {
	op(context.Background(), 5) // want `context\.Background\(\) minted while a caller's context is in scope`
}

func handlerThreads(w http.ResponseWriter, r *http.Request) {
	op(r.Context(), 6) // the request's context is the legitimate root
}

func handlerClosureInherits(w http.ResponseWriter, r *http.Request) {
	go func() {
		op(context.TODO(), 7) // want `context\.TODO\(\) minted while a caller's context is in scope`
	}()
}

func handlerDetaches(w http.ResponseWriter, r *http.Request) {
	// Deliberate detach: sessions outlive their opening request.
	op(context.WithoutCancel(r.Context()), 8)
}

func valueRequest(r http.Request) {
	op(context.Background(), 9) // want `context\.Background\(\) minted while a caller's context is in scope`
}
