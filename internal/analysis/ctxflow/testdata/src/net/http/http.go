// Package http is a miniature net/http for ctxflow fixtures: just
// enough surface (Request with a Context method, ResponseWriter) for
// handler-shaped fixture functions to type-check. The analyzer matches
// the package PATH "net/http", so this stand-in exercises the same
// code path as the real library without type-checking the full stdlib
// net stack from source.
package http

import "context"

// Request mirrors net/http.Request's context surface.
type Request struct {
	ctx context.Context
}

// Context mirrors net/http.Request.Context: never nil.
func (r *Request) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// WithContext mirrors net/http.Request.WithContext.
func (r *Request) WithContext(ctx context.Context) *Request {
	r2 := *r
	r2.ctx = ctx
	return &r2
}

// ResponseWriter mirrors the method handler fixtures need.
type ResponseWriter interface {
	WriteHeader(statusCode int)
}
