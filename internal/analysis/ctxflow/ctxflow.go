// Package ctxflow enforces context threading through the op chain:
// every store operation takes a context.Context, and a layer that
// mints context.Background()/context.TODO() while a caller's context
// is in scope silently severs cancellation — the conformance suite's
// mid-stream cancel test passes at the layer that checks ctx, while
// the layer below keeps charging virtual time for an op the caller
// abandoned.
//
// Two rules, scoped to internal/ packages:
//
//  1. A function (or closure) with a context-bearing parameter in
//     scope must not call context.Background() or context.TODO() —
//     that drops the caller's context mid-chain. Context-bearing means
//     a context.Context, or an *http.Request: an HTTP handler's
//     legitimate context root is r.Context() (the connection's
//     lifetime), so minting a fresh background context inside a
//     handler severs client-disconnect cancellation exactly the way it
//     does mid-chain. Roots (cmd/, tests, harness entry points without
//     either parameter) are unaffected, and detaching deliberately
//     with context.WithoutCancel(r.Context()) stays legal.
//  2. A call must not pass a nil literal as a context.Context
//     argument.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() minted while a caller's " +
		"context is in scope, and nil contexts passed to ops",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InternalSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkScope(pass, n.Type, n.Body, false)
				}
				return false // checkScope recurses into closures itself
			case *ast.CallExpr:
				checkNilCtxArg(pass, n)
			}
			return true
		})
	}
	return nil
}

// hasCtxParam reports whether ft declares a context-bearing parameter:
// a context.Context, or an *http.Request whose Context() method is the
// handler chain's context root.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && (isContextType(tv.Type) || isHTTPRequestType(tv.Type)) {
			return true
		}
	}
	return false
}

// checkScope walks one function body. ctxInScope carries whether an
// enclosing function already has a Context parameter; closures inherit
// it lexically.
func checkScope(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, enclosing bool) {
	inScope := enclosing || hasCtxParam(pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, n.Type, n.Body, inScope)
			return false
		case *ast.CallExpr:
			checkNilCtxArg(pass, n)
			if !inScope {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(n.Pos(),
					"context.%s() minted while a caller's context is in scope: thread the caller's ctx (in an HTTP handler, r.Context()) so cancellation reaches every layer",
					fn.Name())
			}
		}
		return true
	})
}

// checkNilCtxArg flags a nil literal passed where the callee declares
// a context.Context parameter.
func checkNilCtxArg(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("nil") {
			continue
		}
		if isContextType(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(),
				"nil passed as context.Context: pass the caller's ctx (or context.Background() at a true root)")
		}
	}
}

// isHTTPRequestType reports whether t is net/http.Request or a
// pointer to it.
func isHTTPRequestType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Request" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
