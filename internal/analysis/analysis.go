// Package analysis is fragvet's analyzer framework: a deliberately
// small, dependency-free mirror of the golang.org/x/tools/go/analysis
// API (Analyzer, Pass, Diagnostic) built directly on go/ast and
// go/types, because this module vendors nothing and the container
// carries no module cache. The subpackages implement one analyzer per
// simulation invariant:
//
//   - vclockpurity: simulation packages charge the shared virtual
//     clock, never the wall clock, and charge* helpers must advance it;
//   - sentinelerr: errors escaping the blob.Store boundary wrap the
//     sentinel vocabulary in blob/errors.go;
//   - poollifecycle: pooled Reader/Writer handles are closed exactly
//     once and never used after Close/Commit/Abort;
//   - lockorder: no KeyLocks stripe is held across a call that can
//     reach the group-commit force;
//   - ctxflow: operations thread their context.Context instead of
//     minting context.Background() mid-chain.
//
// cmd/fragvet drives the suite either standalone (fragvet ./...) or as
// a `go vet -vettool` backend. Suppressions are inline comments of the
// form
//
//	//fragvet:ignore <analyzer> <reason>
//
// on (or immediately above) the flagged line; the reason is mandatory
// and an ignore that suppresses nothing is itself a diagnostic, so
// stale suppressions cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fragvet:ignore comments.
	Name string
	// Doc is the one-paragraph description `fragvet help` prints.
	Doc string
	// Run reports the analyzer's findings on one package via
	// Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// IgnoreName is the analyzer name attributed to diagnostics produced by
// the suppression machinery itself (missing reasons, stale ignores).
const IgnoreName = "fragvet"

// ignoreDirective is one parsed //fragvet:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

var ignoreRE = regexp.MustCompile(`^//fragvet:ignore(?:\s+(\S+))?(?:\s+(.*\S))?\s*$`)

// parseIgnores extracts every //fragvet:ignore directive in files.
func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//fragvet:ignore") {
					continue
				}
				m := ignoreRE.FindStringSubmatch(c.Text)
				d := &ignoreDirective{pos: c.Pos()}
				if m != nil {
					d.analyzer, d.reason = m[1], m[2]
				}
				p := fset.Position(c.Pos())
				d.file, d.line = p.Filename, p.Line
				out = append(out, d)
			}
		}
	}
	return out
}

// Filter applies the //fragvet:ignore directives in files to diags: a
// diagnostic from analyzer A on line L is suppressed by a well-formed
// directive for A on line L or L-1. It returns the surviving
// diagnostics plus machinery diagnostics for malformed (no analyzer or
// no reason) and stale (suppressing nothing) directives, sorted by
// position.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ignores := parseIgnores(fset, files)
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, ig := range ignores {
			if ig.analyzer == "" || ig.reason == "" {
				continue // malformed; reported below, suppresses nothing
			}
			if ig.analyzer != d.Analyzer || ig.file != p.Filename {
				continue
			}
			if ig.line == p.Line || ig.line == p.Line-1 {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, ig := range ignores {
		switch {
		case ig.analyzer == "" || ig.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      ig.pos,
				Analyzer: IgnoreName,
				Message:  "malformed fragvet:ignore: want //fragvet:ignore <analyzer> <reason>",
			})
		case !ig.used:
			kept = append(kept, Diagnostic{
				Pos:      ig.pos,
				Analyzer: IgnoreName,
				Message:  fmt.Sprintf("stale fragvet:ignore: no %s finding here to suppress", ig.analyzer),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies every analyzer to pkg and returns the ignore-filtered
// diagnostics. Analyzer errors (not findings) are returned as-is.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	return Filter(pkg.Fset, pkg.Files, diags), nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
