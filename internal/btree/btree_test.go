package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestEmpty(t *testing.T) {
	m := New[int, string](intLess)
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty map returned ok")
	}
	if m.Delete(1) {
		t.Fatal("Delete on empty map returned true")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty map returned ok")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty map returned ok")
	}
}

func TestPutGetDelete(t *testing.T) {
	m := New[int, int](intLess)
	const n = 1000
	for i := 0; i < n; i++ {
		if !m.Put(i, i*10) {
			t.Fatalf("Put(%d) reported existing", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	m.CheckInvariants()
	for i := 0; i < n; i++ {
		v, ok := m.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", i, v, ok, i*10)
		}
	}
	// Overwrite does not grow.
	if m.Put(5, 999) {
		t.Fatal("Put of existing key reported new")
	}
	if v, _ := m.Get(5); v != 999 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if m.Len() != n {
		t.Fatalf("Len after overwrite = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	m.CheckInvariants()
	if m.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", m.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := m.Get(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) present=%v, wrong", i, ok)
		}
	}
}

func TestRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewDegree[int, int](3, intLess) // small degree exercises splits/merges
	ref := map[int]int{}
	for op := 0; op < 20000; op++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		case 2:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref = %d", op, m.Len(), len(ref))
		}
	}
	m.CheckInvariants()
	for k, v := range ref {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", k, got, ok, v)
		}
	}
}

func TestAscendDescendOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New[int, int](intLess)
	keys := rng.Perm(777)
	for _, k := range keys {
		m.Put(k, k)
	}
	var asc []int
	m.Ascend(func(k, _ int) bool { asc = append(asc, k); return true })
	if !sort.IntsAreSorted(asc) {
		t.Fatal("Ascend not sorted")
	}
	if len(asc) != 777 {
		t.Fatalf("Ascend visited %d, want 777", len(asc))
	}
	var desc []int
	m.Descend(func(k, _ int) bool { desc = append(desc, k); return true })
	for i := range desc {
		if desc[i] != asc[len(asc)-1-i] {
			t.Fatalf("Descend[%d] = %d, want %d", i, desc[i], asc[len(asc)-1-i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	m := New[int, int](intLess)
	for i := 0; i < 100; i++ {
		m.Put(i, i)
	}
	count := 0
	m.Ascend(func(k, _ int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d, want 10", count)
	}
}

func TestAscendFrom(t *testing.T) {
	m := NewDegree[int, int](3, intLess)
	for i := 0; i < 200; i += 2 {
		m.Put(i, i)
	}
	for _, from := range []int{-5, 0, 1, 2, 99, 100, 198, 199, 500} {
		var got []int
		m.AscendFrom(from, func(k, _ int) bool { got = append(got, k); return true })
		var want []int
		for i := 0; i < 200; i += 2 {
			if i >= from {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("AscendFrom(%d): %d keys, want %d", from, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AscendFrom(%d)[%d] = %d, want %d", from, i, got[i], want[i])
			}
		}
	}
}

func TestFloorCeiling(t *testing.T) {
	m := New[int, string](intLess)
	for _, k := range []int{10, 20, 30, 40} {
		m.Put(k, "x")
	}
	cases := []struct {
		q         int
		floor     int
		floorOK   bool
		ceil      int
		ceilingOK bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, c := range cases {
		fk, _, fok := m.Floor(c.q)
		if fok != c.floorOK || (fok && fk != c.floor) {
			t.Errorf("Floor(%d) = %d,%v; want %d,%v", c.q, fk, fok, c.floor, c.floorOK)
		}
		ck, _, cok := m.Ceiling(c.q)
		if cok != c.ceilingOK || (cok && ck != c.ceil) {
			t.Errorf("Ceiling(%d) = %d,%v; want %d,%v", c.q, ck, cok, c.ceil, c.ceilingOK)
		}
	}
}

func TestMinMax(t *testing.T) {
	m := New[int, int](intLess)
	for _, k := range []int{50, 10, 90, 30} {
		m.Put(k, k)
	}
	if k, _, _ := m.Min(); k != 10 {
		t.Fatalf("Min = %d, want 10", k)
	}
	if k, _, _ := m.Max(); k != 90 {
		t.Fatalf("Max = %d, want 90", k)
	}
}

func TestClear(t *testing.T) {
	m := New[int, int](intLess)
	for i := 0; i < 50; i++ {
		m.Put(i, i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	if _, ok := m.Get(10); ok {
		t.Fatal("Get after Clear returned ok")
	}
}

func TestHeightGrowth(t *testing.T) {
	m := NewDegree[int, int](2, intLess)
	if m.Height() != 0 {
		t.Fatalf("empty height = %d", m.Height())
	}
	for i := 0; i < 1000; i++ {
		m.Put(i, i)
	}
	h := m.Height()
	if h < 5 || h > 12 {
		t.Fatalf("height %d outside plausible balanced range for degree-2/1000 keys", h)
	}
}

// Property: a sequence of random operations leaves the tree equivalent to a
// reference map and structurally valid.
func TestQuickMapEquivalence(t *testing.T) {
	f := func(ops []int16) bool {
		m := NewDegree[int, int](3, intLess)
		ref := map[int]int{}
		for i, raw := range ops {
			k := int(raw) % 64
			if raw >= 0 {
				m.Put(k, i)
				ref[k] = i
			} else {
				m.Delete(-k)
				delete(ref, -k)
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		m.CheckInvariants()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeKeys(t *testing.T) {
	type key struct{ size, off int64 }
	less := func(a, b key) bool {
		if a.size != b.size {
			return a.size < b.size
		}
		return a.off < b.off
	}
	m := New[key, struct{}](less)
	m.Put(key{64, 100}, struct{}{})
	m.Put(key{64, 50}, struct{}{})
	m.Put(key{128, 10}, struct{}{})
	k, _, ok := m.Ceiling(key{64, 0})
	if !ok || k != (key{64, 50}) {
		t.Fatalf("Ceiling = %+v, want {64 50}", k)
	}
	k, _, ok = m.Ceiling(key{65, 0})
	if !ok || k != (key{128, 10}) {
		t.Fatalf("Ceiling = %+v, want {128 10}", k)
	}
}
