package btree

import (
	"math/rand"
	"testing"
)

func BenchmarkPutSequential(b *testing.B) {
	m := New[int64, int64](func(a, b int64) bool { return a < b })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(int64(i), int64(i))
	}
}

func BenchmarkPutRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New[int64, int64](func(a, b int64) bool { return a < b })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(rng.Int63n(1<<20), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[int64, int64](func(a, b int64) bool { return a < b })
	const n = 1 << 16
	for i := int64(0); i < n; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Get(int64(i) % n)
	}
}

func BenchmarkDeleteInsertCycle(b *testing.B) {
	m := New[int64, int64](func(a, b int64) bool { return a < b })
	const n = 1 << 14
	for i := int64(0); i < n; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) % n
		m.Delete(k)
		m.Put(k, k)
	}
}

func BenchmarkCeiling(b *testing.B) {
	m := New[int64, int64](func(a, b int64) bool { return a < b })
	const n = 1 << 16
	for i := int64(0); i < n; i++ {
		m.Put(i*2, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ceiling(int64(i) % (2 * n))
	}
}
