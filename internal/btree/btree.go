// Package btree implements a generic in-memory B-tree ordered map.
//
// It backs the free-extent indexes in package extent and the row and BLOB
// trees in the database engine. The implementation is a classic B-tree with
// configurable degree: every node except the root holds between degree-1 and
// 2*degree-1 keys, and splits/merges keep the tree balanced. Keys are
// ordered by a user-supplied comparison function so composite keys (such as
// the (size, offset) pairs used by best-fit allocation) need no boxing.
package btree

// Less reports whether a orders before b. It must define a strict weak
// ordering: irreflexive, transitive, and antisymmetric.
type Less[K any] func(a, b K) bool

const defaultDegree = 32

// Map is a B-tree ordered map from K to V. Create one with New; the zero
// value is not usable.
type Map[K, V any] struct {
	less   Less[K]
	root   *node[K, V]
	length int
	degree int
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
}

// New returns an empty map ordered by less, using the default node degree.
func New[K, V any](less Less[K]) *Map[K, V] {
	return NewDegree[K, V](defaultDegree, less)
}

// NewDegree returns an empty map with the given minimum degree (>= 2).
func NewDegree[K, V any](degree int, less Less[K]) *Map[K, V] {
	if degree < 2 {
		panic("btree: degree must be >= 2")
	}
	return &Map[K, V]{less: less, degree: degree}
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.length }

func (n *node[K, V]) leaf() bool { return n.children == nil }

// find locates key within n.items. It returns the index of the first item
// not less than key and whether that item equals key.
func (m *Map[K, V]) find(n *node[K, V], key K) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.less(n.items[mid].key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && !m.less(key, n.items[lo].key) {
		return lo, true
	}
	return lo, false
}

// Get returns the value stored under key.
func (m *Map[K, V]) Get(key K) (V, bool) {
	n := m.root
	for n != nil {
		i, ok := m.find(n, key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Has reports whether key is present.
func (m *Map[K, V]) Has(key K) bool {
	_, ok := m.Get(key)
	return ok
}

// Put stores val under key, replacing any existing value.
// It reports whether the key was newly inserted.
func (m *Map[K, V]) Put(key K, val V) bool {
	if m.root == nil {
		m.root = &node[K, V]{items: []item[K, V]{{key, val}}}
		m.length = 1
		return true
	}
	if len(m.root.items) == 2*m.degree-1 {
		old := m.root
		m.root = &node[K, V]{children: []*node[K, V]{old}}
		m.splitChild(m.root, 0)
	}
	inserted := m.insertNonFull(m.root, key, val)
	if inserted {
		m.length++
	}
	return inserted
}

// splitChild splits the full child at index i of parent p.
func (m *Map[K, V]) splitChild(p *node[K, V], i int) {
	t := m.degree
	child := p.children[i]
	right := &node[K, V]{}
	right.items = append(right.items, child.items[t:]...)
	mid := child.items[t-1]
	child.items = child.items[:t-1]
	if !child.leaf() {
		right.children = append(right.children, child.children[t:]...)
		child.children = child.children[:t]
	}
	p.items = append(p.items, item[K, V]{})
	copy(p.items[i+1:], p.items[i:])
	p.items[i] = mid
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

func (m *Map[K, V]) insertNonFull(n *node[K, V], key K, val V) bool {
	for {
		i, ok := m.find(n, key)
		if ok {
			n.items[i].val = val
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key, val}
			return true
		}
		if len(n.children[i].items) == 2*m.degree-1 {
			m.splitChild(n, i)
			if m.less(n.items[i].key, key) {
				i++
			} else if !m.less(key, n.items[i].key) {
				n.items[i].val = val
				return false
			}
		}
		n = n.children[i]
	}
}

// Delete removes key and reports whether it was present.
func (m *Map[K, V]) Delete(key K) bool {
	if m.root == nil {
		return false
	}
	deleted := m.delete(m.root, key)
	if len(m.root.items) == 0 {
		if m.root.leaf() {
			m.root = nil
		} else {
			m.root = m.root.children[0]
		}
	}
	if deleted {
		m.length--
	}
	return deleted
}

func (m *Map[K, V]) delete(n *node[K, V], key K) bool {
	i, found := m.find(n, key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor (max of left subtree), then delete it
		// from that subtree.
		child := n.children[i]
		if len(child.items) >= m.degree {
			pred := m.maxItem(child)
			n.items[i] = pred
			return m.delete(child, pred.key)
		}
		right := n.children[i+1]
		if len(right.items) >= m.degree {
			succ := m.minItem(right)
			n.items[i] = succ
			return m.delete(right, succ.key)
		}
		m.mergeChildren(n, i)
		return m.delete(child, key)
	}
	// Key not in this node: descend into child i, topping it up first.
	child := n.children[i]
	if len(child.items) < m.degree {
		i = m.fill(n, i)
		child = n.children[i]
		// After fill, the key may now live in this node (rotation moved it).
		if j, ok := m.find(n, key); ok {
			_ = j
			return m.delete(n, key)
		}
	}
	return m.delete(child, key)
}

// fill ensures child i of n has at least degree items, borrowing from a
// sibling or merging. It returns the index of the child to descend into.
func (m *Map[K, V]) fill(n *node[K, V], i int) int {
	if i > 0 && len(n.children[i-1].items) >= m.degree {
		// Rotate right: move parent separator down, left sibling's max up.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= m.degree {
		// Rotate left.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i < len(n.children)-1 {
		m.mergeChildren(n, i)
		return i
	}
	m.mergeChildren(n, i-1)
	return i - 1
}

// mergeChildren merges child i, separator i, and child i+1 of n.
func (m *Map[K, V]) mergeChildren(n *node[K, V], i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (m *Map[K, V]) minItem(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (m *Map[K, V]) maxItem(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Min returns the smallest key and its value.
func (m *Map[K, V]) Min() (K, V, bool) {
	if m.root == nil {
		var k K
		var v V
		return k, v, false
	}
	it := m.minItem(m.root)
	return it.key, it.val, true
}

// Max returns the largest key and its value.
func (m *Map[K, V]) Max() (K, V, bool) {
	if m.root == nil {
		var k K
		var v V
		return k, v, false
	}
	it := m.maxItem(m.root)
	return it.key, it.val, true
}

// Ascend calls fn for every entry in ascending order until fn returns false.
func (m *Map[K, V]) Ascend(fn func(K, V) bool) {
	m.ascend(m.root, fn)
}

func (m *Map[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if !n.leaf() && !m.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return m.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendFrom calls fn for every entry with key >= from, ascending, until fn
// returns false.
func (m *Map[K, V]) AscendFrom(from K, fn func(K, V) bool) {
	m.ascendFrom(m.root, from, fn)
}

func (m *Map[K, V]) ascendFrom(n *node[K, V], from K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	i, _ := m.find(n, from)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !m.ascendFrom(n.children[i], from, fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
		// Subsequent subtrees are all >= from; switch to full ascent.
		if !n.leaf() {
			for j := i + 1; j < len(n.items); j++ {
				if !m.ascend(n.children[j], fn) {
					return false
				}
				if !fn(n.items[j].key, n.items[j].val) {
					return false
				}
			}
			return m.ascend(n.children[len(n.children)-1], fn)
		}
	}
	if !n.leaf() {
		return m.ascendFrom(n.children[len(n.children)-1], from, fn)
	}
	return true
}

// Descend calls fn for every entry in descending order until fn returns
// false.
func (m *Map[K, V]) Descend(fn func(K, V) bool) {
	m.descend(m.root, fn)
}

func (m *Map[K, V]) descend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i := len(n.items) - 1; i >= 0; i-- {
		if !n.leaf() && !m.descend(n.children[i+1], fn) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return m.descend(n.children[0], fn)
	}
	return true
}

// Floor returns the largest entry with key <= k.
func (m *Map[K, V]) Floor(k K) (K, V, bool) {
	var bestK K
	var bestV V
	found := false
	n := m.root
	for n != nil {
		i, ok := m.find(n, k)
		if ok {
			return n.items[i].key, n.items[i].val, true
		}
		if i > 0 {
			bestK, bestV, found = n.items[i-1].key, n.items[i-1].val, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return bestK, bestV, found
}

// Ceiling returns the smallest entry with key >= k.
func (m *Map[K, V]) Ceiling(k K) (K, V, bool) {
	var bestK K
	var bestV V
	found := false
	n := m.root
	for n != nil {
		i, ok := m.find(n, k)
		if ok {
			return n.items[i].key, n.items[i].val, true
		}
		if i < len(n.items) {
			bestK, bestV, found = n.items[i].key, n.items[i].val, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return bestK, bestV, found
}

// Clear removes all entries.
func (m *Map[K, V]) Clear() {
	m.root = nil
	m.length = 0
}

// Height returns the height of the tree (0 for empty, 1 for a lone root).
// It is exported for tests that check balance invariants.
func (m *Map[K, V]) Height() int {
	h := 0
	for n := m.root; n != nil; {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// CheckInvariants panics if structural B-tree invariants are violated.
// Intended for tests.
func (m *Map[K, V]) CheckInvariants() {
	if m.root == nil {
		if m.length != 0 {
			panic("btree: nil root with nonzero length")
		}
		return
	}
	count := m.check(m.root, true)
	if count != m.length {
		panic("btree: length mismatch")
	}
	// Verify global ordering.
	var prev *K
	m.Ascend(func(k K, _ V) bool {
		if prev != nil && !m.less(*prev, k) {
			panic("btree: keys out of order")
		}
		kk := k
		prev = &kk
		return true
	})
}

func (m *Map[K, V]) check(n *node[K, V], isRoot bool) int {
	if !isRoot && len(n.items) < m.degree-1 {
		panic("btree: underfull node")
	}
	if len(n.items) > 2*m.degree-1 {
		panic("btree: overfull node")
	}
	count := len(n.items)
	if !n.leaf() {
		if len(n.children) != len(n.items)+1 {
			panic("btree: child count mismatch")
		}
		for _, c := range n.children {
			count += m.check(c, false)
		}
	}
	return count
}
