// Package fs implements the filesystem substrate of the comparison — an
// NTFS analog with the specific behaviours the paper identifies as driving
// its fragmentation results:
//
//   - extent-based files whose space comes from a run cache ordered by
//     decreasing size and offset, with outer-band preference (§2);
//   - space allocated per append request, before the final file size is
//     known — the root cause of the paper's surprising constant-size
//     fragmentation result (§5.4);
//   - aggressive contiguous extension when sequential appends are
//     detected (§5.4);
//   - freed space quarantined until the transactional log commits (§2);
//   - safe writes: write temp file, force, atomically replace (§4);
//   - an MFT-style metadata zone, so opens and creates move the head;
//   - optional delayed allocation and size hints — the interface changes
//     the paper proposes (§5.4, §6) — plus an online defragmenter like
//     the Windows utility (§3.4).
//
// All byte-level bookkeeping is deterministic and driven by the shared
// virtual clock through the disk model.
package fs

import (
	"fmt"
	"slices"

	"repro/internal/alloc"
	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
)

// Errors returned by volume operations. Each is the corresponding blob
// sentinel, so errors.Is(err, blob.ErrNotFound) and friends hold through
// the filesystem layer without translation.
var (
	ErrExist    = blob.ErrAlreadyExists
	ErrNotExist = blob.ErrNotFound
	ErrNoSpace  = blob.ErrNoSpaceLeft
	ErrClosed   = blob.ErrClosed
)

// Config describes a volume. Zero-value fields take defaults from
// DefaultConfig.
type Config struct {
	// Capacity is the volume size in bytes.
	Capacity int64

	// BandFrac is the fraction of the volume treated as a preferred
	// outer allocation band for file data. NTFS "uses a 'banded'
	// allocation strategy for metadata, but not for file contents" (§2),
	// so the default is 0 (no data banding); the MFT zone is reserved
	// separately via MetadataFrac.
	BandFrac float64

	// MetadataFrac is the fraction of the volume reserved for the MFT
	// zone (file records).
	MetadataFrac float64

	// LogFlushOps is the number of metadata operations (deletes,
	// renames) between transactional log commits. Freed space becomes
	// reusable only at a commit.
	LogFlushOps int

	// DelayedAllocation buffers appended bytes in memory and allocates
	// space only when the file is closed, with the final size known —
	// the XFS/realloc behaviour from §3.4.
	DelayedAllocation bool

	// Per-operation host CPU charges, microseconds. These model the
	// folklore costs in §3.1: "file opens are CPU expensive".
	OpenCPUUs   float64
	CreateCPUUs float64
	DeleteCPUUs float64
	RenameCPUUs float64
}

// DefaultConfig returns the configuration used across the benchmark
// harness for a volume of the given byte capacity.
func DefaultConfig(capacity int64) Config {
	return Config{
		Capacity:     capacity,
		BandFrac:     0,
		MetadataFrac: 0.01,
		LogFlushOps:  16,
		OpenCPUUs:    12000, // SMB/UNC-path open cost, per §4.1's networked structure
		CreateCPUUs:  3000,
		DeleteCPUUs:  1000,
		RenameCPUUs:  1000,
	}
}

// Volume is a mounted filesystem on a simulated drive. Not safe for
// concurrent use.
type Volume struct {
	cfg   Config
	drive *disk.Drive
	rc    *alloc.RunCache

	files   map[string]*File
	nextTag uint32

	// packs holds the live pack extents by tag; orphanPacks holds packs
	// written but never committed (crash mid-pack), swept by Recover.
	packs       map[uint32]*Pack
	orphanPacks []*Pack

	metaStart int64 // first cluster of the MFT zone
	metaLen   int64 // clusters in the MFT zone

	opsSinceFlush int
	statCreates   int64
	statDeletes   int64
	statOpens     int64
	statFlushes   int64
	statMetaWrite int64

	// Batch (group-commit) state: while batchDepth > 0, MFT record
	// writes are deferred and deduplicated — EndBatch writes each
	// touched metadata cluster once, coalesced into runs — and the
	// periodic log flush is evaluated once at batch end instead of
	// mid-commit. This is the filesystem half of the store's group
	// commit: N safe-write commits share one metadata force.
	batchDepth     int
	pendingMeta    []int64 // MFT clusters awaiting their batched write
	pendingMetaSet map[int64]struct{}

	// filePool recycles File structs freed by Delete (see Create).
	filePool []*File

	// indexBufs holds directory index-allocation buffers. NTFS stores
	// large directory B-trees in INDEX_ALLOCATION buffers taken from the
	// volume's general free space; entries come and go as files are
	// created and deleted. The effect on the data pool — a steady
	// trickle of small allocations and frees that shave free runs off
	// object-size alignment — is one reason constant-size objects still
	// fragment (§5.4).
	indexBufs []extent.Run
}

// Format creates a fresh volume on the drive.
func Format(drive *disk.Drive, cfg Config) *Volume {
	def := DefaultConfig(drive.Capacity())
	if cfg.Capacity == 0 {
		cfg.Capacity = def.Capacity
	}
	if cfg.BandFrac == 0 {
		cfg.BandFrac = def.BandFrac
	}
	if cfg.MetadataFrac == 0 {
		cfg.MetadataFrac = def.MetadataFrac
	}
	if cfg.LogFlushOps == 0 {
		cfg.LogFlushOps = def.LogFlushOps
	}
	if cfg.OpenCPUUs == 0 {
		cfg.OpenCPUUs = def.OpenCPUUs
	}
	if cfg.CreateCPUUs == 0 {
		cfg.CreateCPUUs = def.CreateCPUUs
	}
	if cfg.DeleteCPUUs == 0 {
		cfg.DeleteCPUUs = def.DeleteCPUUs
	}
	if cfg.RenameCPUUs == 0 {
		cfg.RenameCPUUs = def.RenameCPUUs
	}

	clusters := drive.Geometry().Clusters
	v := &Volume{
		cfg:     cfg,
		drive:   drive,
		rc:      alloc.NewRunCache(clusters, cfg.BandFrac),
		files:   make(map[string]*File),
		packs:   make(map[uint32]*Pack),
		nextTag: 1,
	}
	// Reserve the MFT zone. On an empty volume this carves the lowest
	// clusters, matching NTFS placing the MFT ahead of early file data.
	v.metaLen = int64(float64(clusters) * cfg.MetadataFrac)
	if v.metaLen < 1 {
		v.metaLen = 1
	}
	runs, err := v.rc.Alloc(v.metaLen)
	if err != nil || len(runs) != 1 || runs[0].Start != 0 {
		panic(fmt.Sprintf("fs: metadata zone reservation failed: %v %v", runs, err))
	}
	v.metaStart = runs[0].Start
	return v
}

// Drive returns the underlying drive.
func (v *Volume) Drive() *disk.Drive { return v.drive }

// ClusterSize returns the volume's cluster size in bytes.
func (v *Volume) ClusterSize() int64 { return v.drive.Geometry().ClusterSize }

// FreeBytes reports immediately allocatable space.
func (v *Volume) FreeBytes() int64 { return v.rc.FreeClusters() * v.ClusterSize() }

// TotalFreeBytes reports allocatable plus log-quarantined space.
func (v *Volume) TotalFreeBytes() int64 { return v.rc.TotalFree() * v.ClusterSize() }

// CapacityBytes reports the data capacity (volume minus metadata zone).
func (v *Volume) CapacityBytes() int64 {
	return (v.drive.Geometry().Clusters - v.metaLen) * v.ClusterSize()
}

// FileCount returns the number of live files.
func (v *Volume) FileCount() int { return len(v.files) }

// mftCluster deterministically places a file record inside the MFT zone.
func (v *Volume) mftCluster(tag uint32) int64 {
	return v.metaStart + int64(tag)%v.metaLen
}

// metadataWrite charges an MFT record update for the file tag. Inside a
// batch the write is deferred (and deduplicated per cluster) until
// EndBatch — the lazy-writer behaviour group commit leans on.
func (v *Volume) metadataWrite(tag uint32) {
	c := v.mftCluster(tag)
	if v.batchDepth > 0 {
		if _, dup := v.pendingMetaSet[c]; !dup {
			v.pendingMetaSet[c] = struct{}{}
			v.pendingMeta = append(v.pendingMeta, c)
		}
		return
	}
	v.statMetaWrite++
	v.drive.WriteRun(extent.Run{Start: c, Len: 1}, 0, 0, nil)
}

// metadataRead charges an MFT record lookup for the file tag.
func (v *Volume) metadataRead(tag uint32) {
	v.drive.ReadRun(extent.Run{Start: v.mftCluster(tag), Len: 1})
}

// noteMetadataOp counts a metadata mutation toward the periodic log
// flush. Inside a batch the flush decision is deferred to EndBatch so
// the batch issues at most one force.
func (v *Volume) noteMetadataOp() {
	v.opsSinceFlush++
	if v.batchDepth > 0 {
		return
	}
	if v.opsSinceFlush >= v.cfg.LogFlushOps {
		v.FlushLog()
	}
}

// BeginBatch starts a metadata batch: MFT record writes are deferred
// and deduplicated, and the periodic log flush waits for EndBatch.
// Batches nest; only the outermost EndBatch forces.
//
// The deferral is volume-wide, like the NTFS lazy writer: a concurrent
// create or delete whose metadata lands while the batch is open rides
// the batch's coalesced force instead of writing its MFT record alone.
// EndBatch always flushes every deferred record, so no write is lost —
// such operations merely return before their record reaches disk.
func (v *Volume) BeginBatch() {
	if v.batchDepth == 0 && v.pendingMetaSet == nil {
		v.pendingMetaSet = make(map[int64]struct{})
	}
	v.batchDepth++
}

// EndBatch closes a metadata batch: each touched MFT cluster is written
// once — adjacent clusters coalesce into single runs — and the periodic
// log flush runs if the batch pushed the op count past the threshold.
// This is the group force of the filesystem commit path.
func (v *Volume) EndBatch() {
	if v.batchDepth == 0 {
		return
	}
	v.batchDepth--
	if v.batchDepth > 0 {
		return
	}
	if len(v.pendingMeta) > 0 {
		slices.Sort(v.pendingMeta)
		run := extent.Run{Start: v.pendingMeta[0], Len: 1}
		for _, c := range v.pendingMeta[1:] {
			if c == run.End() {
				run.Len++
				continue
			}
			v.statMetaWrite++
			v.drive.WriteRun(run, 0, 0, nil)
			run = extent.Run{Start: c, Len: 1}
		}
		v.statMetaWrite++
		v.drive.WriteRun(run, 0, 0, nil)
		// Drop only the touched entries: clear() pays for the map's
		// historical capacity on every batch, which at high stream counts
		// turns the group force into an O(peak batch) map sweep.
		for _, c := range v.pendingMeta {
			delete(v.pendingMetaSet, c)
		}
		v.pendingMeta = v.pendingMeta[:0]
	}
	if v.opsSinceFlush >= v.cfg.LogFlushOps {
		v.FlushLog()
	}
}

// indexGrow allocates one directory index buffer from general free space.
// No disk time is charged: index buffers live in the cache and reach disk
// through the lazy writer, amortized into the periodic log flush.
func (v *Volume) indexGrow() {
	runs, err := v.rc.AllocAppendScratch(1, -1)
	if err != nil {
		return // directory reuses a cached buffer under pressure
	}
	v.indexBufs = append(v.indexBufs, runs...)
}

// indexShrink releases the oldest directory index buffer.
func (v *Volume) indexShrink() {
	if len(v.indexBufs) == 0 {
		return
	}
	r := v.indexBufs[0]
	v.indexBufs = v.indexBufs[1:]
	v.rc.Free(r)
}

// FlushLog commits the transactional log: quarantined freed space becomes
// allocatable. A small sequential log write is charged.
func (v *Volume) FlushLog() {
	v.rc.CommitLog()
	v.opsSinceFlush = 0
	v.statFlushes++
	// The log lives in the metadata zone; charge one cluster write.
	v.drive.WriteRun(extent.Run{Start: v.metaStart, Len: 1}, 0, 0, nil)
}

// Stats reports operation counters.
type Stats struct {
	Creates, Deletes, Opens, LogFlushes int64
	// MetaWrites counts forced MFT record writes; batched commits
	// coalesce several record updates into one, so this is the
	// filesystem's forced-flush denominator alongside LogFlushes.
	MetaWrites   int64
	FreeRunCount int
	PendingBytes int64
}

// Stats returns volume counters.
func (v *Volume) Stats() Stats {
	return Stats{
		Creates:      v.statCreates,
		Deletes:      v.statDeletes,
		Opens:        v.statOpens,
		LogFlushes:   v.statFlushes,
		MetaWrites:   v.statMetaWrite,
		FreeRunCount: v.rc.RunCount(),
		PendingBytes: v.rc.PendingClusters() * v.ClusterSize(),
	}
}

// String summarises the volume.
func (v *Volume) String() string {
	return fmt.Sprintf("fs volume: %s capacity, %s free, %d files",
		units.FormatBytes(v.CapacityBytes()), units.FormatBytes(v.FreeBytes()), len(v.files))
}
