package fs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
)

// makeSmallFiles creates n sub-cluster files named p0..p{n-1} with
// distinct payloads and returns their names.
func makeSmallFiles(t *testing.T, v *Volume, n int, size int64) []string {
	t.Helper()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + "-small"
		f, err := v.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(size, fillBytes(size, byte(i+1))); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	return names
}

func TestPackFilesCoalesces(t *testing.T) {
	v := newVolume(64*units.MB, disk.DataMode)
	size := int64(1200) // well below the 4 KB cluster: each file wastes most of one
	names := makeSmallFiles(t, v, 8, size)

	rep, err := v.PackFiles(names, PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Members != 8 || len(rep.Packed) != 8 {
		t.Fatalf("packed %d members (%d names), want 8", rep.Members, len(rep.Packed))
	}
	if rep.Bytes != 8*size {
		t.Fatalf("pack bytes = %d, want %d", rep.Bytes, 8*size)
	}
	// 8 × 1200 B = 9600 B fits in 3 clusters instead of 8 per-file ceilings.
	if want := units.CeilDiv(8*size, v.ClusterSize()); rep.DataClusters != want {
		t.Fatalf("data clusters = %d, want %d", rep.DataClusters, want)
	}
	if v.PackCount() != 1 {
		t.Fatalf("pack count = %d, want 1", v.PackCount())
	}
	if v.PackedLiveBytes() != 8*size {
		t.Fatalf("packed live bytes = %d, want %d", v.PackedLiveBytes(), 8*size)
	}
	// Payloads survive the relocation byte for byte, via both read paths.
	for i, name := range names {
		f, err := v.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Packed() {
			t.Fatalf("%s not packed", name)
		}
		want := fillBytes(size, byte(i+1))
		if got := f.ReadAll(); !bytes.Equal(got, want) {
			t.Fatalf("%s ReadAll mismatch after pack", name)
		}
		got, err := f.ReadAt(100, 300)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[100:400]) {
			t.Fatalf("%s ReadAt mismatch after pack", name)
		}
		if f.Fragments() != 1 {
			t.Fatalf("%s fragments = %d after pack, want 1", name, f.Fragments())
		}
	}
}

func TestPackFilesSkipsIneligible(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	names := makeSmallFiles(t, v, 3, 1000)
	if _, err := v.PackFiles(names, PackOptions{}); err != nil {
		t.Fatal(err)
	}
	// Already-packed members, missing names, and duplicates leave fewer
	// than two eligible files: a no-op, not an error.
	rep, err := v.PackFiles(append(names, "missing", names[0]), PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Members != 0 || len(rep.Packed) != 0 {
		t.Fatalf("repack coalesced %d members, want 0", rep.Members)
	}
	if v.PackCount() != 1 {
		t.Fatalf("pack count = %d, want 1", v.PackCount())
	}
}

func TestPackReclaimedWhenLastMemberDies(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	names := makeSmallFiles(t, v, 4, 1500)
	rep, err := v.PackFiles(names, PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names[:3] {
		if err := v.Delete(name); err != nil {
			t.Fatal(err)
		}
	}
	v.FlushLog()
	// Survivors share the pack's clusters: the extent stays allocated.
	if v.PackCount() != 1 {
		t.Fatalf("pack count = %d with a live member, want 1", v.PackCount())
	}
	if got := v.PackedLiveBytes(); got != 1500 {
		t.Fatalf("packed live bytes = %d with one member, want 1500", got)
	}
	free := v.FreeBytes()
	if err := v.Delete(names[3]); err != nil {
		t.Fatal(err)
	}
	v.FlushLog()
	if v.PackCount() != 0 {
		t.Fatalf("pack count = %d after last member died, want 0", v.PackCount())
	}
	// The last death reclaims the whole pack extent (plus whatever the
	// metadata index shrink returns on top).
	reclaim := (rep.DataClusters + rep.IndexClusters) * v.ClusterSize()
	if got := v.FreeBytes(); got < free+reclaim {
		t.Fatalf("free bytes = %d after pack reclaim, want >= %d", got, free+reclaim)
	}
}

func TestPackMemberRename(t *testing.T) {
	v := newVolume(64*units.MB, disk.DataMode)
	names := makeSmallFiles(t, v, 2, 900)
	if _, err := v.PackFiles(names, PackOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename(names[0], "renamed"); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("renamed")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Packed() {
		t.Fatal("renamed member lost its pack")
	}
	if got := f.ReadAll(); !bytes.Equal(got, fillBytes(900, 1)) {
		t.Fatal("renamed member payload mismatch")
	}
	// The pack's member table follows the rename, so deleting under the
	// new name still reclaims the pack.
	if err := v.Delete("renamed"); err != nil {
		t.Fatal(err)
	}
	if err := v.Delete(names[1]); err != nil {
		t.Fatal(err)
	}
	if v.PackCount() != 0 {
		t.Fatalf("pack count = %d after deleting renamed members, want 0", v.PackCount())
	}
}

func TestPackCrashRecovery(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	names := makeSmallFiles(t, v, 4, 2000)
	v.FlushLog()
	free := v.FreeBytes()

	_, err := v.PackFiles(names, PackOptions{Crash: CrashAfterWrite})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-armed pack err = %v, want ErrCrashed", err)
	}
	// The torn pack hit disk but no member switched over: files read
	// their old extents, and the orphan clusters are held until Recover.
	for _, name := range names {
		f, ok := v.Lookup(name)
		if !ok || f.Packed() {
			t.Fatalf("%s packed after mid-pack crash", name)
		}
	}
	if v.PackCount() != 0 {
		t.Fatalf("pack count = %d after crash, want 0", v.PackCount())
	}
	v.Recover()
	if got := v.FreeBytes(); got != free {
		t.Fatalf("free bytes = %d after recovery, want %d (orphan pack leaked)", got, free)
	}
	// The volume is fully usable: the same pack succeeds afterwards.
	if _, err := v.PackFiles(names, PackOptions{}); err != nil {
		t.Fatal(err)
	}
	if v.PackCount() != 1 {
		t.Fatalf("pack count = %d after re-pack, want 1", v.PackCount())
	}
}
