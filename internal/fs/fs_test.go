package fs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func newVolume(capacity int64, mode disk.Mode) *Volume {
	d := disk.New(disk.DefaultGeometry(capacity), vclock.New(), mode)
	return Format(d, Config{Capacity: capacity})
}

func fillBytes(n int64, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i%97)
	}
	return b
}

func TestCreateAppendRead(t *testing.T) {
	v := newVolume(256*units.MB, disk.DataMode)
	f, err := v.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	data := fillBytes(100*units.KB, 1)
	if err := f.Append(0, data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100*units.KB {
		t.Fatalf("Size = %d", f.Size())
	}
	g, err := v.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ReadAll(); !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
}

func TestCreateDuplicate(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	if _, err := v.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("a"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create err = %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	if _, err := v.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteFreesSpaceAfterLogFlush(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	before := v.FreeBytes()
	f, _ := v.Create("a")
	if err := f.Append(1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if v.FreeBytes() >= before {
		t.Fatal("append did not consume space")
	}
	if err := v.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// Space is quarantined until the log flush.
	if v.TotalFreeBytes() != before {
		t.Fatalf("TotalFree = %d, want %d", v.TotalFreeBytes(), before)
	}
	v.FlushLog()
	if v.FreeBytes() != before {
		t.Fatalf("Free after flush = %d, want %d", v.FreeBytes(), before)
	}
	if _, err := v.Open("a"); !errors.Is(err, ErrNotExist) {
		t.Fatal("deleted file still opens")
	}
}

func TestSequentialAppendsContiguous(t *testing.T) {
	v := newVolume(256*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	for i := 0; i < 16; i++ { // 16 x 64KB requests
		if err := f.Append(64*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if f.Fragments() != 1 {
		t.Fatalf("sequential appends produced %d fragments, want 1", f.Fragments())
	}
}

func TestFragmentsWhenFreeSpaceShattered(t *testing.T) {
	v := newVolume(16*units.MB, disk.MetadataMode)
	// Fill the volume with small files, delete every other one, flush.
	var names []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("f%d", i)
		f, err := v.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(256*units.KB, nil); err != nil {
			v.Delete(name)
			break
		}
		f.Close()
		names = append(names, name)
	}
	for i := 0; i < len(names); i += 2 {
		if err := v.Delete(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	v.FlushLog()
	// A 1MB object can now only be stored fragmented.
	g, err := v.Create("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Append(1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if g.Fragments() < 2 {
		t.Fatalf("expected fragmentation, got %d fragments", g.Fragments())
	}
}

func TestReadAt(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	f.Append(1*units.MB, nil)
	f.Close()
	if _, err := f.ReadAt(512*units.KB, 64*units.KB); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(900*units.KB, 200*units.KB); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("read past EOF: err = %v, want blob.ErrOutOfRange", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	a, _ := v.Create("a")
	a.Append(64*units.KB, nil)
	a.Close()
	b, _ := v.Create("b")
	b.Append(128*units.KB, nil)
	b.Close()
	if err := v.Rename("b", "a"); err != nil {
		t.Fatal(err)
	}
	got, err := v.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 128*units.KB {
		t.Fatalf("rename did not replace: size %d", got.Size())
	}
	if _, err := v.Open("b"); !errors.Is(err, ErrNotExist) {
		t.Fatal("old name still present")
	}
}

func TestSafeWriteBasic(t *testing.T) {
	v := newVolume(64*units.MB, disk.DataMode)
	data1 := fillBytes(256*units.KB, 1)
	if err := v.SafeWrite("obj", int64(len(data1)), data1, SafeWriteOptions{WriteRequestSize: 64 * units.KB}); err != nil {
		t.Fatal(err)
	}
	data2 := fillBytes(256*units.KB, 2)
	if err := v.SafeWrite("obj", int64(len(data2)), data2, SafeWriteOptions{WriteRequestSize: 64 * units.KB}); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ReadAll(); !bytes.Equal(got, data2) {
		t.Fatal("safe write did not replace contents")
	}
	if v.FileCount() != 1 {
		t.Fatalf("FileCount = %d, want 1 (no temp leak)", v.FileCount())
	}
}

func TestSafeWriteCrashPreservesOldVersion(t *testing.T) {
	for _, cp := range []CrashPoint{CrashAfterCreate, CrashAfterWrite} {
		v := newVolume(64*units.MB, disk.DataMode)
		old := fillBytes(128*units.KB, 9)
		if err := v.SafeWrite("obj", int64(len(old)), old, SafeWriteOptions{}); err != nil {
			t.Fatal(err)
		}
		newData := fillBytes(128*units.KB, 10)
		err := v.SafeWrite("obj", int64(len(newData)), newData, SafeWriteOptions{Crash: cp})
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash point %d: err = %v", cp, err)
		}
		v.Recover()
		f, err := v.Open("obj")
		if err != nil {
			t.Fatalf("crash point %d: old version lost: %v", cp, err)
		}
		if got := f.ReadAll(); !bytes.Equal(got, old) {
			t.Fatalf("crash point %d: old contents corrupted", cp)
		}
		if v.FileCount() != 1 {
			t.Fatalf("crash point %d: temp file leaked", cp)
		}
	}
}

func TestSafeWriteCrashAfterRenameKeepsNewVersion(t *testing.T) {
	v := newVolume(64*units.MB, disk.DataMode)
	old := fillBytes(64*units.KB, 1)
	v.SafeWrite("obj", int64(len(old)), old, SafeWriteOptions{})
	newData := fillBytes(64*units.KB, 2)
	err := v.SafeWrite("obj", int64(len(newData)), newData, SafeWriteOptions{Crash: CrashAfterRename})
	if !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	v.Recover()
	f, _ := v.Open("obj")
	if got := f.ReadAll(); !bytes.Equal(got, newData) {
		t.Fatal("new version lost after its commit point")
	}
}

func TestSafeWriteRetryAfterCrash(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	v.SafeWrite("obj", 64*units.KB, nil, SafeWriteOptions{})
	// Crash leaves a temp file; a retry without Recover must still work.
	v.SafeWrite("obj", 64*units.KB, nil, SafeWriteOptions{Crash: CrashAfterWrite})
	if err := v.SafeWrite("obj", 64*units.KB, nil, SafeWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if v.FileCount() != 1 {
		t.Fatalf("FileCount = %d", v.FileCount())
	}
}

func TestSizeHintReducesFragmentation(t *testing.T) {
	// Shatter free space, then write an object with and without the hint.
	mk := func() *Volume {
		v := newVolume(32*units.MB, disk.MetadataMode)
		var names []string
		for i := 0; ; i++ {
			name := fmt.Sprintf("f%d", i)
			f, err := v.Create(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Append(128*units.KB, nil); err != nil {
				v.Delete(name)
				break
			}
			f.Close()
			names = append(names, name)
		}
		// Delete a contiguous band comfortably bigger than one 1MB object
		// (directory index buffers may shave a few clusters off it), plus
		// scattered holes elsewhere.
		for i := 0; i < 12; i++ {
			v.Delete(names[40+i])
		}
		for i := 0; i < len(names); i += 7 {
			if i < 40 || i >= 52 {
				v.Delete(names[i])
			}
		}
		v.FlushLog()
		return v
	}

	v1 := mk()
	f1, _ := v1.Create("nohint")
	for off := int64(0); off < 1*units.MB; off += 64 * units.KB {
		if err := f1.Append(64*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	f1.Close()

	v2 := mk()
	f2, _ := v2.Create("hint")
	f2.SetSizeHint(1 * units.MB)
	for off := int64(0); off < 1*units.MB; off += 64 * units.KB {
		if err := f2.Append(64*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	f2.Close()

	// The hint lets the allocator size the first request to the whole
	// object; it cannot beat physical free-space fragmentation (directory
	// index buffers interleave with file data), but it must do strictly
	// better than growing 64KB at a time.
	if f2.Fragments() >= f1.Fragments() {
		t.Fatalf("size hint did not reduce fragments: hint=%d nohint=%d", f2.Fragments(), f1.Fragments())
	}
}

func TestDelayedAllocationSingleExtent(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(64*units.MB), vclock.New(), disk.MetadataMode)
	v := Format(d, Config{DelayedAllocation: true})
	f, _ := v.Create("a")
	for i := 0; i < 16; i++ {
		f.Append(64*units.KB, nil)
	}
	if f.Fragments() != 0 {
		t.Fatalf("delayed allocation allocated early: %d fragments", f.Fragments())
	}
	f.Close()
	if f.Fragments() != 1 {
		t.Fatalf("fragments after close = %d", f.Fragments())
	}
	if f.Size() != 1*units.MB {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestDefragment(t *testing.T) {
	v := newVolume(32*units.MB, disk.MetadataMode)
	// Build a fragmented file via shattered free space.
	var names []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("f%d", i)
		f, err := v.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(64*units.KB, nil); err != nil {
			v.Delete(name)
			break
		}
		f.Close()
		names = append(names, name)
	}
	for i := 0; i < len(names); i += 2 {
		v.Delete(names[i])
	}
	v.FlushLog()
	g, _ := v.Create("frag")
	g.Append(512*units.KB, nil)
	g.Close()
	if g.Fragments() < 2 {
		t.Skip("setup did not fragment; volume too empty")
	}
	// Delete more files so contiguous space exists for the move.
	for i := 1; i < len(names); i += 2 {
		v.Delete(names[i])
	}
	v.FlushLog()
	rep := v.Defragment(0)
	if rep.FilesMoved == 0 {
		t.Fatal("defragmenter moved nothing")
	}
	// Relocation publishes a fresh version; the old handle is dead.
	if g.Fragments() != 0 {
		t.Fatalf("stale handle still maps %d fragments", g.Fragments())
	}
	g, ok := v.Lookup("frag")
	if !ok {
		t.Fatal("frag missing after defragment")
	}
	if g.Fragments() != 1 {
		t.Fatalf("file still has %d fragments", g.Fragments())
	}
	if rep.FragmentsAfter >= rep.FragmentsBefore {
		t.Fatalf("report: before=%d after=%d", rep.FragmentsBefore, rep.FragmentsAfter)
	}
}

func TestShatterFiles(t *testing.T) {
	v := newVolume(32*units.MB, disk.MetadataMode)
	for i := 0; i < 10; i++ {
		f, _ := v.Create(fmt.Sprintf("f%d", i))
		f.Append(1*units.MB, nil)
		f.Close()
	}
	mean := v.ShatterFiles(16)
	if mean < 2 {
		t.Fatalf("ShatterFiles produced mean %g fragments", mean)
	}
	// Integrity: every file still has its full allocation.
	v.EachFile(func(f *File) {
		if f.allocated*v.ClusterSize() < f.size {
			t.Fatalf("file %s under-allocated after shatter", f.Name())
		}
	})
}

func TestOutOfSpace(t *testing.T) {
	v := newVolume(8*units.MB, disk.MetadataMode)
	f, _ := v.Create("big")
	err := f.Append(16*units.MB, nil)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestSafeWriteChargesTime(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	before := v.Drive().Clock().Now()
	v.SafeWrite("obj", 1*units.MB, nil, SafeWriteOptions{WriteRequestSize: 64 * units.KB})
	if v.Drive().Clock().Now() == before {
		t.Fatal("safe write advanced no virtual time")
	}
}

func TestStatsCounters(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	v.SafeWrite("a", 64*units.KB, nil, SafeWriteOptions{})
	v.Open("a")
	v.Delete("a")
	s := v.Stats()
	if s.Creates == 0 || s.Opens == 0 || s.Deletes == 0 {
		t.Fatalf("counters not recorded: %+v", s)
	}
}

// Property: random safe writes and deletes never corrupt contents and
// never lose clusters.
func TestQuickSafeWriteIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := newVolume(32*units.MB, disk.DataMode)
		contents := map[string][]byte{}
		for op := 0; op < 60; op++ {
			name := fmt.Sprintf("o%d", rng.Intn(8))
			switch rng.Intn(3) {
			case 0, 1:
				size := int64(rng.Intn(4)+1) * 32 * units.KB
				data := make([]byte, size)
				rng.Read(data)
				err := v.SafeWrite(name, size, data, SafeWriteOptions{WriteRequestSize: 64 * units.KB})
				if err != nil {
					return false
				}
				contents[name] = data
			case 2:
				if _, ok := contents[name]; ok {
					if v.Delete(name) != nil {
						return false
					}
					delete(contents, name)
				}
			}
		}
		for name, want := range contents {
			f, err := v.Open(name)
			if err != nil {
				return false
			}
			if !bytes.Equal(f.ReadAll(), want) {
				return false
			}
		}
		return v.FileCount() == len(contents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
