package fs

import (
	"fmt"

	"repro/internal/blob"
)

// This file implements safe writes — the atomic whole-object replacement
// protocol the paper uses for the filesystem side of the comparison (§4):
// "an application writes the object to a temporary file, forces that file
// to be written to disk, and then atomically replaces the permanent file
// with the temporary file" (ReplaceFile on Windows, rename(2) on UNIX).
//
// CrashPoint support lets tests inject a failure at each protocol step and
// assert that the old version survives intact — the durability property
// that makes safe writes comparable to the database's transactional
// update.

// CrashPoint identifies a step of the safe-write protocol at which a
// simulated crash occurs.
type CrashPoint int

const (
	// NoCrash runs the protocol to completion.
	NoCrash CrashPoint = iota
	// CrashAfterCreate crashes after the temp file is created, before
	// any data is written.
	CrashAfterCreate
	// CrashAfterWrite crashes after data is written and forced, before
	// the rename.
	CrashAfterWrite
	// CrashAfterRename never happens in practice (rename is the atomic
	// commit point) but is included so tests can assert the new version
	// is durable from that point on.
	CrashAfterRename
)

// ErrCrashed is wrapped by errors returned from injected crashes. It is
// the blob sentinel, so crash failures are typed end-to-end.
var ErrCrashed = blob.ErrCrashed

// TempSuffix marks the temporary files of in-flight safe writes;
// Recover sweeps orphans carrying it.
const TempSuffix = ".tmp~"

// TempName returns the temporary-file name a safe write of name uses.
// Store layers above the volume use the same convention so crashed
// streams are recovered uniformly.
func TempName(name string) string { return name + TempSuffix }

// tempName is the historical internal spelling.
func tempName(name string) string { return TempName(name) }

// SafeWriteOptions controls a safe write.
type SafeWriteOptions struct {
	// WriteRequestSize is the number of bytes per append request; the
	// paper's tests used 64 KB requests (§5.3). Zero means write the
	// whole object in a single request.
	WriteRequestSize int64
	// Crash injects a failure at the given protocol step.
	Crash CrashPoint
	// SizeHint passes the final object size to the allocator before the
	// first append (the paper's proposed interface, §6).
	SizeHint bool
}

// SafeWrite atomically replaces (or creates) name with size bytes of new
// content, following the temp-file/force/rename protocol. data may be nil
// for metadata-only simulation; when non-nil it must be exactly size
// bytes.
func (v *Volume) SafeWrite(name string, size int64, data []byte, opts SafeWriteOptions) error {
	if size <= 0 {
		return fmt.Errorf("%w: safe write of %d bytes to %s", blob.ErrInvalidSize, size, name)
	}
	if data != nil && int64(len(data)) != size {
		return fmt.Errorf("%w: data length %d != size %d", blob.ErrInvalidSize, len(data), size)
	}
	tmp := tempName(name)
	// A leftover temp from a previous crashed attempt is replaced.
	if _, ok := v.files[tmp]; ok {
		if err := v.Delete(tmp); err != nil {
			return err
		}
	}
	f, err := v.Create(tmp)
	if err != nil {
		return err
	}
	if opts.Crash == CrashAfterCreate {
		return fmt.Errorf("%w after create of %s", ErrCrashed, tmp)
	}
	if opts.SizeHint {
		if err := f.SetSizeHint(size); err != nil {
			return err
		}
	}
	req := opts.WriteRequestSize
	if req <= 0 {
		req = size
	}
	for off := int64(0); off < size; off += req {
		n := min(req, size-off)
		var chunk []byte
		if data != nil {
			chunk = data[off : off+n]
		}
		if err := f.Append(n, chunk); err != nil {
			// Allocation failure: remove the partial temp file.
			_ = v.Delete(tmp)
			return err
		}
	}
	// Close forces the data (and performs allocation under delayed
	// allocation).
	if err := f.Close(); err != nil {
		_ = v.Delete(tmp)
		return err
	}
	if opts.Crash == CrashAfterWrite {
		return fmt.Errorf("%w after write of %s", ErrCrashed, tmp)
	}
	// Atomic commit point.
	if err := v.Rename(tmp, name); err != nil {
		return err
	}
	if opts.Crash == CrashAfterRename {
		return fmt.Errorf("%w after rename to %s", ErrCrashed, name)
	}
	return nil
}

// Recover cleans up after a crash: orphaned temp files are deleted,
// orphan packs (written but never committed to any member) have their
// clusters freed, and the log is flushed, mirroring NTFS log replay at
// mount. It returns the number of temp files removed.
func (v *Volume) Recover() int {
	var orphans []string
	for name := range v.files {
		if len(name) > len(TempSuffix) && name[len(name)-len(TempSuffix):] == TempSuffix {
			orphans = append(orphans, name)
		}
	}
	for _, name := range orphans {
		_ = v.Delete(name)
	}
	for _, p := range v.orphanPacks {
		p.freeOrphan()
	}
	v.orphanPacks = nil
	v.FlushLog()
	return len(orphans)
}
