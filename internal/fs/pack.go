package fs

import (
	"fmt"

	"repro/internal/extent"
	"repro/internal/units"
)

// This file implements git-style pack files for the small-object tail.
// Many small files each pay a full cluster ceiling (a 1 KB object holds
// a 4 KB cluster) and scatter across the volume; a pack coalesces their
// bytes into one shared extent, byte-packed back to back, with an
// in-pack index (a fanout table plus per-member offset entries) stored
// in its own clusters. Members keep their names and sizes; reads map a
// member's byte range through the pack's cluster runs, charging one
// index-cluster read for the lookup plus the covered data clusters.
//
// Packing is a relocation: each member is re-published as a fresh File
// so handles pinned to the old version fail with ErrNotExist instead of
// observing a torn rewrite — the same version discipline Replace uses.

const (
	// packFanoutBytes is the fanout table: 256 buckets of 4 bytes, the
	// git idx v2 layout scaled to cluster granularity.
	packFanoutBytes = 1024
	// packEntryBytes is one member's index entry: name hash, byte
	// offset, and length.
	packEntryBytes = 32
	// packMinMembers is the smallest pack worth building; packing a
	// single file would only add index overhead.
	packMinMembers = 2
)

// Pack is one pack extent: the coalesced bytes of its members plus the
// in-pack index. Members reference the pack; the pack's clusters are
// freed when the last member dies.
type Pack struct {
	vol *Volume
	tag uint32

	runs      []extent.Run // data region, in logical (byte) order
	indexRuns []extent.Run // fanout + offset table

	totalBytes int64 // member bytes at build time
	liveBytes  int64 // member bytes still live
	members    map[string]*File
}

// PackOptions controls one PackFiles call.
type PackOptions struct {
	// Crash injects a failure after the pack's data and index are
	// written but before any member is switched over — the torn-rewrite
	// window Recover must clean up.
	Crash CrashPoint
}

// PackReport summarises one PackFiles call.
type PackReport struct {
	// Members is the number of files coalesced into the pack.
	Members int
	// Bytes is the live bytes the pack holds.
	Bytes int64
	// DataClusters and IndexClusters are the pack's on-disk footprint.
	DataClusters, IndexClusters int64
	// Fragments is the number of discontiguous runs backing the pack.
	Fragments int
	// Packed lists the member names actually packed, in pack order.
	Packed []string
}

// PackFiles coalesces the named small files into one pack extent.
// Files that are missing, open, or already packed are skipped; fewer
// than two eligible members is a no-op. The old per-file extents are
// read and the pack written at full disk cost, old space is freed
// (quarantined until the next log flush), and each member is
// re-published as a fresh File mapping into the pack.
func (v *Volume) PackFiles(names []string, opts PackOptions) (PackReport, error) {
	var rep PackReport
	cs := v.ClusterSize()

	var members []*File
	seen := make(map[string]bool, len(names))
	var totalBytes int64
	for _, name := range names {
		f, ok := v.files[name]
		if !ok || seen[name] || f.pack != nil || f.open || f.Size() <= 0 {
			continue
		}
		seen[name] = true
		members = append(members, f)
		totalBytes += f.size
	}
	if len(members) < packMinMembers {
		return rep, nil
	}

	dataClusters := units.CeilDiv(totalBytes, cs)
	indexClusters := units.CeilDiv(packFanoutBytes+packEntryBytes*int64(len(members)), cs)
	dataRuns, err := v.rc.Alloc(dataClusters)
	if err != nil {
		return rep, fmt.Errorf("%w: packing %d files (%s)", ErrNoSpace, len(members), units.FormatBytes(totalBytes))
	}
	indexRuns, err := v.rc.Alloc(indexClusters)
	if err != nil {
		for _, r := range dataRuns {
			v.rc.Free(r)
		}
		return rep, fmt.Errorf("%w: pack index (%d clusters)", ErrNoSpace, indexClusters)
	}

	// Read every member's old layout, then write the pack — data first,
	// index last, like a git pack and its idx.
	for _, f := range members {
		for _, r := range f.runs {
			v.drive.ReadRun(r)
		}
	}
	tag := v.nextTag
	v.nextTag++
	var seq int64
	for _, r := range mergeRuns(dataRuns) {
		v.drive.WriteRun(r, tag, seq, nil)
		seq += r.Len
	}
	for _, r := range mergeRuns(indexRuns) {
		v.drive.WriteRun(r, tag, seq, nil)
		seq += r.Len
	}

	p := &Pack{
		vol:        v,
		tag:        tag,
		runs:       mergeRuns(dataRuns),
		indexRuns:  mergeRuns(indexRuns),
		totalBytes: totalBytes,
		members:    make(map[string]*File, len(members)),
	}
	rep.Members = len(members)
	rep.Bytes = totalBytes
	rep.DataClusters = dataClusters
	rep.IndexClusters = indexClusters
	rep.Fragments = len(p.runs)

	if opts.Crash == CrashAfterWrite {
		// The pack hit disk but no member points at it: an orphan pack,
		// swept by Recover exactly like an orphan temp file.
		v.orphanPacks = append(v.orphanPacks, p)
		return rep, fmt.Errorf("%w after pack write of %d files", ErrCrashed, len(members))
	}

	// Switch members over: free the old extents and re-publish each
	// member as a fresh File mapping into the pack. One metadata write
	// covers the pack commit (its record carries the member table).
	var off int64
	for _, f := range members {
		for _, r := range f.runs {
			v.rc.Free(r)
			v.drive.ClearOwner(r)
		}
		nf := &File{
			vol:     v,
			name:    f.name,
			tag:     tag,
			size:    f.size,
			pack:    p,
			packOff: off,
			data:    f.data,
		}
		off += f.size
		v.files[f.name] = nf
		p.members[f.name] = nf
		p.liveBytes += f.size
		rep.Packed = append(rep.Packed, f.name)
		f.runs = nil
		f.allocated = 0
		f.data = nil
	}
	v.packs[tag] = p
	v.metadataWrite(tag)
	v.noteMetadataOp()
	return rep, nil
}

// mergeRuns merges physically adjacent runs so the pack's fragment
// count reflects on-disk layout.
func mergeRuns(runs []extent.Run) []extent.Run {
	var out []extent.Run
	for _, r := range runs {
		if n := len(out); n > 0 && out[n-1].End() == r.Start {
			out[n-1].Len += r.Len
		} else {
			out = append(out, r)
		}
	}
	return out
}

// runsOf maps the byte range [off, off+length) of the pack's data
// region to on-disk cluster runs, merging adjacency.
func (p *Pack) runsOf(off, length int64) []extent.Run {
	if length <= 0 {
		return nil
	}
	cs := p.vol.ClusterSize()
	firstC := off / cs
	lastC := (off + length - 1) / cs
	var out []extent.Run
	var pos int64
	for _, r := range p.runs {
		rFirst, rLast := pos, pos+r.Len-1
		pos += r.Len
		if rLast < firstC || rFirst > lastC {
			continue
		}
		lo := max(firstC, rFirst)
		hi := min(lastC, rLast)
		seg := extent.Run{Start: r.Start + (lo - rFirst), Len: hi - lo + 1}
		if n := len(out); n > 0 && out[n-1].End() == seg.Start {
			out[n-1].Len += seg.Len
		} else {
			out = append(out, seg)
		}
	}
	return out
}

// readRange charges a read of the byte range [off, off+length) of the
// pack's data region: one index-cluster read for the fanout/offset
// lookup, then the covered data clusters.
func (p *Pack) readRange(off, length int64) {
	if len(p.indexRuns) > 0 {
		p.vol.drive.ReadRun(extent.Run{Start: p.indexRuns[0].Start, Len: 1})
	}
	for _, r := range p.runsOf(off, length) {
		p.vol.drive.ReadRun(r)
	}
}

// remove drops a member from the pack. The pack's clusters are freed —
// quarantined until the next log flush — once the last member dies.
func (p *Pack) remove(f *File) {
	delete(p.members, f.name)
	p.liveBytes -= f.size
	f.pack = nil
	if len(p.members) > 0 {
		return
	}
	v := p.vol
	for _, r := range p.runs {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	for _, r := range p.indexRuns {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	delete(v.packs, p.tag)
}

// freeOrphan releases an uncommitted pack's clusters during recovery.
func (p *Pack) freeOrphan() {
	v := p.vol
	for _, r := range p.runs {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	for _, r := range p.indexRuns {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
}

// PackCount returns the number of live packs.
func (v *Volume) PackCount() int { return len(v.packs) }

// PackedLiveBytes returns the live member bytes held in packs.
func (v *Volume) PackedLiveBytes() int64 {
	var n int64
	for _, p := range v.packs {
		n += p.liveBytes
	}
	return n
}

// Packed reports whether the file's bytes live in a pack extent.
func (f *File) Packed() bool { return f.pack != nil }
