package fs

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
)

// File is a named stream of bytes stored as a list of cluster runs, like
// an NTFS non-resident attribute. A File handle stays valid until the file
// is deleted, replaced, or relocated (compacted or packed) — relocation
// publishes a fresh File so stale handles cannot read moved clusters.
type File struct {
	vol  *Volume
	name string
	tag  uint32

	size      int64        // logical length in bytes
	runs      []extent.Run // allocated extents in logical order
	allocated int64        // clusters allocated (== sum of runs)

	// Delayed-allocation state: bytes buffered but not yet allocated.
	buffered int64
	open     bool // true while the file accepts appends

	// sizeHint, when set via SetSizeHint before the first append, lets
	// the allocator see the final size — the interface change the paper
	// proposes in §6.
	sizeHint int64

	// data holds the file's contents when the drive retains payloads
	// (integrity tests); delayedData buffers appended bytes under
	// delayed allocation.
	data        []byte
	delayedData []byte

	// Packed files carry no runs of their own: their bytes live at
	// [packOff, packOff+size) inside pack's shared data region.
	pack    *Pack
	packOff int64
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the logical file size in bytes, including buffered bytes.
func (f *File) Size() int64 { return f.size + f.buffered }

// Runs returns a copy of the file's extent list. For a packed file the
// list is the slice of the pack's data region covering its bytes.
func (f *File) Runs() []extent.Run {
	if f.pack != nil {
		return f.pack.runsOf(f.packOff, f.size)
	}
	out := make([]extent.Run, len(f.runs))
	copy(out, f.runs)
	return out
}

// Fragments returns the number of discontiguous extents storing the file.
// A contiguous file has 1 fragment (paper, Figure 2 caption).
func (f *File) Fragments() int {
	if f.pack != nil {
		return len(f.pack.runsOf(f.packOff, f.size))
	}
	return len(f.runs)
}

// Tag returns the owner tag the file's clusters carry on disk.
func (f *File) Tag() uint32 { return f.tag }

// tailCluster returns the last allocated cluster, or -1.
func (f *File) tailCluster() int64 {
	if len(f.runs) == 0 {
		return -1
	}
	return f.runs[len(f.runs)-1].End() - 1
}

// appendRuns adds newly allocated runs to the extent list, merging when
// physically contiguous so Fragments() reflects on-disk layout.
func (f *File) appendRuns(runs []extent.Run) {
	for _, r := range runs {
		if n := len(f.runs); n > 0 && f.runs[n-1].End() == r.Start {
			f.runs[n-1].Len += r.Len
		} else {
			f.runs = append(f.runs, r)
		}
		f.allocated += r.Len
	}
}

// Create makes a new empty file open for appends. It charges the create
// CPU cost and an MFT record write. File structs are recycled from the
// volume's free list — every safe write creates and deletes a temp
// file, and at high stream counts the struct plus its extent list were
// a measurable slice of total allocations. A recycled File always
// carries a fresh tag, so stale handles to the dead File it once was
// cannot mistake it for their pinned version.
func (v *Volume) Create(name string) (*File, error) {
	if _, ok := v.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	v.drive.ChargeCPU(v.cfg.CreateCPUUs)
	var f *File
	if n := len(v.filePool); n > 0 {
		f = v.filePool[n-1]
		v.filePool[n-1] = nil
		v.filePool = v.filePool[:n-1]
		*f = File{vol: v, name: name, tag: v.nextTag, open: true, runs: f.runs[:0]}
	} else {
		f = &File{vol: v, name: name, tag: v.nextTag, open: true}
	}
	v.nextTag++
	v.files[name] = f
	v.metadataWrite(f.tag)
	v.indexGrow()
	v.statCreates++
	v.noteMetadataOp()
	return f, nil
}

// SetSizeHint declares the file's final size before data arrives, letting
// the allocator reserve contiguous space up front. It must be called
// before the first append. This is the allocation-interface extension the
// paper argues for: "There is no way to pass the (known) object size to
// the file system at file creation" (§5.4).
func (f *File) SetSizeHint(size int64) error {
	if f.size > 0 || f.allocated > 0 || f.buffered > 0 {
		return fmt.Errorf("%w: size hint after data was written to %s", blob.ErrInvalidSize, f.name)
	}
	f.sizeHint = size
	return nil
}

// Append writes len(dataOrNil) bytes — or n bytes when data is nil — to
// the end of the file. Each call is one write request: without delayed
// allocation, space for exactly this request is allocated now, which is
// why the write-request size shapes long-term fragmentation (§5.3, §5.4).
func (f *File) Append(n int64, data []byte) error {
	if !f.open {
		return fmt.Errorf("%w: %s", ErrClosed, f.name)
	}
	if data != nil {
		n = int64(len(data))
	}
	if n <= 0 {
		return fmt.Errorf("%w: empty append to %s", blob.ErrInvalidSize, f.name)
	}
	v := f.vol
	if v.cfg.DelayedAllocation {
		// Buffer only; allocation happens at Close with the size known.
		f.buffered += n
		if data != nil {
			f.delayedData = append(f.delayedData, data...)
		}
		return nil
	}
	return f.appendAllocated(n, data)
}

// appendAllocated performs an immediate-allocation append.
func (f *File) appendAllocated(n int64, data []byte) error {
	v := f.vol
	cs := v.ClusterSize()
	newSize := f.size + n
	needClusters := units.CeilDiv(newSize, cs) - f.allocated
	if needClusters > 0 {
		want := needClusters
		// With a size hint and no allocation yet, request the whole
		// object's worth of clusters in one go.
		if f.sizeHint > newSize && f.allocated == 0 {
			want = units.CeilDiv(f.sizeHint, cs)
		}
		// Scratch-backed allocation: the runs are copied into the extent
		// list below and never retained.
		runs, err := v.rc.AllocAppendScratch(want, f.tailCluster())
		if err != nil {
			return fmt.Errorf("%w: appending %d bytes to %s", ErrNoSpace, n, f.name)
		}
		f.writeNewRuns(runs, data)
		f.appendRuns(runs)
	} else {
		// Fits in the slack of the last cluster; charge a rewrite of it.
		tail := f.tailCluster()
		v.drive.WriteRun(extent.Run{Start: tail, Len: 1}, f.tag, f.allocated-1, nil)
	}
	f.size = newSize
	f.storeData(data)
	return nil
}

// writeNewRuns issues the disk writes for freshly allocated runs, with
// owner tags carrying the object-relative cluster sequence.
func (f *File) writeNewRuns(runs []extent.Run, data []byte) {
	seq := f.allocated
	for _, r := range runs {
		f.vol.drive.WriteRun(r, f.tag, seq, nil)
		seq += r.Len
	}
	_ = data // payload retention is handled by storeData in data mode
}

// Close ends the append phase. Under delayed allocation this is where
// space is allocated — in a single request sized to the full buffered
// length, the behaviour that "trade[s] system memory ... for improved
// information about the object's final size" (§5.4).
func (f *File) Close() error {
	if !f.open {
		return nil
	}
	v := f.vol
	if f.buffered > 0 {
		n := f.buffered
		data := f.delayedData
		f.buffered = 0
		f.delayedData = nil
		if err := f.appendAllocated(n, data); err != nil {
			return err
		}
	}
	f.open = false
	// Final MFT update records the true size and extent list.
	v.metadataWrite(f.tag)
	v.noteMetadataOp()
	return nil
}

// Open looks a file up by name, charging the open cost (CPU plus an MFT
// record read). The returned handle supports reads.
func (v *Volume) Open(name string) (*File, error) {
	f, ok := v.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	v.drive.ChargeCPU(v.cfg.OpenCPUUs)
	v.metadataRead(f.tag)
	v.statOpens++
	return f, nil
}

// Lookup returns the file without charging open costs. For analysis tools.
func (v *Volume) Lookup(name string) (*File, bool) {
	f, ok := v.files[name]
	return f, ok
}

// ReadAll reads the whole file, charging a seek per fragment — the paper's
// core cost mechanism. When the drive retains payloads the file contents
// are returned; otherwise nil.
func (f *File) ReadAll() []byte {
	if f.pack != nil {
		f.pack.readRange(f.packOff, f.size)
	}
	for _, r := range f.runs {
		f.vol.drive.ReadRun(r)
	}
	if f.vol.dataMode() {
		out := make([]byte, len(f.data))
		copy(out, f.data)
		return out
	}
	return nil
}

// ReadAt reads length bytes starting at off, touching only the runs that
// cover the range. When the drive retains payloads the covered bytes are
// returned; otherwise nil.
func (f *File) ReadAt(off, length int64) ([]byte, error) {
	// length > f.size-off rather than off+length > f.size: the sum can
	// overflow int64 for hostile offsets, the subtraction cannot.
	if off < 0 || length < 0 || length > f.size-off {
		return nil, fmt.Errorf("%w: read [%d,+%d) beyond size %d of %s", blob.ErrOutOfRange, off, length, f.size, f.name)
	}
	if length == 0 {
		return nil, nil
	}
	if f.pack != nil {
		f.pack.readRange(f.packOff+off, length)
		if f.vol.dataMode() && off+length <= int64(len(f.data)) {
			out := make([]byte, length)
			copy(out, f.data[off:off+length])
			return out, nil
		}
		return nil, nil
	}
	cs := f.vol.ClusterSize()
	firstC := off / cs
	lastC := (off + length - 1) / cs
	var pos int64
	for _, r := range f.runs {
		rFirst, rLast := pos, pos+r.Len-1
		pos += r.Len
		if rLast < firstC || rFirst > lastC {
			continue
		}
		lo := max(firstC, rFirst)
		hi := min(lastC, rLast)
		f.vol.drive.ReadRun(extent.Run{Start: r.Start + (lo - rFirst), Len: hi - lo + 1})
	}
	if f.vol.dataMode() && off+length <= int64(len(f.data)) {
		out := make([]byte, length)
		copy(out, f.data[off:off+length])
		return out, nil
	}
	return nil, nil
}

// Delete removes a file. Its clusters are quarantined until the next log
// flush — the NTFS behaviour that defers reuse of freed space (§2).
func (v *Volume) Delete(name string) error {
	f, ok := v.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	v.drive.ChargeCPU(v.cfg.DeleteCPUUs)
	if f.pack != nil {
		// Packed members share clusters; the pack frees them only when
		// its last member dies.
		f.pack.remove(f)
	}
	for _, r := range f.runs {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	v.clearData(f)
	delete(v.files, name)
	v.metadataWrite(f.tag)
	v.indexShrink()
	v.statDeletes++
	v.noteMetadataOp()
	// Retire the struct to the free list, keeping the extent list's
	// capacity. The dead File keeps open=false and its (now unmapped)
	// tag until reuse, so a stale handle still fails validation.
	f.runs = f.runs[:0]
	f.allocated = 0
	f.open = false
	f.size = 0
	f.buffered = 0
	f.sizeHint = 0
	f.delayedData = nil
	f.pack = nil
	f.packOff = 0
	if len(v.filePool) < maxFilePool {
		v.filePool = append(v.filePool, f)
	}
	return nil
}

// maxFilePool bounds the volume's recycled-File free list.
const maxFilePool = 1024

// Rename atomically renames oldName to newName, replacing any existing
// file at newName (the ReplaceFile/rename(2) semantics safe writes rely
// on, §4).
func (v *Volume) Rename(oldName, newName string) error {
	f, ok := v.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	v.drive.ChargeCPU(v.cfg.RenameCPUUs)
	if _, exists := v.files[newName]; exists {
		if err := v.Delete(newName); err != nil {
			return err
		}
	}
	delete(v.files, oldName)
	if f.pack != nil {
		delete(f.pack.members, oldName)
		f.pack.members[newName] = f
	}
	f.name = newName
	v.files[newName] = f
	v.metadataWrite(f.tag)
	// ReplaceFile rewrites both directory entries; the index B-tree churn
	// cycles another buffer through general free space.
	v.indexShrink()
	v.indexGrow()
	v.noteMetadataOp()
	return nil
}

// Names returns all live file names in arbitrary order.
func (v *Volume) Names() []string {
	out := make([]string, 0, len(v.files))
	for n := range v.files {
		out = append(out, n)
	}
	return out
}

// EachFile calls fn for every live file.
func (v *Volume) EachFile(fn func(*File)) {
	for _, f := range v.files {
		fn(f)
	}
}

// dataMode reports whether the drive retains payload bytes.
func (v *Volume) dataMode() bool { return v.drive.Mode() == disk.DataMode }

// storeData appends payload bytes to the file's retained contents.
func (f *File) storeData(data []byte) {
	if data != nil && f.vol.dataMode() {
		f.data = append(f.data, data...)
	}
}

// clearData drops retained contents on delete.
func (v *Volume) clearData(f *File) { f.data = nil }
