package fs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

func TestAppendToClosedFile(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	f.Append(64*units.KB, nil)
	f.Close()
	if err := f.Append(64*units.KB, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAppendRejected(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	if err := f.Append(0, nil); err == nil {
		t.Fatal("zero append succeeded")
	}
	if err := f.Append(-5, nil); err == nil {
		t.Fatal("negative append succeeded")
	}
}

func TestSizeHintAfterDataFails(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	f.Append(4*units.KB, nil)
	if err := f.SetSizeHint(1 * units.MB); err == nil {
		t.Fatal("late size hint accepted")
	}
}

func TestSubClusterAppendsShareCluster(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	// Four 1KB appends fit one 4KB cluster.
	for i := 0; i < 4; i++ {
		if err := f.Append(1*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if f.Size() != 4*units.KB {
		t.Fatalf("size = %d", f.Size())
	}
	if got := extent.SumLen(f.Runs()); got != 1 {
		t.Fatalf("allocated %d clusters, want 1", got)
	}
}

func TestReadAtChargesOnlyCoveringRuns(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	f.Append(1*units.MB, nil)
	f.Close()
	v.Drive().ResetStats()
	if _, err := f.ReadAt(0, 4*units.KB); err != nil {
		t.Fatal(err)
	}
	s := v.Drive().Stats()
	if s.BytesRead > 8*units.KB {
		t.Fatalf("4KB read touched %d bytes", s.BytesRead)
	}
}

func TestReadAllCountsOneRequestPerFragment(t *testing.T) {
	v := newVolume(32*units.MB, disk.MetadataMode)
	// Shatter free space so a file fragments.
	var names []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("f%d", i)
		f, err := v.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(128*units.KB, nil); err != nil {
			v.Delete(name)
			break
		}
		f.Close()
		names = append(names, name)
	}
	for i := 0; i < len(names); i += 2 {
		v.Delete(names[i])
	}
	v.FlushLog()
	g, _ := v.Create("frag")
	g.Append(512*units.KB, nil)
	g.Close()
	if g.Fragments() < 2 {
		t.Skip("did not fragment")
	}
	v.Drive().ResetStats()
	g.ReadAll()
	if got := int(v.Drive().Stats().Reads); got != g.Fragments() {
		t.Fatalf("ReadAll issued %d requests for %d fragments", got, g.Fragments())
	}
}

func TestLogFlushCadence(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(64*units.MB), vclock.New(), disk.MetadataMode)
	v := Format(d, Config{LogFlushOps: 4})
	for i := 0; i < 12; i++ { // create+close = 2 metadata ops each
		f, _ := v.Create(fmt.Sprintf("f%d", i))
		f.Append(4*units.KB, nil)
		f.Close()
	}
	if got := v.Stats().LogFlushes; got < 4 {
		t.Fatalf("expected >= 4 log flushes, got %d", got)
	}
}

func TestMetadataZoneNotUsedForData(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	f, _ := v.Create("a")
	f.Append(4*units.MB, nil)
	f.Close()
	for _, r := range f.Runs() {
		if r.Start < v.metaStart+v.metaLen {
			t.Fatalf("file data run %v inside the MFT zone [0,%d)", r, v.metaLen)
		}
	}
}

func TestRecoverFlushesLog(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	v.SafeWrite("a", 1*units.MB, nil, SafeWriteOptions{})
	free := v.FreeBytes()
	v.Delete("a")
	if v.FreeBytes() != free {
		// Deletion quarantined; Recover must release it.
		v.Recover()
		if v.FreeBytes() <= free {
			t.Fatal("Recover did not flush the log")
		}
	}
}

func TestDefragmentBudget(t *testing.T) {
	v := newVolume(32*units.MB, disk.MetadataMode)
	for i := 0; i < 8; i++ {
		f, _ := v.Create(fmt.Sprintf("f%d", i))
		f.Append(1*units.MB, nil)
		f.Close()
	}
	v.ShatterFiles(16)
	rep := v.Defragment(2 * units.MB) // budget covers ~2 files
	if rep.FilesMoved > 3 {
		t.Fatalf("budget ignored: moved %d files", rep.FilesMoved)
	}
	if rep.FilesExamined != 8 {
		t.Fatalf("examined %d", rep.FilesExamined)
	}
}

func TestVolumeStringer(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	if s := v.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestSafeWriteZeroSizeRejected(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	if err := v.SafeWrite("a", 0, nil, SafeWriteOptions{}); err == nil {
		t.Fatal("zero-size safe write succeeded")
	}
	if err := v.SafeWrite("a", 100, []byte{1, 2}, SafeWriteOptions{}); err == nil {
		t.Fatal("mismatched data length accepted")
	}
}

func TestDeleteMissing(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	if err := v.Delete("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := v.Rename("ghost", "other"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename err = %v", err)
	}
}

func TestIndexBufferChurnBalanced(t *testing.T) {
	// Steady create/delete churn must not leak index buffers.
	v := newVolume(64*units.MB, disk.MetadataMode)
	for i := 0; i < 50; i++ {
		f, _ := v.Create(fmt.Sprintf("f%d", i))
		f.Append(64*units.KB, nil)
		f.Close()
	}
	buffersAt50 := len(v.indexBufs)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("g%d", i)
		f, _ := v.Create(name)
		f.Append(64*units.KB, nil)
		f.Close()
		v.Delete(name)
	}
	if got := len(v.indexBufs); got > buffersAt50+2 {
		t.Fatalf("index buffers leaked: %d -> %d", buffersAt50, got)
	}
}

// TestBatchDefersAndCoalescesMetadataForces pins the volume half of
// group commit: inside a BeginBatch/EndBatch bracket, MFT record writes
// are deferred and deduplicated (Close and Rename of one file share one
// record), the periodic log flush waits for batch end, and the deferred
// work is charged exactly once when the batch closes.
func TestBatchDefersAndCoalescesMetadataForces(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	base := v.Stats()

	v.BeginBatch()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("o%d", i)
		f, err := v.Create(tempName(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := v.Rename(tempName(name), name); err != nil {
			t.Fatal(err)
		}
	}
	mid := v.Stats()
	if got := mid.MetaWrites - base.MetaWrites; got != 0 {
		t.Fatalf("%d MFT writes forced inside the batch, want 0", got)
	}
	if mid.LogFlushes != base.LogFlushes {
		t.Fatal("log flushed inside the batch")
	}
	v.EndBatch()
	after := v.Stats()
	// Three files, each touching one MFT record across create, close,
	// and rename: at most one coalesced write per record, so strictly
	// fewer forces than the nine record updates that happened.
	forced := after.MetaWrites - base.MetaWrites
	if forced == 0 || forced > 3 {
		t.Fatalf("EndBatch forced %d MFT writes, want 1..3", forced)
	}

	// The same protocol without a batch forces every record update.
	v2 := newVolume(64*units.MB, disk.MetadataMode)
	base2 := v2.Stats()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("o%d", i)
		f, _ := v2.Create(tempName(name))
		_ = f.Append(256*units.KB, nil)
		_ = f.Close()
		_ = v2.Rename(tempName(name), name)
	}
	unbatched := v2.Stats().MetaWrites - base2.MetaWrites
	if forced >= unbatched {
		t.Fatalf("batched forces (%d) not below unbatched (%d)", forced, unbatched)
	}
}

// TestBatchNests pins that nested batches force only at the outermost
// EndBatch.
func TestBatchNests(t *testing.T) {
	v := newVolume(64*units.MB, disk.MetadataMode)
	base := v.Stats().MetaWrites
	v.BeginBatch()
	v.BeginBatch()
	if _, err := v.Create("a"); err != nil {
		t.Fatal(err)
	}
	v.EndBatch()
	if got := v.Stats().MetaWrites - base; got != 0 {
		t.Fatalf("inner EndBatch forced %d writes", got)
	}
	v.EndBatch()
	if got := v.Stats().MetaWrites - base; got != 1 {
		t.Fatalf("outer EndBatch forced %d writes, want 1", got)
	}
}
