package fs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func benchVolume(capacity int64) *Volume {
	d := disk.New(disk.DefaultGeometry(capacity), vclock.New(), disk.MetadataMode, disk.WithoutOwnerMap())
	return Format(d, Config{})
}

// BenchmarkSafeWriteChurn measures the full safe-write protocol under
// steady replacement churn.
func BenchmarkSafeWriteChurn(b *testing.B) {
	v := benchVolume(1 * units.GB)
	const n = 100
	opts := SafeWriteOptions{WriteRequestSize: 64 * units.KB}
	for i := 0; i < n; i++ {
		if err := v.SafeWrite(fmt.Sprintf("o%d", i), 1*units.MB, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.SafeWrite(fmt.Sprintf("o%d", rng.Intn(n)), 1*units.MB, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppend64K measures the per-request append path.
func BenchmarkAppend64K(b *testing.B) {
	// Slack covers the 1% MFT zone reservation at large b.N.
	v := benchVolume(max(int64(b.N)*72*units.KB+256*units.MB, 1*units.GB))
	f, err := v.Create("stream")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Append(64*units.KB, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAllAged measures whole-file reads on a fragmented volume.
func BenchmarkReadAllAged(b *testing.B) {
	v := benchVolume(1 * units.GB)
	const n = 100
	opts := SafeWriteOptions{WriteRequestSize: 64 * units.KB}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		v.SafeWrite(fmt.Sprintf("o%d", i), 1*units.MB, nil, opts)
	}
	for i := 0; i < 4*n; i++ {
		v.SafeWrite(fmt.Sprintf("o%d", rng.Intn(n)), 1*units.MB, nil, opts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := v.Open(fmt.Sprintf("o%d", rng.Intn(n)))
		if err != nil {
			b.Fatal(err)
		}
		f.ReadAll()
	}
}

// BenchmarkDefragment measures a defragmentation pass over a shattered
// volume.
func BenchmarkDefragment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v := benchVolume(512 * units.MB)
		for j := 0; j < 20; j++ {
			v.SafeWrite(fmt.Sprintf("o%d", j), 10*units.MB, nil, SafeWriteOptions{WriteRequestSize: 64 * units.KB})
		}
		v.ShatterFiles(16)
		b.StartTimer()
		v.Defragment(0)
	}
}
