package fs

import (
	"sort"

	"repro/internal/extent"
)

// extRun builds an extent.Run (local shorthand).
func extRun(start, length int64) extent.Run { return extent.Run{Start: start, Len: length} }

// This file implements an online defragmenter analogous to the Windows
// utility the paper mentions (§3.4: "The Windows defragmentation utility
// supports on-line partial defragmentation"). The paper's conclusion warns
// that defragmentation "imposes read/write performance impacts that can
// outweigh its benefits" — the defragmenter charges full read+write disk
// time for every file it moves, so the harness can quantify that tradeoff.

// DefragReport summarises one defragmentation pass.
type DefragReport struct {
	FilesExamined   int
	FilesMoved      int
	FragmentsBefore int
	FragmentsAfter  int
	BytesMoved      int64
}

// Defragment performs a partial offline defragmentation pass.
//
// Deprecated: Defragment is the retired stop-the-world entry point. It
// is now a thin wrapper over CompactPass, the same rewrite machinery
// the online compactor (internal/compact) drives incrementally during
// live traffic; new code should run a Compactor instead.
func (v *Volume) Defragment(budgetBytes int64) DefragReport {
	return v.CompactPass(budgetBytes)
}

// CompactPass rewrites the worst-fragmented files into contiguous
// space, most-fragmented first, until budgetBytes of data has been
// moved (budgetBytes <= 0 means no limit). Files that cannot be placed
// contiguously are left in place. Every move charges a full read of the
// old layout and write of the new on the shared virtual clock — the
// §3.4 cost the compactor's duty cycle meters out.
func (v *Volume) CompactPass(budgetBytes int64) DefragReport {
	var rep DefragReport
	// Snapshot candidates; moving files mutates v.files' contents but not
	// the key set.
	files := make([]*File, 0, len(v.files))
	for _, f := range v.files {
		rep.FilesExamined++
		rep.FragmentsBefore += f.Fragments()
		if f.Fragments() > 1 {
			files = append(files, f)
		}
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].Fragments() != files[j].Fragments() {
			return files[i].Fragments() > files[j].Fragments()
		}
		return files[i].name < files[j].name
	})
	// Freed source extents must be reusable for subsequent moves.
	v.FlushLog()
	for _, f := range files {
		if budgetBytes > 0 && rep.BytesMoved >= budgetBytes {
			break
		}
		if v.moveContiguous(f) {
			rep.FilesMoved++
			rep.BytesMoved += f.size
			v.FlushLog()
		}
	}
	for _, f := range v.files {
		rep.FragmentsAfter += f.Fragments()
	}
	return rep
}

// CompactFile rewrites a single file into contiguous space, returning
// the bytes moved. It is the per-object entry point the online
// compactor drives: already-contiguous, packed, or open files are left
// alone (moved == 0). When the allocator cannot produce a contiguous
// run but freed space sits quarantined in the log, the log is flushed
// and the move retried once.
func (v *Volume) CompactFile(name string) (moved int64, ok bool) {
	f, exists := v.files[name]
	if !exists || f.pack != nil || f.open || f.Fragments() <= 1 {
		return 0, false
	}
	if !v.moveContiguous(f) {
		if v.rc.PendingClusters() == 0 {
			return 0, false
		}
		v.FlushLog()
		if !v.moveContiguous(f) {
			return 0, false
		}
	}
	return f.size, true
}

// moveContiguous rewrites f into a single run if the allocator can provide
// one. It charges a full read of the old layout and write of the new, and
// re-publishes the file as a fresh version (new *File, new tag) so handles
// pinned to the old location fail instead of reading relocated clusters.
func (v *Volume) moveContiguous(f *File) bool {
	need := f.allocated
	if need == 0 || f.pack != nil {
		return false
	}
	runs, err := v.rc.Alloc(need)
	if err != nil || len(runs) != 1 {
		// Could not get contiguous space; put any partial grant back.
		for _, r := range runs {
			v.rc.Free(r)
		}
		return false
	}
	// Read old, write new, free old.
	for _, r := range f.runs {
		v.drive.ReadRun(r)
	}
	tag := v.nextTag
	v.nextTag++
	v.drive.WriteRun(runs[0], tag, 0, nil)
	for _, r := range f.runs {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	nf := &File{vol: v, name: f.name, tag: tag, size: f.size, data: f.data}
	nf.appendRuns(runs)
	v.files[f.name] = nf
	f.runs = nil
	f.allocated = 0
	f.data = nil
	v.metadataWrite(tag)
	v.noteMetadataOp()
	return true
}

// ShatterFiles artificially and pathologically fragments the volume:
// every live file is rewritten as scattered stripes of stripeClusters,
// with free space interleaved between them. It is the setup behind the
// paper's §5.3 observation: "When we ran on an artificially and
// pathologically fragmented NTFS volume, we found that fragmentation
// slowly decreases over time," i.e. the run cache is approaching an
// asymptote from above as well as from below. This is a test fixture, not
// a timed operation. It returns the resulting mean fragments per file.
func (v *Volume) ShatterFiles(stripeClusters int64) float64 {
	if stripeClusters <= 0 {
		stripeClusters = 16
	}
	v.FlushLog()
	var spacers []sfRun
	for _, f := range v.files {
		need := f.allocated
		if need == 0 {
			continue
		}
		for _, r := range f.runs {
			v.rc.Free(r)
			v.drive.ClearOwner(r)
		}
		v.rc.CommitLog()
		f.runs = f.runs[:0]
		f.allocated = 0
		var seq int64
		for got := int64(0); got < need; {
			n := min(stripeClusters, need-got)
			runs, err := v.rc.Alloc(n)
			if err != nil {
				panic("fs: ShatterFiles ran out of space")
			}
			for _, r := range runs {
				v.drive.WriteRun(r, f.tag, seq, nil)
				seq += r.Len
			}
			f.appendRuns(runs)
			got += n
			// A spacer keeps the next stripe from landing adjacent.
			if sp, err := v.rc.Alloc(stripeClusters); err == nil {
				for _, r := range sp {
					spacers = append(spacers, sfRun{r.Start, r.Len})
				}
			}
		}
	}
	for _, s := range spacers {
		v.rc.Free(extRun(s.start, s.len))
	}
	v.rc.CommitLog()
	var frags, n int
	for _, f := range v.files {
		frags += f.Fragments()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(frags) / float64(n)
}

type sfRun struct{ start, len int64 }
