package fs

import (
	"sort"

	"repro/internal/extent"
)

// extRun builds an extent.Run (local shorthand).
func extRun(start, length int64) extent.Run { return extent.Run{Start: start, Len: length} }

// This file implements an online defragmenter analogous to the Windows
// utility the paper mentions (§3.4: "The Windows defragmentation utility
// supports on-line partial defragmentation"). The paper's conclusion warns
// that defragmentation "imposes read/write performance impacts that can
// outweigh its benefits" — the defragmenter charges full read+write disk
// time for every file it moves, so the harness can quantify that tradeoff.

// DefragReport summarises one defragmentation pass.
type DefragReport struct {
	FilesExamined   int
	FilesMoved      int
	FragmentsBefore int
	FragmentsAfter  int
	BytesMoved      int64
}

// Defragment performs a partial online defragmentation pass: the most
// fragmented files are rewritten into contiguous space, most-fragmented
// first, until budgetBytes of data has been moved (budgetBytes <= 0 means
// no limit). Files that cannot be placed contiguously are left in place.
func (v *Volume) Defragment(budgetBytes int64) DefragReport {
	var rep DefragReport
	// Snapshot candidates; moving files mutates v.files' contents but not
	// the key set.
	files := make([]*File, 0, len(v.files))
	for _, f := range v.files {
		rep.FilesExamined++
		rep.FragmentsBefore += f.Fragments()
		if f.Fragments() > 1 {
			files = append(files, f)
		}
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].Fragments() != files[j].Fragments() {
			return files[i].Fragments() > files[j].Fragments()
		}
		return files[i].name < files[j].name
	})
	// Freed source extents must be reusable for subsequent moves.
	v.FlushLog()
	for _, f := range files {
		if budgetBytes > 0 && rep.BytesMoved >= budgetBytes {
			break
		}
		if v.moveContiguous(f) {
			rep.FilesMoved++
			rep.BytesMoved += f.size
			v.FlushLog()
		}
	}
	for _, f := range v.files {
		rep.FragmentsAfter += f.Fragments()
	}
	return rep
}

// moveContiguous rewrites f into a single run if the allocator can provide
// one. It charges a full read of the old layout and write of the new.
func (v *Volume) moveContiguous(f *File) bool {
	need := f.allocated
	if need == 0 {
		return false
	}
	runs, err := v.rc.Alloc(need)
	if err != nil || len(runs) != 1 {
		// Could not get contiguous space; put any partial grant back.
		for _, r := range runs {
			v.rc.Free(r)
		}
		return false
	}
	// Read old, write new, free old.
	for _, r := range f.runs {
		v.drive.ReadRun(r)
	}
	v.drive.WriteRun(runs[0], f.tag, 0, nil)
	for _, r := range f.runs {
		v.rc.Free(r)
		v.drive.ClearOwner(r)
	}
	f.runs = f.runs[:0]
	f.allocated = 0
	f.appendRuns(runs)
	v.metadataWrite(f.tag)
	v.noteMetadataOp()
	return true
}

// ShatterFiles artificially and pathologically fragments the volume:
// every live file is rewritten as scattered stripes of stripeClusters,
// with free space interleaved between them. It is the setup behind the
// paper's §5.3 observation: "When we ran on an artificially and
// pathologically fragmented NTFS volume, we found that fragmentation
// slowly decreases over time," i.e. the run cache is approaching an
// asymptote from above as well as from below. This is a test fixture, not
// a timed operation. It returns the resulting mean fragments per file.
func (v *Volume) ShatterFiles(stripeClusters int64) float64 {
	if stripeClusters <= 0 {
		stripeClusters = 16
	}
	v.FlushLog()
	var spacers []sfRun
	for _, f := range v.files {
		need := f.allocated
		if need == 0 {
			continue
		}
		for _, r := range f.runs {
			v.rc.Free(r)
			v.drive.ClearOwner(r)
		}
		v.rc.CommitLog()
		f.runs = f.runs[:0]
		f.allocated = 0
		var seq int64
		for got := int64(0); got < need; {
			n := min(stripeClusters, need-got)
			runs, err := v.rc.Alloc(n)
			if err != nil {
				panic("fs: ShatterFiles ran out of space")
			}
			for _, r := range runs {
				v.drive.WriteRun(r, f.tag, seq, nil)
				seq += r.Len
			}
			f.appendRuns(runs)
			got += n
			// A spacer keeps the next stripe from landing adjacent.
			if sp, err := v.rc.Alloc(stripeClusters); err == nil {
				for _, r := range sp {
					spacers = append(spacers, sfRun{r.Start, r.Len})
				}
			}
		}
	}
	for _, s := range spacers {
		v.rc.Free(extRun(s.start, s.len))
	}
	v.rc.CommitLog()
	var frags, n int
	for _, f := range v.files {
		frags += f.Fragments()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(frags) / float64(n)
}

type sfRun struct{ start, len int64 }
