package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log-scaled with subCount sub-buckets per
// power of two (HDR-style). A value v > 0 lands in the bucket whose
// index is exponent*subCount + the next subBits bits of the mantissa,
// which bounds the relative width of every bucket at 1/subCount
// (≈ 6.25%) — tight enough that an interpolated p999 is meaningful,
// small enough that a histogram is ~3 KB of counters.
const (
	subBits   = 4
	subCount  = 1 << subBits // sub-buckets per power of two
	maxExp    = 50           // covers up to ~2^50 ns ≈ 13 virtual days
	numBucket = maxExp * subCount
)

// bucketIndex maps a positive value to its bucket. Monotonic in v.
func bucketIndex(v int64) int {
	u := uint64(v)
	e := bits.Len64(u) - 1 // floor(log2 v)
	var frac uint64
	if e >= subBits {
		frac = (u >> (uint(e) - subBits)) & (subCount - 1)
	} else {
		frac = (u << (subBits - uint(e))) & (subCount - 1)
	}
	idx := e*subCount + int(frac)
	if idx >= numBucket {
		idx = numBucket - 1
	}
	return idx
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) int64 {
	e := idx / subCount
	frac := int64(idx % subCount)
	if e >= subBits {
		return (subCount + frac) << (uint(e) - subBits)
	}
	return (subCount + frac) >> (subBits - uint(e))
}

// bucketUpper returns the largest value mapping to bucket idx. Below
// subCount the sub-bucket grid is finer than the integers, so adjacent
// buckets share a lower bound; clamp so upper never drops below lower.
func bucketUpper(idx int) int64 {
	if idx+1 >= numBucket {
		return 1 << 62
	}
	lo := bucketLower(idx)
	if hi := bucketLower(idx+1) - 1; hi > lo {
		return hi
	}
	return lo
}

// Histogram is a concurrent log-bucketed latency histogram over
// virtual-clock nanoseconds. Recording is a handful of atomic adds —
// no locks, no allocation — so k executor streams can record into one
// histogram while another goroutine snapshots it. Values ≤ 0 land in a
// dedicated zero bucket (an all-hit memory read can round to zero
// virtual ns).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	zero    atomic.Int64 // observations ≤ 0
	buckets [numBucket]atomic.Int64
}

// NewHistogram returns an empty histogram. Registries create them on
// demand; standalone use (per-stream histograms merged later) is also
// supported.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1) << 62)
	return h
}

// Observe records one value in virtual nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.count.Add(1)
	if ns <= 0 {
		h.zero.Add(1)
		for {
			old := h.min.Load()
			if old <= 0 || h.min.CompareAndSwap(old, 0) {
				break
			}
		}
		return
	}
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
	for {
		old := h.min.Load()
		if ns >= old || h.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// reset zeroes the histogram in place (Registry.Reset).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(1) << 62)
	h.max.Store(0)
	h.zero.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot copies the histogram for analysis. A snapshot taken while
// recording continues is internally consistent per bucket (each count
// is atomic) though not across buckets — fine for reporting, which
// runs at phase boundaries.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Zero:    h.zero.Load(),
		Max:     h.max.Load(),
		Buckets: make([]int64, numBucket),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the q-quantile (0..1) in virtual nanoseconds; see
// HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is an immutable copy of a Histogram. Snapshots
// merge: the merge of per-stream snapshots is bucket-for-bucket equal
// to one histogram that observed every stream's values, so per-stream
// and global views never disagree.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Zero    int64
	Min     int64
	Max     int64
	Buckets []int64
}

// Merge folds o into s (commutative and associative).
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min = o.Min
	} else if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.Zero += o.Zero
	if len(s.Buckets) == 0 {
		s.Buckets = make([]int64, numBucket)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Mean returns the mean observation in virtual nanoseconds.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0..1) in virtual nanoseconds,
// linearly interpolated inside the covering bucket and clamped to the
// observed min/max so p999 can never exceed the recorded maximum.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	if rank <= s.Zero {
		return 0
	}
	seen := s.Zero
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			// Interpolate position within the bucket.
			frac := float64(rank-seen) / float64(n)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		seen += n
	}
	return s.Max
}
