// Package obs is the observability layer of the store stack: metrics
// and per-operation tracing for every experiment the harness runs.
//
// The paper's argument rests on measured degradation over storage age,
// but aggregate MB/s per phase cannot show WHERE virtual time goes —
// cache hit vs. cold fragment walk, commit queue wait vs. group force,
// one slow shard vs. a uniform fleet. This package provides that lens:
//
//   - Registry: lock-cheap counters, gauges, and log-bucketed latency
//     Histograms (p50/p90/p99/p999/max, mergeable across streams). All
//     latencies are recorded in VIRTUAL-clock nanoseconds, so latency
//     distributions inherit the determinism and host-independence of
//     the simulation's storage-age metric.
//   - Store (store.go): a blob.Store wrapper that times every operation
//     against the shared vclock and composes anywhere in the store
//     chain, so one logical op can be attributed at each layer it
//     crosses.
//   - Tracer/Collector (trace.go): a bounded ring-buffer op tracer
//     emitting JSONL and Chrome trace-event files, one track per
//     operation stream with spans per layer, so a single slow p999 op
//     can be inspected end-to-end.
//   - RunReport (report.go): the machine-readable JSON run report the
//     fragbench harness emits alongside its text tables.
//
// Virtual time vs. wall clock: everything here measures the simulated
// clock (vclock.Clock). An op's latency includes virtual time charged
// by OTHER concurrent streams while the op was in flight — exactly the
// queueing view a tail-latency SLO needs — and is reproducible per
// seed, unlike wall-clock timings.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TimeUnit declares what a registry's latency histograms measure. The
// tag travels with every Snapshot and PhaseReport so virtual-time sim
// histograms and wall-clock server histograms can never be silently
// mixed in one report: the vclock-timed recorders (Wrap,
// NewCommitObserver, Collector) refuse a wall-unit registry, and the
// report schema surfaces the unit per phase.
type TimeUnit string

const (
	// UnitVirtual marks histograms in vclock.Clock nanoseconds —
	// deterministic per seed, host-independent.
	UnitVirtual TimeUnit = "virtual_ns"
	// UnitWall marks histograms in wall-clock nanoseconds — the network
	// service's SLO view, not reproducible across hosts.
	UnitWall TimeUnit = "wall_ns"
)

// WallNow returns the current wall clock as nanoseconds since the Unix
// epoch. It is the single sanctioned wall-time source for the network
// service and its load generator: every wall-clock latency is a
// difference of two WallNow readings recorded into a UnitWall
// registry, so the simulation's vclock purity rule stays auditable.
func WallNow() int64 {
	//fragvet:ignore vclockpurity the network service measures real wall-clock latency; recorded only into UnitWall registries
	return time.Now().UnixNano()
}

// Counter is a monotonically increasing event count. Safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float value (a duty cycle, a hit rate, a
// resident-byte level). Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds one experiment arm's metrics, keyed by flat
// dot-separated names ("disk.readall", "store.commit.queuewait",
// "compact.rewrite_bytes"). Metric handles are created on first use
// and recorded through atomics, so the per-record cost after the first
// lookup is lock-free; the lookup itself takes a read lock only.
//
// A nil *Registry is the disabled state: the obs.Store wrapper and the
// Collector treat it as "record nothing" at near-zero cost, so
// instrumented code paths need no build-time switches.
type Registry struct {
	unit     TimeUnit
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry whose histograms
// record virtual-clock nanoseconds (UnitVirtual).
func NewRegistry() *Registry {
	return newRegistry(UnitVirtual)
}

// NewWallRegistry returns an empty, enabled registry whose histograms
// record wall-clock nanoseconds (UnitWall) — the network service's SLO
// registry. The vclock-timed recorders (Wrap, NewCommitObserver)
// refuse it, so sim latencies can't leak in.
func NewWallRegistry() *Registry {
	return newRegistry(UnitWall)
}

func newRegistry(unit TimeUnit) *Registry {
	return &Registry{
		unit:     unit,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Unit returns the time unit this registry's histograms record. A nil
// registry reports UnitVirtual (the disabled default).
func (r *Registry) Unit() TimeUnit {
	if r == nil {
		return UnitVirtual
	}
	return r.unit
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// Reset zeroes every metric while keeping the handles alive, so
// instrumented stores holding metric pointers keep recording — the
// phase separation a warm-up pass needs (cache.ResetStats one layer
// up).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot is a point-in-time copy of a registry's metrics, safe to
// read while recording continues.
type Snapshot struct {
	// Unit is the time unit of every histogram in the snapshot.
	Unit       TimeUnit
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]*HistogramSnapshot
}

// Snapshot copies every metric. Histograms with zero observations are
// included (their quantiles read as zero), so a phase that recorded
// nothing still reports its metric names.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Unit:       r.unit,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]*HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// HistogramNames returns the registry's histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
