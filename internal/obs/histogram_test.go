package obs

import (
	"math/rand"
	"testing"
)

// TestBucketLayout pins the bucket geometry: the index is monotone in
// the value, every value falls inside its own bucket's [lower, upper]
// range, and the relative bucket width stays bounded by 1/subCount —
// the property that makes an interpolated p999 trustworthy.
func TestBucketLayout(t *testing.T) {
	prev := -1
	for _, v := range []int64{1, 2, 3, 7, 8, 15, 16, 17, 100, 1000, 4095, 4096,
		1e6, 1e9, 1e12, int64(1) << 49, int64(1) << 55} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone: v=%d idx=%d prev=%d", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if v < lo || v > hi {
			t.Fatalf("v=%d outside its bucket %d: [%d, %d]", v, idx, lo, hi)
		}
	}
	// Exhaustive monotonicity + containment over a dense small range.
	prev = 0
	for v := int64(1); v < 100000; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at v=%d", v)
		}
		prev = idx
	}
	// Relative width bound holds once values exceed subCount (below
	// that, buckets are exact single integers or coarser by necessity).
	for idx := bucketIndex(subCount); idx < numBucket-1; idx++ {
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if lo <= 0 {
			continue
		}
		if width := float64(hi-lo) / float64(lo); width > 1.0/float64(subCount)+1e-9 {
			t.Fatalf("bucket %d too wide: [%d, %d] rel=%g", idx, lo, hi, width)
		}
	}
}

// TestHistogramQuantiles records known values and checks every
// quantile lands within its covering bucket's relative-error bound.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1000 || s.Max != 1000000 {
		t.Fatalf("count/min/max: %d/%d/%d", s.Count, s.Min, s.Max)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 500_000},
		{0.90, 900_000},
		{0.99, 990_000},
		{0.999, 999_000},
	} {
		got := s.Quantile(tc.q)
		// Bucket relative width is 1/subCount; allow that plus the ±½
		// rank rounding step (one sample = 1000ns here).
		tol := tc.want/subCount + 2000
		if got < tc.want-tol || got > tc.want+tol {
			t.Errorf("q=%g: got %d, want %d ±%d", tc.q, got, tc.want, tol)
		}
	}
	if s.Quantile(0) != s.Min {
		t.Error("q=0 should clamp to min")
	}
	if s.Quantile(1) != s.Max {
		t.Error("q=1 should clamp to max")
	}
	if s.Quantile(0.9999) > s.Max {
		t.Error("tail quantile exceeded observed max")
	}
}

// TestHistogramZeroAndNegative pins the zero-bucket behaviour: values
// ≤ 0 count, set min to zero, and pull low quantiles to zero without
// disturbing the positive buckets.
func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(100)
	s := h.Snapshot()
	if s.Count != 3 || s.Zero != 2 {
		t.Fatalf("count=%d zero=%d", s.Count, s.Zero)
	}
	if s.Min != 0 {
		t.Fatalf("min = %d, want 0 (zero observations dominate)", s.Min)
	}
	if s.Max != 100 {
		t.Fatalf("max = %d", s.Max)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("p50 = %d, want 0 (2 of 3 observations are zero)", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100", q)
	}

	// Empty histogram: everything reads zero.
	e := NewHistogram().Snapshot()
	if e.Count != 0 || e.Quantile(0.5) != 0 || e.Mean() != 0 {
		t.Fatal("empty histogram should read all-zero")
	}
}

// TestHistogramReset proves reset returns the histogram to its
// initial state, including the min seed.
func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	h.Observe(0)
	h.reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Zero != 0 || s.Max != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	h.Observe(7)
	s = h.Snapshot()
	if s.Min != 7 || s.Max != 7 || s.Count != 1 {
		t.Fatalf("first post-reset observation: %+v", s)
	}
}

// TestMergeEqualsGlobal is the merge soundness property: the merge of
// per-stream snapshots is bucket-for-bucket identical to one histogram
// that observed every value, regardless of merge order (associativity
// and commutativity over a random partition).
func TestMergeEqualsGlobal(t *testing.T) {
	const streams = 7
	rng := rand.New(rand.NewSource(1))
	global := NewHistogram()
	per := make([]*Histogram, streams)
	for i := range per {
		per[i] = NewHistogram()
	}
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1e9) - 1000 // includes some ≤ 0
		global.Observe(v)
		per[rng.Intn(streams)].Observe(v)
	}

	// Left fold, right fold, and a shuffled fold must all agree with
	// the global histogram.
	folds := [][]int{{0, 1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1, 0}, {3, 0, 6, 1, 5, 2, 4}}
	want := global.Snapshot()
	for fi, order := range folds {
		m := &HistogramSnapshot{}
		for _, i := range order {
			m.Merge(per[i].Snapshot())
		}
		if m.Count != want.Count || m.Sum != want.Sum || m.Zero != want.Zero ||
			m.Min != want.Min || m.Max != want.Max {
			t.Fatalf("fold %d header mismatch: %+v vs %+v", fi, m, want)
		}
		for b := range want.Buckets {
			if m.Buckets[b] != want.Buckets[b] {
				t.Fatalf("fold %d bucket %d: %d vs %d", fi, b, m.Buckets[b], want.Buckets[b])
			}
		}
	}

	// Associativity at the snapshot level: (a ∪ b) ∪ c == a ∪ (b ∪ c).
	ab := per[0].Snapshot()
	ab.Merge(per[1].Snapshot())
	ab.Merge(per[2].Snapshot())
	bc := per[1].Snapshot()
	bc.Merge(per[2].Snapshot())
	acc := per[0].Snapshot()
	acc.Merge(bc)
	if ab.Count != acc.Count || ab.Sum != acc.Sum || ab.Min != acc.Min || ab.Max != acc.Max {
		t.Fatalf("associativity: %+v vs %+v", ab, acc)
	}

	// Merging an empty or nil snapshot is the identity.
	id := global.Snapshot()
	id.Merge(nil)
	id.Merge(NewHistogram().Snapshot())
	if id.Count != want.Count || id.Min != want.Min {
		t.Fatal("merge with empty changed the snapshot")
	}
}
