package obs

import (
	"reflect"
	"testing"
)

// TestRegistryHandles pins the get-or-create contract: the same name
// returns the same handle, and distinct kinds share a namespace
// without colliding.
func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.ops")
	if r.Counter("a.ops") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("a.level")
	if r.Gauge("a.level") != g {
		t.Fatal("Gauge not idempotent")
	}
	h := r.Histogram("a.lat")
	if r.Histogram("a.lat") != h {
		t.Fatal("Histogram not idempotent")
	}

	c.Add(3)
	c.Inc()
	g.Set(0.25)
	h.Observe(10)
	s := r.Snapshot()
	if s.Counters["a.ops"] != 4 {
		t.Fatalf("counter = %d", s.Counters["a.ops"])
	}
	if s.Gauges["a.level"] != 0.25 {
		t.Fatalf("gauge = %g", s.Gauges["a.level"])
	}
	if s.Histograms["a.lat"].Count != 1 {
		t.Fatalf("hist count = %d", s.Histograms["a.lat"].Count)
	}
}

// TestRegistryResetKeepsHandles is the phase-separation contract: a
// store holding metric pointers across a Reset keeps recording into
// the same (now zeroed) metrics.
func TestRegistryResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y")
	c.Inc()
	h.Observe(5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("reset did not zero metrics")
	}
	// The old handles still feed the registry.
	c.Inc()
	h.Observe(9)
	s := r.Snapshot()
	if s.Counters["x"] != 1 || s.Histograms["y"].Count != 1 || s.Histograms["y"].Min != 9 {
		t.Fatalf("post-reset recording lost: %+v", s)
	}
}

// TestHistogramNamesSorted pins the stable ordering latency tables
// rely on.
func TestHistogramNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.late", "a.early", "m.mid"} {
		r.Histogram(n)
	}
	got := r.HistogramNames()
	want := []string{"a.early", "m.mid", "z.late"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

// TestSnapshotIsCopy proves a snapshot is decoupled from subsequent
// recording.
func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(1)
	s := r.Snapshot()
	r.Counter("c").Add(10)
	r.Histogram("h").Observe(100)
	if s.Counters["c"] != 1 || s.Histograms["h"].Count != 1 {
		t.Fatal("snapshot mutated by later recording")
	}
}
