package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestSectionFindOrCreate pins the two entry points converging on one
// section: phases recorded mid-run and tables added afterwards.
func TestSectionFindOrCreate(t *testing.T) {
	r := NewRunReport()
	if r.Schema != ReportSchema {
		t.Fatalf("schema = %q", r.Schema)
	}
	a := r.Section("interleave")
	a.Title = "t"
	if r.Section("interleave") != a {
		t.Fatal("Section did not find the existing entry")
	}
	b := r.Section("compact")
	if b == a || len(r.Experiments) != 2 {
		t.Fatalf("sections = %d", len(r.Experiments))
	}
}

// TestTableFromStats checks the series flatten into parallel X/Y
// arrays with notes intact.
func TestTableFromStats(t *testing.T) {
	tb := stats.NewTable("T", "x", "y")
	s := tb.AddSeries("a")
	s.Add(1, 10)
	s.Add(2, 20)
	tb.Note("n=%d", 2)
	tr := TableFromStats(tb)
	if tr.Title != "T" || tr.XLabel != "x" || tr.YLabel != "y" {
		t.Fatalf("labels: %+v", tr)
	}
	if len(tr.Series) != 1 || tr.Series[0].Name != "a" {
		t.Fatalf("series: %+v", tr.Series)
	}
	if len(tr.Series[0].X) != 2 || tr.Series[0].X[1] != 2 || tr.Series[0].Y[1] != 20 {
		t.Fatalf("points: %+v", tr.Series[0])
	}
	if len(tr.Notes) != 1 || tr.Notes[0] != "n=2" {
		t.Fatalf("notes: %v", tr.Notes)
	}
}

// TestPhaseFromSnapshot checks the phase reduction: counters and
// gauges copied, zero-count histograms dropped, quantiles filled.
func TestPhaseFromSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops").Add(3)
	reg.Gauge("duty").Set(0.5)
	reg.Histogram("lat").Observe(1000)
	reg.Histogram("untouched") // created but never recorded
	p := PhaseFromSnapshot("arm", reg.Snapshot())
	if p.Name != "arm" || p.Counters["ops"] != 3 || p.Gauges["duty"] != 0.5 {
		t.Fatalf("phase: %+v", p)
	}
	if _, ok := p.Histograms["untouched"]; ok {
		t.Fatal("zero-count histogram should be dropped")
	}
	h := p.Histograms["lat"]
	if h == nil || h.Count != 1 || h.MinNs != 1000 || h.MaxNs != 1000 || h.P999Ns != 1000 {
		t.Fatalf("hist report: %+v", h)
	}
}

// TestWriteJSONRoundTrip writes a populated report and reads it back
// through plain JSON, the contract CI's schema check relies on.
func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRunReport()
	r.Config = map[string]any{"seed": 1}
	sec := r.Section("readcache")
	sec.Title = "Read cache"
	tb := stats.NewTable("hit rate", "cap", "%")
	tb.AddSeries("fs").Add(0, 50)
	sec.AddTables([]*stats.Table{tb})
	reg := NewRegistry()
	reg.Histogram("op.read").Observe(500)
	sec.AddPhase("cap=64M", reg.Snapshot())

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["schema"] != ReportSchema {
		t.Fatalf("schema = %v", got["schema"])
	}
	exps, ok := got["experiments"].([]any)
	if !ok || len(exps) != 1 {
		t.Fatalf("experiments: %v", got["experiments"])
	}
	exp := exps[0].(map[string]any)
	if exp["id"] != "readcache" {
		t.Fatalf("id = %v", exp["id"])
	}
	if _, ok := exp["tables"].([]any); !ok {
		t.Fatal("tables missing")
	}
	phases := exp["phases"].([]any)
	ph := phases[0].(map[string]any)
	hists := ph["histograms"].(map[string]any)
	hr := hists["op.read"].(map[string]any)
	for _, field := range []string{"count", "mean_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns"} {
		if _, ok := hr[field]; !ok {
			t.Fatalf("histogram report missing %q: %v", field, hr)
		}
	}
}

// TestLatencyTable renders a snapshot as the percentile table the
// text output prints.
func TestLatencyTable(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("store.commit")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1_000_000) // 1..100 virtual ms
	}
	reg.Histogram("empty.metric")
	snap := reg.Snapshot()
	tb := LatencyTable("Latency", snap, []string{"store.commit", "empty.metric", "absent"})
	if len(tb.Series) != 1 {
		t.Fatalf("series = %d, want 1 (empty and absent skipped)", len(tb.Series))
	}
	s := tb.Series[0]
	if s.Name != "store.commit" || len(s.Points) != 5 {
		t.Fatalf("series: %+v", s)
	}
	// x axis is the percentile; y is virtual ms. p100 = max = 100ms.
	last := s.Points[len(s.Points)-1]
	if last.X != 100 || last.Y != 100 {
		t.Fatalf("p100 point = %+v", last)
	}
	out := tb.Render()
	if !strings.Contains(out, "store.commit") || !strings.Contains(out, "n=100") {
		t.Fatalf("render:\n%s", out)
	}
}
