package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/vclock"
)

// mkOp builds a completed op with the given virtual interval.
func mkOp(stream int, kind string, start, end int64) *OpTrace {
	return &OpTrace{Stream: stream, Kind: kind, Key: fmt.Sprintf("k%d", start), Start: start, End: end}
}

// TestTracerRingAndSlowest proves the two retention policies compose:
// a wrapped ring keeps the most recent ops, while the slow set keeps
// the highest-latency ops from anywhere in the run.
func TestTracerRingAndSlowest(t *testing.T) {
	tr := NewTracer(8)
	tr.slowCap = 4
	// One early outlier, then a long tail of fast ops that wraps the
	// ring many times.
	outlier := mkOp(0, "replace", 0, 1_000_000)
	tr.Add(outlier)
	for i := int64(1); i <= 100; i++ {
		tr.Add(mkOp(0, "read", i*10, i*10+5))
	}
	ops := tr.Ops()
	// Ring holds the last 8; slow set holds the outlier plus 3 others.
	seen := false
	for _, op := range ops {
		if op == outlier {
			seen = true
		}
	}
	if !seen {
		t.Fatal("slow set lost the early outlier after ring wrap")
	}
	slow := tr.Slowest(1)
	if len(slow) != 1 || slow[0] != outlier {
		t.Fatalf("Slowest(1) = %+v, want the outlier", slow)
	}
	// Ops are ordered by start and deduplicated.
	for i := 1; i < len(ops); i++ {
		if ops[i].Start < ops[i-1].Start {
			t.Fatal("Ops not ordered by start")
		}
	}
	dedup := map[*OpTrace]bool{}
	for _, op := range ops {
		if dedup[op] {
			t.Fatal("Ops returned a duplicate")
		}
		dedup[op] = true
	}
}

// TestTracerPartialRing covers the unwrapped ring: fewer ops than
// capacity must all be returned.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(16)
	for i := int64(0); i < 5; i++ {
		tr.Add(mkOp(0, "read", i, i+1))
	}
	if got := len(tr.Ops()); got != 5 {
		t.Fatalf("Ops = %d, want 5", got)
	}
}

// TestWriteJSONL checks one well-formed JSON object per line with the
// span detail intact.
func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(4)
	op := mkOp(2, "read", 100, 900)
	op.Phase = "test phase"
	op.addSpan(Span{Layer: "disk", Op: "readall", Start: 150, Dur: 700})
	tr.Add(op)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var got OpTrace
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if got.Kind != "read" || got.Stream != 2 || len(got.Spans) != 1 {
			t.Fatalf("round trip lost fields: %s", sc.Text())
		}
		if got.Spans[0].Layer != "disk" || got.Spans[0].Dur != 700 {
			t.Fatalf("span lost: %+v", got.Spans[0])
		}
	}
	if lines != 1 {
		t.Fatalf("lines = %d", lines)
	}
}

// TestWriteChromeTrace checks the trace-event envelope: process
// metadata per phase, an "X" slice per op and per span, timestamps in
// virtual microseconds.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(4)
	a := mkOp(1, "read", 2000, 5000)
	a.Phase = "phase A"
	a.addSpan(Span{Layer: "disk", Op: "readall", Start: 2500, Dur: 2000})
	b := mkOp(3, "create", 6000, 9000)
	b.Phase = "phase B"
	tr.Add(a)
	tr.Add(b)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var meta, slices int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			pids[ev.Pid] = true
		case "X":
			slices++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || len(pids) != 2 {
		t.Fatalf("want one process per phase, got %d metadata / %d pids", meta, len(pids))
	}
	// 2 op slices + 1 span slice.
	if slices != 3 {
		t.Fatalf("slices = %d, want 3", slices)
	}
	// Span timestamps are µs: op a starts at 2000ns = 2µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "read k2000" {
			found = true
			if ev.Ts != 2.0 || ev.Dur != 3.0 {
				t.Fatalf("op a ts/dur = %g/%g µs, want 2/3", ev.Ts, ev.Dur)
			}
			if ev.Tid != 1 {
				t.Fatalf("tid = %d, want stream 1", ev.Tid)
			}
		}
	}
	if !found {
		t.Fatal("op slice missing")
	}
}

// TestCollectorLifecycle drives StartOp/FinishOp directly: op-level
// histograms for successes, error counters for failures, and the
// span-witness hit/miss split for reads.
func TestCollectorLifecycle(t *testing.T) {
	clock := vclock.New()
	reg := NewRegistry()
	tr := NewTracer(8)
	c := &Collector{Registry: reg, Tracer: tr, Clock: clock, Phase: "p", MissLayer: "disk"}

	// A read that recorded a disk read span: miss.
	ctx, op := c.StartOp(context.Background(), 0, "read", "a")
	if opFromContext(ctx) != op {
		t.Fatal("StartOp did not thread the op through context")
	}
	clock.Advance(100)
	op.addSpan(Span{Layer: "disk", Op: "readall", Start: 0, Dur: 100})
	c.FinishOp(op, nil)

	// A read with no disk span: hit.
	_, op2 := c.StartOp(context.Background(), 1, "read", "b")
	clock.Advance(10)
	c.FinishOp(op2, nil)

	// A failed read: error counter, no histogram point.
	_, op3 := c.StartOp(context.Background(), 1, "read", "c")
	c.FinishOp(op3, blob.ErrNotFound)

	s := reg.Snapshot()
	if n := s.Histograms["op.read"].Count; n != 2 {
		t.Fatalf("op.read count = %d, want 2 (errors excluded)", n)
	}
	if n := s.Histograms["read.miss"].Count; n != 1 {
		t.Fatalf("read.miss = %d", n)
	}
	if n := s.Histograms["read.hit"].Count; n != 1 {
		t.Fatalf("read.hit = %d", n)
	}
	if s.Histograms["read.miss"].Min != 100 || s.Histograms["read.hit"].Min != 10 {
		t.Fatalf("hit/miss latency swapped: %+v / %+v",
			s.Histograms["read.miss"], s.Histograms["read.hit"])
	}
	if s.Counters["op.read.err.notfound"] != 1 {
		t.Fatalf("error counter: %v", s.Counters)
	}
	if op3.Err != "notfound" {
		t.Fatalf("op err = %q", op3.Err)
	}
	if len(tr.Ops()) != 3 {
		t.Fatalf("tracer ops = %d", len(tr.Ops()))
	}

	// A nil collector is inert everywhere.
	var nilc *Collector
	ctx2, nop := nilc.StartOp(context.Background(), 0, "read", "x")
	if nop != nil || ctx2 != context.Background() {
		t.Fatal("nil collector should be a no-op")
	}
	nilc.FinishOp(nil, nil)
}

// TestErrName pins the sentinel → label mapping used in metric names
// and trace fields.
func TestErrName(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{blob.ErrNotFound, "notfound"},
		{blob.ErrAlreadyExists, "exists"},
		{blob.ErrNoSpaceLeft, "nospace"},
		{blob.ErrInvalidSize, "badsize"},
		{blob.ErrOutOfRange, "outofrange"},
		{blob.ErrClosed, "closed"},
		{blob.ErrBusy, "busy"},
		{blob.ErrCrashed, "crashed"},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "deadline"},
		{fmt.Errorf("nope"), "other"},
		{fmt.Errorf("wrapped: %w", blob.ErrNotFound), "notfound"},
	}
	for _, tc := range cases {
		if got := ErrName(tc.err); got != tc.want {
			t.Errorf("ErrName(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
