package obs_test

import (
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/vclock"
)

func fileInner(opts ...blob.Option) blob.Store {
	s, err := core.NewFileStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

func dbInner(opts ...blob.Option) blob.Store {
	s, err := core.NewDBStore(vclock.New(), opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// mixedShardInner builds a 4-shard mixed fleet (2 filesystem + 2
// database children on one clock).
func mixedShardInner(opts ...blob.Option) blob.Store {
	clock := vclock.New()
	children := make([]blob.Store, 4)
	for i := range children {
		var err error
		if i%2 == 0 {
			children[i], err = core.NewFileStore(clock, opts...)
		} else {
			children[i], err = core.NewDBStore(clock, opts...)
		}
		if err != nil {
			panic(err)
		}
	}
	s, err := shard.New(children...)
	if err != nil {
		panic(err)
	}
	return s
}

// TestObsStoreConformance pins the instrumented store to the exact
// cross-backend contract of the store it wraps: both single-volume
// backends and a 4-shard mixed fleet, recording enabled and disabled,
// group commit off and on (with the commit observer attached). The obs
// layer must add no dialect — sentinels, version pinning, safe-write
// semantics, and context cancellation all pass through while every op
// is being timed.
func TestObsStoreConformance(t *testing.T) {
	inners := []struct {
		name string
		mk   func(opts ...blob.Option) blob.Store
	}{
		{"Filesystem", fileInner},
		{"Database", dbInner},
		{"Sharded4Mixed", mixedShardInner},
	}
	for _, in := range inners {
		mk := in.mk
		t.Run(in.name, func(t *testing.T) {
			conformance.Run(t, func(opts ...blob.Option) blob.Store {
				return obs.Wrap(mk(opts...), "store", obs.NewRegistry())
			})
		})
		t.Run(in.name+"/Disabled", func(t *testing.T) {
			conformance.Run(t, func(opts ...blob.Option) blob.Store {
				return obs.Wrap(mk(opts...), "store", nil)
			})
		})
		t.Run(in.name+"/GroupCommit", func(t *testing.T) {
			conformance.Run(t, func(opts ...blob.Option) blob.Store {
				reg := obs.NewRegistry()
				s := mk(append(opts,
					blob.WithGroupCommit(8, 200*time.Microsecond),
					blob.WithCommitObserver(obs.NewCommitObserver(reg, "store")))...)
				return obs.Wrap(s, "store", reg)
			})
		})
	}
}

// TestObsStoreStacked runs the suite over a doubly-wrapped chain — the
// readcache experiment's shape (a layer above and a layer below) minus
// the cache — proving composition itself changes nothing.
func TestObsStoreStacked(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		reg := obs.NewRegistry()
		return obs.Wrap(obs.Wrap(fileInner(opts...), "disk", reg), "cache", reg)
	})
}
