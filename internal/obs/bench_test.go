package obs_test

import (
	"context"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/vclock"
)

// BenchmarkObsOverhead measures the wrapper tax on the Get hot path
// (Open + ReadAll + Close of one small object) in three configurations:
//
//	Raw      — the bare backend, no wrapper
//	Disabled — obs.Wrap with a nil registry (one branch per call)
//	Enabled  — obs.Wrap recording into a live registry
//
// CI compares Raw vs Disabled: the disabled wrapper must stay within
// ~5% of the bare store, so instrumented compositions can ship without
// a build-time switch.
func BenchmarkObsOverhead(b *testing.B) {
	const objSize = 4096
	ctx := context.Background()
	configs := []struct {
		name string
		wrap func(s blob.Store) blob.Store
	}{
		{"Raw", func(s blob.Store) blob.Store { return s }},
		{"Disabled", func(s blob.Store) blob.Store { return obs.Wrap(s, "disk", nil) }},
		{"Enabled", func(s blob.Store) blob.Store { return obs.Wrap(s, "disk", obs.NewRegistry()) }},
	}
	for _, tc := range configs {
		b.Run(tc.name, func(b *testing.B) {
			inner, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB))
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, objSize)
			w, err := inner.Create(ctx, "hot", objSize)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Append(objSize, data); err != nil {
				b.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				b.Fatal(err)
			}
			s := tc.wrap(inner)
			b.SetBytes(objSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := s.Open(ctx, "hot")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.ReadAll(); err != nil {
					b.Fatal(err)
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
