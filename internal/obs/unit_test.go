package obs

import (
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/vclock"
)

// TestTimeUnitTagging pins the unit plumbing: registries carry their
// unit into snapshots and phase reports, and the report's JSON field
// is "time_unit" as schema v2 requires.
func TestTimeUnitTagging(t *testing.T) {
	virt := NewRegistry()
	if virt.Unit() != UnitVirtual {
		t.Fatalf("NewRegistry unit = %q, want %q", virt.Unit(), UnitVirtual)
	}
	wall := NewWallRegistry()
	if wall.Unit() != UnitWall {
		t.Fatalf("NewWallRegistry unit = %q, want %q", wall.Unit(), UnitWall)
	}
	var nilReg *Registry
	if nilReg.Unit() != UnitVirtual {
		t.Fatalf("nil registry unit = %q, want %q", nilReg.Unit(), UnitVirtual)
	}

	wall.Histogram("serve.get").Observe(1500)
	snap := wall.Snapshot()
	if snap.Unit != UnitWall {
		t.Fatalf("snapshot unit = %q, want %q", snap.Unit, UnitWall)
	}
	p := PhaseFromSnapshot("k=64", snap)
	if p.TimeUnit != UnitWall {
		t.Fatalf("phase time_unit = %q, want %q", p.TimeUnit, UnitWall)
	}

	// A hand-built snapshot with no unit defaults to virtual — the
	// historical meaning of every pre-v2 report.
	if got := PhaseFromSnapshot("arm", Snapshot{}).TimeUnit; got != UnitVirtual {
		t.Fatalf("unitless phase time_unit = %q, want %q", got, UnitVirtual)
	}

	// LatencyTable labels its y axis by unit.
	if got := LatencyTable("wall", snap, []string{"serve.get"}).YLabel; got != "wall ms" {
		t.Fatalf("wall latency table y label = %q, want %q", got, "wall ms")
	}
	if got := LatencyTable("virt", virt.Snapshot(), nil).YLabel; got != "virtual ms" {
		t.Fatalf("virtual latency table y label = %q, want %q", got, "virtual ms")
	}
}

// TestWallRegistryRefusedByVclockRecorders pins the guard: the
// vclock-timed recorders panic rather than mix virtual ns into a
// wall_ns registry.
func TestWallRegistryRefusedByVclockRecorders(t *testing.T) {
	wall := NewWallRegistry()
	clk := vclock.New()
	inner, err := core.NewFileStore(clk, blob.WithCapacity(1<<20))
	if err != nil {
		t.Fatal(err)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: wall-unit registry accepted, want panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "wall_ns") {
				t.Fatalf("%s: panic = %v, want message naming wall_ns", name, r)
			}
		}()
		fn()
	}
	mustPanic("Wrap", func() { Wrap(inner, "disk", wall) })
	mustPanic("NewCommitObserver", func() { NewCommitObserver(wall, "store") })
	mustPanic("Collector.FinishOp", func() {
		c := &Collector{Registry: wall, Clock: clk}
		_, op := c.StartOp(t.Context(), 0, "read", "k")
		c.FinishOp(op, nil)
	})

	// The virtual-unit path is unaffected.
	Wrap(inner, "disk", NewRegistry())
	Wrap(inner, "disk", nil)
}
