package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentRecording hammers one registry from k=16 recording
// streams while a reader snapshots mid-flight — the exact shape the
// interleave experiment runs under, exercised under -race in CI. Each
// stream also records into a private histogram; afterwards the merge
// of the per-stream snapshots must equal the shared histogram exactly,
// proving concurrent recording loses and duplicates nothing.
func TestConcurrentRecording(t *testing.T) {
	const (
		streams = 16
		perOp   = 5000
	)
	reg := NewRegistry()
	shared := reg.Histogram("op.read")
	private := make([]*Histogram, streams)
	for i := range private {
		private[i] = NewHistogram()
	}

	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for j := 0; j < perOp; j++ {
				v := rng.Int63n(1e7)
				shared.Observe(v)
				private[id].Observe(v)
				reg.Counter("ops").Inc()
				reg.Gauge("last").Set(float64(v))
			}
		}(i)
	}
	// Concurrent snapshots must be internally sane (no torn counts
	// below zero, quantiles within [0, max possible]) — they race with
	// recording by design.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := reg.Snapshot()
			h := s.Histograms["op.read"]
			if h.Count < 0 || h.Count > streams*perOp {
				t.Errorf("torn count %d", h.Count)
				return
			}
			if q := h.Quantile(0.99); q < 0 {
				t.Errorf("negative quantile %d", q)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if n := reg.Counter("ops").Value(); n != streams*perOp {
		t.Fatalf("counter = %d, want %d", n, streams*perOp)
	}
	want := shared.Snapshot()
	if want.Count != streams*perOp {
		t.Fatalf("shared count = %d", want.Count)
	}
	merged := &HistogramSnapshot{}
	for _, h := range private {
		merged.Merge(h.Snapshot())
	}
	if merged.Count != want.Count || merged.Sum != want.Sum ||
		merged.Zero != want.Zero || merged.Min != want.Min || merged.Max != want.Max {
		t.Fatalf("merged header != shared: %+v vs %+v", merged, want)
	}
	for b := range want.Buckets {
		if merged.Buckets[b] != want.Buckets[b] {
			t.Fatalf("bucket %d: merged %d, shared %d", b, merged.Buckets[b], want.Buckets[b])
		}
	}
}

// TestConcurrentRegistryCreation races handle creation on the same
// names: every goroutine must get the same handle back.
func TestConcurrentRegistryCreation(t *testing.T) {
	reg := NewRegistry()
	const n = 32
	counters := make([]*Counter, n)
	hists := make([]*Histogram, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			counters[id] = reg.Counter("shared.counter")
			hists[id] = reg.Histogram("shared.hist")
			counters[id].Inc()
			hists[id].Observe(1)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if counters[i] != counters[0] || hists[i] != hists[0] {
			t.Fatal("racing creation returned different handles")
		}
	}
	if counters[0].Value() != n || hists[0].Count() != n {
		t.Fatalf("lost updates: %d / %d", counters[0].Value(), hists[0].Count())
	}
}
