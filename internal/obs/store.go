package obs

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/vclock"
)

// Store wraps any blob.Store and times every operation against the
// store's virtual clock, recording per-layer latency histograms into a
// Registry and attaching layer spans to any OpTrace the context
// carries. It is semantics-transparent: every call forwards to the
// wrapped store unchanged (sentinels, version pinning, context
// cancellation all pass through), and the conformance suite runs
// obs-wrapped to prove it.
//
// Because the wrapper composes anywhere in the chain, the same logical
// op can be attributed at each layer it crosses: wrap above the cache
// and below it to split hits from miss-fills, wrap each shard child to
// see per-shard skew, wrap the backend to see commit queue-wait vs.
// group force (with blob.WithCommitObserver supplying the split).
//
// Metric names are "<layer>.<op>" histograms for successes and
// "<layer>.<op>.err.<sentinel>" counters for failures. Latencies are
// VIRTUAL nanoseconds: with k concurrent streams an op's interval
// includes time charged by other streams while it was in flight — the
// queueing view a tail-latency SLO needs.
//
// Wrap with a nil Registry to disable recording: the wrapper then
// forwards with one branch of overhead per call (BenchmarkObsOverhead
// pins it), so instrumented compositions need no build-time switch.
type Store struct {
	inner blob.Store
	layer string
	reg   *Registry
	clock *vclock.Clock
}

// Wrap instruments inner as observation layer `layer`. A nil reg
// disables recording (spans are still attached to traced ops when a
// collector is active upstream — they cost only when tracing). Wrap
// measures the virtual clock, so a wall-unit registry is a wiring bug
// and panics: mixing vclock ns into a wall_ns registry would corrupt
// the report silently.
func Wrap(inner blob.Store, layer string, reg *Registry) *Store {
	mustVirtual(reg, "obs.Wrap")
	return &Store{inner: inner, layer: layer, reg: reg, clock: inner.Clock()}
}

// mustVirtual panics when reg records wall time — the guard every
// vclock-timed recorder calls at construction.
func mustVirtual(reg *Registry, who string) {
	if reg.Unit() == UnitWall {
		panic(who + ": registry records wall_ns but measurements are virtual-clock ns; use a NewRegistry (virtual) registry")
	}
}

// Inner returns the wrapped store, so capability probes (the compactor
// fleet's shard fan-out discovery) can see through the obs layer.
func (s *Store) Inner() blob.Store { return s.inner }

// Layer returns the observation layer name.
func (s *Store) Layer() string { return s.layer }

// Registry returns the registry this layer records into (nil when
// disabled).
func (s *Store) Registry() *Registry { return s.reg }

// enabled reports whether this layer records anything at all.
func (s *Store) enabled(ctx context.Context) bool {
	return s.reg != nil || opFromContext(ctx) != nil
}

// observe records one completed call: a latency histogram point or an
// error counter in the registry, plus a span on the traced op.
func (s *Store) observe(op *OpTrace, name string, start int64, err error) {
	dur := s.clock.Now() - start
	if s.reg != nil {
		if err != nil {
			s.reg.Counter(s.layer + "." + name + ".err." + ErrName(err)).Inc()
		} else {
			s.reg.Histogram(s.layer + "." + name).Observe(dur)
		}
	}
	if op != nil {
		op.addSpan(Span{Layer: s.layer, Op: name, Start: start, Dur: dur, Err: ErrName(err)})
	}
}

// Name implements blob.Store. The obs layer is transparent: it reports
// the wrapped store's name, so report labels and logs are unchanged by
// instrumenting a chain.
func (s *Store) Name() string { return s.inner.Name() }

// Clock implements blob.Store.
func (s *Store) Clock() *vclock.Clock { return s.clock }

// Open implements blob.Store, timing the open and wrapping the reader
// so its reads are timed at this layer too.
func (s *Store) Open(ctx context.Context, key string) (blob.Reader, error) {
	if !s.enabled(ctx) {
		return s.inner.Open(ctx, key)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	r, err := s.inner.Open(ctx, key)
	s.observe(op, "open", start, err)
	if err != nil {
		return nil, err
	}
	return &obsReader{r: r, s: s, op: op}, nil
}

// Create implements blob.Store; the writer's Commit is timed at this
// layer (queue wait + group force included — the commit observer
// splits them).
func (s *Store) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	if !s.enabled(ctx) {
		return s.inner.Create(ctx, key, size)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	w, err := s.inner.Create(ctx, key, size)
	s.observe(op, "create", start, err)
	if err != nil {
		return nil, err
	}
	return &obsWriter{w: w, s: s, op: op}, nil
}

// Replace implements blob.Store.
func (s *Store) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	if !s.enabled(ctx) {
		return s.inner.Replace(ctx, key, size)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	w, err := s.inner.Replace(ctx, key, size)
	s.observe(op, "replace", start, err)
	if err != nil {
		return nil, err
	}
	return &obsWriter{w: w, s: s, op: op}, nil
}

// Delete implements blob.Store.
func (s *Store) Delete(ctx context.Context, key string) error {
	if !s.enabled(ctx) {
		return s.inner.Delete(ctx, key)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	err := s.inner.Delete(ctx, key)
	s.observe(op, "delete", start, err)
	return err
}

// Stat implements blob.Store.
func (s *Store) Stat(ctx context.Context, key string) (blob.Info, error) {
	if !s.enabled(ctx) {
		return s.inner.Stat(ctx, key)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	info, err := s.inner.Stat(ctx, key)
	s.observe(op, "stat", start, err)
	return info, err
}

// Keys implements blob.Store.
func (s *Store) Keys() []string { return s.inner.Keys() }

// ObjectCount implements blob.Store.
func (s *Store) ObjectCount() int { return s.inner.ObjectCount() }

// LiveBytes implements blob.Store.
func (s *Store) LiveBytes() int64 { return s.inner.LiveBytes() }

// FreeBytes implements blob.Store.
func (s *Store) FreeBytes() int64 { return s.inner.FreeBytes() }

// CapacityBytes implements blob.Store.
func (s *Store) CapacityBytes() int64 { return s.inner.CapacityBytes() }

// EachObjectRuns implements frag.Source via the wrapped store.
func (s *Store) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.inner.EachObjectRuns(fn)
}

// EachObjectTag implements frag.TagSource via the wrapped store.
func (s *Store) EachObjectTag(fn func(key string, tag uint32)) {
	s.inner.EachObjectTag(fn)
}

// CommitStats passes the wrapped store's group-commit counters
// through, so blob.CommitStatsOf works on an instrumented store.
func (s *Store) CommitStats() blob.CommitStats {
	cs, _ := blob.CommitStatsOf(s.inner)
	return cs
}

// Close shuts the wrapped store's commit pipeline down via
// blob.CloseStore; the obs layer itself holds no goroutines.
func (s *Store) Close() error { return blob.CloseStore(s.inner) }

// CompactObject forwards a compactor rewrite, timed as
// "<layer>.compact" (a rewrite is a full read+write of the object
// through the chain — the compaction tax, per object).
func (s *Store) CompactObject(ctx context.Context, key string) (int64, error) {
	rw, ok := s.inner.(interface {
		CompactObject(ctx context.Context, key string) (int64, error)
	})
	if !ok {
		return 0, fmt.Errorf("%w: %s cannot compact objects", errors.ErrUnsupported, s.inner.Name())
	}
	if !s.enabled(ctx) {
		return rw.CompactObject(ctx, key)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	n, err := rw.CompactObject(ctx, key)
	s.observe(op, "compact", start, err)
	return n, err
}

// PackObjects forwards a pack attempt, timed as "<layer>.pack".
func (s *Store) PackObjects(ctx context.Context, keys []string) ([]string, error) {
	pk, ok := s.inner.(interface {
		PackObjects(ctx context.Context, keys []string) ([]string, error)
	})
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot pack objects", errors.ErrUnsupported, s.inner.Name())
	}
	if !s.enabled(ctx) {
		return pk.PackObjects(ctx, keys)
	}
	op := opFromContext(ctx)
	start := s.clock.Now()
	packed, err := pk.PackObjects(ctx, keys)
	s.observe(op, "pack", start, err)
	return packed, err
}

var _ blob.Store = (*Store)(nil)

// obsReader times reads at the wrapping layer. It carries the OpTrace
// from Open, so reads attribute to the op that opened the handle — the
// executor's Open/read/Close per-op pattern. A handle read under a
// different op than its Open attributes to the opening op, which is
// the end-to-end view a trace wants anyway.
type obsReader struct {
	r  blob.Reader
	s  *Store
	op *OpTrace
}

// Size implements blob.Reader.
func (r *obsReader) Size() int64 { return r.r.Size() }

// ReadAll implements blob.Reader.
func (r *obsReader) ReadAll() ([]byte, error) {
	start := r.s.clock.Now()
	data, err := r.r.ReadAll()
	r.s.observe(r.op, "readall", start, err)
	return data, err
}

// ReadAt implements blob.Reader.
func (r *obsReader) ReadAt(off, length int64) ([]byte, error) {
	start := r.s.clock.Now()
	data, err := r.r.ReadAt(off, length)
	r.s.observe(r.op, "readat", start, err)
	return data, err
}

// Close implements blob.Reader (not timed; closing charges nothing).
func (r *obsReader) Close() error { return r.r.Close() }

// obsWriter times Commit at the wrapping layer. Appends are not
// individually timed — they flow in request-sized chunks and the
// op-level histogram already covers the whole write — but Commit is
// the latency-critical call: it spans the group-commit queue wait and
// the batch's force.
type obsWriter struct {
	w  blob.Writer
	s  *Store
	op *OpTrace
}

// Append implements blob.Writer.
func (w *obsWriter) Append(n int64, data []byte) error { return w.w.Append(n, data) }

// Write implements blob.Writer.
func (w *obsWriter) Write(p []byte) (int, error) { return w.w.Write(p) }

// Commit implements blob.Writer.
func (w *obsWriter) Commit() error {
	start := w.s.clock.Now()
	err := w.w.Commit()
	w.s.observe(w.op, "commit", start, err)
	return err
}

// Abort implements blob.Writer.
func (w *obsWriter) Abort() error { return w.w.Abort() }

// commitObserver records the group-commit pipeline's queue-wait/force
// split into a registry.
type commitObserver struct {
	wait  *Histogram
	force *Histogram
	batch *Histogram
}

// NewCommitObserver returns a blob.CommitObserver recording into reg:
// "<layer>.commit.queuewait" (per commit: virtual ns spent enqueued
// before its batch began) and "<layer>.commit.force" (per batch: the
// one group force's virtual ns), plus "<layer>.commit.batch" (batch
// sizes). Pass it to the store via blob.WithCommitObserver. The
// measurements are virtual ns, so a wall-unit registry panics.
func NewCommitObserver(reg *Registry, layer string) blob.CommitObserver {
	mustVirtual(reg, "obs.NewCommitObserver")
	return &commitObserver{
		wait:  reg.Histogram(layer + ".commit.queuewait"),
		force: reg.Histogram(layer + ".commit.force"),
		batch: reg.Histogram(layer + ".commit.batch"),
	}
}

// ObserveQueueWait implements blob.CommitObserver.
func (o *commitObserver) ObserveQueueWait(ns int64) { o.wait.Observe(ns) }

// ObserveForce implements blob.CommitObserver.
func (o *commitObserver) ObserveForce(ns int64, batch int) {
	o.force.Observe(ns)
	o.batch.Observe(int64(batch))
}
