package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"

	"repro/internal/blob"
	"repro/internal/vclock"
)

// Span is one layer crossing of a traced operation: the obs.Store at
// layer L spent Dur virtual ns in operation Op. Spans nest by time
// containment — an op's "disk.readall" span sits inside its executor
// op interval, and a Chrome trace viewer renders them as a flame.
type Span struct {
	// Layer is the obs.Store layer that recorded the span.
	Layer string `json:"layer"`
	// Op is the store operation ("open", "readall", "commit", ...).
	Op string `json:"op"`
	// Start is the span's start on the virtual clock, ns.
	Start int64 `json:"start"`
	// Dur is the span's virtual duration, ns.
	Dur int64 `json:"dur"`
	// Err is the failure sentinel name, empty on success.
	Err string `json:"err,omitempty"`
}

// OpTrace is one end-to-end traced operation: the executor-level
// interval plus every layer span recorded while it was in flight.
type OpTrace struct {
	// Phase labels the experiment arm ("interleave database k=4").
	Phase string `json:"phase,omitempty"`
	// Stream is the operation stream (track) the op ran on.
	Stream int `json:"stream"`
	// Kind is the workload op kind ("create", "replace", "delete",
	// "read").
	Kind string `json:"kind"`
	// Key is the object key.
	Key string `json:"key"`
	// Start and End bound the op on the virtual clock, ns.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Err is the failure sentinel name, empty on success.
	Err string `json:"err,omitempty"`
	// Spans are the per-layer crossings, in recording order.
	Spans []Span `json:"spans,omitempty"`

	mu sync.Mutex
}

// Duration returns the op's virtual latency in ns.
func (t *OpTrace) Duration() int64 { return t.End - t.Start }

// addSpan appends one layer span. Called by obs.Store from the op's
// own goroutine in the common case, but lock anyway: a group-commit
// batcher applies commits from its own goroutine while the op waits.
func (t *OpTrace) addSpan(s Span) {
	t.mu.Lock()
	t.Spans = append(t.Spans, s)
	t.mu.Unlock()
}

// hasReadSpan reports whether any read span (readall/readat) was
// recorded at the given layer — the cache-miss witness: an op that
// never read below the cache layer was served from memory.
func (t *OpTrace) hasReadSpan(layer string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.Spans {
		if s.Layer == layer && (s.Op == "readall" || s.Op == "readat") {
			return true
		}
	}
	return false
}

// opCtxKey carries the in-flight *OpTrace through context.
type opCtxKey struct{}

// opFromContext returns the op being traced in ctx, or nil.
func opFromContext(ctx context.Context) *OpTrace {
	op, _ := ctx.Value(opCtxKey{}).(*OpTrace)
	return op
}

// Tracer keeps a bounded ring of recent completed ops plus the slowest
// ops seen, so a p999 outlier survives long after the ring has wrapped
// past it. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []*OpTrace
	next    int
	wrapped bool
	slow    []*OpTrace // unordered; smallest evicted on overflow
	slowCap int
}

// DefaultTracerCap is the default ring capacity.
const DefaultTracerCap = 4096

// defaultSlowCap is how many slowest ops survive ring wrap-around.
const defaultSlowCap = 64

// NewTracer returns a tracer with the given ring capacity (≤ 0 takes
// DefaultTracerCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{ring: make([]*OpTrace, capacity), slowCap: defaultSlowCap}
}

// Add records one completed op.
func (tr *Tracer) Add(op *OpTrace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ring[tr.next] = op
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.wrapped = true
	}
	if len(tr.slow) < tr.slowCap {
		tr.slow = append(tr.slow, op)
		return
	}
	minI := 0
	for i, s := range tr.slow {
		if s.Duration() < tr.slow[minI].Duration() {
			minI = i
		}
	}
	if op.Duration() > tr.slow[minI].Duration() {
		tr.slow[minI] = op
	}
}

// Ops returns the retained ops — the recent ring plus the slowest
// survivors — deduplicated and ordered by start time.
func (tr *Tracer) Ops() []*OpTrace {
	tr.mu.Lock()
	seen := make(map[*OpTrace]bool, len(tr.ring)+len(tr.slow))
	var out []*OpTrace
	add := func(op *OpTrace) {
		if op != nil && !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	n := tr.next
	if tr.wrapped {
		n = len(tr.ring)
	}
	for i := 0; i < n; i++ {
		add(tr.ring[i])
	}
	for _, op := range tr.slow {
		add(op)
	}
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Slowest returns up to k retained ops by descending virtual latency —
// the p999 inspection entry point.
func (tr *Tracer) Slowest(k int) []*OpTrace {
	ops := tr.Ops()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Duration() > ops[j].Duration() })
	if len(ops) > k {
		ops = ops[:k]
	}
	return ops
}

// WriteJSONL writes every retained op as one JSON object per line,
// ordered by start time.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, op := range tr.Ops() {
		if err := enc.Encode(op); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event, "M" =
// metadata). Timestamps are virtual microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained ops in Chrome trace-event JSON
// (load in chrome://tracing or Perfetto): one process per experiment
// phase, one thread track per operation stream, an "X" slice per op
// and nested slices per layer span. All timestamps are virtual
// microseconds, so the flame is deterministic per seed.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	ops := tr.Ops()
	pids := map[string]int{}
	var events []chromeEvent
	for _, op := range ops {
		pid, ok := pids[op.Phase]
		if !ok {
			pid = len(pids) + 1
			pids[op.Phase] = pid
			name := op.Phase
			if name == "" {
				name = "run"
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name},
			})
		}
		args := map[string]any{"key": op.Key}
		if op.Err != "" {
			args["err"] = op.Err
		}
		events = append(events, chromeEvent{
			Name: op.Kind + " " + op.Key, Cat: "op", Ph: "X",
			Ts:  float64(op.Start) / 1e3,
			Dur: float64(op.Duration()) / 1e3,
			Pid: pid, Tid: op.Stream, Args: args,
		})
		for _, s := range op.Spans {
			sargs := map[string]any{"layer": s.Layer}
			if s.Err != "" {
				sargs["err"] = s.Err
			}
			events = append(events, chromeEvent{
				Name: s.Layer + "." + s.Op, Cat: "layer", Ph: "X",
				Ts:  float64(s.Start) / 1e3,
				Dur: float64(s.Dur) / 1e3,
				Pid: pid, Tid: op.Stream, Args: sargs,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// Collector ties op-level observability together for an executor: it
// opens one OpTrace per operation (threading it through context so
// obs.Store layers can attach spans), records whole-op latency
// histograms, classifies reads as cache hit or miss, and feeds the
// tracer. Any field may be nil/empty; a nil *Collector disables
// everything.
type Collector struct {
	// Registry receives op.<kind> latency histograms and error
	// counters; nil records none. Must be a virtual-unit registry — the
	// collector times ops on the virtual clock (FinishOp panics on a
	// wall-unit registry).
	Registry *Registry
	// Tracer retains completed ops; nil traces none.
	Tracer *Tracer
	// Clock is the virtual clock ops are timed on. Required.
	Clock *vclock.Clock
	// Phase labels this collector's ops in the trace.
	Phase string
	// MissLayer, when non-empty, classifies read ops: a read that
	// recorded a read span at this layer went below the cache (miss);
	// one that did not was served above it (hit). Successful reads are
	// then recorded into read.hit / read.miss histograms alongside
	// op.read.
	MissLayer string
}

// StartOp opens a traced operation on the given stream, returning the
// context the op's store calls must carry. A nil collector returns ctx
// unchanged and a nil op.
func (c *Collector) StartOp(ctx context.Context, stream int, kind, key string) (context.Context, *OpTrace) {
	if c == nil {
		return ctx, nil
	}
	op := &OpTrace{Phase: c.Phase, Stream: stream, Kind: kind, Key: key, Start: c.Clock.Now()}
	return context.WithValue(ctx, opCtxKey{}, op), op
}

// FinishOp completes a traced operation: stamps the end time, records
// the op-level histogram (successes) or error counter (failures),
// classifies hit/miss, and hands the op to the tracer. A nil collector
// or nil op is a no-op.
func (c *Collector) FinishOp(op *OpTrace, err error) {
	if c == nil || op == nil {
		return
	}
	op.End = c.Clock.Now()
	if err != nil {
		op.Err = ErrName(err)
	}
	if c.Registry != nil {
		mustVirtual(c.Registry, "obs.Collector")
		if err != nil {
			c.Registry.Counter("op." + op.Kind + ".err." + op.Err).Inc()
		} else {
			d := op.Duration()
			c.Registry.Histogram("op." + op.Kind).Observe(d)
			if c.MissLayer != "" && op.Kind == "read" {
				if op.hasReadSpan(c.MissLayer) {
					c.Registry.Histogram("read.miss").Observe(d)
				} else {
					c.Registry.Histogram("read.hit").Observe(d)
				}
			}
		}
	}
	if c.Tracer != nil {
		c.Tracer.Add(op)
	}
}

// ErrName maps an error onto the short name of the blob sentinel it
// wraps, for metric labels and trace fields ("notfound", "nospace",
// "canceled", ...). Unrecognized errors report "other". The vocabulary
// lives in blob.ErrName so metric labels and the network service's
// wire names can never disagree.
func ErrName(err error) string { return blob.ErrName(err) }
