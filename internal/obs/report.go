package obs

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/stats"
)

// ReportSchema identifies the run-report JSON layout; bump on
// incompatible change. CI validates emitted reports against it.
// v2 added the required per-phase "time_unit" tag distinguishing
// virtual-clock sim histograms from the network service's wall-clock
// SLO histograms.
const ReportSchema = "fragbench-report/v2"

// RunReport is the machine-readable record of one fragbench run:
// the configuration, every experiment's tables (the same numbers the
// text rendering prints), and per-phase metric snapshots with latency
// quantiles. It is the start of the BENCH_*.json trajectory — a run
// report diffs across commits the way the text tables cannot.
type RunReport struct {
	// Schema is ReportSchema.
	Schema string `json:"schema"`
	// CreatedAt is the wall-clock run timestamp (RFC 3339). The only
	// wall-clock field in the report; everything measured is virtual.
	CreatedAt string `json:"created_at"`
	// Config echoes the harness configuration that produced the run.
	Config map[string]any `json:"config,omitempty"`
	// Experiments holds one entry per experiment run, in run order.
	Experiments []*ExperimentReport `json:"experiments"`
}

// NewRunReport returns an empty report stamped with the current wall
// time.
func NewRunReport() *RunReport {
	return &RunReport{
		Schema: ReportSchema,
		//fragvet:ignore vclockpurity the report timestamp records when the run happened in the real world, not simulated time
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// Experiment appends and returns a new experiment section.
func (r *RunReport) Experiment(id, title, paper string) *ExperimentReport {
	e := &ExperimentReport{ID: id, Title: title, Paper: paper}
	r.Experiments = append(r.Experiments, e)
	return e
}

// Section returns the experiment section with the given id, appending
// an empty one when absent — phases recorded mid-run and tables added
// after land in the same section.
func (r *RunReport) Section(id string) *ExperimentReport {
	for _, e := range r.Experiments {
		if e.ID == id {
			return e
		}
	}
	return r.Experiment(id, "", "")
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExperimentReport is one experiment's section of a run report.
type ExperimentReport struct {
	// ID, Title, Paper identify the experiment (harness.Experiment).
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	Paper string `json:"paper,omitempty"`
	// Error is set when the experiment failed; Tables/Phases may be
	// partial.
	Error string `json:"error,omitempty"`
	// Tables are the experiment's figures, the same data the text
	// rendering prints.
	Tables []*TableReport `json:"tables,omitempty"`
	// Phases are per-arm metric snapshots (one per experiment arm that
	// ran with observability on).
	Phases []*PhaseReport `json:"phases,omitempty"`
}

// AddTables serializes stats tables into the experiment section.
func (e *ExperimentReport) AddTables(tables []*stats.Table) {
	for _, t := range tables {
		e.Tables = append(e.Tables, TableFromStats(t))
	}
}

// AddPhase captures a registry snapshot as one named phase.
func (e *ExperimentReport) AddPhase(name string, snap Snapshot) *PhaseReport {
	p := PhaseFromSnapshot(name, snap)
	e.Phases = append(e.Phases, p)
	return p
}

// TableReport is a stats.Table in JSON form.
type TableReport struct {
	Title  string          `json:"title"`
	XLabel string          `json:"x_label,omitempty"`
	YLabel string          `json:"y_label,omitempty"`
	Series []*SeriesReport `json:"series,omitempty"`
	Notes  []string        `json:"notes,omitempty"`
}

// SeriesReport is one line of a table: parallel X/Y arrays.
type SeriesReport struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// TableFromStats converts a rendered table into its report form.
func TableFromStats(t *stats.Table) *TableReport {
	out := &TableReport{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel, Notes: t.Notes}
	for _, s := range t.Series {
		sr := &SeriesReport{Name: s.Name}
		for _, p := range s.Points {
			sr.X = append(sr.X, p.X)
			sr.Y = append(sr.Y, p.Y)
		}
		out.Series = append(out.Series, sr)
	}
	return out
}

// PhaseReport is one experiment arm's metric snapshot: counters,
// gauges, and latency histograms reduced to their quantiles.
type PhaseReport struct {
	Name string `json:"name"`
	// TimeUnit is the unit of every histogram in the phase
	// ("virtual_ns" or "wall_ns") — required by schema v2 so a report
	// mixing sim and server phases stays unambiguous per phase.
	TimeUnit   TimeUnit               `json:"time_unit"`
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]*HistReport `json:"histograms,omitempty"`
}

// PhaseFromSnapshot reduces a registry snapshot to a phase report.
// Histograms with zero observations are dropped (a registry handle
// that never recorded says nothing about the phase). A snapshot with
// no unit (hand-built in tests) reports UnitVirtual, the historical
// default.
func PhaseFromSnapshot(name string, snap Snapshot) *PhaseReport {
	unit := snap.Unit
	if unit == "" {
		unit = UnitVirtual
	}
	p := &PhaseReport{Name: name, TimeUnit: unit}
	if len(snap.Counters) > 0 {
		p.Counters = make(map[string]int64, len(snap.Counters))
		for k, v := range snap.Counters {
			p.Counters[k] = v
		}
	}
	if len(snap.Gauges) > 0 {
		p.Gauges = make(map[string]float64, len(snap.Gauges))
		for k, v := range snap.Gauges {
			p.Gauges[k] = v
		}
	}
	for k, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		if p.Histograms == nil {
			p.Histograms = make(map[string]*HistReport)
		}
		p.Histograms[k] = NewHistReport(h)
	}
	return p
}

// HistReport is a latency histogram reduced to its headline quantiles.
// The *_ns fields are in the enclosing phase's TimeUnit — virtual ns
// for sim phases, wall ns for network-service phases.
type HistReport struct {
	Count  int64   `json:"count"`
	Zero   int64   `json:"zero,omitempty"`
	MeanNs float64 `json:"mean_ns"`
	MinNs  int64   `json:"min_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// NewHistReport reduces a snapshot to its report quantiles.
func NewHistReport(s *HistogramSnapshot) *HistReport {
	return &HistReport{
		Count:  s.Count,
		Zero:   s.Zero,
		MeanNs: s.Mean(),
		MinNs:  s.Min,
		P50Ns:  s.Quantile(0.50),
		P90Ns:  s.Quantile(0.90),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
		MaxNs:  s.Max,
	}
}

// latencyQuantiles are the percentile x-axis points of a latency
// table: p50, p90, p99, p999, max.
var latencyQuantiles = []struct {
	X float64
	Q float64
}{
	{50, 0.50}, {90, 0.90}, {99, 0.99}, {99.9, 0.999}, {100, 1.0},
}

// LatencyTable renders the named histograms of a snapshot as a
// stats.Table with percentile on the x axis (50/90/99/99.9/100) and
// milliseconds on the y axis (labeled virtual or wall per the
// snapshot's unit) — one series per metric, so a per-layer latency
// breakdown prints through the same table pipeline every experiment
// already uses. Histograms with zero observations are skipped; the
// note records each series' op count.
func LatencyTable(title string, snap Snapshot, names []string) *stats.Table {
	ylabel := "virtual ms"
	if snap.Unit == UnitWall {
		ylabel = "wall ms"
	}
	t := stats.NewTable(title, "percentile", ylabel)
	t.Decimal = 3
	for _, name := range names {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		s := t.AddSeries(name)
		for _, lq := range latencyQuantiles {
			s.Add(lq.X, float64(h.Quantile(lq.Q))/1e6)
		}
		t.Note("%s: n=%d mean=%.3fms", name, h.Count, h.Mean()/1e6)
	}
	return t
}
