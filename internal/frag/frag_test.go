package frag

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

func TestCountRunFragments(t *testing.T) {
	cases := []struct {
		runs []extent.Run
		want int
	}{
		{nil, 0},
		{[]extent.Run{{Start: 0, Len: 10}}, 1},
		{[]extent.Run{{Start: 0, Len: 10}, {Start: 10, Len: 5}}, 1}, // physically contiguous
		{[]extent.Run{{Start: 0, Len: 10}, {Start: 20, Len: 5}}, 2},
		{[]extent.Run{{Start: 20, Len: 5}, {Start: 0, Len: 10}}, 2}, // logical order matters
		{[]extent.Run{{Start: 0, Len: 1}, {Start: 2, Len: 1}, {Start: 4, Len: 1}}, 3},
	}
	for i, c := range cases {
		if got := CountRunFragments(c.runs); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

type fakeSource map[string][]extent.Run

func (f fakeSource) EachObjectRuns(fn func(string, int64, []extent.Run)) {
	for k, runs := range f {
		fn(k, extent.SumLen(runs)*4096, runs)
	}
}

func TestAnalyze(t *testing.T) {
	src := fakeSource{
		"a": {{Start: 0, Len: 16}},
		"b": {{Start: 100, Len: 8}, {Start: 200, Len: 8}},
		"c": {{Start: 300, Len: 4}, {Start: 400, Len: 4}, {Start: 500, Len: 8}},
	}
	rep := Analyze(src)
	if rep.Objects != 3 || rep.TotalFragments != 6 || rep.MaxFragments != 3 {
		t.Fatalf("report: %+v", rep)
	}
	if got := rep.MeanFragments(); got != 2 {
		t.Fatalf("mean = %g", got)
	}
	if rep.PerObject[0].Key != "a" || rep.PerObject[2].Fragments != 3 {
		t.Fatalf("per-object: %+v", rep.PerObject)
	}
	// 48 clusters * 4KB = 192KB = 3 x 64KB; 6 fragments -> 2 per 64KB.
	if got := rep.FragmentsPer64KB(); got != 2 {
		t.Fatalf("per64KB = %g", got)
	}
}

func TestScanMarkers(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(64*units.MB), vclock.New(), disk.MetadataMode)
	// Object 7: two fragments; object 9: contiguous.
	d.WriteRun(extent.Run{Start: 10, Len: 4}, 7, 0, nil)
	d.WriteRun(extent.Run{Start: 50, Len: 4}, 7, 4, nil)
	d.WriteRun(extent.Run{Start: 100, Len: 8}, 9, 0, nil)
	got, err := ScanMarkers(d)
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 2 || got[9] != 1 {
		t.Fatalf("scan: %v", got)
	}
	d.DisableOwnerMap()
	if _, err := ScanMarkers(d); err == nil {
		t.Fatal("scan without owner map succeeded")
	}
}

func TestScanDetectsLogicalReordering(t *testing.T) {
	// Physically adjacent but logically out of order counts as fragmented.
	d := disk.New(disk.DefaultGeometry(64*units.MB), vclock.New(), disk.MetadataMode)
	d.WriteRun(extent.Run{Start: 10, Len: 4}, 3, 4, nil) // second half first
	d.WriteRun(extent.Run{Start: 14, Len: 4}, 3, 0, nil)
	got, _ := ScanMarkers(d)
	if got[3] != 2 {
		t.Fatalf("reordered object scanned as %d fragments, want 2", got[3])
	}
}

func TestCrossValidateAgainstEngines(t *testing.T) {
	// The paper validated its marker tool against the NTFS defragmenter's
	// reports; we validate the scanner against engine extent lists on
	// both backends after real churn.
	ctx := context.Background()
	fsStore, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	dbStore, err := core.NewDBStore(vclock.New(), blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	stores := []blob.Store{fsStore, dbStore}
	for _, s := range stores {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 12; i++ {
				if err := blob.Put(ctx, s, fmt.Sprintf("o%d", i), int64(rng.Intn(8)+1)*128*units.KB, nil); err != nil {
					t.Fatal(err)
				}
			}
			for op := 0; op < 60; op++ {
				key := fmt.Sprintf("o%d", rng.Intn(12))
				if err := blob.Replace(ctx, s, key, int64(rng.Intn(8)+1)*128*units.KB, nil); err != nil {
					t.Fatal(err)
				}
			}
			var drive *disk.Drive
			switch st := s.(type) {
			case *core.FileStore:
				drive = st.Volume().Drive()
			case *core.DBStore:
				drive = st.Engine().DataDrive()
			}
			bad, err := CrossValidate(drive, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(bad) > 0 {
				t.Fatalf("marker scan disagrees with extent lists: %v", bad)
			}
		})
	}
}

func TestRunLengthHistogram(t *testing.T) {
	runs := []extent.Run{
		{Start: 0, Len: 1}, {Start: 10, Len: 1}, // bucket 0
		{Start: 20, Len: 3},  // bucket 1 (2-3)
		{Start: 30, Len: 8},  // bucket 3 (8-15)
		{Start: 50, Len: 15}, // bucket 3
	}
	h := RunLengthHistogram(runs)
	if h[0] != 2 || h[1] != 1 || h[3] != 2 {
		t.Fatalf("histogram: %v", h)
	}
	if len(RunLengthHistogram(nil)) != 0 {
		t.Fatal("nil runs should give empty histogram")
	}
}
