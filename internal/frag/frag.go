// Package frag measures fragmentation, the paper's central metric:
// fragments per object, where a contiguous object has one fragment
// (Figure 2 caption).
//
// Two independent measurements are provided, mirroring the paper's
// methodology (§5.3):
//
//   - direct analysis of extent lists reported by the storage engines,
//     the way the Windows defragmentation utility reports file layout; and
//   - a marker scanner that walks the disk's owner map — the analog of
//     the paper's tool that "tagged each of our objects with a unique
//     identifier and a sequence number at 1KB intervals, and then
//     determined the physical locations of these markers on the hard
//     disk". The paper validated its tool against the NTFS defragmenter;
//     the tests here validate the two paths against each other.
package frag

import (
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/extent"
)

// CountRunFragments returns the number of physically discontiguous runs
// in an object's logically ordered extent list.
func CountRunFragments(runs []extent.Run) int {
	n := 0
	for i, r := range runs {
		if i == 0 || runs[i-1].End() != r.Start {
			n++
		}
	}
	return n
}

// ObjectReport is one object's fragmentation measurement.
type ObjectReport struct {
	Key       string
	Bytes     int64
	Fragments int
}

// Report aggregates fragmentation across a set of objects.
type Report struct {
	Objects        int
	TotalFragments int
	MaxFragments   int
	TotalBytes     int64
	PerObject      []ObjectReport // sorted by key when built via Analyze
}

// MeanFragments returns mean fragments/object — the paper's y-axis.
func (r Report) MeanFragments() float64 {
	if r.Objects == 0 {
		return 0
	}
	return float64(r.TotalFragments) / float64(r.Objects)
}

// FragmentsPer64KB returns fragments per 64 KB of object data, the
// normalization behind the paper's Figure 3 observation that both systems
// converge to "one fragment per 64KB".
func (r Report) FragmentsPer64KB() float64 {
	if r.TotalBytes == 0 {
		return 0
	}
	return float64(r.TotalFragments) / (float64(r.TotalBytes) / 65536.0)
}

func (r Report) String() string {
	return fmt.Sprintf("%d objects, %.2f fragments/object (max %d)",
		r.Objects, r.MeanFragments(), r.MaxFragments)
}

// Source enumerates objects and their extent runs. Both storage engines
// satisfy this through small adapters in package core.
type Source interface {
	// EachObjectRuns calls fn once per live object with the object's
	// logically ordered cluster runs.
	EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run))
}

// Analyze builds a fragmentation report from an engine's extent lists.
func Analyze(src Source) Report {
	var rep Report
	src.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
		f := CountRunFragments(runs)
		rep.Objects++
		rep.TotalFragments += f
		rep.TotalBytes += bytes
		if f > rep.MaxFragments {
			rep.MaxFragments = f
		}
		rep.PerObject = append(rep.PerObject, ObjectReport{Key: key, Bytes: bytes, Fragments: f})
	})
	sort.Slice(rep.PerObject, func(i, j int) bool { return rep.PerObject[i].Key < rep.PerObject[j].Key })
	return rep
}

// ScanMarkers reconstructs per-object fragment counts from the drive's
// owner map alone, with no knowledge of engine metadata — the external
// measurement path. It returns fragment counts keyed by owner tag.
//
// A fragment boundary exists wherever the next marker in an object's
// sequence is not physically adjacent to the previous one.
func ScanMarkers(d *disk.Drive) (map[uint32]int, error) {
	if !d.HasOwnerMap() {
		return nil, fmt.Errorf("frag: drive has no owner map")
	}
	type marker struct {
		seq     uint32
		cluster int64
	}
	byTag := make(map[uint32][]marker)
	clusters := d.Geometry().Clusters
	for c := int64(0); c < clusters; c++ {
		tag, seq := d.Owner(c)
		if tag == 0 {
			continue
		}
		byTag[tag] = append(byTag[tag], marker{seq: seq, cluster: c})
	}
	out := make(map[uint32]int, len(byTag))
	for tag, ms := range byTag {
		sort.Slice(ms, func(i, j int) bool { return ms[i].seq < ms[j].seq })
		frags := 0
		for i, m := range ms {
			if i == 0 || ms[i-1].cluster+1 != m.cluster {
				frags++
			}
		}
		out[tag] = frags
	}
	return out, nil
}

// TagSource additionally exposes each object's owner tag so marker-scan
// results can be cross-validated against extent lists.
type TagSource interface {
	Source
	// EachObjectTag calls fn once per live object with its owner tag.
	EachObjectTag(fn func(key string, tag uint32))
}

// CrossValidate compares the marker-scan fragment counts with the extent
// list analysis and returns the keys that disagree (empty means the two
// measurements match, the property the paper established for its tool).
func CrossValidate(d *disk.Drive, src TagSource) ([]string, error) {
	scanned, err := ScanMarkers(d)
	if err != nil {
		return nil, err
	}
	fromRuns := make(map[string]int)
	src.EachObjectRuns(func(key string, _ int64, runs []extent.Run) {
		fromRuns[key] = CountRunFragments(runs)
	})
	var bad []string
	src.EachObjectTag(func(key string, tag uint32) {
		if got, want := scanned[tag], fromRuns[key]; got != want {
			bad = append(bad, fmt.Sprintf("%s: scan=%d runs=%d", key, got, want))
		}
	})
	sort.Strings(bad)
	return bad, nil
}

// RunLengthHistogram buckets a volume's free (or used) run lengths by
// powers of two; bucket i counts runs with length in [2^i, 2^(i+1)).
// Useful for the layoutmap tool and for reasoning about the run cache's
// steady state.
func RunLengthHistogram(runs []extent.Run) []int {
	var hist []int
	for _, r := range runs {
		b := 0
		for l := r.Len; l > 1; l >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
