// Package harness defines one runnable experiment per table and figure in
// the paper's evaluation (§5), plus the extension experiments DESIGN.md
// lists. Each experiment builds fresh simulated stores, drives the §4.3
// workload over them, and emits the same rows/series the paper's charts
// report, as stats.Tables.
//
// Scale note (§5.4): "The time it takes to run the experiments is
// proportional to the volume's capacity. ... Using a smaller (although
// perhaps unrealistic) volume size allows more experiments." The same
// applies to the simulation; Config.Scale selects the volume sizes, and
// the paper's own Figure 6 result — volume size barely matters above a
// few hundred free objects — is what justifies the smaller defaults.
package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Config controls experiment scale and reporting.
type Config struct {
	// VolumeBytes is the data volume size for single-volume experiments.
	VolumeBytes int64
	// Occupancy is the live-data fraction after bulk load (paper default
	// 50%, §5.4).
	Occupancy float64
	// MaxAge is the deepest storage age measured in aging curves
	// (Figures 2/3/5: 10).
	MaxAge float64
	// AgeStep is the measurement interval along the age axis.
	AgeStep float64
	// ReadSamples is the number of whole-object reads per throughput
	// measurement.
	ReadSamples int
	// Seed drives all randomness.
	Seed int64
	// MaxShards caps the shard-count sweep of the "shard" experiment
	// (powers of two up to this value; 0 takes 16).
	MaxShards int
	// StreamCounts is the concurrent-writer sweep of the "interleave"
	// experiment (nil takes 1, 4, 16).
	StreamCounts []int
	// CacheBytes is the capacity sweep of the "readcache" experiment
	// in bytes; 0 entries mean "no cache" (nil takes 0, 64M, 256M).
	CacheBytes []int64
	// Dist overrides the object-size distribution of the Source-driven
	// sweeps (interleave, tracereplay); nil takes the scale-derived
	// constant size. Set from the fragbench -dist flag
	// (e.g. uniform:5M-15M) to probe the fs-interleaving regime.
	Dist workload.SizeDist
	// TracePath replays a recorded trace file in the "tracereplay"
	// experiment instead of recording a synthetic churn run first.
	TracePath string
	// DutyCycles is the compactor duty-cycle sweep of the "compact"
	// experiment, each in [0,1] (nil takes 0, 0.1, 0.5). Set from the
	// fragbench -duty flag.
	DutyCycles []float64
	// NoOwnerMap disables the disk owner map (large-volume runs).
	NoOwnerMap bool
	// Obs enables per-layer observability in the experiments that
	// support it (interleave, readcache, compact): store chains are
	// obs-wrapped, every op is timed on the virtual clock, and each
	// experiment appends per-layer latency quantile tables to its
	// output. Set from the fragbench -obs / -report / -optrace flags.
	Obs bool
	// Report, when non-nil, accumulates the machine-readable run
	// report: observability-enabled experiments append one phase
	// snapshot per arm (implies the instrumentation Obs enables).
	Report *obs.RunReport
	// Tracer, when non-nil, retains per-op traces (ring of recent ops
	// plus slowest survivors) across every instrumented arm, for the
	// -optrace Chrome trace / JSONL dump.
	Tracer *obs.Tracer
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// obsEnabled reports whether experiments should instrument their store
// chains (explicitly, or implied by report/trace output).
func (c Config) obsEnabled() bool {
	return c.Obs || c.Report != nil || c.Tracer != nil
}

// DefaultConfig returns bench-scale settings: 4 GB volumes keep every
// figure under a few minutes while preserving the paper's free-pool
// ratios (a 4 GB volume at 50% full holds ~200 free 10 MB objects —
// below the paper's 400-object comfort threshold only for fig6's
// deliberate small-volume arm).
func DefaultConfig() Config {
	return Config{
		VolumeBytes: 4 * units.GB,
		Occupancy:   0.5,
		MaxAge:      10,
		AgeStep:     1,
		ReadSamples: 200,
		Seed:        1,
	}
}

// TestConfig returns miniature settings for unit/integration tests.
func TestConfig() Config {
	return Config{
		VolumeBytes: 512 * units.MB,
		Occupancy:   0.5,
		MaxAge:      4,
		AgeStep:     2,
		ReadSamples: 40,
		Seed:        1,
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the short name used by cmd/fragbench and bench targets
	// (e.g. "fig2").
	ID string
	// Title mirrors the paper's caption.
	Title string
	// Paper cites the figure/table and section.
	Paper string
	// Run executes the experiment and returns its charts.
	Run func(Config) ([]*stats.Table, error)
}

// Experiments lists every reproduction in DESIGN.md's per-experiment
// index, in paper order.
var Experiments = []Experiment{
	{ID: "table1", Title: "Configuration of the test system", Paper: "Table 1", Run: Table1},
	{ID: "fig1", Title: "Read throughput at storage ages 0, 2, 4", Paper: "Figure 1, §5.2-5.3", Run: Figure1},
	{ID: "fig2", Title: "Long term fragmentation with 10 MB objects", Paper: "Figure 2, §5.3", Run: Figure2},
	{ID: "fig3", Title: "Long term fragmentation with 256 KB objects", Paper: "Figure 3, §5.3", Run: Figure3},
	{ID: "fig4", Title: "512 KB write throughput over time", Paper: "Figure 4, §5.3", Run: Figure4},
	{ID: "fig5", Title: "Fragmentation: constant vs uniform object sizes", Paper: "Figure 5, §5.4", Run: Figure5},
	{ID: "fig6", Title: "Fragmentation across volume sizes and occupancy", Paper: "Figure 6, §5.4", Run: Figure6},
	{ID: "patho", Title: "Recovery of a pathologically fragmented volume", Paper: "§5.3", Run: Pathological},
	{ID: "hint", Title: "Size-hint / delayed-allocation ablation", Paper: "§5.4, §6", Run: SizeHintAblation},
	{ID: "wreq", Title: "Write request size sweep", Paper: "§5.3-5.4", Run: WriteRequestSweep},
	{ID: "ileave", Title: "Interleaved appends, single writer round-robin (concurrent version: interleave)", Paper: "§6 (future work)", Run: InterleavedAppend},
	{ID: "policy", Title: "Allocation policy comparison", Paper: "§3.2, §3.4", Run: PolicyComparison},
	{ID: "shard", Title: "Sharded multi-volume fragmentation sweep", Paper: "Figure 6 extension, §5.4", Run: ShardSweep},
	{ID: "interleave", Title: "Concurrent writer streams with group commit", Paper: "§6 extension, §3.1", Run: InterleaveSweep},
	{ID: "readcache", Title: "Read-path cache capacity sweep with Zipf reads", Paper: "§5 extension, read path", Run: ReadCacheSweep},
	{ID: "tracereplay", Title: "Recorded-trace replay across k concurrent writer streams", Paper: "§6 + §5.4 trace-based generation", Run: TraceReplaySweep},
	{ID: "compact", Title: "Online background compaction duty-cycle sweep", Paper: "§3.4 (the unmeasured tradeoff)", Run: CompactionSweep},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(Experiments))
	for i, e := range Experiments {
		out[i] = e.ID
	}
	return out
}

// pair builds a matched filesystem/database store pair of the configured
// volume size, each on its own virtual clock (the paper ran the systems
// independently).
func (c Config) pair(writeReq int64) (*core.FileStore, *core.DBStore, error) {
	fsStore, err := core.NewFileStore(vclock.New(), c.storeOptions(writeReq)...)
	if err != nil {
		return nil, nil, err
	}
	dbStore, err := core.NewDBStore(vclock.New(), c.storeOptions(writeReq)...)
	if err != nil {
		return nil, nil, err
	}
	return fsStore, dbStore, nil
}

// storeOptions translates experiment scale into store options shared by
// both backends.
func (c Config) storeOptions(writeReq int64) []blob.Option {
	opts := []blob.Option{
		blob.WithCapacity(c.VolumeBytes),
		blob.WithDiskMode(disk.MetadataMode),
		blob.WithWriteRequestSize(writeReq),
	}
	if c.NoOwnerMap {
		opts = append(opts, blob.WithoutOwnerMap())
	}
	return opts
}

// sizeDist returns the object-size distribution of the Source-driven
// sweeps: Config.Dist when set, else the scale-derived constant size
// (~400 objects per volume, the shard/interleave sweeps' convention).
func (c Config) sizeDist() workload.SizeDist {
	if c.Dist != nil {
		return c.Dist
	}
	return workload.Constant{Size: units.RoundUp(c.VolumeBytes/400, 64*units.KB)}
}

// meanFrags measures mean fragments/object for any store.
func meanFrags(s blob.Store) float64 {
	return frag.Analyze(s).MeanFragments()
}

// agePoints returns the measurement ages 0, step, 2*step ... max.
func (c Config) agePoints() []float64 {
	var out []float64
	for a := 0.0; a <= c.MaxAge+1e-9; a += c.AgeStep {
		out = append(out, a)
	}
	return out
}

// agingCurve bulk loads repo and measures fn at each age point, returning
// one series. fn runs after churn reaches each age.
func (c Config) agingCurve(repo blob.Store, dist workload.SizeDist, name string,
	fn func(r *workload.Runner) float64) (*stats.Series, error) {
	runner := workload.NewRunner(repo, dist, c.Seed)
	if _, err := runner.BulkLoad(c.Occupancy); err != nil {
		return nil, fmt.Errorf("%s bulk load: %w", name, err)
	}
	s := &stats.Series{Name: name}
	for _, age := range c.agePoints() {
		if age > 0 {
			if _, err := runner.ChurnToAge(age, workload.ChurnOptions{}); err != nil {
				return nil, fmt.Errorf("%s churn to %.1f: %w", name, age, err)
			}
		}
		s.Add(age, fn(runner))
		c.logf("  %s age %.1f: %.2f", name, age, s.Points[len(s.Points)-1].Y)
	}
	return s, nil
}

// sortedKeys is a small helper for deterministic map iteration in reports.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
