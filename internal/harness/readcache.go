package harness

import (
	"context"
	"fmt"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// defaultCacheBytes is the capacity sweep of the "readcache"
// experiment: no cache, then two memory budgets.
var defaultCacheBytes = []int64{0, 64 * units.MB, 256 * units.MB}

// cacheSizes returns the configured sweep points (Config.CacheBytes or
// the 0/64M/256M default).
func (c Config) cacheSizes() []int64 {
	if len(c.CacheBytes) > 0 {
		return c.CacheBytes
	}
	return defaultCacheBytes
}

// ReadCacheSweep measures the read-path cache layer: age each backend
// to a fixed fragmentation level, then read the SAME aged layout
// through cache.Store wrappers of increasing capacity with a
// Zipf-popularity read mix (hot objects dominate, the regime real
// deployments cache for). Per capacity point the sweep runs one cold
// pass that fills the cache, resets the counters, and measures a warm
// pass: the reported hit rate and effective MB/s therefore describe
// steady-state traffic, not compulsory misses — the same
// phase-separation the database buffer pool's ResetPoolStats provides
// one layer down.
//
// The cache charges hits at memory bandwidth on the shared virtual
// clock (hit-rate-aware virtual-time accounting), so effective read
// throughput scales with hit rate while the fragments/object of the
// layout underneath stays fixed: fragmentation priced only on the cold
// tail.
func ReadCacheSweep(c Config) ([]*stats.Table, error) {
	ctx := context.Background()
	caps := c.cacheSizes()
	objSize := units.RoundUp(c.VolumeBytes/400, 64*units.KB)
	dist := workload.Constant{Size: objSize}
	targetAge := c.MaxAge / 2
	pop, err := workload.NewZipfPopularity(1.2)
	if err != nil {
		return nil, err
	}

	hits := stats.NewTable(
		fmt.Sprintf("Read cache: steady-state hit rate vs capacity (%s reads, %s objects, age %.1f)",
			pop.Name(), units.FormatBytes(objSize), targetAge),
		"Cache MB", "Hit rate")
	tput := stats.NewTable("Read cache: effective read throughput vs capacity",
		"Cache MB", "MB/sec")

	var latTables []*stats.Table
	for _, kind := range []string{"database", "filesystem"} {
		name := "Database"
		if kind == "filesystem" {
			name = "Filesystem"
		}
		hitSeries := hits.AddSeries(name)
		tputSeries := tput.AddSeries(name)

		var store blob.Store
		switch kind {
		case "database":
			store, err = core.NewDBStore(vclock.New(), c.storeOptions(64*units.KB)...)
		case "filesystem":
			store, err = core.NewFileStore(vclock.New(), c.storeOptions(64*units.KB)...)
		}
		if err != nil {
			return nil, err
		}
		runner := workload.NewRunner(store, dist, c.Seed)
		if _, err := runner.BulkLoad(c.Occupancy); err != nil {
			return nil, fmt.Errorf("readcache %s load: %w", kind, err)
		}
		if _, err := runner.ChurnToAge(targetAge, workload.ChurnOptions{}); err != nil {
			return nil, fmt.Errorf("readcache %s churn: %w", kind, err)
		}
		frags := meanFrags(store)
		keys := runner.Keys()

		for _, capBytes := range caps {
			// Per-arm observability: the aged store is wrapped as the
			// "disk" layer and the cache (when present) as the "cache"
			// layer, so a read op's span set shows which layers it
			// touched — a read with no disk read span was a cache hit
			// (the collector's MissLayer classification).
			p := c.newProbe(fmt.Sprintf("readcache %s cap=%s", kind, units.FormatBytes(capBytes)),
				store.Clock(), "disk")
			rs := p.wrap(store, "disk")
			var cs *cache.Store
			if capBytes > 0 {
				cs, err = cache.New(rs, cache.WithCapacity(capBytes))
				if err != nil {
					return nil, err
				}
				rs = p.wrap(cs, "cache")
			}
			if d, ok := store.(*core.DBStore); ok {
				// Keep the engine's metadata-pool rate phase-local too.
				d.Engine().ResetPoolStats()
			}
			// Cold pass fills the cache; its compulsory misses are then
			// dropped from the ledger before the measured warm pass. The
			// uncached arm has nothing to warm, so it skips straight to
			// the measurement.
			if cs != nil {
				if _, err := workload.ReadPhase(ctx, rs, keys, c.ReadSamples, c.Seed+17,
					workload.ReadOptions{Popularity: pop}); err != nil {
					return nil, fmt.Errorf("readcache %s warmup: %w", kind, err)
				}
				cs.ResetStats()
				p.reset()
			}
			res, err := workload.ReadPhase(ctx, rs, keys, c.ReadSamples, c.Seed+18,
				workload.ReadOptions{Popularity: pop, Collector: p.collector()})
			if err != nil {
				return nil, fmt.Errorf("readcache %s measure: %w", kind, err)
			}
			capMB := float64(capBytes) / float64(units.MB)
			var st cache.Stats
			if cs != nil {
				st = cs.CacheStats()
			}
			hitSeries.Add(capMB, st.HitRate())
			tputSeries.Add(capMB, res.MBps)
			c.reportPhase("readcache", fmt.Sprintf("%s cap=%s", kind, units.FormatBytes(capBytes)), p)
			if capBytes == caps[len(caps)-1] {
				latTables = appendTable(latTables, p.latencyTable(
					fmt.Sprintf("Read cache %s cap=%s: per-op virtual-time latency (warm pass)",
						name, units.FormatBytes(capBytes)),
					readcacheLatencyMetrics))
			}
			c.logf("readcache %s cap=%s: hit rate %.2f, %.1f MB/s, %s resident, %d evictions (%.2f frags/obj underneath)",
				kind, units.FormatBytes(capBytes), st.HitRate(), res.MBps,
				units.FormatBytes(st.ResidentBytes), st.Evictions, frags)
		}
		hits.Note("%s layout under the cache: %.2f fragments/object at age %.1f — unchanged across the sweep (the cache is write-through; only the read path moves)",
			name, frags, targetAge)
	}
	hits.Note("cap 0 MB = no cache layer; warm-pass rates after a cold fill pass (compulsory misses excluded)")
	tput.Note("hits are charged at memory bandwidth (%.0f MB/s) on the virtual clock instead of per-fragment disk requests, so effective MB/s scales with the hit rate while the layout's fragmentation is priced only on the cold tail",
		cache.DefaultMemoryMBps)
	for _, t := range latTables {
		t.Note("read.hit/read.miss split by span composition: a read op that recorded no disk read span was served from cache memory; disk.* rows price only the cold tail")
	}
	return append([]*stats.Table{hits, tput}, latTables...), nil
}

// readcacheLatencyMetrics are the histograms the readcache sweep
// prints: whole-op read latency, its hit/miss split, and the cache and
// disk layers' own read timings.
var readcacheLatencyMetrics = []string{
	"op.read", "read.hit", "read.miss",
	"cache.open", "cache.readall", "disk.open", "disk.readall",
}
