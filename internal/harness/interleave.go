package harness

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// interleaveLatencyMetrics are the histograms the interleave sweep
// prints: whole-op latencies plus the commit pipeline's queue-wait vs.
// group-force split at the store layer.
var interleaveLatencyMetrics = []string{
	"op.create", "op.replace", "op.delete",
	"store.commit", "store.commit.queuewait", "store.commit.force",
}

// defaultStreamCounts is the k sweep of the "interleave" experiment.
var defaultStreamCounts = []int{1, 4, 16}

// streamCounts returns the configured sweep points (Config.StreamCounts
// or the 1/4/16 default).
func (c Config) streamCounts() []int {
	if len(c.StreamCounts) > 0 {
		return c.StreamCounts
	}
	return defaultStreamCounts
}

// InterleaveSweep measures the §6 prediction end-to-end: "interleaved
// append requests to multiple objects ... are likely to increase
// fragmentation". k concurrent writer streams (workload.ConcurrentRunner
// goroutines with per-stream keyspaces) drive the full get/put workload
// — concurrent bulk load, then churn to half the configured age — on
// each backend at FIXED total volume, so appends from different streams
// genuinely interleave in allocation order. Group commit is enabled with
// batches up to k, so the sweep also reports how far the commit pipeline
// amortizes forced flushes as concurrency rises.
//
// The k=1 arm is the single-writer regime of the PR 2 shard sweep (one
// stream, same object size, same churn depth) and anchors the curve to
// the earlier baseline.
func InterleaveSweep(c Config) ([]*stats.Table, error) {
	counts := c.streamCounts()
	dist := c.sizeDist()
	targetAge := c.MaxAge / 2

	frags := stats.NewTable(
		fmt.Sprintf("Concurrent writer streams: fragmentation vs k (%s volume, %s objects, age %.1f)",
			units.FormatBytes(c.VolumeBytes), dist.Name(), targetAge),
		"Writer streams", "Fragments/object")
	tput := stats.NewTable("Concurrent writer streams: churn write throughput vs k",
		"Writer streams", "MB/sec")
	batch := stats.NewTable("Group commit under k writers: commits per forced flush",
		"Writer streams", "Mean batch size")

	var latTables []*stats.Table
	for _, kind := range []string{"database", "filesystem"} {
		name := "Database"
		if kind == "filesystem" {
			name = "Filesystem"
		}
		fragSeries := frags.AddSeries(name)
		tputSeries := tput.AddSeries(name)
		batchSeries := batch.AddSeries(name)
		for _, k := range counts {
			if k < 1 {
				return nil, fmt.Errorf("interleave: stream count %d < 1", k)
			}
			mf, res, cs, p, err := c.runInterleaveArm(kind, k, dist, targetAge)
			if err != nil {
				return nil, err
			}
			fragSeries.Add(float64(k), mf)
			tputSeries.Add(float64(k), res.MBps)
			batchSeries.Add(float64(k), cs.MeanBatch())
			c.reportPhase("interleave", fmt.Sprintf("%s k=%d", kind, k), p)
			if k == counts[len(counts)-1] {
				// Print the deepest-k arm's latency breakdown; every arm's
				// full snapshot is in the JSON report.
				latTables = appendTable(latTables, p.latencyTable(
					fmt.Sprintf("Interleave %s k=%d: per-op virtual-time latency (churn phase)", name, k),
					interleaveLatencyMetrics))
			}
			c.logf("interleave %s k=%d: %.2f frags/obj, %.2f MB/s, batch %.2f (max %d) over %d commits, %d skipped",
				kind, k, mf, res.MBps, cs.MeanBatch(), cs.MaxBatch, cs.Commits, res.Skipped)
		}
	}
	frags.Note("fixed total volume; k goroutine streams interleave appends in allocation order — the §6 interleaved-append regime the single-writer sweeps cannot reach")
	batch.Note("commit pipeline: k concurrent writers coalesce into batches of up to k commits per forced flush (1.0 = every commit forces, as without group commit)")
	for _, t := range latTables {
		t.Note("virtual-time quantiles: an op's latency includes time charged by other streams while it was in flight; store.commit.queuewait vs store.commit.force splits the pipeline's wait from the one group force")
	}
	return append([]*stats.Table{frags, tput, batch}, latTables...), nil
}

// runInterleaveArm measures one (backend, k) arm on a fresh store,
// always shutting the store's commit pipeline down — success or not —
// so no batcher goroutine outlives the arm.
func (c Config) runInterleaveArm(kind string, k int, dist workload.SizeDist, targetAge float64) (
	meanFragments float64, res workload.Result, cs blob.CommitStats, p *probe, err error) {
	clock := vclock.New()
	p = c.newProbe(fmt.Sprintf("interleave %s k=%d", kind, k), clock, "")
	opts := append(c.storeOptions(64*units.KB),
		blob.WithGroupCommit(k, 500*time.Microsecond))
	if p != nil {
		opts = append(opts, blob.WithCommitObserver(obs.NewCommitObserver(p.registry(), "store")))
	}
	var store blob.Store
	switch kind {
	case "filesystem":
		store, err = core.NewFileStore(clock, opts...)
	case "database":
		store, err = core.NewDBStore(clock, opts...)
	}
	if err != nil {
		return 0, res, cs, p, err
	}
	defer func() {
		if cerr := blob.CloseStore(store); err == nil {
			err = cerr
		}
	}()
	runner := workload.NewConcurrentRunner(p.wrap(store, "store"),
		workload.UniformStreams(k, dist), c.Seed).WithCollector(p.collector())
	// Concurrent loaders race the byte budget; near the target one
	// stream can lose the race to a refused allocation, which is the
	// regime itself, not a failure.
	if _, err := runner.BulkLoad(c.Occupancy); err != nil && !errors.Is(err, blob.ErrNoSpaceLeft) {
		return 0, res, cs, p, fmt.Errorf("interleave %s k=%d load: %w", kind, k, err)
	}
	// The latency ledger covers the churn phase only: the bulk-load
	// metrics (and its commit-pipeline timings) are zeroed so quantiles
	// describe the steady interleaved regime.
	p.reset()
	res, err = runner.ChurnToAge(targetAge, workload.ChurnOptions{TolerateNoSpace: true})
	if err != nil {
		return 0, res, cs, p, fmt.Errorf("interleave %s k=%d churn: %w", kind, k, err)
	}
	cs, _ = blob.CommitStatsOf(store)
	return meanFrags(store), res, cs, p, nil
}
