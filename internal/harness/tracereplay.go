package harness

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// TraceReplaySweep extends the §6 interleaving measurement from
// synthetic churn to recorded operation logs: record one single-writer
// churn run as a trace (or load one from Config.TracePath), partition
// it into k replay streams (per-key hash routing, so every object's
// put/replace/get order survives), and replay each partitioning
// against a fresh store through the shared workload.Executor with group
// commit enabled — the same engine and commit pipeline the synthetic
// "interleave" sweep drives.
//
// The k=1 arm replays the log in its recorded order and must land
// exactly on the synthetic single-writer baseline (at default scale:
// db 6.70, fs 1.60 fragments/object at 4 GB / age 5); the k>1 arms
// show what stream interleaving does to the SAME operation log, the
// comparison the paper's §6 calls for on real traces.
func TraceReplaySweep(c Config) ([]*stats.Table, error) {
	ctx := context.Background()
	counts := c.streamCounts()
	dist := c.sizeDist()
	targetAge := c.MaxAge / 2

	var fileOps []trace.Op
	traceName := "recorded synthetic churn"
	if c.TracePath != "" {
		f, err := os.Open(c.TracePath)
		if err != nil {
			return nil, err
		}
		fileOps, err = trace.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.TracePath, err)
		}
		if len(fileOps) == 0 {
			// An op-less file must not fall through to the synthetic
			// recording path under the user's trace name.
			return nil, fmt.Errorf("%s: trace has no operations", c.TracePath)
		}
		traceName = c.TracePath
	}

	frags := stats.NewTable(
		fmt.Sprintf("Trace replay: fragmentation vs replay streams (%s, %s volume, age %.1f)",
			traceName, units.FormatBytes(c.VolumeBytes), targetAge),
		"Replay streams", "Fragments/object")
	tput := stats.NewTable("Trace replay: write throughput vs replay streams",
		"Replay streams", "MB/sec")

	for _, kind := range []string{"database", "filesystem"} {
		name := "Database"
		if kind == "filesystem" {
			name = "Filesystem"
		}
		fragSeries := frags.AddSeries(name)
		tputSeries := tput.AddSeries(name)

		ops := fileOps
		if ops == nil {
			recorded, baseline, err := c.recordChurnTrace(kind, dist, targetAge)
			if err != nil {
				return nil, err
			}
			ops = recorded
			c.logf("tracereplay %s: recorded %d ops (synthetic baseline %.2f frags/obj)",
				kind, len(ops), baseline)
		}

		for _, k := range counts {
			if k < 1 {
				return nil, fmt.Errorf("tracereplay: stream count %d < 1", k)
			}
			mf, res, err := c.replayArm(ctx, kind, k, ops)
			if err != nil {
				return nil, err
			}
			fragSeries.Add(float64(k), mf)
			tputSeries.Add(float64(k), res.WriteMBps)
			c.logf("tracereplay %s k=%d: %.2f frags/obj, %.2f MB/s over %d ops (age %.2f)",
				kind, k, mf, res.WriteMBps, res.Ops, res.StorageAge)
		}
	}
	frags.Note("one recorded log, re-partitioned per arm: k=1 replays the recorded allocation order and must reproduce the synthetic single-writer baseline; k>1 routes each key's ops to one of k concurrent streams (per-key order preserved) — §6's interleaving driven by a real operation log. Compare with the synthetic `interleave` sweep.")
	tput.Note("replay runs through the shared workload.Executor with group commit enabled (batches up to k), like the interleave sweep")
	return []*stats.Table{frags, tput}, nil
}

// recordChurnTrace runs the single-writer churn workload through a
// trace.Recorder on a fresh store and returns the recorded log plus the
// recording store's converged fragments/object — the synthetic k=1
// baseline the replay arms are compared against.
func (c Config) recordChurnTrace(kind string, dist workload.SizeDist, targetAge float64) ([]trace.Op, float64, error) {
	store, err := c.newStore(kind, nil)
	if err != nil {
		return nil, 0, err
	}
	rec := trace.NewRecorder(store)
	runner := workload.NewRunner(rec, dist, c.Seed)
	if _, err := runner.BulkLoad(c.Occupancy); err != nil {
		return nil, 0, fmt.Errorf("tracereplay %s record load: %w", kind, err)
	}
	if _, err := runner.ChurnToAge(targetAge, workload.ChurnOptions{}); err != nil {
		return nil, 0, fmt.Errorf("tracereplay %s record churn: %w", kind, err)
	}
	return rec.Ops(), meanFrags(store), nil
}

// replayArm replays ops partitioned into k streams against a fresh
// group-committing store, always shutting the commit pipeline down so
// no batcher goroutine outlives the arm.
func (c Config) replayArm(ctx context.Context, kind string, k int, ops []trace.Op) (
	meanFragments float64, res trace.Result, err error) {
	store, err := c.newStore(kind, []blob.Option{blob.WithGroupCommit(k, 500*time.Microsecond)})
	if err != nil {
		return 0, res, err
	}
	defer func() {
		if cerr := blob.CloseStore(store); err == nil {
			err = cerr
		}
	}()
	res, err = trace.ReplayStreams(ctx, store, trace.Partition(ops, k))
	if err != nil {
		return 0, res, fmt.Errorf("tracereplay %s k=%d: %w", kind, k, err)
	}
	return meanFrags(store), res, nil
}

// newStore builds one backend at experiment scale with extra options
// appended.
func (c Config) newStore(kind string, extra []blob.Option) (blob.Store, error) {
	opts := append(c.storeOptions(64*units.KB), extra...)
	switch kind {
	case "filesystem":
		return core.NewFileStore(vclock.New(), opts...)
	case "database":
		return core.NewDBStore(vclock.New(), opts...)
	default:
		return nil, fmt.Errorf("harness: unknown backend %q: %w", kind, blob.ErrBadOption)
	}
}
