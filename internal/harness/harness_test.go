package harness

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/units"
)

// shapeConfig is big enough for the paper's qualitative shapes to appear
// but small enough for CI.
func shapeConfig() Config {
	return Config{
		VolumeBytes: 2 * units.GB,
		Occupancy:   0.5,
		MaxAge:      8,
		AgeStep:     2,
		ReadSamples: 80,
		Seed:        1,
	}
}

func mustY(t *testing.T, s *stats.Series, x float64) float64 {
	t.Helper()
	y, ok := s.YAt(x)
	if !ok {
		t.Fatalf("series %q has no point at x=%g", s.Name, x)
	}
	return y
}

func findSeries(t *testing.T, tb *stats.Table, name string) *stats.Series {
	t.Helper()
	for _, s := range tb.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("table %q has no series %q", tb.Title, name)
	return nil
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) != 17 {
		t.Fatalf("expected 17 experiments, have %d", len(Experiments))
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	if len(IDs()) != len(Experiments) {
		t.Fatal("IDs length mismatch")
	}
}

func TestTable1(t *testing.T) {
	tables, err := Table1(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].Render()
	for _, want := range []string{"7200", "bulk-logged", "run cache", "storage age"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

// TestFigure2Shape asserts the paper's central qualitative result: the
// database's fragmentation grows without an asymptote while the
// filesystem stays far lower.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	tables, err := Figure2(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := findSeries(t, tables[0], "Database")
	fs := findSeries(t, tables[0], "Filesystem")

	dbEarly, dbLate := mustY(t, db, 2), mustY(t, db, 8)
	if dbLate < 2*dbEarly {
		t.Errorf("database fragmentation not growing: age2=%.2f age8=%.2f", dbEarly, dbLate)
	}
	fsLate := mustY(t, fs, 8)
	if fsLate >= dbLate/2 {
		t.Errorf("filesystem (%.2f) should fragment far less than database (%.2f)", fsLate, dbLate)
	}
	// Monotone non-decreasing database curve (linear growth, §5.3).
	for i := 1; i < len(db.Points); i++ {
		if db.Points[i].Y < db.Points[i-1].Y-0.25 {
			t.Errorf("database curve dipped at age %g: %.2f -> %.2f",
				db.Points[i].X, db.Points[i-1].Y, db.Points[i].Y)
		}
	}
}

// TestFigure3Convergence asserts both systems converge toward ~4
// fragments per 256 KB object — one per 64 KB write request.
func TestFigure3Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	cfg.MaxAge = 10
	tables, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Database", "Filesystem"} {
		s := findSeries(t, tables[0], name)
		last, _ := s.Last()
		if last.Y < 1.5 || last.Y > 4.5 {
			t.Errorf("%s converged to %.2f fragments/object, want ~2-4 (ceiling 4 = one per 64KB)", name, last.Y)
		}
	}
}

// TestFigure1BreakEven asserts the folklore on a clean store and the
// break-even migration with age.
func TestFigure1BreakEven(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	tables, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bulk, aged := tables[0], tables[2]
	// Clean store: database wins at every size up to 1MB (Figure 1a).
	for _, size := range []float64{256, 512, 1024} {
		db := mustY(t, findSeries(t, bulk, "Database"), size)
		fs := mustY(t, findSeries(t, bulk, "Filesystem"), size)
		if db <= fs {
			t.Errorf("bulk load at %gKB: database %.2f <= filesystem %.2f", size, db, fs)
		}
	}
	// Aged store: filesystem catches or passes the database at 1MB.
	db1M := mustY(t, findSeries(t, aged, "Database"), 1024)
	fs1M := mustY(t, findSeries(t, aged, "Filesystem"), 1024)
	if fs1M < db1M*0.95 {
		t.Errorf("after four overwrites at 1MB: filesystem %.2f should rival database %.2f", fs1M, db1M)
	}
	// Aging hurts the database: age-4 throughput well below bulk-load.
	dbBulk256 := mustY(t, findSeries(t, bulk, "Database"), 256)
	dbAged256 := mustY(t, findSeries(t, aged, "Database"), 256)
	if dbAged256 > 0.8*dbBulk256 {
		t.Errorf("database 256KB read did not degrade with age: %.2f -> %.2f", dbBulk256, dbAged256)
	}
}

// TestFigure4WriteThroughput asserts bulk-load writes favour the database
// (17.7 vs 10.1 MB/s in the paper) and that its advantage shrinks with
// age.
func TestFigure4WriteThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	tables, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := findSeries(t, tables[0], "Database")
	fs := findSeries(t, tables[0], "Filesystem")
	dbBulk, fsBulk := mustY(t, db, 0), mustY(t, fs, 0)
	if dbBulk <= fsBulk {
		t.Errorf("bulk-load writes: database %.2f <= filesystem %.2f", dbBulk, fsBulk)
	}
	dbAged := mustY(t, db, 4)
	fsAged := mustY(t, fs, 4)
	dbDrop := dbBulk / dbAged
	fsDrop := fsBulk / fsAged
	if dbDrop <= fsDrop {
		t.Errorf("database writes should degrade faster: db %.2fx vs fs %.2fx", dbDrop, fsDrop)
	}
}

// TestPathologicalRecovery asserts the §5.3 observation: a pre-shattered
// filesystem volume defragments over time.
func TestPathologicalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	tables, err := Pathological(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].Series[0]
	first := s.Points[0].Y
	last, _ := s.Last()
	if first < 10 {
		t.Fatalf("shatter too weak: started at %.1f fragments/object", first)
	}
	if last.Y >= first {
		t.Errorf("fragmentation did not decrease: %.1f -> %.1f", first, last.Y)
	}
}

// TestSizeHintAblation asserts the paper's proposed interface fixes
// eliminate the fragmentation the stock interface causes.
func TestSizeHintAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	tables, err := SizeHintAblation(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	stock := findSeries(t, tables[0], "No hint (stock)")
	hint := findSeries(t, tables[0], "Size hint")
	delayed := findSeries(t, tables[0], "Delayed allocation")
	sLast, _ := stock.Last()
	hLast, _ := hint.Last()
	dLast, _ := delayed.Last()
	if hLast.Y >= sLast.Y || dLast.Y >= sLast.Y {
		t.Errorf("hints did not help: stock=%.2f hint=%.2f delayed=%.2f", sLast.Y, hLast.Y, dLast.Y)
	}
}

// TestInterleavedAppend asserts §6's prediction.
func TestInterleavedAppend(t *testing.T) {
	cfg := TestConfig()
	tables, err := InterleavedAppend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].Series[0]
	solo := mustY(t, s, 1)
	interleaved := mustY(t, s, 8)
	if solo != 1 {
		t.Errorf("single stream should be contiguous, got %.2f", solo)
	}
	if interleaved <= 2*solo {
		t.Errorf("interleaving should increase fragmentation: k=1 %.2f, k=8 %.2f", solo, interleaved)
	}
}

// TestPolicyComparison sanity-checks the §3.2/§3.4 shoot-out: buddy never
// fragments externally, and the deferred-reuse run cache fragments more
// than the idealized policies.
func TestPolicyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	cfg.VolumeBytes = 1 * units.GB
	tables, err := PolicyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buddy := findSeries(t, tables[0], "buddy")
	rc := findSeries(t, tables[0], "ntfs-run-cache")
	bf := findSeries(t, tables[0], "best-fit")
	bLast, _ := buddy.Last()
	if bLast.Y != 1 {
		t.Errorf("buddy fragmented externally: %.2f", bLast.Y)
	}
	rcLast, _ := rc.Last()
	bfLast, _ := bf.Last()
	if rcLast.Y <= bfLast.Y {
		t.Errorf("run cache with deferred reuse (%.2f) should fragment more than idealized best-fit (%.2f)", rcLast.Y, bfLast.Y)
	}
}

// TestWriteRequestSweep asserts request size shapes database
// fragmentation (§5.3-5.4): page-granular 16KB requests fragment more
// than extent-sized 64KB ones.
func TestWriteRequestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	cfg.VolumeBytes = 1 * units.GB
	tables, err := WriteRequestSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := findSeries(t, tables[0], "Database")
	small := mustY(t, db, 16)
	std := mustY(t, db, 64)
	if small <= std {
		t.Errorf("16KB requests (%.2f) should fragment more than 64KB (%.2f)", small, std)
	}
}

// TestFigure5BothDistributionsFragment asserts the §5.4 surprise:
// constant-size objects fragment too.
func TestFigure5BothDistributionsFragment(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	tables, err := Figure5(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		for _, s := range tb.Series {
			last, _ := s.Last()
			if last.Y <= 1.05 {
				t.Errorf("%s / %s shows no fragmentation (%.2f) — the §5.4 surprise is missing", tb.Title, s.Name, last.Y)
			}
		}
	}
}

// TestFigure6Occupancy asserts higher occupancy fragments more on the
// filesystem.
func TestFigure6Occupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy aging run")
	}
	cfg := TestConfig()
	cfg.VolumeBytes = 1 * units.GB
	cfg.MaxAge = 6
	cfg.AgeStep = 2
	tables, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Figure6 returned %d tables", len(tables))
	}
	full := tables[2]
	loose := findSeries(t, full, "90.0% full - 1G")
	tight := findSeries(t, full, "97.5% full - 1G")
	lLast, _ := loose.Last()
	tLast, _ := tight.Last()
	if tLast.Y < lLast.Y {
		t.Errorf("97.5%% full (%.2f) should fragment at least as much as 90%% (%.2f)", tLast.Y, lLast.Y)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := TestConfig()
	run := func() string {
		tables, err := Figure4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tables[0].CSV()
	}
	if run() != run() {
		t.Fatal("experiment output not deterministic")
	}
}

// TestShardSweep asserts the Figure 6 extension's measured shape: at
// fixed total volume the free-pool series confirms each shard's pool
// shrinks ~1/N, and — as in this reproduction's own Figure 6b at small
// volumes — the tighter pools recycle a lone writer's constant-size
// objects, so fragmentation does NOT grow with shard depth; the paper's
// production-scale prediction inverts here (see ShardSweep's notes).
func TestShardSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	cfg := shapeConfig()
	cfg.MaxShards = 16
	cfg.MaxAge = 16 // churn the sweep to age 8, deep enough to converge
	tables, err := ShardSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("ShardSweep returned %d tables", len(tables))
	}
	frags, pool := tables[0], tables[1]
	for _, backend := range []string{"Filesystem", "Database"} {
		s := findSeries(t, frags, backend)
		solo, deep := mustY(t, s, 1), mustY(t, s, 16)
		if deep > solo {
			t.Errorf("%s: 16-way sharding (%.2f frags/obj) fragmented more than 1 volume (%.2f) — the measured recycling trend reversed", backend, deep, solo)
		}
		if solo < 1 || deep < 1 {
			t.Errorf("%s: fragments/object below 1: solo=%.2f deep=%.2f", backend, solo, deep)
		}
		p := findSeries(t, pool, backend)
		if p1, p16 := mustY(t, p, 1), mustY(t, p, 16); p16 >= p1/4 {
			t.Errorf("%s: per-shard free pool did not shrink: %.1f -> %.1f objects", backend, p1, p16)
		}
	}
	// The per-shard breakdown covers every shard of the deepest sweep.
	if got := len(tables[3].Series[0].Points); got != 16 {
		t.Errorf("breakdown has %d shards, want 16", got)
	}
}

// TestInterleaveSweep exercises the concurrent-writer experiment: the
// sweep runs clean at every k, reports fragments/object per arm on both
// backends, and the group-commit pipeline actually coalesces once more
// than one stream is writing. Direction is asserted only for the
// pipeline (batch size), not fragmentation: at miniature scale tight
// free pools recycle and the §6 interleaving penalty is within noise —
// the default-scale fragbench run is where the trend is measured.
func TestInterleaveSweep(t *testing.T) {
	cfg := TestConfig()
	cfg.StreamCounts = []int{1, 8}
	tables, err := InterleaveSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("InterleaveSweep returned %d tables", len(tables))
	}
	frags, batch := tables[0], tables[2]
	for _, backend := range []string{"Filesystem", "Database"} {
		f := findSeries(t, frags, backend)
		if solo, deep := mustY(t, f, 1), mustY(t, f, 8); solo < 1 || deep < 1 {
			t.Errorf("%s: fragments/object below 1: k1=%.2f k8=%.2f", backend, solo, deep)
		}
		b := findSeries(t, batch, backend)
		if got := mustY(t, b, 1); got != 1 {
			t.Errorf("%s: single stream batched %.2f commits/force, want exactly 1", backend, got)
		}
		if got := mustY(t, b, 8); got <= 1 {
			t.Errorf("%s: 8 streams coalesced only %.2f commits/force", backend, got)
		}
	}
}

// TestTraceReplaySweep pins the tracereplay acceptance property at test
// scale: the k=1 arm replays the recorded log in its original order and
// must land EXACTLY on the synthetic single-writer baseline — same
// fragments/object the recording store converged to — while every k>1
// arm still runs clean through the group-commit pipeline.
func TestTraceReplaySweep(t *testing.T) {
	cfg := TestConfig()
	cfg.StreamCounts = []int{1, 4}
	tables, err := TraceReplaySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("TraceReplaySweep returned %d tables", len(tables))
	}
	frags := tables[0]
	for _, backend := range []string{"Filesystem", "Database"} {
		f := findSeries(t, frags, backend)
		solo, deep := mustY(t, f, 1), mustY(t, f, 4)
		if solo < 1 || deep < 1 {
			t.Errorf("%s: fragments/object below 1: k1=%.2f k4=%.2f", backend, solo, deep)
		}
		// The k=1 replay and the recording run execute the identical op
		// sequence on identical stores, so their layouts must agree: pin
		// it by replaying twice and comparing the arms.
		again, err := TraceReplaySweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustY(t, findSeries(t, again[0], backend), 1); got != solo {
			t.Errorf("%s: k=1 replay not deterministic: %.4f vs %.4f", backend, got, solo)
		}
		break // one determinism re-run covers both backends' tables
	}
}

// TestTraceReplayFromFile pins the -trace FILE path: a hand-written v2
// trace with stream ids replays through the sweep.
func TestTraceReplayFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ops.trace"
	var lines []string
	for i := 0; i < 12; i++ {
		lines = append(lines, fmt.Sprintf("put k%02d %d %d", i, 4<<20, i%3+1))
	}
	for i := 0; i < 12; i++ {
		lines = append(lines, fmt.Sprintf("replace k%02d %d %d", i, 4<<20, i%3+1))
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.StreamCounts = []int{1, 3}
	cfg.TracePath = path
	tables, err := TraceReplaySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"Filesystem", "Database"} {
		f := findSeries(t, tables[0], backend)
		if got := mustY(t, f, 3); got < 1 {
			t.Errorf("%s: k=3 file replay frags %.2f", backend, got)
		}
	}

	// An op-less trace file must error, not silently fall back to
	// recording synthetic churn under the user's trace name.
	empty := dir + "/empty.trace"
	if err := os.WriteFile(empty, []byte("# only comments\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.TracePath = empty
	if _, err := TraceReplaySweep(cfg); err == nil || !strings.Contains(err.Error(), "no operations") {
		t.Fatalf("empty trace file: err = %v, want 'no operations'", err)
	}
}

// TestReadCacheSweep pins the read-path acceptance shape at test
// scale: with a Zipf read mix over an aged layout, the hit rate rises
// with cache capacity, effective read MB/s rises with the hit rate,
// and every reported value is finite — no Inf/NaN even when most reads
// are served at memory speed.
func TestReadCacheSweep(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheBytes = []int64{0, 16 * units.MB, 512 * units.MB}
	tables, err := ReadCacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("ReadCacheSweep returned %d tables", len(tables))
	}
	hits, tput := tables[0], tables[1]
	for _, backend := range []string{"Filesystem", "Database"} {
		h := findSeries(t, hits, backend)
		if got := mustY(t, h, 0); got != 0 {
			t.Errorf("%s: hit rate %.2f without a cache", backend, got)
		}
		small, big := mustY(t, h, 16), mustY(t, h, 512)
		if small <= 0 {
			t.Errorf("%s: no hits at 16M", backend)
		}
		if big < small {
			t.Errorf("%s: hit rate fell with capacity: %.2f at 16M vs %.2f at 512M", backend, small, big)
		}
		tp := findSeries(t, tput, backend)
		cold, warm := mustY(t, tp, 0), mustY(t, tp, 512)
		if warm <= cold {
			t.Errorf("%s: cache did not raise read throughput: %.1f vs %.1f MB/s", backend, cold, warm)
		}
		for _, p := range append(append([]stats.Point{}, h.Points...), tp.Points...) {
			if math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				t.Fatalf("%s: non-finite reported value %v at x=%g", backend, p.Y, p.X)
			}
		}
	}
}
