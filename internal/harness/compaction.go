package harness

import (
	"context"
	"fmt"

	"repro/internal/blob"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// defaultDutyCycles is the sweep of the "compact" experiment: off, a
// light background trickle, and an aggressive half-time compactor.
var defaultDutyCycles = []float64{0, 0.1, 0.5}

// dutyCycles returns the configured sweep points (Config.DutyCycles or
// the 0/0.1/0.5 default).
func (c Config) dutyCycles() []float64 {
	if len(c.DutyCycles) > 0 {
		return c.DutyCycles
	}
	return defaultDutyCycles
}

// compactionSteps is the number of churn increments between the aging
// point and MaxAge; each increment ends in an idle vclock window where
// the compactor may catch up to its duty-cycle share.
const compactionSteps = 8

// CompactionSweep answers the question §3.4 raises but never measures:
// does online defragmentation pay for itself? Each backend is aged to
// MaxAge/2 so fragmentation is established, then churned to MaxAge with
// an online compactor active at each duty cycle (0 = off). The churn
// runs in increments: during each one the compactor rides along as a
// background worker racing the live stream, and the idle window at the
// increment boundary lets it catch up — synchronously but still duty
// gated — to its share of the increment's virtual time. Rewrites charge
// full read+write disk cost on the shared virtual clock, and the
// measured span covers churn and catch-up alike, so the MB/s column
// already contains the compaction tax that the fragments/object column
// shows the benefit of.
func CompactionSweep(c Config) ([]*stats.Table, error) {
	duties := c.dutyCycles()
	objSize := units.RoundUp(c.VolumeBytes/400, 64*units.KB)
	dist := workload.Constant{Size: objSize}
	preAge := c.MaxAge / 2
	endAge := c.MaxAge

	frags := stats.NewTable(
		fmt.Sprintf("Online compaction: fragments/object at age %.1f vs duty cycle (%s objects)",
			endAge, units.FormatBytes(objSize)),
		"Duty cycle", "Fragments/object")
	tput := stats.NewTable("Online compaction: churn throughput vs duty cycle (rewrite tax included)",
		"Duty cycle", "MB/sec")

	var latTables []*stats.Table
	for _, kind := range []string{"database", "filesystem"} {
		name := "Database"
		if kind == "filesystem" {
			name = "Filesystem"
		}
		fragSeries := frags.AddSeries(name)
		tputSeries := tput.AddSeries(name)

		for _, duty := range duties {
			// Each arm rebuilds the same seeded layout, so the only
			// difference between duty points is the compactor.
			clock := vclock.New()
			p := c.newProbe(fmt.Sprintf("compact %s duty=%g", kind, duty), clock, "")
			var store blob.Store
			var err error
			switch kind {
			case "database":
				store, err = core.NewDBStore(clock, c.storeOptions(64*units.KB)...)
			case "filesystem":
				store, err = core.NewFileStore(clock, c.storeOptions(64*units.KB)...)
			}
			if err != nil {
				return nil, err
			}
			// The obs layer wraps the whole chain, so compactor rewrites
			// (which execute through the top) are timed as store.compact
			// alongside the foreground ops they race.
			top := p.wrap(store, "store")
			runner := workload.NewRunner(top, dist, c.Seed)
			if _, err := runner.BulkLoad(c.Occupancy); err != nil {
				return nil, fmt.Errorf("compact %s load: %w", kind, err)
			}
			if _, err := runner.ChurnToAge(preAge, workload.ChurnOptions{}); err != nil {
				return nil, fmt.Errorf("compact %s pre-churn: %w", kind, err)
			}
			before := meanFrags(store)

			var fleet *compact.Fleet
			var bg workload.Background
			if duty > 0 {
				fleet, err = compact.NewFleet(top, compact.Config{DutyCycle: duty})
				if err != nil {
					return nil, fmt.Errorf("compact %s duty %g: %w", kind, duty, err)
				}
				bg = fleet
			}
			// The latency ledger covers the measured churn only; the
			// collector attaches after setup so op quantiles describe the
			// compactor-contended phase.
			p.reset()
			runner.WithCollector(p.collector())
			ctx := context.Background()
			w := vclock.StartWatch(store.Clock())
			var churnBytes int64
			for i := 1; i <= compactionSteps; i++ {
				age := preAge + (endAge-preAge)*float64(i)/compactionSteps
				res, err := runner.ChurnToAge(age, workload.ChurnOptions{Background: bg})
				if err != nil {
					return nil, fmt.Errorf("compact %s churn to %.2f: %w", kind, age, err)
				}
				churnBytes += res.Bytes
				if fleet != nil {
					fleet.CatchUp(ctx)
				}
			}
			mbps := units.MBps(churnBytes, w.Seconds())
			f := meanFrags(store)
			fragSeries.Add(duty, f)
			tputSeries.Add(duty, mbps)
			if fleet != nil {
				fleet.PublishMetrics(p.registry(), "compact")
				fleet.PublishShardMetrics(p.registry(), "compact")
				st := fleet.Stats()
				frags.Note("%s duty %.2f: %d rewrites (%s), %.1f virtual s compactor-busy; frags %.2f → %.2f",
					name, duty, st.Rewrites, units.FormatBytes(st.RewriteBytes), st.BusySeconds, before, f)
				c.logf("compact: %s duty %.2f: %v (frags %.2f → %.2f, churn %.2f MB/s)",
					kind, duty, st, before, f, mbps)
			} else {
				c.logf("compact: %s compactor off: frags %.2f → %.2f, churn %.2f MB/s",
					kind, before, f, mbps)
			}
			c.reportPhase("compact", fmt.Sprintf("%s duty=%g", kind, duty), p)
			if duty == duties[len(duties)-1] {
				latTables = appendTable(latTables, p.latencyTable(
					fmt.Sprintf("Compaction %s duty=%g: per-op virtual-time latency (churn phase)", name, duty),
					compactionLatencyMetrics))
			}
			blob.CloseStore(store)
		}
	}
	tput.Note("Duty cycle bounds the compactor's share of virtual time; its rewrites charge full read+write cost on the shared clock.")
	for _, t := range latTables {
		t.Note("store.compact is one compactor rewrite (full read+write through the chain); foreground op quantiles include virtual time the compactor charged while they were in flight")
	}
	return append([]*stats.Table{frags, tput}, latTables...), nil
}

// compactionLatencyMetrics are the histograms the compact sweep
// prints: foreground op latencies under compactor contention plus the
// per-rewrite cost of the compactor itself.
var compactionLatencyMetrics = []string{
	"op.create", "op.replace", "op.delete", "op.read", "store.compact",
}
