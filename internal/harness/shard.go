package harness

import (
	"errors"
	"fmt"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// shardCounts returns the sweep points 1, 2, 4 ... max (max 0 takes 16).
func shardCounts(max int) []int {
	if max <= 0 {
		max = 16
	}
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// shardedStore builds an n-shard store of the given backend kind, all
// children on one shared clock, splitting c.VolumeBytes evenly so every
// sweep point manages the same total capacity.
func (c Config) shardedStore(kind string, n int, writeReq int64) (*shard.Store, error) {
	sub := c
	sub.VolumeBytes = c.VolumeBytes / int64(n)
	opts := sub.storeOptions(writeReq)
	clock := vclock.New()
	children := make([]blob.Store, n)
	for i := range children {
		var err error
		switch kind {
		case "filesystem":
			children[i], err = core.NewFileStore(clock, opts...)
		case "database":
			children[i], err = core.NewDBStore(clock, opts...)
		default:
			return nil, fmt.Errorf("harness: unknown shard backend %q", kind)
		}
		if err != nil {
			return nil, err
		}
	}
	return shard.New(children...)
}

// ShardSweep sweeps shard count at fixed total volume: the paper's
// Figure 6 finds fragmentation governed by the size of the free pool a
// writer allocates from, and splitting one volume into N shards divides
// that free pool by N — the regime every production multi-volume blob
// service operates in. Object size scales with the volume (~400 objects
// at capacity, the paper's 10 MB at its 4 GB bench scale) so the
// per-shard free pool is measured in objects, Figure 6's axis.
//
// Measured result: at simulation scale the prediction inverts — smaller
// per-shard pools recycle a single writer's same-sized objects more
// tightly, so fragments/object falls as shards multiply, exactly as this
// reproduction's own Figure 6b behaves at small volumes. The cost of
// deep sharding appears instead as refused safe writes (a nearly-full
// shard cannot hold old and new version at once) and the throughput
// lost to them; both are reported alongside fragmentation.
func ShardSweep(c Config) ([]*stats.Table, error) {
	counts := shardCounts(c.MaxShards)
	objSize := units.RoundUp(c.VolumeBytes/400, 64*units.KB)
	dist := workload.Constant{Size: objSize}
	targetAge := c.MaxAge / 2

	frags := stats.NewTable(
		fmt.Sprintf("Sharded store: fragmentation vs shard count (%s total, %s objects, age %.1f)",
			units.FormatBytes(c.VolumeBytes), units.FormatBytes(objSize), targetAge),
		"Shards", "Fragments/object")
	pool := stats.NewTable("Sharded store: per-shard free pool at fixed total volume",
		"Shards", "Free objects/shard")
	tput := stats.NewTable("Sharded store: churn write throughput vs shard count",
		"Shards", "MB/sec")
	breakdown := stats.NewTable(
		fmt.Sprintf("Sharded store: per-shard breakdown at %d filesystem shards", counts[len(counts)-1]),
		"Shard", "Fragments/object")
	perShard := breakdown.AddSeries("Fragments/object")

	for _, kind := range []string{"database", "filesystem"} {
		name := "Database"
		if kind == "filesystem" {
			name = "Filesystem"
		}
		fragSeries := frags.AddSeries(name)
		poolSeries := pool.AddSeries(name)
		tputSeries := tput.AddSeries(name)
		for _, n := range counts {
			store, err := c.shardedStore(kind, n, 64*units.KB)
			if err != nil {
				return nil, err
			}
			runner := workload.NewRunner(store, dist, c.Seed)
			// Rendezvous placement is uniform, not perfectly even: at high
			// shard counts an unlucky shard can fill before the aggregate
			// target is reached, and a nearly-full shard can refuse a safe
			// write mid-churn. Both are the sharded regime itself, so the
			// run tolerates them instead of failing.
			if _, err := runner.BulkLoad(c.Occupancy); err != nil && !errors.Is(err, blob.ErrNoSpaceLeft) {
				return nil, fmt.Errorf("shard sweep %s n=%d load: %w", kind, n, err)
			}
			res, err := runner.ChurnToAge(targetAge, workload.ChurnOptions{TolerateNoSpace: true})
			if err != nil {
				return nil, fmt.Errorf("shard sweep %s n=%d churn: %w", kind, n, err)
			}
			snap := store.Snapshot()
			freePool := snap.Shards[0].FreePoolObjects(objSize)
			for _, si := range snap.Shards[1:] {
				freePool += si.FreePoolObjects(objSize)
			}
			freePool /= float64(len(snap.Shards))
			fragSeries.Add(float64(n), snap.MeanFragments)
			poolSeries.Add(float64(n), freePool)
			tputSeries.Add(float64(n), res.MBps)
			c.logf("shard %s n=%d: %.2f frags/obj, %.1f free objs/shard, %.2f MB/s (%d skipped), imbalance %.2f",
				kind, n, snap.MeanFragments, freePool, res.MBps, res.Skipped, snap.LiveImbalance)
			if kind == "filesystem" && n == counts[len(counts)-1] {
				for _, si := range snap.Shards {
					perShard.Add(float64(si.Index), si.MeanFragments)
				}
				breakdown.Note("live-byte imbalance (CV) %.2f across %d shards; %s live, %s retired in total",
					snap.LiveImbalance, len(snap.Shards),
					units.FormatBytes(snap.LiveBytes), units.FormatBytes(snap.RetiredBytes))
			}
		}
	}
	frags.Note("fixed total volume: N shards divide the writer's free pool by N — Figure 6 predicts fragmentation rises as the pool shrinks, but at this scale tight pools RECYCLE a lone writer's constant-size objects and fragmentation falls instead (cf. Figure 6b's small-volume arm)")
	tput.Note("deep sharding's real cost here: nearly-full shards refuse safe writes (old+new coexist until commit), skipping ops and shaving throughput")
	pool.Note("the paper's comfort threshold is ~400 free objects; deep sharding pushes each shard far below it")
	return []*stats.Table{frags, pool, tput, breakdown}, nil
}
