package harness

import (
	"repro/internal/blob"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// This file is the experiments' observability plumbing. Each
// instrumented arm gets a probe: a fresh registry plus a collector
// bound to the arm's virtual clock and phase label (and the run's
// shared tracer). The probe is nil when observability is off, and
// every method tolerates that, so the experiments read the same with
// or without -obs.

// probe bundles one experiment arm's observability state.
type probe struct {
	reg *obs.Registry
	col *obs.Collector
}

// newProbe builds an arm's probe, or nil when observability is off.
// missLayer names the obs layer whose read spans mark a cache miss
// (empty for arms without a cache).
func (c Config) newProbe(phase string, clock *vclock.Clock, missLayer string) *probe {
	if !c.obsEnabled() {
		return nil
	}
	reg := obs.NewRegistry()
	return &probe{
		reg: reg,
		col: &obs.Collector{
			Registry:  reg,
			Tracer:    c.Tracer,
			Clock:     clock,
			Phase:     phase,
			MissLayer: missLayer,
		},
	}
}

// collector returns the arm's op collector (nil when off), for
// Runner/ConcurrentRunner.WithCollector and ReadOptions.Collector.
func (p *probe) collector() *obs.Collector {
	if p == nil {
		return nil
	}
	return p.col
}

// registry returns the arm's registry (nil when off), for
// obs.NewCommitObserver and Fleet.PublishMetrics.
func (p *probe) registry() *obs.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// wrap instruments store as the named obs layer; a nil probe returns
// store unchanged.
func (p *probe) wrap(store blob.Store, layer string) blob.Store {
	if p == nil {
		return store
	}
	return obs.Wrap(store, layer, p.reg)
}

// reset zeroes the arm's metrics in place — the phase separation a
// warm-up pass needs (alongside cache.ResetStats one layer down).
func (p *probe) reset() {
	if p != nil {
		p.reg.Reset()
	}
}

// latencyTable renders the named histograms as a percentile table
// (p50/p90/p99/p99.9/max, virtual ms); nil when the probe is off or
// none of the names recorded anything.
func (p *probe) latencyTable(title string, names []string) *stats.Table {
	if p == nil {
		return nil
	}
	t := obs.LatencyTable(title, p.reg.Snapshot(), names)
	if len(t.Series) == 0 {
		return nil
	}
	return t
}

// reportPhase appends the arm's full metric snapshot to the run
// report's section for the given experiment; a nil probe or absent
// report is a no-op.
func (c Config) reportPhase(expID, phase string, p *probe) {
	if p == nil || c.Report == nil {
		return
	}
	c.Report.Section(expID).AddPhase(phase, p.reg.Snapshot())
}

// appendTable appends t to tables when non-nil — the latencyTable
// pattern, which returns nil with observability off.
func appendTable(tables []*stats.Table, t *stats.Table) []*stats.Table {
	if t != nil {
		tables = append(tables, t)
	}
	return tables
}
