package harness

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Table1 reports the simulated test-system configuration, the analog of
// the paper's Table 1 hardware description.
func Table1(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Table 1: Configuration of the (simulated) test system", "", "")
	d := disk.New(disk.DefaultGeometry(c.VolumeBytes), vclock.New(), disk.MetadataMode, disk.WithoutOwnerMap())
	geo := d.Geometry()
	t.Note("%s", d.String())
	t.Note("paper hardware: Tyan S2882, 1.8GHz Opteron 244, 2GB ECC, 4x Seagate 400GB ST3400832AS 7200rpm SATA")
	t.Note("cluster size %s, outer-band streaming %.0f MB/s, inner %.0f MB/s",
		units.FormatBytes(geo.ClusterSize), d.SequentialBandwidthMBps(0), d.SequentialBandwidthMBps(geo.Clusters-1))
	t.Note("filesystem analog: NTFS-style run cache, %d-op log flush, safe writes (ReplaceFile)", fs.DefaultConfig(c.VolumeBytes).LogFlushOps)
	t.Note("database analog: %s pages, %s extents, bulk-logged, dedicated log drive, %s write requests",
		units.FormatBytes(db.PageSize), units.FormatBytes(db.ExtentSize), units.FormatBytes(db.DefaultConfig().WriteRequestSize))
	t.Note("workload: get/put with safe-write updates; storage age = replaced bytes / live bytes (§4.4)")
	return []*stats.Table{t}, nil
}

// Figure1 measures read throughput for 256 KB, 512 KB and 1 MB objects on
// both systems after bulk load and after two and four overwrites of every
// object — the paper's break-even-migration result.
func Figure1(c Config) ([]*stats.Table, error) {
	sizes := []int64{256 * units.KB, 512 * units.KB, 1 * units.MB}
	titles := []string{
		"Figure 1a: Read Throughput After Bulk Load",
		"Figure 1b: Read Throughput After Two Overwrites",
		"Figure 1c: Read Throughput After Four Overwrites",
	}
	ages := []float64{0, 2, 4}
	tables := make([]*stats.Table, len(ages))
	series := make(map[string][]*stats.Series) // backend -> per-age series
	for i, title := range titles {
		tables[i] = stats.NewTable(title, "Object Size (KB)", "MB/sec")
	}
	for _, backend := range []string{"Database", "Filesystem"} {
		for i := range ages {
			series[backend] = append(series[backend], tables[i].AddSeries(backend))
		}
	}
	for _, size := range sizes {
		c.logf("fig1: object size %s", units.FormatBytes(size))
		fsStore, dbStore, err := c.pair(64 * units.KB)
		if err != nil {
			return nil, err
		}
		for _, st := range []struct {
			repo blob.Store
			name string
		}{{dbStore, "Database"}, {fsStore, "Filesystem"}} {
			runner := workload.NewRunner(st.repo, workload.Constant{Size: size}, c.Seed)
			if _, err := runner.BulkLoad(c.Occupancy); err != nil {
				return nil, fmt.Errorf("fig1 %s: %w", st.name, err)
			}
			for i, age := range ages {
				if age > 0 {
					if _, err := runner.ChurnToAge(age, workload.ChurnOptions{}); err != nil {
						return nil, fmt.Errorf("fig1 %s churn: %w", st.name, err)
					}
				}
				res, err := runner.MeasureReadThroughput(c.ReadSamples)
				if err != nil {
					return nil, err
				}
				series[st.name][i].Add(float64(size/units.KB), res.MBps)
				c.logf("  %s %s age %.0f: %.2f MB/s", st.name, units.FormatBytes(size), age, res.MBps)
			}
		}
	}
	tables[2].Note("paper: after aging, NTFS outperforms SQL Server above 256KB; below, the database stays ahead")
	return tables, nil
}

// Figure2 traces fragments/object for 10 MB constant-size objects over
// storage ages 0..MaxAge on both systems.
func Figure2(c Config) ([]*stats.Table, error) {
	return fragmentationCurve(c, workload.Constant{Size: 10 * units.MB},
		"Figure 2: Long Term Fragmentation With 10 MB Objects")
}

// Figure3 is Figure2 for 256 KB objects: both systems converge to about
// one fragment per 64 KB write request.
func Figure3(c Config) ([]*stats.Table, error) {
	tables, err := fragmentationCurve(c, workload.Constant{Size: 256 * units.KB},
		"Figure 3: Long Term Fragmentation With 256K Objects")
	if err == nil {
		tables[0].Note("paper: both systems converge to ~4 fragments/object, one per 64KB write request")
	}
	return tables, err
}

// fragmentationCurve runs the aging workload on both backends and reports
// mean fragments/object per age.
func fragmentationCurve(c Config, dist workload.SizeDist, title string) ([]*stats.Table, error) {
	t := stats.NewTable(title, "Storage Age", "Fragments/object")
	fsStore, dbStore, err := c.pair(64 * units.KB)
	if err != nil {
		return nil, err
	}
	dbSeries, err := c.agingCurve(dbStore, dist, "Database", func(r *workload.Runner) float64 {
		return meanFrags(r.Repo())
	})
	if err != nil {
		return nil, err
	}
	fsSeries, err := c.agingCurve(fsStore, dist, "Filesystem", func(r *workload.Runner) float64 {
		return meanFrags(r.Repo())
	})
	if err != nil {
		return nil, err
	}
	t.Series = append(t.Series, dbSeries, fsSeries)
	return []*stats.Table{t}, nil
}

// Figure4 measures 512 KB write throughput during bulk load and during
// the churn intervals from age 0 to 2 and 2 to 4.
func Figure4(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 4: 512K Write Throughput Over Time", "Storage Age", "MB/sec")
	fsStore, dbStore, err := c.pair(64 * units.KB)
	if err != nil {
		return nil, err
	}
	for _, st := range []struct {
		repo blob.Store
		name string
	}{{dbStore, "Database"}, {fsStore, "Filesystem"}} {
		s := t.AddSeries(st.name)
		runner := workload.NewRunner(st.repo, workload.Constant{Size: 512 * units.KB}, c.Seed)
		res, err := runner.BulkLoad(c.Occupancy)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", st.name, err)
		}
		s.Add(0, res.MBps) // "During bulk load (zero)"
		c.logf("fig4 %s bulk: %.2f MB/s", st.name, res.MBps)
		for _, age := range []float64{2, 4} {
			res, err := runner.ChurnToAge(age, workload.ChurnOptions{})
			if err != nil {
				return nil, fmt.Errorf("fig4 %s churn: %w", st.name, err)
			}
			s.Add(age, res.MBps)
			c.logf("fig4 %s age %.0f: %.2f MB/s", st.name, age, res.MBps)
		}
	}
	t.Note("write throughput is measured during fragmentation: the age-2 value is the average over ages 0..2 (§5.3)")
	return []*stats.Table{t}, nil
}

// Figure5 compares constant-size and uniform-size 10 MB-mean objects on
// each system — the paper's surprising result that constant sizes
// fragment just as badly.
func Figure5(c Config) ([]*stats.Table, error) {
	mean := int64(10 * units.MB)
	dists := []workload.SizeDist{
		workload.Constant{Size: mean},
		workload.UniformAround(mean),
	}
	distName := []string{"Constant", "Uniform"}
	dbTable := stats.NewTable("Figure 5a: Database Fragmentation: Blob Distributions", "Storage Age", "Fragments/object")
	fsTable := stats.NewTable("Figure 5b: Filesystem Fragmentation: Blob Distributions", "Storage Age", "Fragments/object")
	for i, dist := range dists {
		fsStore, dbStore, err := c.pair(64 * units.KB)
		if err != nil {
			return nil, err
		}
		c.logf("fig5: %s distribution, database", distName[i])
		dbSeries, err := c.agingCurve(dbStore, dist, distName[i], func(r *workload.Runner) float64 {
			return meanFrags(r.Repo())
		})
		if err != nil {
			return nil, err
		}
		dbTable.Series = append(dbTable.Series, dbSeries)
		c.logf("fig5: %s distribution, filesystem", distName[i])
		fsSeries, err := c.agingCurve(fsStore, dist, distName[i], func(r *workload.Runner) float64 {
			return meanFrags(r.Repo())
		})
		if err != nil {
			return nil, err
		}
		fsTable.Series = append(fsTable.Series, fsSeries)
	}
	dbTable.Note("paper: constant-size objects show no better fragmentation behaviour than uniform sizes with the same mean")
	return []*stats.Table{dbTable, fsTable}, nil
}

// Figure6 sweeps volume size and occupancy: a small volume and a 10x
// volume at 50% full on both systems, plus the filesystem at 90% and
// 97.5% occupancy on both volumes.
func Figure6(c Config) ([]*stats.Table, error) {
	smallV := c.VolumeBytes
	bigV := c.VolumeBytes * 10
	dist := workload.Constant{Size: 10 * units.MB}
	volName := func(v int64) string { return units.FormatBytes(v) }

	dbTable := stats.NewTable("Figure 6a: Database Fragmentation: Different Volumes", "Storage Age", "Fragments/object")
	fsTable := stats.NewTable("Figure 6b: Filesystem Fragmentation: Different Volumes (50% full)", "Storage Age", "Fragments/object")
	fsFullTable := stats.NewTable("Figure 6c: Filesystem Fragmentation: Different Volumes (90%, 97.5% full)", "Storage Age", "Fragments/object")

	for _, v := range []int64{smallV, bigV} {
		sub := c
		sub.VolumeBytes = v
		if v >= 8*units.GB {
			sub.NoOwnerMap = true
		}
		// Database, 50% full; the paper measures the database arm to
		// half the age depth (its Figure 6a x-axis stops at 5).
		dbCfg := sub
		dbCfg.MaxAge = c.MaxAge / 2
		c.logf("fig6: database %s 50%% full", volName(v))
		_, dbStore, err := dbCfg.pair(64 * units.KB)
		if err != nil {
			return nil, err
		}
		dbSeries, err := dbCfg.agingCurve(dbStore, dist, "50% full - "+volName(v), func(r *workload.Runner) float64 {
			return meanFrags(r.Repo())
		})
		if err != nil {
			return nil, err
		}
		dbTable.Series = append(dbTable.Series, dbSeries)

		// Filesystem, 50% full.
		c.logf("fig6: filesystem %s 50%% full", volName(v))
		fsStore, _, err := sub.pair(64 * units.KB)
		if err != nil {
			return nil, err
		}
		fsSeries, err := sub.agingCurve(fsStore, dist, "50% full - "+volName(v), func(r *workload.Runner) float64 {
			return meanFrags(r.Repo())
		})
		if err != nil {
			return nil, err
		}
		fsTable.Series = append(fsTable.Series, fsSeries)

		// Filesystem at high occupancy.
		for _, occ := range []float64{0.90, 0.975} {
			occCfg := sub
			occCfg.Occupancy = occ
			c.logf("fig6: filesystem %s %.1f%% full", volName(v), occ*100)
			fsStore, _, err := occCfg.pair(64 * units.KB)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%.1f%% full - %s", occ*100, volName(v))
			s, err := occCfg.agingCurve(fsStore, dist, name, func(r *workload.Runner) float64 {
				return meanFrags(r.Repo())
			})
			if err != nil {
				return nil, err
			}
			fsFullTable.Series = append(fsFullTable.Series, s)
		}
	}
	fsTable.Note("paper: at 50%% full the larger volume converges lower (4-5 vs 11-12 fragments/object on 400G vs 40G)")
	fsFullTable.Note("paper: other than the 50%% full run, volume size has little impact on fragmentation")
	return []*stats.Table{dbTable, fsTable, fsFullTable}, nil
}
