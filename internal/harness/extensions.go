package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/fs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Pathological reproduces §5.3's observation: on an artificially and
// pathologically fragmented NTFS volume, fragmentation slowly DECREASES
// over time — evidence the filesystem's curve is an asymptote approached
// from both sides.
func Pathological(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Pathological volume recovery", "Storage Age", "Fragments/object")
	dist := workload.Constant{Size: 10 * units.MB}
	fsStore, err := core.NewFileStore(vclock.New(), c.storeOptions(64*units.KB)...)
	if err != nil {
		return nil, err
	}
	runner := workload.NewRunner(fsStore, dist, c.Seed)
	if _, err := runner.BulkLoad(c.Occupancy); err != nil {
		return nil, err
	}
	shatteredMean := fsStore.Volume().ShatterFiles(16)
	c.logf("patho: shattered to %.1f fragments/object", shatteredMean)
	s := t.AddSeries("Filesystem (pre-shattered)")
	for _, age := range c.agePoints() {
		if age > 0 {
			if _, err := runner.ChurnToAge(age, workload.ChurnOptions{}); err != nil {
				return nil, err
			}
		}
		s.Add(age, meanFrags(fsStore))
		c.logf("patho age %.1f: %.2f frags/object", age, meanFrags(fsStore))
	}
	t.Note("the volume starts artificially shattered; churn slowly repairs it toward the natural asymptote (§5.3)")
	return []*stats.Table{t}, nil
}

// SizeHintAblation compares the stock filesystem against the two
// interface fixes the paper proposes (§5.4, §6): passing the known object
// size at creation, and delayed allocation.
func SizeHintAblation(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Size-hint / delayed-allocation ablation", "Storage Age", "Fragments/object")
	dist := workload.Constant{Size: 10 * units.MB}
	variants := []struct {
		name  string
		extra []blob.Option
	}{
		{"No hint (stock)", nil},
		{"Size hint", []blob.Option{blob.WithSizeHint()}},
		{"Delayed allocation", []blob.Option{blob.WithDelayedAllocation()}},
	}
	for _, v := range variants {
		opts := append(c.storeOptions(64*units.KB), v.extra...)
		store, err := core.NewFileStore(vclock.New(), opts...)
		if err != nil {
			return nil, err
		}
		c.logf("hint: variant %q", v.name)
		s, err := c.agingCurve(store, dist, v.name, func(r *workload.Runner) float64 {
			return meanFrags(r.Repo())
		})
		if err != nil {
			return nil, err
		}
		t.Series = append(t.Series, s)
	}
	t.Note("§6: \"The ability to specify the size of the object before initial space allocation could reduce fragmentation.\"")
	return []*stats.Table{t}, nil
}

// WriteRequestSweep varies the client write-request size on both systems
// and measures fragmentation at a fixed storage age — the §5.3/§5.4
// observation that request size shapes long-term fragmentation.
func WriteRequestSweep(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Write request size sweep", "Request size (KB)", "Fragments/object")
	reqSizes := []int64{16 * units.KB, 64 * units.KB, 256 * units.KB, 1 * units.MB}
	targetAge := c.MaxAge / 2
	dist := workload.Constant{Size: 10 * units.MB}
	dbSeries := t.AddSeries("Database")
	fsSeries := t.AddSeries("Filesystem")
	for _, req := range reqSizes {
		c.logf("wreq: request size %s", units.FormatBytes(req))
		fsStore, dbStore, err := c.pair(req)
		if err != nil {
			return nil, err
		}
		for _, st := range []struct {
			repo   blob.Store
			series *stats.Series
		}{{dbStore, dbSeries}, {fsStore, fsSeries}} {
			runner := workload.NewRunner(st.repo, dist, c.Seed)
			if _, err := runner.BulkLoad(c.Occupancy); err != nil {
				return nil, err
			}
			if _, err := runner.ChurnToAge(targetAge, workload.ChurnOptions{}); err != nil {
				return nil, err
			}
			st.series.Add(float64(req/units.KB), meanFrags(st.repo))
		}
	}
	t.Note("fragments at storage age %.1f; larger append requests give the allocator more information (§5.4)", targetAge)
	return []*stats.Table{t}, nil
}

// InterleavedAppend measures what the paper's §6 leaves as future work:
// "interleaved append requests to multiple objects, which are likely to
// increase fragmentation." k writers append 64 KB requests round-robin
// to k fresh files on a clean volume.
func InterleavedAppend(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Interleaved append fragmentation", "Concurrent streams", "Fragments/file")
	s := t.AddSeries("Filesystem")
	const objSize = 10 * units.MB
	const req = 64 * units.KB
	for _, k := range []int{1, 2, 4, 8, 16} {
		drive := disk.New(disk.DefaultGeometry(c.VolumeBytes), vclock.New(), disk.MetadataMode, disk.WithoutOwnerMap())
		vol := fs.Format(drive, fs.Config{})
		files := make([]*fs.File, k)
		for i := range files {
			f, err := vol.Create(fmt.Sprintf("stream-%d", i))
			if err != nil {
				return nil, err
			}
			files[i] = f
		}
		for off := int64(0); off < objSize; off += req {
			for _, f := range files {
				if err := f.Append(req, nil); err != nil {
					return nil, err
				}
			}
		}
		total := 0
		for _, f := range files {
			if err := f.Close(); err != nil {
				return nil, err
			}
			total += f.Fragments()
		}
		mean := float64(total) / float64(k)
		s.Add(float64(k), mean)
		c.logf("ileave k=%d: %.2f fragments/file", k, mean)
	}
	t.Note("clean volume; interleaving alone defeats sequential-append detection (§6)")
	return []*stats.Table{t}, nil
}

// PolicyComparison replays the aging workload shape against the classic
// allocation policies of §3.2/§3.4 plus the NTFS-style run cache,
// measuring fragments/object over storage age. Object sizes are uniform
// around a 10 MB mean: with a bare allocator and no metadata traffic,
// constant sizes recycle perfectly under every policy (the §5.4
// intuition the real systems defeat), so the uniform distribution is
// what separates the policies. The buddy system never fragments
// externally but pays internal fragmentation instead.
func PolicyComparison(c Config) ([]*stats.Table, error) {
	t := stats.NewTable("Allocation policy comparison (uniform 5-15 MB objects, 90% full)", "Storage Age", "Fragments/object")
	clusters := c.VolumeBytes / (4 * units.KB)
	meanClusters := int64(10*units.MB) / (4 * units.KB)
	reqClusters := int64(64*units.KB) / (4 * units.KB)
	// Run the shoot-out under space pressure: with half the volume free
	// and random deallocation, every classic policy looks optimal — the
	// clean-initial-conditions blind spot §3.3 describes in standard
	// benchmarks. Differences emerge near full.
	occupancy := max(c.Occupancy, 0.9)

	policies := []struct {
		name string
		mk   func() alloc.Policy
	}{
		{"first-fit", func() alloc.Policy { return alloc.NewFirstFit(clusters) }},
		{"best-fit", func() alloc.Policy { return alloc.NewBestFit(clusters) }},
		{"worst-fit", func() alloc.Policy { return alloc.NewWorstFit(clusters) }},
		{"next-fit", func() alloc.Policy { return alloc.NewNextFit(clusters) }},
		{"buddy", func() alloc.Policy { return alloc.NewBuddy(clusters) }},
		{"ntfs-run-cache", func() alloc.Policy { return alloc.NewRunCache(clusters, 0.35) }},
	}
	for _, pol := range policies {
		p := pol.mk()
		rng := rand.New(rand.NewSource(c.Seed))
		s := t.AddSeries(pol.name)
		c.logf("policy: %s", pol.name)

		sampleSize := func() int64 {
			return meanClusters/2 + rng.Int63n(meanClusters+1)
		}
		allocObject := func(objClusters int64) ([]extent.Run, error) {
			// The run cache sees per-request appends like the real
			// filesystem; classic policies allocate whole objects (they
			// have no append interface).
			if rc, ok := p.(*alloc.RunCache); ok {
				var runs []extent.Run
				tail := int64(-1)
				for got := int64(0); got < objClusters; got += reqClusters {
					n := min(reqClusters, objClusters-got)
					rs, err := rc.AllocAppend(n, tail)
					if err != nil {
						return nil, err
					}
					runs = append(runs, rs...)
					tail = rs[len(rs)-1].End() - 1
				}
				return runs, nil
			}
			return p.Alloc(objClusters)
		}

		// Bulk load to occupancy.
		var objects [][]extent.Run
		target := int64(occupancy * float64(clusters))
		for used := int64(0); used+meanClusters <= target; {
			size := sampleSize()
			runs, err := allocObject(size)
			if err != nil {
				break // buddy's internal fragmentation fills earlier
			}
			objects = append(objects, runs)
			used += size
		}
		if len(objects) == 0 {
			return nil, fmt.Errorf("policy %s: no objects loaded", pol.name)
		}
		meanRuns := func() float64 {
			totalF := 0
			for _, o := range objects {
				// Merge physically adjacent runs as the fs layer would.
				f := 0
				for i, r := range o {
					if i == 0 || o[i-1].End() != r.Start {
						f++
					}
				}
				totalF += f
			}
			return float64(totalF) / float64(len(objects))
		}
		s.Add(0, meanRuns())
		ops := 0
		for _, age := range c.agePoints()[1:] {
			for gen := 0; gen < len(objects); gen++ {
				j := rng.Intn(len(objects))
				newRuns, err := allocObject(sampleSize())
				if err != nil {
					// Out of space (buddy rounding): skip this op.
					continue
				}
				for _, r := range objects[j] {
					p.Free(r)
				}
				objects[j] = newRuns
				ops++
				if rc, ok := p.(*alloc.RunCache); ok && ops%16 == 0 {
					rc.CommitLog()
				}
			}
			s.Add(age, meanRuns())
			c.logf("  %s age %.1f: %.2f", pol.name, age, meanRuns())
		}
	}
	t.Note("abstract replay (no disk timing); buddy allocates power-of-two blocks, trading internal for external fragmentation (§3.4)")
	return []*stats.Table{t}, nil
}
