// Package alloc implements the disk-space allocation policies discussed in
// the paper: the classic baselines from the malloc and filesystem
// literature (§3.2, §3.4 — first fit, best fit, worst fit, next fit, and
// the DTSS buddy system) and an NTFS-style run-cache allocator (§2) used
// by the filesystem substrate.
//
// Following the paper's borrowing from the malloc literature (Wilson et
// al.), the package separates *policies* (which free run to pick) from the
// *mechanism* (the offset- and size-indexed free-run trees in package
// extent).
//
// All policies allocate in clusters and may return multiple runs when a
// request cannot be satisfied contiguously — that is exactly the file
// fragmentation the paper measures.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/extent"
)

// ErrNoSpace is returned when the volume cannot satisfy a request.
var ErrNoSpace = errors.New("alloc: out of space")

// Policy is a cluster allocator. Implementations are not safe for
// concurrent use.
type Policy interface {
	// Name identifies the policy in benchmark output.
	Name() string

	// Alloc returns runs totalling exactly n clusters. The result may be
	// fragmented. It returns ErrNoSpace when fewer than n clusters are
	// free (partial allocations are never retained).
	Alloc(n int64) ([]extent.Run, error)

	// AllocAppend allocates n clusters for an append to an object whose
	// current last cluster is tail (tail < 0 for a fresh object).
	// Policies that detect sequential appends (the NTFS run cache) try to
	// extend at tail+1 before falling back to Alloc.
	AllocAppend(n, tail int64) ([]extent.Run, error)

	// Free returns a run to the pool.
	Free(r extent.Run)

	// FreeClusters reports the total free clusters.
	FreeClusters() int64
}

// fitKind selects the classic policy variant.
type fitKind int

const (
	firstFit fitKind = iota
	bestFit
	worstFit
	nextFit
)

// fitPolicy implements first/best/worst/next fit over a FreeIndex. When the
// request does not fit in any single run, it fragments by repeatedly taking
// the policy-preferred run (matching how real systems degrade: §2 "If that
// fails, the file is fragmented").
type fitPolicy struct {
	kind   fitKind
	name   string
	idx    *extent.FreeIndex
	cursor int64 // next-fit scan position
}

// NewFirstFit returns a lowest-offset first-fit allocator over a volume of
// the given size in clusters.
func NewFirstFit(clusters int64) Policy { return newFit(firstFit, "first-fit", clusters) }

// NewBestFit returns a smallest-sufficient-run allocator.
func NewBestFit(clusters int64) Policy { return newFit(bestFit, "best-fit", clusters) }

// NewWorstFit returns a largest-run allocator.
func NewWorstFit(clusters int64) Policy { return newFit(worstFit, "worst-fit", clusters) }

// NewNextFit returns a roving-cursor first-fit allocator.
func NewNextFit(clusters int64) Policy { return newFit(nextFit, "next-fit", clusters) }

func newFit(kind fitKind, name string, clusters int64) *fitPolicy {
	if clusters <= 0 {
		panic(fmt.Sprintf("alloc: bad volume size %d", clusters))
	}
	idx := extent.NewFreeIndex()
	idx.Free(extent.Run{Start: 0, Len: clusters})
	return &fitPolicy{kind: kind, name: name, idx: idx}
}

func (p *fitPolicy) Name() string        { return p.name }
func (p *fitPolicy) FreeClusters() int64 { return p.idx.FreeClusters() }
func (p *fitPolicy) Free(r extent.Run)   { p.idx.Free(r) }

func (p *fitPolicy) takeContig(n int64) (extent.Run, bool) {
	switch p.kind {
	case firstFit:
		return p.idx.TakeFirstFit(n)
	case bestFit:
		return p.idx.TakeBestFit(n)
	case worstFit:
		return p.idx.TakeWorstFit(n)
	case nextFit:
		r, cur, ok := p.idx.TakeNextFit(n, p.cursor)
		if ok {
			p.cursor = cur
		}
		return r, ok
	}
	panic("alloc: unknown fit kind")
}

func (p *fitPolicy) Alloc(n int64) ([]extent.Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: invalid request %d", n)
	}
	if p.idx.FreeClusters() < n {
		return nil, ErrNoSpace
	}
	if r, ok := p.takeContig(n); ok {
		return []extent.Run{r}, nil
	}
	// Fragment: repeatedly take the largest available run.
	var out []extent.Run
	remaining := n
	for remaining > 0 {
		r, ok := p.idx.TakeUpTo(remaining)
		if !ok {
			for _, u := range out { // roll back; cannot happen given guard
				p.idx.Free(u)
			}
			return nil, ErrNoSpace
		}
		out = append(out, r)
		remaining -= r.Len
	}
	return out, nil
}

func (p *fitPolicy) AllocAppend(n, tail int64) ([]extent.Run, error) {
	// Classic policies ignore append context.
	_ = tail
	return p.Alloc(n)
}
