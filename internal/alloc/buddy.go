package alloc

import (
	"fmt"
	"math/bits"

	"repro/internal/extent"
)

// Buddy implements the DTSS-style buddy-system allocator the paper cites
// as an early fragmentation-bounding design (§3.4, Koch's disk file
// allocation). Requests round up to powers of two; blocks split and merge
// with their buddies. This bounds external fragmentation at the price of
// internal fragmentation — the very property that "was problematic for
// applications that created large files".
type Buddy struct {
	clusters int64
	maxOrder int
	// freeAt[k] holds the starts of free blocks of size 1<<k.
	freeAt []map[int64]struct{}
	free   int64
}

// NewBuddy creates a buddy allocator over a volume of the given size in
// clusters. Sizes that are not powers of two waste the trailing remainder,
// as the original systems did.
func NewBuddy(clusters int64) *Buddy {
	if clusters <= 0 {
		panic(fmt.Sprintf("alloc: bad volume size %d", clusters))
	}
	maxOrder := bits.Len64(uint64(clusters)) - 1
	b := &Buddy{
		clusters: int64(1) << maxOrder,
		maxOrder: maxOrder,
		freeAt:   make([]map[int64]struct{}, maxOrder+1),
	}
	for k := range b.freeAt {
		b.freeAt[k] = make(map[int64]struct{})
	}
	b.freeAt[maxOrder][0] = struct{}{}
	b.free = b.clusters
	return b
}

// Name implements Policy.
func (b *Buddy) Name() string { return "buddy" }

// FreeClusters implements Policy. Note that internal fragmentation means
// an Alloc(n) may consume more than n free clusters.
func (b *Buddy) FreeClusters() int64 { return b.free }

func orderFor(n int64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// Alloc allocates a single block of the smallest power of two >= n.
// The returned run has the rounded length: the caller sees the internal
// fragmentation, mirroring GFS-style zero padding (§3.4).
func (b *Buddy) Alloc(n int64) ([]extent.Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: invalid request %d", n)
	}
	k := orderFor(n)
	if k > b.maxOrder {
		return nil, ErrNoSpace
	}
	// Find the smallest order >= k with a free block.
	j := k
	for j <= b.maxOrder && len(b.freeAt[j]) == 0 {
		j++
	}
	if j > b.maxOrder {
		return nil, ErrNoSpace
	}
	var start int64
	for s := range b.freeAt[j] {
		start = s
		break
	}
	delete(b.freeAt[j], start)
	// Split down to order k, returning the upper halves to the free lists.
	for j > k {
		j--
		buddy := start + (int64(1) << j)
		b.freeAt[j][buddy] = struct{}{}
	}
	size := int64(1) << k
	b.free -= size
	return []extent.Run{{Start: start, Len: size}}, nil
}

// AllocAppend implements Policy; the buddy system has no append special
// case.
func (b *Buddy) AllocAppend(n, tail int64) ([]extent.Run, error) {
	_ = tail
	return b.Alloc(n)
}

// Free returns a block allocated by Alloc. The run length must be the
// power-of-two size that Alloc returned.
func (b *Buddy) Free(r extent.Run) {
	k := orderFor(r.Len)
	if int64(1)<<k != r.Len {
		panic(fmt.Sprintf("alloc: buddy free of non-power-of-two run %v", r))
	}
	start := r.Start
	b.free += r.Len
	for k < b.maxOrder {
		buddy := start ^ (int64(1) << k)
		if _, ok := b.freeAt[k][buddy]; !ok {
			break
		}
		delete(b.freeAt[k], buddy)
		if buddy < start {
			start = buddy
		}
		k++
	}
	b.freeAt[k][start] = struct{}{}
}

// MaxFragments reports the buddy system's hard bound on fragments for an
// object of n clusters: always 1, since every allocation is one block.
// Exposed for the policy-comparison bench.
func (b *Buddy) MaxFragments(n int64) int { return 1 }

var _ Policy = (*Buddy)(nil)
