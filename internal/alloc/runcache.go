package alloc

import (
	"fmt"

	"repro/internal/extent"
)

// RunCache models NTFS's free-space allocator as the paper describes it
// (§2): runs of contiguous free clusters are cached in decreasing size and
// volume-offset order; a new allocation is first attempted from the outer
// band, then from large cached extents, and only then is the file
// fragmented. On sequential appends NTFS "aggressively attempt[s] to
// allocate contiguous space" (§5.4), which the cache models by extending
// at the file's tail before consulting the cache.
//
// Freed space is not immediately reusable: NTFS commits the transactional
// log entry before freed clusters can be reallocated (§2). Freed runs are
// therefore quarantined in a pending list until CommitLog is called; the
// filesystem layer flushes the log periodically, which is what lets a
// deleted neighbourhood coalesce into large runs before reuse.
type RunCache struct {
	idx      *extent.FreeIndex
	clusters int64
	// outerBand is the cluster boundary of the preferred fast band.
	outerBand int64
	// pending holds freed runs awaiting log commit.
	pending []extent.Run
	// pendingClusters tracks their total so FreeClusters stays truthful.
	pendingClusters int64
	// scratch backs AllocAppendScratch results between calls.
	scratch []extent.Run
}

// NewRunCache creates a run-cache allocator over a volume of the given
// size in clusters. bandFrac is the fraction of the volume treated as the
// preferred outer band (NTFS targets fast outer zones); 0 disables banding.
func NewRunCache(clusters int64, bandFrac float64) *RunCache {
	if clusters <= 0 {
		panic(fmt.Sprintf("alloc: bad volume size %d", clusters))
	}
	if bandFrac < 0 || bandFrac > 1 {
		panic(fmt.Sprintf("alloc: bad band fraction %g", bandFrac))
	}
	idx := extent.NewFreeIndex()
	idx.Free(extent.Run{Start: 0, Len: clusters})
	return &RunCache{idx: idx, clusters: clusters, outerBand: int64(float64(clusters) * bandFrac)}
}

// Name implements Policy.
func (rc *RunCache) Name() string { return "ntfs-run-cache" }

// FreeClusters reports immediately allocatable clusters. Pending
// (quarantined) clusters are excluded until CommitLog.
func (rc *RunCache) FreeClusters() int64 { return rc.idx.FreeClusters() }

// PendingClusters reports clusters freed but awaiting log commit.
func (rc *RunCache) PendingClusters() int64 { return rc.pendingClusters }

// TotalFree reports free plus pending clusters.
func (rc *RunCache) TotalFree() int64 { return rc.idx.FreeClusters() + rc.pendingClusters }

// Free quarantines r until the next CommitLog.
func (rc *RunCache) Free(r extent.Run) {
	rc.pending = append(rc.pending, r)
	rc.pendingClusters += r.Len
}

// CommitLog makes all quarantined runs reusable, coalescing them into the
// free index. The filesystem calls this on its periodic log flush.
func (rc *RunCache) CommitLog() {
	for _, r := range rc.pending {
		rc.idx.Free(r)
	}
	rc.pending = rc.pending[:0]
	rc.pendingClusters = 0
}

// Alloc implements Policy: it allocates without append context.
func (rc *RunCache) Alloc(n int64) ([]extent.Run, error) {
	return rc.AllocAppend(n, -1)
}

// AllocAppendScratch is AllocAppend without the per-request slice
// allocation: the returned runs are backed by the cache's internal
// scratch buffer and stay valid only until the next allocation call.
// The hot append path (one allocator request per write request) uses
// it; callers must copy anything they keep.
func (rc *RunCache) AllocAppendScratch(n, tail int64) ([]extent.Run, error) {
	out, err := rc.allocAppend(rc.scratch[:0], n, tail)
	if out != nil {
		rc.scratch = out
	}
	return out, err
}

// AllocAppend allocates n clusters the way the paper describes NTFS
// stream allocation (§2): (1) contiguous extension at tail+1 when a
// sequential append is detected; (2) when banding is configured, the
// lowest-offset outer-band run that holds the whole request; (3) the
// large extents at the front of the size-ordered cache — note NTFS bands
// metadata but "not file contents", so fs volumes run with banding off
// and data comes straight from the largest cached runs; (4) when even
// the largest run cannot hold the remainder, the file is fragmented
// across successively smaller runs.
//
// Largest-extent allocation is what makes the object-size distribution
// irrelevant (Figure 5): requests never search for a hole that matches
// the object, so constant-size objects enjoy no special-case reuse.
func (rc *RunCache) AllocAppend(n, tail int64) ([]extent.Run, error) {
	return rc.allocAppend(nil, n, tail)
}

// allocAppend implements both AllocAppend variants, appending the
// allocated runs to out.
func (rc *RunCache) allocAppend(out []extent.Run, n, tail int64) ([]extent.Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: invalid request %d", n)
	}
	if rc.idx.FreeClusters() < n {
		// NTFS would force a log commit under pressure rather than fail
		// while quarantined space exists.
		if rc.idx.FreeClusters()+rc.pendingClusters >= n {
			rc.CommitLog()
		} else {
			return nil, ErrNoSpace
		}
	}
	remaining := n

	// (1) Sequential-append tail extension, possibly partial.
	if tail >= 0 {
		if r, ok := rc.idx.ExtendAt(tail+1, remaining); ok {
			out = append(out, r)
			remaining -= r.Len
			if remaining == 0 {
				return out, nil
			}
			tail = r.End() - 1
		}
	}

	// (2) Outer band: lowest-offset run inside the band that fits.
	if rc.outerBand > 0 {
		if r, ok := rc.takeOuterBand(remaining); ok {
			out = append(out, r)
			return out, nil
		}
	}

	// (3) Whole-request contiguous anywhere: the lowest-offset cached run
	// that holds the remainder.
	if r, ok := rc.idx.TakeFirstFit(remaining); ok {
		out = append(out, r)
		return out, nil
	}

	// (4) Fragment: fill from the largest cached extents.
	for remaining > 0 {
		r, ok := rc.idx.TakeUpTo(remaining)
		if !ok {
			for _, u := range out {
				rc.idx.Free(u)
			}
			return nil, ErrNoSpace
		}
		out = append(out, r)
		remaining -= r.Len
	}
	return out, nil
}

// takeOuterBand finds the lowest-offset free run that both fits n and
// starts inside the outer band.
func (rc *RunCache) takeOuterBand(n int64) (extent.Run, bool) {
	return rc.idx.TakeFirstFitBelow(n, rc.outerBand)
}

// LargestRun exposes the biggest cached run (for the defragmenter and
// tests).
func (rc *RunCache) LargestRun() (extent.Run, bool) { return rc.idx.LargestRun() }

// RunCount reports the number of cached free runs.
func (rc *RunCache) RunCount() int { return rc.idx.RunCount() }

// Index exposes the underlying free index for layout tooling. Callers must
// not mutate it directly.
func (rc *RunCache) Index() *extent.FreeIndex { return rc.idx }

var _ Policy = (*RunCache)(nil)
