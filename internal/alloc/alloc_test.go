package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
)

func total(runs []extent.Run) int64 { return extent.SumLen(runs) }

func TestFitPoliciesBasic(t *testing.T) {
	for _, mk := range []func(int64) Policy{NewFirstFit, NewBestFit, NewWorstFit, NewNextFit} {
		p := mk(1000)
		if p.FreeClusters() != 1000 {
			t.Fatalf("%s: FreeClusters = %d", p.Name(), p.FreeClusters())
		}
		runs, err := p.Alloc(100)
		if err != nil || total(runs) != 100 {
			t.Fatalf("%s: Alloc(100) = %v, %v", p.Name(), runs, err)
		}
		if p.FreeClusters() != 900 {
			t.Fatalf("%s: FreeClusters after alloc = %d", p.Name(), p.FreeClusters())
		}
		for _, r := range runs {
			p.Free(r)
		}
		if p.FreeClusters() != 1000 {
			t.Fatalf("%s: FreeClusters after free = %d", p.Name(), p.FreeClusters())
		}
		if _, err := p.Alloc(1001); err != ErrNoSpace {
			t.Fatalf("%s: oversized alloc err = %v", p.Name(), err)
		}
		if _, err := p.Alloc(0); err == nil {
			t.Fatalf("%s: zero alloc succeeded", p.Name())
		}
	}
}

func TestFirstFitPrefersLowOffset(t *testing.T) {
	p := NewFirstFit(1000)
	a, _ := p.Alloc(100) // [0,100)
	b, _ := p.Alloc(100) // [100,200)
	p.Free(a[0])
	runs, err := p.Alloc(50)
	if err != nil || runs[0].Start != 0 {
		t.Fatalf("first fit chose %v, want offset 0", runs)
	}
	_ = b
}

func TestBestFitPrefersTightHole(t *testing.T) {
	p := NewBestFit(1000)
	a, _ := p.Alloc(100) // [0,100)
	pad1, _ := p.Alloc(10)
	b, _ := p.Alloc(40) // hole candidate
	pad2, _ := p.Alloc(10)
	p.Free(a[0]) // 100-cluster hole at 0
	p.Free(b[0]) // 40-cluster hole at 110
	runs, err := p.Alloc(40)
	if err != nil || runs[0] != (extent.Run{Start: 110, Len: 40}) {
		t.Fatalf("best fit chose %v, want the exact 40-hole at 110", runs)
	}
	_, _ = pad1, pad2
}

func TestWorstFitPrefersLargestHole(t *testing.T) {
	p := NewWorstFit(1000)
	a, _ := p.Alloc(100)
	pad, _ := p.Alloc(10)
	b, _ := p.Alloc(40)
	p.Free(a[0])
	p.Free(b[0])
	// [110,150) coalesces with the tail into [110,1000): the largest hole.
	runs, err := p.Alloc(40)
	if err != nil || runs[0].Start != 110 {
		t.Fatalf("worst fit chose %v, want start 110", runs)
	}
	_ = pad
}

func TestFragmentedAllocation(t *testing.T) {
	p := NewFirstFit(100)
	var held [][]extent.Run
	for i := 0; i < 10; i++ {
		r, err := p.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, r)
	}
	// Free every other block: five 10-cluster holes.
	for i := 0; i < 10; i += 2 {
		for _, r := range held[i] {
			p.Free(r)
		}
	}
	runs, err := p.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("expected 3 fragments, got %v", runs)
	}
	if total(runs) != 30 {
		t.Fatalf("total = %d", total(runs))
	}
}

func TestRunCacheTailExtension(t *testing.T) {
	rc := NewRunCache(10000, 0)
	first, err := rc.AllocAppend(16, -1)
	if err != nil || len(first) != 1 {
		t.Fatalf("initial append: %v %v", first, err)
	}
	tail := first[0].End() - 1
	second, err := rc.AllocAppend(16, tail)
	if err != nil || len(second) != 1 {
		t.Fatalf("tail append: %v %v", second, err)
	}
	if second[0].Start != first[0].End() {
		t.Fatalf("append not contiguous: %v then %v", first, second)
	}
}

func TestRunCacheLogGating(t *testing.T) {
	rc := NewRunCache(100, 0)
	runs, _ := rc.Alloc(60)
	for _, r := range runs {
		rc.Free(r)
	}
	if rc.FreeClusters() != 40 {
		t.Fatalf("freed space reusable before commit: free=%d", rc.FreeClusters())
	}
	if rc.PendingClusters() != 60 {
		t.Fatalf("pending = %d", rc.PendingClusters())
	}
	rc.CommitLog()
	if rc.FreeClusters() != 100 || rc.PendingClusters() != 0 {
		t.Fatalf("after commit: free=%d pending=%d", rc.FreeClusters(), rc.PendingClusters())
	}
	// Coalesced back to a single run.
	if rc.RunCount() != 1 {
		t.Fatalf("RunCount = %d, want 1", rc.RunCount())
	}
}

func TestRunCacheForcedCommitUnderPressure(t *testing.T) {
	rc := NewRunCache(100, 0)
	runs, _ := rc.Alloc(90)
	for _, r := range runs {
		rc.Free(r)
	}
	// Only 10 immediately free, but 90 pending: a 50-cluster request must
	// force the log commit rather than fail.
	got, err := rc.Alloc(50)
	if err != nil {
		t.Fatalf("alloc under pressure failed: %v", err)
	}
	if total(got) != 50 {
		t.Fatalf("got %d clusters", total(got))
	}
}

func TestRunCacheOuterBandPreference(t *testing.T) {
	rc := NewRunCache(1000, 0.5)
	// Consume everything, then free one hole in the outer band and one in
	// the inner half.
	all, _ := rc.Alloc(1000)
	if len(all) != 1 {
		t.Fatalf("expected single run, got %v", all)
	}
	rc.Free(extent.Run{Start: 100, Len: 50})
	rc.Free(extent.Run{Start: 800, Len: 50})
	rc.CommitLog()
	runs, err := rc.AllocAppend(20, -1)
	if err != nil || runs[0].Start != 100 {
		t.Fatalf("outer band not preferred: %v %v", runs, err)
	}
}

func TestRunCacheFragmentsWhenNoFit(t *testing.T) {
	rc := NewRunCache(100, 0)
	all, _ := rc.Alloc(100)
	rc.Free(extent.Run{Start: 10, Len: 10})
	rc.Free(extent.Run{Start: 50, Len: 10})
	rc.CommitLog()
	runs, err := rc.Alloc(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("expected fragmentation into 2 runs, got %v", runs)
	}
	_ = all
}

func TestBuddyBasic(t *testing.T) {
	b := NewBuddy(1024)
	runs, err := b.Alloc(100) // rounds to 128
	if err != nil || len(runs) != 1 || runs[0].Len != 128 {
		t.Fatalf("Alloc(100) = %v, %v", runs, err)
	}
	if b.FreeClusters() != 1024-128 {
		t.Fatalf("free = %d", b.FreeClusters())
	}
	b.Free(runs[0])
	if b.FreeClusters() != 1024 {
		t.Fatalf("free after Free = %d", b.FreeClusters())
	}
	// Full coalescing: can allocate the whole volume again.
	whole, err := b.Alloc(1024)
	if err != nil || whole[0].Len != 1024 {
		t.Fatalf("whole-volume alloc failed after coalesce: %v %v", whole, err)
	}
}

func TestBuddyNeverFragments(t *testing.T) {
	b := NewBuddy(1 << 16)
	rng := rand.New(rand.NewSource(1))
	var held []extent.Run
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 {
			n := rng.Int63n(200) + 1
			runs, err := b.Alloc(n)
			if err == nil {
				if len(runs) != 1 {
					t.Fatalf("buddy returned %d runs", len(runs))
				}
				held = append(held, runs[0])
			}
		} else if len(held) > 0 {
			i := rng.Intn(len(held))
			b.Free(held[i])
			held[i] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
}

func TestBuddyAlignment(t *testing.T) {
	b := NewBuddy(1 << 12)
	for i := 0; i < 20; i++ {
		runs, err := b.Alloc(48) // rounds to 64
		if err != nil {
			break
		}
		if runs[0].Start%64 != 0 {
			t.Fatalf("block at %d not 64-aligned", runs[0].Start)
		}
	}
}

// Property: every policy conserves clusters over random workloads and
// never double-allocates.
func TestQuickPolicyConservation(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		const vol = 1 << 12
		var p Policy
		switch which % 5 {
		case 0:
			p = NewFirstFit(vol)
		case 1:
			p = NewBestFit(vol)
		case 2:
			p = NewWorstFit(vol)
		case 3:
			p = NewNextFit(vol)
		case 4:
			rc := NewRunCache(vol, 0.3)
			p = rc
		}
		rng := rand.New(rand.NewSource(seed))
		used := make([]bool, vol)
		var held [][]extent.Run
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 {
				runs, err := p.Alloc(rng.Int63n(100) + 1)
				if err != nil {
					continue
				}
				for _, r := range runs {
					for c := r.Start; c < r.End(); c++ {
						if used[c] {
							return false // double allocation
						}
						used[c] = true
					}
				}
				held = append(held, runs)
			} else if len(held) > 0 {
				i := rng.Intn(len(held))
				for _, r := range held[i] {
					p.Free(r)
					for c := r.Start; c < r.End(); c++ {
						used[c] = false
					}
				}
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}
			if rc, ok := p.(*RunCache); ok && op%50 == 49 {
				rc.CommitLog()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
