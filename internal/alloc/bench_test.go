package alloc

import (
	"math/rand"
	"testing"

	"repro/internal/extent"
)

// benchPolicy drives a policy through the standard churn shape.
func benchPolicy(b *testing.B, p Policy) {
	rng := rand.New(rand.NewSource(1))
	var held [][]extent.Run
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(held) < 256 || rng.Intn(2) == 0 {
			runs, err := p.Alloc(int64(rng.Intn(2048) + 16))
			if err == nil {
				held = append(held, runs)
				continue
			}
		}
		if len(held) > 0 {
			j := rng.Intn(len(held))
			for _, r := range held[j] {
				p.Free(r)
			}
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
		if rc, ok := p.(*RunCache); ok && i%64 == 0 {
			rc.CommitLog()
		}
	}
}

func BenchmarkFirstFit(b *testing.B) { benchPolicy(b, NewFirstFit(1<<22)) }
func BenchmarkBestFit(b *testing.B)  { benchPolicy(b, NewBestFit(1<<22)) }
func BenchmarkWorstFit(b *testing.B) { benchPolicy(b, NewWorstFit(1<<22)) }
func BenchmarkNextFit(b *testing.B)  { benchPolicy(b, NewNextFit(1<<22)) }
func BenchmarkBuddy(b *testing.B)    { benchPolicy(b, NewBuddy(1<<22)) }
func BenchmarkRunCache(b *testing.B) { benchPolicy(b, NewRunCache(1<<22, 0.35)) }

// BenchmarkTailExtension measures the sequential-append fast path.
func BenchmarkTailExtension(b *testing.B) {
	rc := NewRunCache(int64(b.N)*16+1<<20, 0)
	tail := int64(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := rc.AllocAppend(16, tail)
		if err != nil {
			b.Fatal(err)
		}
		tail = runs[len(runs)-1].End() - 1
	}
}
