package shard_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// childFactory builds one child store on the shared clock.
type childFactory func(clock *vclock.Clock, opts ...blob.Option) blob.Store

func fileChild(clock *vclock.Clock, opts ...blob.Option) blob.Store {
	s, err := core.NewFileStore(clock, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

func dbChild(clock *vclock.Clock, opts ...blob.Option) blob.Store {
	s, err := core.NewDBStore(clock, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// shardedFactory adapts a sharded store to the conformance suite's
// Factory: n children of the given kind(s), round-robin, each built with
// the per-store options the suite asks for, all sharing one clock.
func shardedFactory(n int, kinds ...childFactory) conformance.Factory {
	return func(opts ...blob.Option) blob.Store {
		clock := vclock.New()
		children := make([]blob.Store, n)
		for i := range children {
			children[i] = kinds[i%len(kinds)](clock, opts...)
		}
		s, err := shard.New(children...)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// TestShardConformance pins the sharded store to the exact cross-backend
// contract both single-volume backends satisfy, at shard counts 1, 4,
// and 16 over each backend type and a mixed fleet — the acceptance bar
// for routing, fan-out, and error pass-through adding no dialect of
// their own.
func TestShardConformance(t *testing.T) {
	backends := []struct {
		name  string
		kinds []childFactory
	}{
		{"Filesystem", []childFactory{fileChild}},
		{"Database", []childFactory{dbChild}},
		{"Mixed", []childFactory{fileChild, dbChild}},
	}
	for _, be := range backends {
		for _, n := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/N=%d", be.name, n), func(t *testing.T) {
				conformance.Run(t, shardedFactory(n, be.kinds...))
			})
		}
	}
}

// TestShardGroupCommitConformance re-runs the contract suite over a
// 4-shard mixed fleet whose children all batch commits asynchronously:
// per-shard group forces must not change any visible semantics.
func TestShardGroupCommitConformance(t *testing.T) {
	base := shardedFactory(4, fileChild, dbChild)
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s := base(append(opts, blob.WithGroupCommit(8, 200*time.Microsecond))...)
		t.Cleanup(func() { _ = blob.CloseStore(s) })
		return s
	})
}
