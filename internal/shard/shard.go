// Package shard composes N child blob.Stores — filesystem- or
// database-backed, homogeneous or mixed — into one sharded Store, the
// multi-volume regime production blob services scale in. Keys route to
// children with rendezvous (highest-random-weight) hashing, so growing
// or shrinking the shard set moves only ~1/N of the keyspace instead of
// reshuffling every object, and each child keeps its own simulated
// drives, allocator, and engine mutex: operations on keys owned by
// different shards genuinely proceed in parallel, the parallelism the
// per-key striped locks in package blob were built as a seam for.
//
// The paper's Figure 6 makes shard count a first-order performance
// variable: fragmentation is governed by the size of the free pool a
// writer allocates from, and splitting one volume into N shards divides
// that free pool by N. The aggregated Snapshot and the harness's "shard"
// experiment measure exactly that trade.
//
// When children are built with blob.WithGroupCommit, each shard owns its
// own commit queue and batcher: concurrent writers whose keys route to
// different shards form batches — and issue group forces — on every
// shard in parallel. CommitStats aggregates the fleet's amortization and
// Close fans shutdown out the same way.
//
// Every failure surfaces the shared sentinel vocabulary of package blob
// unchanged — children already speak it, and the shard layer adds no
// dialect of its own beyond its construction-time sentinels.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/vclock"
)

// Construction-time sentinels. Operational failures (not found, no
// space, busy, ...) always wrap the blob package's vocabulary instead.
var (
	// ErrNoShards reports a New call with zero child stores.
	ErrNoShards = errors.New("shard: at least one child store is required")

	// ErrNilShard reports a nil child store passed to New.
	ErrNilShard = errors.New("shard: nil child store")

	// ErrClockMismatch reports child stores that do not share one
	// virtual clock; aggregate virtual-time accounting would be
	// meaningless across independent clocks.
	ErrClockMismatch = errors.New("shard: child stores must share one virtual clock")
)

// Store implements blob.Store over N child stores. It is safe for
// concurrent use when its children are: reads go straight to the owning
// child, while mutations additionally take a shard-level striped key
// lock for the span of the child call plus the layer's own accounting,
// so the per-shard retired-byte ledger stays exact under same-key
// races (shard locks always nest outside child locks, never inside).
type Store struct {
	children []blob.Store
	ids      []string // stable rendezvous identities, "shard-<i>"
	clock    *vclock.Clock
	name     string
	locks    *blob.KeyLocks

	mu      sync.Mutex
	retired []int64 // bytes of object versions retired, per shard
	// sizes is the store's own view of each routed key's last committed
	// size (or a dead entry once deleted). As in core.AgeTracker, dead
	// entries invalidate the old-size snapshot an in-flight replace took
	// before a delete, so a version is never retired twice.
	sizes map[string]sizeEntry
}

// sizeEntry is one record of Store.sizes.
type sizeEntry struct {
	size int64
	live bool
}

// New composes children into one sharded store. All children must share
// one virtual clock (build them with the same *vclock.Clock) so
// aggregate timing is coherent; violations fail with ErrClockMismatch.
func New(children ...blob.Store) (*Store, error) {
	if len(children) == 0 {
		return nil, ErrNoShards
	}
	ids := make([]string, len(children))
	backends := make(map[string]bool)
	for i, c := range children {
		if c == nil {
			return nil, fmt.Errorf("%w: index %d", ErrNilShard, i)
		}
		if c.Clock() != children[0].Clock() {
			return nil, fmt.Errorf("%w: shard %d", ErrClockMismatch, i)
		}
		ids[i] = fmt.Sprintf("shard-%d", i)
		backends[c.Name()] = true
	}
	kinds := make([]string, 0, len(backends))
	for k := range backends {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	locks, err := blob.NewKeyLocks(0)
	if err != nil {
		return nil, err
	}
	return &Store{
		locks:    locks,
		children: children,
		ids:      ids,
		clock:    children[0].Clock(),
		name:     fmt.Sprintf("sharded-%d(%s)", len(children), strings.Join(kinds, "+")),
		retired:  make([]int64, len(children)),
		sizes:    make(map[string]sizeEntry),
	}, nil
}

// Name implements blob.Store, e.g. "sharded-4(filesystem)" or
// "sharded-8(database+filesystem)" for mixed fleets.
func (s *Store) Name() string { return s.name }

// Clock implements blob.Store: the single virtual clock every shard
// charges.
func (s *Store) Clock() *vclock.Clock { return s.clock }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.children) }

// Shard returns child i, for per-shard analysis tools.
func (s *Store) Shard(i int) blob.Store { return s.children[i] }

// ShardFor returns the index of the shard that owns key under the
// current shard set — rendezvous hashing: the shard whose (id, key)
// hash scores highest. Removing one shard reroutes only that shard's
// keys; adding one steals ~1/(N+1) of each existing shard's keys.
func (s *Store) ShardFor(key string) int {
	best := 0
	var bestScore uint64
	for i, id := range s.ids {
		score := hrwScore(id, key)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// hrwScore is the rendezvous weight of key on the shard named id:
// 64-bit FNV-1a over the id, a separator, and the key, passed through a
// splitmix64-style finalizer. The finalizer matters: raw FNV-1a scores
// of strings differing in one early byte are correlated enough to skew
// the max-selection badly.
func hrwScore(id, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= 0xff // separator: "a"+"bc" and "ab"+"c" must not collide
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// owner returns the child that owns key.
func (s *Store) owner(key string) blob.Store { return s.children[s.ShardFor(key)] }

// Open implements blob.Store.
func (s *Store) Open(ctx context.Context, key string) (blob.Reader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.owner(key).Open(ctx, key)
}

// Create implements blob.Store: the stream lands whole on the owning
// shard (an object never spans shards, so a shard failure can never
// leave a torn object).
func (s *Store) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	idx := s.ShardFor(key)
	w, err := s.children[idx].Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &shardWriter{Writer: w, s: s, idx: idx, key: key, size: size}, nil
}

// Replace implements blob.Store. The retired old version is charged to
// the owning shard's counter when the stream commits.
func (s *Store) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	idx := s.ShardFor(key)
	child := s.children[idx]
	// The shard lock keeps the old-size snapshot coherent with the
	// stream open (a delete cannot slip between them).
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	var oldSize int64
	oldOK := false
	if info, err := child.Stat(ctx, key); err == nil {
		oldSize, oldOK = info.Size, true
	}
	w, err := child.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &shardWriter{Writer: w, s: s, idx: idx, key: key, size: size,
		oldSize: oldSize, oldOK: oldOK}, nil
}

// shardWriter charges per-shard retired and committed-size accounting
// when a stream commits. All stream semantics live in the child's
// writer.
type shardWriter struct {
	blob.Writer
	s       *Store
	idx     int
	key     string
	size    int64 // declared new size
	oldSize int64 // size snapshot taken at Replace, for untracked keys
	oldOK   bool
	charged bool
}

// Commit commits the child stream, then retires the replaced version on
// the owning shard's counter. The shard lock makes publish and
// accounting one atomic step against same-key deletes and replaces.
func (w *shardWriter) Commit() error {
	w.s.locks.Lock(w.key)
	defer w.s.locks.Unlock(w.key)
	//fragvet:ignore lockorder the stripe held here belongs to the shard router's own KeyLocks; the child's apply closures re-acquire the child store's stripes, a disjoint instance
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	if !w.charged {
		w.s.commitWrite(w.idx, w.key, w.size, w.oldSize, w.oldOK)
		w.charged = true
	}
	return nil
}

// commitWrite records one committed create/replace on shard idx. The
// old size comes from the store's own committed-size map when the key
// has been routed before; the snapshot only covers keys first written
// behind the shard layer's back (directly on a child).
func (s *Store) commitWrite(idx int, key string, size, snapSize int64, snapOK bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var old int64
	existed := false
	if e, known := s.sizes[key]; known {
		old, existed = e.size, e.live
	} else {
		old, existed = snapSize, snapOK
	}
	if existed {
		s.retired[idx] += old
	}
	s.sizes[key] = sizeEntry{size: size, live: true}
}

// Delete implements blob.Store, retiring the object's bytes on its
// shard's counter.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	idx := s.ShardFor(key)
	child := s.children[idx]
	// The shard lock makes stat, delete, and accounting one atomic step
	// against same-key commits.
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	info, err := child.Stat(ctx, key)
	if err != nil {
		return err
	}
	if err := child.Delete(ctx, key); err != nil {
		return err
	}
	s.mu.Lock()
	old := info.Size
	if e, known := s.sizes[key]; known && e.live {
		old = e.size
	}
	s.retired[idx] += old
	s.sizes[key] = sizeEntry{live: false}
	s.mu.Unlock()
	return nil
}

// Stat implements blob.Store.
func (s *Store) Stat(ctx context.Context, key string) (blob.Info, error) {
	if err := ctx.Err(); err != nil {
		return blob.Info{}, err
	}
	return s.owner(key).Stat(ctx, key)
}

// Keys implements blob.Store: the union of every shard's live keys, in
// unspecified order.
func (s *Store) Keys() []string {
	var out []string
	for _, c := range s.children {
		out = append(out, c.Keys()...)
	}
	return out
}

// ObjectCount implements blob.Store.
func (s *Store) ObjectCount() int {
	n := 0
	for _, c := range s.children {
		n += c.ObjectCount()
	}
	return n
}

// LiveBytes implements blob.Store.
func (s *Store) LiveBytes() int64 {
	var n int64
	for _, c := range s.children {
		n += c.LiveBytes()
	}
	return n
}

// FreeBytes implements blob.Store. Note the aggregate overstates what
// one writer can use: a single object must fit inside one shard's free
// pool, which is the per-shard fragmentation effect the harness's
// "shard" experiment measures.
func (s *Store) FreeBytes() int64 {
	var n int64
	for _, c := range s.children {
		n += c.FreeBytes()
	}
	return n
}

// CapacityBytes implements blob.Store.
func (s *Store) CapacityBytes() int64 {
	var n int64
	for _, c := range s.children {
		n += c.CapacityBytes()
	}
	return n
}

// EachObjectRuns implements frag.Source across every shard. Cluster
// addresses are shard-local (each shard is its own drive), which is fine
// for fragment counting: runs never span shards.
func (s *Store) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	for _, c := range s.children {
		c.EachObjectRuns(fn)
	}
}

// EachObjectTag implements frag.TagSource across every shard.
func (s *Store) EachObjectTag(fn func(key string, tag uint32)) {
	for _, c := range s.children {
		c.EachObjectTag(fn)
	}
}

// retiredBytes returns shard i's retired-byte counter.
func (s *Store) retiredBytes(i int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired[i]
}

// CommitStats aggregates the group-commit pipeline counters across every
// child that exposes them. Each shard owns its own commit queue and
// batcher, so under concurrent writers batches form — and group forces
// issue — on every shard in parallel; the aggregate MeanBatch is the
// fleet-wide amortization factor.
func (s *Store) CommitStats() blob.CommitStats {
	var out blob.CommitStats
	for _, c := range s.children {
		if st, ok := blob.CommitStatsOf(c); ok {
			out.Commits += st.Commits
			out.Batches += st.Batches
			if st.MaxBatch > out.MaxBatch {
				out.MaxBatch = st.MaxBatch
			}
		}
	}
	return out
}

// Close shuts every child's commit pipeline down, fanned out in
// parallel the same way the pipelines themselves run. Children without
// a Close are no-ops; the store stays usable afterwards (commits turn
// synchronous).
func (s *Store) Close() error {
	errs := make([]error, len(s.children))
	var wg sync.WaitGroup
	for i, c := range s.children {
		wg.Add(1)
		go func(i int, c blob.Store) {
			defer wg.Done()
			errs[i] = blob.CloseStore(c)
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

var _ blob.Store = (*Store)(nil)
