package shard

import (
	"context"
	"errors"
	"fmt"
)

// This file routes compactor rewrites through the shard layer: a
// rewrite goes to the key's owning child (the same rendezvous routing
// every other operation uses), and a pack attempt is split per shard so
// each pack extent stays inside one child volume. Aggregated
// CompactStats come from the compact.Fleet driving one compactor per
// child; the shard layer itself stays a pure router.

type rewriter interface {
	CompactObject(ctx context.Context, key string) (int64, error)
}

type packer interface {
	PackObjects(ctx context.Context, keys []string) ([]string, error)
}

// CompactObject forwards a compactor rewrite to key's owning shard.
func (s *Store) CompactObject(ctx context.Context, key string) (int64, error) {
	child := s.owner(key)
	rw, ok := child.(rewriter)
	if !ok {
		return 0, fmt.Errorf("%w: shard backend %s cannot compact objects", errors.ErrUnsupported, child.Name())
	}
	return rw.CompactObject(ctx, key)
}

// PackObjects splits the keys by owning shard and forwards each group,
// so members of one pack always share a child volume. Children without
// the pack capability are skipped; the packed keys are concatenated.
func (s *Store) PackObjects(ctx context.Context, keys []string) ([]string, error) {
	groups := make(map[int][]string)
	for _, k := range keys {
		idx := s.ShardFor(k)
		groups[idx] = append(groups[idx], k)
	}
	var packed []string
	for idx, group := range groups {
		pk, ok := s.children[idx].(packer)
		if !ok {
			continue
		}
		p, err := pk.PackObjects(ctx, group)
		packed = append(packed, p...)
		if err != nil {
			return packed, err
		}
	}
	return packed, nil
}
