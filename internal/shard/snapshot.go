package shard

import (
	"fmt"
	"sync"

	"repro/internal/blob"
	"repro/internal/frag"
	"repro/internal/stats"
	"repro/internal/units"
)

// ShardInfo is one shard's stats snapshot.
type ShardInfo struct {
	// Index is the shard's position in the store; ID its rendezvous
	// identity; Backend the child's Name().
	Index   int
	ID      string
	Backend string

	// Objects and LiveBytes count the shard's live population;
	// RetiredBytes the object versions replaced or deleted through the
	// sharded store since construction.
	Objects      int
	LiveBytes    int64
	RetiredBytes int64

	// FreeBytes and CapacityBytes describe the shard's free pool — the
	// space one writer on this shard allocates from, the governing
	// variable of the paper's Figure 6.
	FreeBytes     int64
	CapacityBytes int64

	// MeanFragments is mean fragments/object on this shard alone.
	MeanFragments float64
}

// Occupancy returns the shard's live fraction of capacity.
func (si ShardInfo) Occupancy() float64 {
	if si.CapacityBytes == 0 {
		return 0
	}
	return float64(si.LiveBytes) / float64(si.CapacityBytes)
}

// FreePoolObjects returns how many objects of the given size fit in the
// shard's free space — the paper's "number of free objects" axis.
func (si ShardInfo) FreePoolObjects(objectBytes int64) float64 {
	if objectBytes <= 0 {
		return 0
	}
	return float64(si.FreeBytes) / float64(objectBytes)
}

func (si ShardInfo) String() string {
	return fmt.Sprintf("%s[%s]: %d objects, %s live, %s retired, %s free, %.2f frags/obj",
		si.ID, si.Backend, si.Objects, units.FormatBytes(si.LiveBytes),
		units.FormatBytes(si.RetiredBytes), units.FormatBytes(si.FreeBytes), si.MeanFragments)
}

// Snapshot aggregates the per-shard stats behind one value the harness
// consumes.
type Snapshot struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardInfo

	// Aggregates over the whole store.
	Objects       int
	LiveBytes     int64
	RetiredBytes  int64
	FreeBytes     int64
	CapacityBytes int64

	// MeanFragments is mean fragments/object across every shard's
	// objects together (object-weighted, not a mean of shard means).
	MeanFragments float64

	// LiveImbalance is the coefficient of variation of per-shard live
	// bytes: 0 for a perfectly balanced fleet, growing as rendezvous
	// placement or size skew piles data onto few shards.
	LiveImbalance float64
}

// Snapshot gathers every shard's stats, fanning the per-shard
// fragmentation analysis out to one goroutine per shard (children are
// independent stores with independent engine mutexes, so the scans
// genuinely run in parallel).
func (s *Store) Snapshot() Snapshot {
	snap := Snapshot{Shards: make([]ShardInfo, len(s.children))}
	var wg sync.WaitGroup
	for i, c := range s.children {
		wg.Add(1)
		go func(i int, c blob.Store) {
			defer wg.Done()
			rep := frag.Analyze(c)
			snap.Shards[i] = ShardInfo{
				Index:         i,
				ID:            s.ids[i],
				Backend:       c.Name(),
				Objects:       c.ObjectCount(),
				LiveBytes:     c.LiveBytes(),
				RetiredBytes:  s.retiredBytes(i),
				FreeBytes:     c.FreeBytes(),
				CapacityBytes: c.CapacityBytes(),
				MeanFragments: rep.MeanFragments(),
			}
		}(i, c)
	}
	wg.Wait()

	totalFragments := 0.0
	liveByShard := make([]float64, len(snap.Shards))
	for i, si := range snap.Shards {
		snap.Objects += si.Objects
		snap.LiveBytes += si.LiveBytes
		snap.RetiredBytes += si.RetiredBytes
		snap.FreeBytes += si.FreeBytes
		snap.CapacityBytes += si.CapacityBytes
		totalFragments += si.MeanFragments * float64(si.Objects)
		liveByShard[i] = float64(si.LiveBytes)
	}
	if snap.Objects > 0 {
		snap.MeanFragments = totalFragments / float64(snap.Objects)
	}
	snap.LiveImbalance = stats.Summarize(liveByShard).CV()
	return snap
}
