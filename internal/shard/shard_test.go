package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/vclock"
)

// mkSharded builds an n-shard filesystem-backed store with perShard
// bytes of capacity on each shard.
func mkSharded(t *testing.T, n int, perShard int64, opts ...blob.Option) *shard.Store {
	t.Helper()
	clock := vclock.New()
	all := append([]blob.Option{
		blob.WithCapacity(perShard),
		blob.WithDiskMode(disk.MetadataMode),
	}, opts...)
	children := make([]blob.Store, n)
	for i := range children {
		c, err := core.NewFileStore(clock, all...)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = c
	}
	s, err := shard.New(children...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := shard.New(); !errors.Is(err, shard.ErrNoShards) {
		t.Fatalf("New() = %v, want ErrNoShards", err)
	}
	clock := vclock.New()
	child, err := core.NewFileStore(clock, blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.New(child, nil); !errors.Is(err, shard.ErrNilShard) {
		t.Fatalf("New(child, nil) = %v, want ErrNilShard", err)
	}
	other, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.New(child, other); !errors.Is(err, shard.ErrClockMismatch) {
		t.Fatalf("New over two clocks = %v, want ErrClockMismatch", err)
	}
	s, err := shard.New(child)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 || s.Clock() != clock {
		t.Fatalf("NumShards=%d clock=%p", s.NumShards(), s.Clock())
	}
}

func TestName(t *testing.T) {
	clock := vclock.New()
	fsChild, err := core.NewFileStore(clock, blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	dbChild, err := core.NewDBStore(clock, blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := shard.New(fsChild, dbChild)
	if err != nil {
		t.Fatal(err)
	}
	if got := mixed.Name(); got != "sharded-2(database+filesystem)" {
		t.Fatalf("Name() = %q", got)
	}
	homo := mkSharded(t, 4, 64*units.MB)
	if got := homo.Name(); got != "sharded-4(filesystem)" {
		t.Fatalf("Name() = %q", got)
	}
}

// TestRendezvousRouting pins the properties the router exists for:
// deterministic placement, reasonable balance, and minimal movement when
// the shard count changes.
func TestRendezvousRouting(t *testing.T) {
	s8 := mkSharded(t, 8, 64*units.MB)
	s9 := mkSharded(t, 9, 64*units.MB)

	const keys = 4096
	counts := make([]int, 8)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("obj-%08d", i)
		a, b := s8.ShardFor(key), s8.ShardFor(key)
		if a != b {
			t.Fatalf("routing of %q not deterministic: %d vs %d", key, a, b)
		}
		counts[a]++
		// Growing 8 -> 9 shards must only move keys onto the new shard,
		// never between surviving shards.
		n := s9.ShardFor(key)
		if n != a {
			if n != 8 {
				t.Fatalf("key %q moved between surviving shards: %d -> %d", key, a, n)
			}
			moved++
		}
	}
	// Balance: each shard should hold roughly keys/8; allow a wide band
	// (FNV-1a over short keys is not perfectly uniform).
	want := keys / 8
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d holds %d of %d keys, want ~%d", i, c, keys, want)
		}
	}
	// Movement: ~1/9 of keys should land on the new shard; accept 5-20%.
	if frac := float64(moved) / keys; frac < 0.05 || frac > 0.20 {
		t.Fatalf("%.1f%% of keys moved growing 8->9 shards, want ~11%%", frac*100)
	}
}

// TestOperationsRouteToOwner pins that data written through the sharded
// store lands on (only) the owning child and every read path agrees.
func TestOperationsRouteToOwner(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 4, 64*units.MB)
	const n = 40
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj-%03d", i)
		if err := blob.Put(ctx, s, key, 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
		owner := s.ShardFor(key)
		for j := 0; j < s.NumShards(); j++ {
			_, err := s.Shard(j).Stat(ctx, key)
			if j == owner && err != nil {
				t.Fatalf("owner shard %d missing %s: %v", j, key, err)
			}
			if j != owner && !errors.Is(err, blob.ErrNotFound) {
				t.Fatalf("non-owner shard %d has %s (err=%v)", j, key, err)
			}
		}
	}
	if s.ObjectCount() != n {
		t.Fatalf("ObjectCount = %d, want %d", s.ObjectCount(), n)
	}
	if got := s.LiveBytes(); got != n*256*units.KB {
		t.Fatalf("LiveBytes = %d", got)
	}
	if got := len(s.Keys()); got != n {
		t.Fatalf("Keys() returned %d keys", got)
	}
	// Aggregate capacity/free span all children.
	if s.CapacityBytes() != 4*s.Shard(0).CapacityBytes() {
		t.Fatalf("CapacityBytes = %d", s.CapacityBytes())
	}
	if s.FreeBytes() <= 0 || s.FreeBytes() >= s.CapacityBytes() {
		t.Fatalf("FreeBytes = %d of %d", s.FreeBytes(), s.CapacityBytes())
	}
}

// TestSnapshotAccounting pins the aggregated per-shard stats: live and
// retired bytes, fragments, occupancy, and totals that match the store's
// own accounting surface.
func TestSnapshotAccounting(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 4, 64*units.MB)
	const objSize = 512 * units.KB
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj-%03d", i)
		if err := blob.Put(ctx, s, keys[i], objSize, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing retired yet.
	snap := s.Snapshot()
	if snap.RetiredBytes != 0 {
		t.Fatalf("RetiredBytes = %d before any churn", snap.RetiredBytes)
	}
	if snap.Objects != len(keys) || snap.LiveBytes != int64(len(keys))*objSize {
		t.Fatalf("snapshot totals: %+v", snap)
	}

	// Replace retires exactly the old version, on the owning shard.
	victim := keys[7]
	owner := s.ShardFor(victim)
	if err := blob.Replace(ctx, s, victim, objSize/2, nil); err != nil {
		t.Fatal(err)
	}
	// Delete retires the current version of another object.
	gone := keys[13]
	goneOwner := s.ShardFor(gone)
	if err := s.Delete(ctx, gone); err != nil {
		t.Fatal(err)
	}

	snap = s.Snapshot()
	wantRetired := int64(objSize + objSize) // one replace + one delete
	if snap.RetiredBytes != wantRetired {
		t.Fatalf("RetiredBytes = %d, want %d", snap.RetiredBytes, wantRetired)
	}
	perShard := make(map[int]int64)
	perShard[owner] += objSize
	perShard[goneOwner] += objSize
	for _, si := range snap.Shards {
		if si.RetiredBytes != perShard[si.Index] {
			t.Fatalf("shard %d retired %d, want %d", si.Index, si.RetiredBytes, perShard[si.Index])
		}
		if si.Backend != "filesystem" {
			t.Fatalf("shard %d backend %q", si.Index, si.Backend)
		}
		if si.CapacityBytes != s.Shard(si.Index).CapacityBytes() {
			t.Fatalf("shard %d capacity %d != child %d",
				si.Index, si.CapacityBytes, s.Shard(si.Index).CapacityBytes())
		}
		if occ := si.Occupancy(); occ < 0 || occ > 1 {
			t.Fatalf("shard %d occupancy %f", si.Index, occ)
		}
		if si.Objects > 0 && si.MeanFragments < 1 {
			t.Fatalf("shard %d has %d objects but %.2f fragments/object",
				si.Index, si.Objects, si.MeanFragments)
		}
	}
	if snap.Objects != len(keys)-1 {
		t.Fatalf("Objects = %d after delete", snap.Objects)
	}
	if snap.LiveBytes != s.LiveBytes() {
		t.Fatalf("snapshot live %d != store live %d", snap.LiveBytes, s.LiveBytes())
	}
	if snap.MeanFragments < 1 {
		t.Fatalf("MeanFragments = %.2f", snap.MeanFragments)
	}
	if snap.LiveImbalance < 0 {
		t.Fatalf("LiveImbalance = %f", snap.LiveImbalance)
	}
	// Deleting and replacing again must not double-retire (dead entries
	// invalidate stale snapshots).
	if err := blob.Put(ctx, s, gone, objSize, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().RetiredBytes; got != wantRetired {
		t.Fatalf("recreate after delete retired %d, want %d", got, wantRetired)
	}
}

// TestErrorPassThrough pins that child failures surface the blob
// sentinels unchanged through the shard layer.
func TestErrorPassThrough(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 4, 16*units.MB)
	if _, err := s.Open(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Open missing = %v", err)
	}
	if err := s.Delete(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Delete missing = %v", err)
	}
	// An object bigger than one shard's volume fails with ErrNoSpaceLeft
	// even though the aggregate store could hold it: objects never span
	// shards.
	if err := blob.Put(ctx, s, "big", 32*units.MB, nil); !errors.Is(err, blob.ErrNoSpaceLeft) {
		t.Fatalf("oversized put = %v, want ErrNoSpaceLeft", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Open(canceled, "any"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open canceled = %v", err)
	}
	if _, err := s.Create(canceled, "any", units.MB); !errors.Is(err, context.Canceled) {
		t.Fatalf("Create canceled = %v", err)
	}
}

// TestParallelAcrossShards drives concurrent writers and snapshots over
// distinct keys; with each shard owning its own engine this exercises
// true cross-shard parallelism (meaningful under -race).
func TestParallelAcrossShards(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 8, 64*units.MB)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("w%02d-%02d", g, i)
				if err := blob.Put(ctx, s, key, 128*units.KB, nil); err != nil {
					errs <- err
					return
				}
				if err := blob.Replace(ctx, s, key, 128*units.KB, nil); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Snapshots race against the writers; they must stay internally
	// consistent (no panics, sane ranges) even mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			snap := s.Snapshot()
			if len(snap.Shards) != 8 {
				errs <- fmt.Errorf("snapshot saw %d shards", len(snap.Shards))
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.ObjectCount(); got != 160 {
		t.Fatalf("ObjectCount = %d, want 160", got)
	}
	if got := s.Snapshot().RetiredBytes; got != 160*128*units.KB {
		t.Fatalf("RetiredBytes = %d, want %d", got, 160*128*units.KB)
	}
}

// TestSameKeyChurnConservation hammers a small key set with concurrent
// replaces, deletes, and recreates, then checks byte conservation:
// every committed version's bytes end up either live or retired,
// exactly once. This is the invariant the shard-level key locks defend
// — without them a same-key delete/commit race double-retires or loses
// versions.
func TestSameKeyChurnConservation(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 4, 64*units.MB)
	keys := []string{"a", "b", "c"}
	const objSize = 64 * units.KB
	var committed int64 // bytes of successfully committed versions
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := keys[(g+i)%len(keys)]
				switch g % 3 {
				case 0, 1:
					err := blob.Replace(ctx, s, key, objSize, nil)
					if err == nil {
						atomic.AddInt64(&committed, objSize)
					} else if !errors.Is(err, blob.ErrBusy) {
						errs <- err
						return
					}
				case 2:
					if err := s.Delete(ctx, key); err != nil && !errors.Is(err, blob.ErrNotFound) {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if got := snap.LiveBytes + snap.RetiredBytes; got != atomic.LoadInt64(&committed) {
		t.Fatalf("conservation violated: live %d + retired %d = %d, committed %d",
			snap.LiveBytes, snap.RetiredBytes, got, committed)
	}
	if snap.LiveBytes != s.LiveBytes() {
		t.Fatalf("snapshot live %d != store live %d", snap.LiveBytes, s.LiveBytes())
	}
}

// TestShardGroupCommitFansOutPerChild pins the parallel commit
// pipelines: with group commit enabled on every child, concurrent
// writers spread over the shards coalesce into batches on each shard
// independently, the aggregated CommitStats sees every commit, and
// Close shuts the whole fleet down in parallel.
func TestShardGroupCommitFansOutPerChild(t *testing.T) {
	ctx := context.Background()
	s := mkSharded(t, 4, 64*units.MB, blob.WithGroupCommit(8, 2*time.Millisecond))
	const writers, rounds = 8, 10
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%02d-o%04d", w, i)
				if err := blob.Put(ctx, s, key, 512*units.KB, nil); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	cs := s.CommitStats()
	if cs.Commits != writers*rounds {
		t.Fatalf("fleet saw %d commits, want %d", cs.Commits, writers*rounds)
	}
	if cs.MeanBatch() <= 1 {
		t.Errorf("fleet mean batch %.2f, want > 1 (max %d)", cs.MeanBatch(), cs.MaxBatch)
	}
	// More than one child formed batches: the keyspace spreads over all
	// four shards and each shard batches its own commits.
	batchingChildren := 0
	for i := 0; i < s.NumShards(); i++ {
		if st, ok := blob.CommitStatsOf(s.Shard(i)); ok && st.Commits > 0 {
			batchingChildren++
		}
	}
	if batchingChildren < 2 {
		t.Errorf("only %d children processed commits", batchingChildren)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The fleet stays usable after Close (commits turn synchronous).
	if err := blob.Put(ctx, s, "after-close", 512*units.KB, nil); err != nil {
		t.Fatal(err)
	}
}
