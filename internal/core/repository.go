// Package core is the paper's primary contribution rendered as a library:
// a get/put large-object repository abstraction (§4: "applications that
// make use of simple get/put storage primitives"), two interchangeable
// implementations — filesystem-backed and database-backed — with matched
// safe-replace semantics, and the storage-age clock (§4.4) that makes
// long-term fragmentation measurements comparable across systems,
// volume sizes, and hardware.
package core

import (
	"repro/internal/extent"
	"repro/internal/vclock"
)

// Repository is the abstract large-object store both backends implement.
// Implementations are not safe for concurrent use — the paper's workload
// is a single stream of operations with interleaved reads.
type Repository interface {
	// Name identifies the backend in benchmark output ("filesystem" or
	// "database").
	Name() string

	// Put stores a new object of size bytes. data may be nil for
	// metadata-only simulation; when non-nil it must be size bytes long.
	// Putting an existing key is an error.
	Put(key string, size int64, data []byte) error

	// Get reads the whole object, returning its size and — when the
	// backing drive retains payloads — its contents.
	Get(key string) (int64, []byte, error)

	// Replace atomically replaces (or creates) the object with new
	// contents, with crash-safe semantics: until the operation commits,
	// a failure leaves the previous version intact. This is the paper's
	// safe write (§4).
	Replace(key string, size int64, data []byte) error

	// Delete removes the object.
	Delete(key string) error

	// Stat returns the object's size.
	Stat(key string) (int64, error)

	// Keys lists live objects in unspecified order.
	Keys() []string

	// ObjectCount returns the number of live objects.
	ObjectCount() int

	// LiveBytes returns the total logical bytes of live objects.
	LiveBytes() int64

	// FreeBytes returns the immediately allocatable bytes of the backing
	// store.
	FreeBytes() int64

	// CapacityBytes returns the store's data capacity.
	CapacityBytes() int64

	// Clock returns the virtual clock charged by the backend's drives.
	Clock() *vclock.Clock

	// EachObjectRuns visits every live object's physical cluster runs
	// (frag.Source).
	EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run))

	// EachObjectTag visits every live object's disk owner tag
	// (frag.TagSource).
	EachObjectTag(fn func(key string, tag uint32))
}

// AgeTracker maintains the paper's storage-age metric for a repository:
// "the ratio of bytes in objects that once existed on a volume to the
// number of bytes in use on the volume" (§4.4) — for a safe-write
// workload, replaced bytes divided by live bytes ("safe writes per
// object").
//
// Use it by routing all mutations through the tracker.
type AgeTracker struct {
	repo Repository

	retiredBytes int64 // bytes of object versions retired since baseline
	liveBytes    int64
}

// NewAgeTracker wraps repo. Storage age starts at zero; call
// ResetBaseline after bulk load so that age 0 corresponds to the freshly
// loaded store, as in the paper's figures.
func NewAgeTracker(repo Repository) *AgeTracker {
	return &AgeTracker{repo: repo}
}

// Repo returns the wrapped repository.
func (a *AgeTracker) Repo() Repository { return a.repo }

// Age returns the current storage age.
func (a *AgeTracker) Age() float64 {
	if a.liveBytes == 0 {
		return 0
	}
	return float64(a.retiredBytes) / float64(a.liveBytes)
}

// LiveBytes returns the tracked live byte count.
func (a *AgeTracker) LiveBytes() int64 { return a.liveBytes }

// RetiredBytes returns bytes retired since the baseline.
func (a *AgeTracker) RetiredBytes() int64 { return a.retiredBytes }

// ResetBaseline zeroes the retired-byte counter (end of bulk load).
func (a *AgeTracker) ResetBaseline() { a.retiredBytes = 0 }

// Put stores a new object through the tracker.
func (a *AgeTracker) Put(key string, size int64, data []byte) error {
	if err := a.repo.Put(key, size, data); err != nil {
		return err
	}
	a.liveBytes += size
	return nil
}

// Replace performs a safe replace, retiring the old version's bytes.
func (a *AgeTracker) Replace(key string, size int64, data []byte) error {
	old, err := a.repo.Stat(key)
	existed := err == nil
	if err := a.repo.Replace(key, size, data); err != nil {
		return err
	}
	if existed {
		a.retiredBytes += old
		a.liveBytes -= old
	}
	a.liveBytes += size
	return nil
}

// Delete removes an object, retiring its bytes.
func (a *AgeTracker) Delete(key string) error {
	old, err := a.repo.Stat(key)
	if err != nil {
		return err
	}
	if err := a.repo.Delete(key); err != nil {
		return err
	}
	a.retiredBytes += old
	a.liveBytes -= old
	return nil
}
