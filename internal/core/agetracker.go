// Package core is the paper's primary contribution rendered as a
// library: the blob.Store get/put large-object abstraction (§4:
// "applications that make use of simple get/put storage primitives"),
// two interchangeable implementations — filesystem-backed and
// database-backed — with matched safe-replace semantics, and the
// storage-age clock (§4.4) that makes long-term fragmentation
// measurements comparable across systems, volume sizes, and hardware.
package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
)

// AgeTracker maintains the paper's storage-age metric for a store: "the
// ratio of bytes in objects that once existed on a volume to the number
// of bytes in use on the volume" (§4.4) — for a safe-write workload,
// replaced bytes divided by live bytes ("safe writes per object").
//
// Use it by routing all mutations through the tracker. Retired and live
// byte counts are charged when a streaming writer COMMITS, never at
// buffer hand-off: an aborted or crashed stream leaves the metric
// untouched, exactly as it leaves the store untouched. The tracker is
// safe for concurrent use, like the stores it wraps.
//
// The byte counters are plain atomics, so Age — which churn sources
// poll before every write — is two loads with no lock. The per-key
// committed-size map stays under the mutex for direct callers; k
// concurrent executor streams instead shard it through StreamView,
// which keeps a goroutine-local map and merges at phase end.
type AgeTracker struct {
	store blob.Store

	retiredBytes atomic.Int64 // bytes of object versions retired since baseline
	liveBytes    atomic.Int64

	// mu guards sizes: the tracker's own view of each routed key — the
	// last committed size, or a dead entry once the tracker deleted the
	// key. Dead entries invalidate the old-size snapshot an in-flight
	// ReplaceWriter took before the delete, so a version is never
	// retired twice.
	mu    sync.Mutex
	sizes map[string]trackedSize
}

// trackedSize is one entry of AgeTracker.sizes.
type trackedSize struct {
	size int64
	live bool
}

// NewAgeTracker wraps store. Storage age starts at zero; call
// ResetBaseline after bulk load so that age 0 corresponds to the freshly
// loaded store, as in the paper's figures.
func NewAgeTracker(store blob.Store) *AgeTracker {
	return &AgeTracker{store: store, sizes: make(map[string]trackedSize)}
}

// Store returns the wrapped store.
func (a *AgeTracker) Store() blob.Store { return a.store }

// Age returns the current storage age. Lock-free: the churn sources
// poll this before every write, so at high stream counts it must not
// serialize the fleet.
func (a *AgeTracker) Age() float64 {
	live := a.liveBytes.Load()
	if live == 0 {
		return 0
	}
	return float64(a.retiredBytes.Load()) / float64(live)
}

// LiveBytes returns the tracked live byte count.
func (a *AgeTracker) LiveBytes() int64 { return a.liveBytes.Load() }

// RetiredBytes returns bytes retired since the baseline.
func (a *AgeTracker) RetiredBytes() int64 { return a.retiredBytes.Load() }

// ResetBaseline zeroes the retired-byte counter (end of bulk load).
func (a *AgeTracker) ResetBaseline() { a.retiredBytes.Store(0) }

// lookup returns the tracker's committed-size entry for key under the
// mutex.
func (a *AgeTracker) lookup(key string) (trackedSize, bool) {
	a.mu.Lock()
	e, ok := a.sizes[key]
	a.mu.Unlock()
	return e, ok
}

// charge applies one committed create/replace to the byte counters
// given the previous version's size (if any).
//
//fragvet:ignore vclockpurity byte accounting, not a disk-cost path; the drive charges the clock for the I/O itself
func (a *AgeTracker) charge(size, old int64, existed bool) {
	if existed {
		a.retiredBytes.Add(old)
		a.liveBytes.Add(-old)
	}
	a.liveBytes.Add(size)
}

// chargeDelete applies one delete of an old-size version.
//
//fragvet:ignore vclockpurity byte accounting, not a disk-cost path; the drive charges the clock for the I/O itself
func (a *AgeTracker) chargeDelete(old int64) {
	a.retiredBytes.Add(old)
	a.liveBytes.Add(-old)
}

// accountant is the commit-time charging seam of trackedWriter: the
// tracker itself (shared map under the mutex) or one executor stream's
// StreamView (goroutine-local map, merged at phase end).
type accountant interface {
	commitWrite(key string, size, snapSize int64, snapOK bool)
}

// commitWrite records one committed create/replace. The old size comes
// from the tracker's own committed-size map so interleaved streams to
// the same key charge exactly once per retired version; the snapshot
// taken at writer open only covers keys first written outside the
// tracker.
func (a *AgeTracker) commitWrite(key string, size, snapSize int64, snapOK bool) {
	a.mu.Lock()
	var old int64
	existed := false
	if e, known := a.sizes[key]; known {
		old, existed = e.size, e.live
	} else {
		old, existed = snapSize, snapOK
	}
	a.sizes[key] = trackedSize{size: size, live: true}
	a.mu.Unlock()
	a.charge(size, old, existed)
}

// CreateWriter starts a tracked streaming create; live bytes are charged
// when the returned writer commits.
func (a *AgeTracker) CreateWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return createWriter(ctx, a.store, a, key, size)
}

// ReplaceWriter starts a tracked streaming safe replace; the retired old
// version and the new live bytes are charged when the returned writer
// commits.
func (a *AgeTracker) ReplaceWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return replaceWriter(ctx, a.store, a, key, size)
}

// trackedWriterPool recycles the charging wrappers — one per mutation,
// so at high stream counts they alloc-churn like the handles they wrap.
var trackedWriterPool = sync.Pool{New: func() any { return new(trackedWriter) }}

func createWriter(ctx context.Context, store blob.Store, acct accountant, key string, size int64) (blob.Writer, error) {
	w, err := store.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	t := trackedWriterPool.Get().(*trackedWriter)
	*t = trackedWriter{Writer: w, acct: acct, key: key, size: size}
	return t, nil
}

func replaceWriter(ctx context.Context, store blob.Store, acct accountant, key string, size int64) (blob.Writer, error) {
	// The stat models the application's metadata lookup before a safe
	// write and snapshots the old size for keys the accountant has never
	// routed (a store populated before the tracker attached).
	var snapSize int64
	snapOK := false
	if info, err := store.Stat(ctx, key); err == nil {
		snapSize, snapOK = info.Size, true
	}
	w, err := store.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	t := trackedWriterPool.Get().(*trackedWriter)
	*t = trackedWriter{Writer: w, acct: acct, key: key, size: size, snapSize: snapSize, snapOK: snapOK}
	return t, nil
}

// trackedWriter charges the storage-age counters at Commit time.
type trackedWriter struct {
	blob.Writer
	acct     accountant
	key      string
	size     int64
	snapSize int64
	snapOK   bool
	charged  bool
}

// Commit commits the underlying writer, then charges the metric. A
// successful commit retires the wrapper to the pool; the backend writer
// reference stays behind so a misuse double-Commit still reaches the
// backend's ErrClosed instead of a nil handle.
func (w *trackedWriter) Commit() error {
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	if !w.charged {
		w.acct.commitWrite(w.key, w.size, w.snapSize, w.snapOK)
		w.charged = true
		trackedWriterPool.Put(w)
	}
	return nil
}

// Put stores a new whole-buffer object through the tracker.
func (a *AgeTracker) Put(ctx context.Context, key string, size int64, data []byte) error {
	w, err := a.CreateWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Replace performs a whole-buffer safe replace, retiring the old
// version's bytes at commit.
func (a *AgeTracker) Replace(ctx context.Context, key string, size int64, data []byte) error {
	w, err := a.ReplaceWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Delete removes an object, retiring its bytes.
func (a *AgeTracker) Delete(ctx context.Context, key string) error {
	info, err := a.store.Stat(ctx, key)
	if err != nil {
		return err
	}
	if err := a.store.Delete(ctx, key); err != nil {
		return err
	}
	old := info.Size
	a.mu.Lock()
	if e, known := a.sizes[key]; known && e.live {
		old = e.size
	}
	a.sizes[key] = trackedSize{live: false}
	a.mu.Unlock()
	a.chargeDelete(old)
	return nil
}

// StreamView returns a goroutine-local charging view for one executor
// stream. The view routes mutations to the same store and the same
// atomic byte counters — Age observed through the tracker is exact at
// every commit — but keeps its committed-size entries in a private map,
// touching the tracker's shared map (under the mutex) only on the
// FIRST encounter of each key. Call Merge when the phase ends to fold
// the view's entries back; the Executor does this for its streams.
//
// Views assume each key is mutated by at most one view per phase (the
// per-stream keyspace discipline every workload here follows; trace
// partitioning routes by key for the same reason). Two views racing on
// one key within a phase would each charge against their own last-seen
// size — exactly the anomaly the shared map exists to prevent — so
// cross-stream keys must stay on the plain tracker.
func (a *AgeTracker) StreamView() *StreamView {
	return &StreamView{a: a, local: make(map[string]trackedSize)}
}

// StreamView is one stream's private AgeTracker frontend. Not safe for
// concurrent use — it belongs to its stream's goroutine; Merge is
// called after the stream is done.
type StreamView struct {
	a     *AgeTracker
	local map[string]trackedSize
}

// Tracker returns the shared tracker behind the view.
func (v *StreamView) Tracker() *AgeTracker { return v.a }

// lookup consults the view's private map first and falls back to the
// shared map for keys this stream has not touched this phase.
func (v *StreamView) lookup(key string) (trackedSize, bool) {
	if e, ok := v.local[key]; ok {
		return e, true
	}
	return v.a.lookup(key)
}

// commitWrite is the view-side accountant: identical charging rules,
// private size map.
func (v *StreamView) commitWrite(key string, size, snapSize int64, snapOK bool) {
	var old int64
	existed := false
	if e, known := v.lookup(key); known {
		old, existed = e.size, e.live
	} else {
		old, existed = snapSize, snapOK
	}
	v.local[key] = trackedSize{size: size, live: true}
	v.a.charge(size, old, existed)
}

// CreateWriter starts a tracked streaming create charged to this view.
func (v *StreamView) CreateWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return createWriter(ctx, v.a.store, v, key, size)
}

// ReplaceWriter starts a tracked streaming safe replace charged to this
// view.
func (v *StreamView) ReplaceWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return replaceWriter(ctx, v.a.store, v, key, size)
}

// Put stores a new whole-buffer object through the view.
func (v *StreamView) Put(ctx context.Context, key string, size int64, data []byte) error {
	w, err := v.CreateWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Replace performs a whole-buffer safe replace through the view.
func (v *StreamView) Replace(ctx context.Context, key string, size int64, data []byte) error {
	w, err := v.ReplaceWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Delete removes an object through the view, retiring its bytes.
func (v *StreamView) Delete(ctx context.Context, key string) error {
	info, err := v.a.store.Stat(ctx, key)
	if err != nil {
		return err
	}
	if err := v.a.store.Delete(ctx, key); err != nil {
		return err
	}
	old := info.Size
	if e, known := v.lookup(key); known && e.live {
		old = e.size
	}
	v.local[key] = trackedSize{live: false}
	v.a.chargeDelete(old)
	return nil
}

// Merge folds the view's committed-size entries into the shared map and
// empties the view. Call once the owning stream has finished its phase;
// the view remains usable for a subsequent phase.
func (v *StreamView) Merge() {
	if len(v.local) == 0 {
		return
	}
	v.a.mu.Lock()
	for k, e := range v.local {
		v.a.sizes[k] = e
	}
	v.a.mu.Unlock()
	clear(v.local)
}
