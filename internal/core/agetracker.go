// Package core is the paper's primary contribution rendered as a
// library: the blob.Store get/put large-object abstraction (§4:
// "applications that make use of simple get/put storage primitives"),
// two interchangeable implementations — filesystem-backed and
// database-backed — with matched safe-replace semantics, and the
// storage-age clock (§4.4) that makes long-term fragmentation
// measurements comparable across systems, volume sizes, and hardware.
package core

import (
	"context"
	"sync"

	"repro/internal/blob"
)

// AgeTracker maintains the paper's storage-age metric for a store: "the
// ratio of bytes in objects that once existed on a volume to the number
// of bytes in use on the volume" (§4.4) — for a safe-write workload,
// replaced bytes divided by live bytes ("safe writes per object").
//
// Use it by routing all mutations through the tracker. Retired and live
// byte counts are charged when a streaming writer COMMITS, never at
// buffer hand-off: an aborted or crashed stream leaves the metric
// untouched, exactly as it leaves the store untouched. The tracker is
// safe for concurrent use, like the stores it wraps.
type AgeTracker struct {
	store blob.Store

	mu           sync.Mutex
	retiredBytes int64 // bytes of object versions retired since baseline
	liveBytes    int64
	// sizes holds the tracker's own view of each routed key: the last
	// committed size, or a dead entry once the tracker deleted the key.
	// Dead entries invalidate the old-size snapshot an in-flight
	// ReplaceWriter took before the delete, so a version is never
	// retired twice.
	sizes map[string]trackedSize
}

// trackedSize is one entry of AgeTracker.sizes.
type trackedSize struct {
	size int64
	live bool
}

// NewAgeTracker wraps store. Storage age starts at zero; call
// ResetBaseline after bulk load so that age 0 corresponds to the freshly
// loaded store, as in the paper's figures.
func NewAgeTracker(store blob.Store) *AgeTracker {
	return &AgeTracker{store: store, sizes: make(map[string]trackedSize)}
}

// Store returns the wrapped store.
func (a *AgeTracker) Store() blob.Store { return a.store }

// Age returns the current storage age.
func (a *AgeTracker) Age() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.liveBytes == 0 {
		return 0
	}
	return float64(a.retiredBytes) / float64(a.liveBytes)
}

// LiveBytes returns the tracked live byte count.
func (a *AgeTracker) LiveBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.liveBytes
}

// RetiredBytes returns bytes retired since the baseline.
func (a *AgeTracker) RetiredBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retiredBytes
}

// ResetBaseline zeroes the retired-byte counter (end of bulk load).
func (a *AgeTracker) ResetBaseline() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.retiredBytes = 0
}

// commitWrite records one committed create/replace. The old size comes
// from the tracker's own committed-size map so interleaved streams to
// the same key charge exactly once per retired version; the snapshot
// taken at writer open only covers keys first written outside the
// tracker.
func (a *AgeTracker) commitWrite(key string, size, snapSize int64, snapOK bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var old int64
	existed := false
	if e, known := a.sizes[key]; known {
		old, existed = e.size, e.live
	} else {
		old, existed = snapSize, snapOK
	}
	if existed {
		a.retiredBytes += old
		a.liveBytes -= old
	}
	a.liveBytes += size
	a.sizes[key] = trackedSize{size: size, live: true}
}

// CreateWriter starts a tracked streaming create; live bytes are charged
// when the returned writer commits.
func (a *AgeTracker) CreateWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := a.store.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &trackedWriter{Writer: w, tracker: a, key: key, size: size}, nil
}

// ReplaceWriter starts a tracked streaming safe replace; the retired old
// version and the new live bytes are charged when the returned writer
// commits.
func (a *AgeTracker) ReplaceWriter(ctx context.Context, key string, size int64) (blob.Writer, error) {
	// The stat models the application's metadata lookup before a safe
	// write and snapshots the old size for keys the tracker has never
	// routed (a store populated before the tracker attached).
	var snapSize int64
	snapOK := false
	if info, err := a.store.Stat(ctx, key); err == nil {
		snapSize, snapOK = info.Size, true
	}
	w, err := a.store.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &trackedWriter{Writer: w, tracker: a, key: key, size: size, snapSize: snapSize, snapOK: snapOK}, nil
}

// trackedWriter charges the storage-age counters at Commit time.
type trackedWriter struct {
	blob.Writer
	tracker  *AgeTracker
	key      string
	size     int64
	snapSize int64
	snapOK   bool
	charged  bool
}

// Commit commits the underlying writer, then charges the metric.
func (w *trackedWriter) Commit() error {
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	if !w.charged {
		w.tracker.commitWrite(w.key, w.size, w.snapSize, w.snapOK)
		w.charged = true
	}
	return nil
}

// Put stores a new whole-buffer object through the tracker.
func (a *AgeTracker) Put(ctx context.Context, key string, size int64, data []byte) error {
	w, err := a.CreateWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Replace performs a whole-buffer safe replace, retiring the old
// version's bytes at commit.
func (a *AgeTracker) Replace(ctx context.Context, key string, size int64, data []byte) error {
	w, err := a.ReplaceWriter(ctx, key, size)
	if err != nil {
		return err
	}
	return blob.WriteAll(w, size, data)
}

// Delete removes an object, retiring its bytes.
func (a *AgeTracker) Delete(ctx context.Context, key string) error {
	info, err := a.store.Stat(ctx, key)
	if err != nil {
		return err
	}
	if err := a.store.Delete(ctx, key); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := info.Size
	if e, known := a.sizes[key]; known && e.live {
		old = e.size
	}
	a.retiredBytes += old
	a.liveBytes -= old
	a.sizes[key] = trackedSize{live: false}
	return nil
}
