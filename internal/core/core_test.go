package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// mustFileStore and mustDBStore build stores or fail the test.
func mustFileStore(t testing.TB, opts ...blob.Option) *FileStore {
	t.Helper()
	s, err := NewFileStore(vclock.New(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustDBStore(t testing.TB, opts ...blob.Option) *DBStore {
	t.Helper()
	s, err := NewDBStore(vclock.New(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newStores(t testing.TB, capacity int64, mode disk.Mode) (*FileStore, *DBStore) {
	t.Helper()
	fsStore := mustFileStore(t, blob.WithCapacity(capacity), blob.WithDiskMode(mode))
	dbStore := mustDBStore(t, blob.WithCapacity(capacity), blob.WithDiskMode(mode))
	return fsStore, dbStore
}

func eachStore(t *testing.T, capacity int64, mode disk.Mode, fn func(t *testing.T, s blob.Store)) {
	fsStore, dbStore := newStores(t, capacity, mode)
	for _, s := range []blob.Store{fsStore, dbStore} {
		t.Run(s.Name(), func(t *testing.T) { fn(t, s) })
	}
}

func TestStoreContract(t *testing.T) {
	ctx := context.Background()
	eachStore(t, 128*units.MB, disk.DataMode, func(t *testing.T, s blob.Store) {
		data := make([]byte, 200*units.KB)
		for i := range data {
			data[i] = byte(i)
		}
		if err := blob.Put(ctx, s, "a", int64(len(data)), data); err != nil {
			t.Fatal(err)
		}
		if err := blob.Put(ctx, s, "a", int64(len(data)), data); !errors.Is(err, blob.ErrAlreadyExists) {
			t.Fatalf("duplicate Put = %v, want ErrAlreadyExists", err)
		}
		n, got, err := blob.Get(ctx, s, "a")
		if err != nil || n != int64(len(data)) {
			t.Fatalf("Get = %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("Get payload mismatch")
		}
		if info, err := s.Stat(ctx, "a"); err != nil || info.Size != int64(len(data)) {
			t.Fatalf("Stat = %+v, %v", info, err)
		}
		if s.ObjectCount() != 1 || s.LiveBytes() != int64(len(data)) {
			t.Fatalf("count=%d live=%d", s.ObjectCount(), s.LiveBytes())
		}

		// Replace with different contents.
		data2 := make([]byte, 100*units.KB)
		for i := range data2 {
			data2[i] = byte(255 - i%256)
		}
		if err := blob.Replace(ctx, s, "a", int64(len(data2)), data2); err != nil {
			t.Fatal(err)
		}
		_, got, _ = blob.Get(ctx, s, "a")
		if !bytes.Equal(got, data2) {
			t.Fatal("Replace payload mismatch")
		}
		if s.LiveBytes() != int64(len(data2)) {
			t.Fatalf("LiveBytes after replace = %d", s.LiveBytes())
		}

		if err := s.Delete(ctx, "a"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := blob.Get(ctx, s, "a"); !errors.Is(err, blob.ErrNotFound) {
			t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
		}
		if err := s.Delete(ctx, "a"); !errors.Is(err, blob.ErrNotFound) {
			t.Fatalf("double Delete = %v, want ErrNotFound", err)
		}
		if s.ObjectCount() != 0 || s.LiveBytes() != 0 {
			t.Fatalf("count=%d live=%d after delete", s.ObjectCount(), s.LiveBytes())
		}
	})
}

func TestStoreRunsAndTags(t *testing.T) {
	ctx := context.Background()
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, s blob.Store) {
		for i := 0; i < 5; i++ {
			if err := blob.Put(ctx, s, fmt.Sprintf("o%d", i), 256*units.KB, nil); err != nil {
				t.Fatal(err)
			}
		}
		seenRuns := map[string]bool{}
		s.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
			_ = runs
			seenRuns[key] = true
			if bytes != 256*units.KB {
				t.Fatalf("object %s reported %d bytes", key, bytes)
			}
		})
		if len(seenRuns) != 5 {
			t.Fatalf("EachObjectRuns visited %d objects", len(seenRuns))
		}
		seenTags := map[uint32]bool{}
		s.EachObjectTag(func(key string, tag uint32) {
			if tag == 0 {
				t.Fatalf("object %s has zero tag", key)
			}
			if seenTags[tag] {
				t.Fatalf("duplicate tag %d", tag)
			}
			seenTags[tag] = true
		})
		if len(seenTags) != 5 {
			t.Fatalf("EachObjectTag visited %d objects", len(seenTags))
		}
	})
}

func TestAgeTracker(t *testing.T) {
	ctx := context.Background()
	fsStore, _ := newStores(t, 128*units.MB, disk.MetadataMode)
	tr := NewAgeTracker(fsStore)
	const size = 1 * units.MB
	for i := 0; i < 10; i++ {
		if err := tr.Put(ctx, fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Age() != 0 {
		t.Fatalf("age after puts = %g", tr.Age())
	}
	if tr.LiveBytes() != 10*size {
		t.Fatalf("live = %d", tr.LiveBytes())
	}
	// Replace every object once: age 1 ("safe writes per object").
	for i := 0; i < 10; i++ {
		if err := tr.Replace(ctx, fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Age(); got != 1 {
		t.Fatalf("age after one overwrite each = %g, want 1", got)
	}
	// Again: age 2.
	for i := 0; i < 10; i++ {
		if err := tr.Replace(ctx, fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Age(); got != 2 {
		t.Fatalf("age = %g, want 2", got)
	}
	// Deletes retire bytes too.
	if err := tr.Delete(ctx, "o0"); err != nil {
		t.Fatal(err)
	}
	wantAge := float64(21*size) / float64(9*size)
	if got := tr.Age(); got != wantAge {
		t.Fatalf("age after delete = %g, want %g", got, wantAge)
	}
	tr.ResetBaseline()
	if tr.Age() != 0 {
		t.Fatal("ResetBaseline did not zero age")
	}
}

// TestAgeTrackerChargesAtCommit pins the streaming-writer accounting
// rule: retired/live bytes move when a stream COMMITS, not when the
// writer is handed out, and never for aborted streams.
func TestAgeTrackerChargesAtCommit(t *testing.T) {
	ctx := context.Background()
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, s blob.Store) {
		tr := NewAgeTracker(s)
		if err := tr.Put(ctx, "a", 1*units.MB, nil); err != nil {
			t.Fatal(err)
		}

		// An in-flight replace stream charges nothing...
		w, err := tr.ReplaceWriter(ctx, "a", 2*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if tr.RetiredBytes() != 0 || tr.LiveBytes() != 1*units.MB {
			t.Fatalf("buffer hand-off charged: retired=%d live=%d", tr.RetiredBytes(), tr.LiveBytes())
		}
		// ...until Commit, which retires the old version and swaps the
		// live count to the new size.
		if err := w.Append(1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		if tr.RetiredBytes() != 1*units.MB || tr.LiveBytes() != 2*units.MB {
			t.Fatalf("commit charge wrong: retired=%d live=%d", tr.RetiredBytes(), tr.LiveBytes())
		}

		// An aborted stream charges nothing at all.
		w2, err := tr.ReplaceWriter(ctx, "a", 4*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append(1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := w2.Abort(); err != nil {
			t.Fatal(err)
		}
		if tr.RetiredBytes() != 1*units.MB || tr.LiveBytes() != 2*units.MB {
			t.Fatalf("abort charged: retired=%d live=%d", tr.RetiredBytes(), tr.LiveBytes())
		}

		// A tracked create charges live bytes at commit only.
		w3, err := tr.CreateWriter(ctx, "b", 1*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := w3.Append(1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if tr.LiveBytes() != 2*units.MB {
			t.Fatalf("create charged before commit: live=%d", tr.LiveBytes())
		}
		if err := w3.Commit(); err != nil {
			t.Fatal(err)
		}
		if tr.LiveBytes() != 3*units.MB {
			t.Fatalf("create commit charge wrong: live=%d", tr.LiveBytes())
		}
	})
}

// TestAgeTrackerDeleteDuringReplaceStream pins that a tracked Delete
// interleaved with an open ReplaceWriter retires the old version
// exactly once: the delete invalidates the snapshot the writer took at
// open, so the commit charges only the create.
func TestAgeTrackerDeleteDuringReplaceStream(t *testing.T) {
	ctx := context.Background()
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, s blob.Store) {
		tr := NewAgeTracker(s)
		if err := tr.Put(ctx, "a", 1*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		w, err := tr.ReplaceWriter(ctx, "a", 2*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Delete(ctx, "a"); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(2*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		if tr.RetiredBytes() != 1*units.MB {
			t.Fatalf("old version retired twice: retired=%d, want %d", tr.RetiredBytes(), 1*units.MB)
		}
		if tr.LiveBytes() != 2*units.MB || tr.LiveBytes() != s.LiveBytes() {
			t.Fatalf("live drifted: tracker=%d store=%d", tr.LiveBytes(), s.LiveBytes())
		}
	})
}

func TestAgeIndependentOfVolumeSize(t *testing.T) {
	// §4.4: "Storage age is independent of volume size and update
	// strategy." Same object count and churn on different volumes must
	// report identical ages.
	ctx := context.Background()
	ages := make([]float64, 0, 2)
	for _, capacity := range []int64{128 * units.MB, 512 * units.MB} {
		s := mustFileStore(t, blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
		tr := NewAgeTracker(s)
		for i := 0; i < 8; i++ {
			if err := tr.Put(ctx, fmt.Sprintf("o%d", i), 1*units.MB, nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := tr.Replace(ctx, fmt.Sprintf("o%d", i%8), 1*units.MB, nil); err != nil {
				t.Fatal(err)
			}
		}
		ages = append(ages, tr.Age())
	}
	if ages[0] != ages[1] {
		t.Fatalf("storage age differed across volume sizes: %g vs %g", ages[0], ages[1])
	}
}

// TestTempLookalikeKeySurvives pins that a committed object whose key
// happens to match the safe-write temp-file convention is never
// mistaken for a crashed stream's leftover and destroyed.
func TestTempLookalikeKeySurvives(t *testing.T) {
	ctx := context.Background()
	s := mustFileStore(t, blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err := blob.Put(ctx, s, "a.tmp~", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	// Writing to "a" would use "a.tmp~" as its scratch name; the name is
	// taken by a real object, so the writer must fail instead of
	// deleting it.
	if err := blob.Put(ctx, s, "a", 1*units.MB, nil); err == nil {
		t.Fatal("Create of a succeeded despite its temp name being a live object")
	}
	if info, err := s.Stat(ctx, "a.tmp~"); err != nil || info.Size != 1*units.MB {
		t.Fatalf("temp-lookalike object damaged: %+v, %v", info, err)
	}
	if s.LiveBytes() != 1*units.MB || s.ObjectCount() != 1 {
		t.Fatalf("accounting damaged: live=%d count=%d", s.LiveBytes(), s.ObjectCount())
	}
}

func TestSafeReplaceNeverLosesOldVersionOnFailure(t *testing.T) {
	// Fill a small store so a Replace cannot fit: old version must
	// survive on both backends.
	ctx := context.Background()
	eachStore(t, 16*units.MB, disk.MetadataMode, func(t *testing.T, s blob.Store) {
		if err := blob.Put(ctx, s, "a", 6*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := blob.Put(ctx, s, "b", 6*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		err := blob.Replace(ctx, s, "a", 6*units.MB, nil)
		if err == nil {
			t.Skip("store had room; semantics not exercised")
		}
		if !errors.Is(err, blob.ErrNoSpaceLeft) {
			t.Fatalf("failed replace = %v, want ErrNoSpaceLeft", err)
		}
		if info, err := s.Stat(ctx, "a"); err != nil || info.Size != 6*units.MB {
			t.Fatalf("old version damaged: info=%+v err=%v", info, err)
		}
	})
}
