package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

func newStores(capacity int64, mode disk.Mode) (*FileStore, *DBStore) {
	fsStore := NewFileStore(vclock.New(), FileStoreOptions{Capacity: capacity, DiskMode: mode})
	dbStore := NewDBStore(vclock.New(), DBStoreOptions{Capacity: capacity, DiskMode: mode})
	return fsStore, dbStore
}

func eachStore(t *testing.T, capacity int64, mode disk.Mode, fn func(t *testing.T, r Repository)) {
	fsStore, dbStore := newStores(capacity, mode)
	for _, r := range []Repository{fsStore, dbStore} {
		t.Run(r.Name(), func(t *testing.T) { fn(t, r) })
	}
}

func TestRepositoryContract(t *testing.T) {
	eachStore(t, 128*units.MB, disk.DataMode, func(t *testing.T, r Repository) {
		data := make([]byte, 200*units.KB)
		for i := range data {
			data[i] = byte(i)
		}
		if err := r.Put("a", int64(len(data)), data); err != nil {
			t.Fatal(err)
		}
		if err := r.Put("a", int64(len(data)), data); err == nil {
			t.Fatal("duplicate Put succeeded")
		}
		n, got, err := r.Get("a")
		if err != nil || n != int64(len(data)) {
			t.Fatalf("Get = %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("Get payload mismatch")
		}
		if size, err := r.Stat("a"); err != nil || size != int64(len(data)) {
			t.Fatalf("Stat = %d, %v", size, err)
		}
		if r.ObjectCount() != 1 || r.LiveBytes() != int64(len(data)) {
			t.Fatalf("count=%d live=%d", r.ObjectCount(), r.LiveBytes())
		}

		// Replace with different contents.
		data2 := make([]byte, 100*units.KB)
		for i := range data2 {
			data2[i] = byte(255 - i%256)
		}
		if err := r.Replace("a", int64(len(data2)), data2); err != nil {
			t.Fatal(err)
		}
		_, got, _ = r.Get("a")
		if !bytes.Equal(got, data2) {
			t.Fatal("Replace payload mismatch")
		}
		if r.LiveBytes() != int64(len(data2)) {
			t.Fatalf("LiveBytes after replace = %d", r.LiveBytes())
		}

		if err := r.Delete("a"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Get("a"); err == nil {
			t.Fatal("Get after Delete succeeded")
		}
		if err := r.Delete("a"); err == nil {
			t.Fatal("double Delete succeeded")
		}
		if r.ObjectCount() != 0 || r.LiveBytes() != 0 {
			t.Fatalf("count=%d live=%d after delete", r.ObjectCount(), r.LiveBytes())
		}
	})
}

func TestRepositoryRunsAndTags(t *testing.T) {
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, r Repository) {
		for i := 0; i < 5; i++ {
			if err := r.Put(fmt.Sprintf("o%d", i), 256*units.KB, nil); err != nil {
				t.Fatal(err)
			}
		}
		seenRuns := map[string]bool{}
		r.EachObjectRuns(func(key string, bytes int64, runs []extent.Run) {
			_ = runs
			seenRuns[key] = true
			if bytes != 256*units.KB {
				t.Fatalf("object %s reported %d bytes", key, bytes)
			}
		})
		if len(seenRuns) != 5 {
			t.Fatalf("EachObjectRuns visited %d objects", len(seenRuns))
		}
		seenTags := map[uint32]bool{}
		r.EachObjectTag(func(key string, tag uint32) {
			if tag == 0 {
				t.Fatalf("object %s has zero tag", key)
			}
			if seenTags[tag] {
				t.Fatalf("duplicate tag %d", tag)
			}
			seenTags[tag] = true
		})
		if len(seenTags) != 5 {
			t.Fatalf("EachObjectTag visited %d objects", len(seenTags))
		}
	})
}

func TestAgeTracker(t *testing.T) {
	fsStore, _ := newStores(128*units.MB, disk.MetadataMode)
	tr := NewAgeTracker(fsStore)
	const size = 1 * units.MB
	for i := 0; i < 10; i++ {
		if err := tr.Put(fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Age() != 0 {
		t.Fatalf("age after puts = %g", tr.Age())
	}
	if tr.LiveBytes() != 10*size {
		t.Fatalf("live = %d", tr.LiveBytes())
	}
	// Replace every object once: age 1 ("safe writes per object").
	for i := 0; i < 10; i++ {
		if err := tr.Replace(fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Age(); got != 1 {
		t.Fatalf("age after one overwrite each = %g, want 1", got)
	}
	// Again: age 2.
	for i := 0; i < 10; i++ {
		if err := tr.Replace(fmt.Sprintf("o%d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Age(); got != 2 {
		t.Fatalf("age = %g, want 2", got)
	}
	// Deletes retire bytes too.
	if err := tr.Delete("o0"); err != nil {
		t.Fatal(err)
	}
	wantAge := float64(21*size) / float64(9*size)
	if got := tr.Age(); got != wantAge {
		t.Fatalf("age after delete = %g, want %g", got, wantAge)
	}
	tr.ResetBaseline()
	if tr.Age() != 0 {
		t.Fatal("ResetBaseline did not zero age")
	}
}

func TestAgeIndependentOfVolumeSize(t *testing.T) {
	// §4.4: "Storage age is independent of volume size and update
	// strategy." Same object count and churn on different volumes must
	// report identical ages.
	ages := make([]float64, 0, 2)
	for _, capacity := range []int64{128 * units.MB, 512 * units.MB} {
		s := NewFileStore(vclock.New(), FileStoreOptions{Capacity: capacity, DiskMode: disk.MetadataMode})
		tr := NewAgeTracker(s)
		for i := 0; i < 8; i++ {
			if err := tr.Put(fmt.Sprintf("o%d", i), 1*units.MB, nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := tr.Replace(fmt.Sprintf("o%d", i%8), 1*units.MB, nil); err != nil {
				t.Fatal(err)
			}
		}
		ages = append(ages, tr.Age())
	}
	if ages[0] != ages[1] {
		t.Fatalf("storage age differed across volume sizes: %g vs %g", ages[0], ages[1])
	}
}

func TestSafeReplaceNeverLosesOldVersionOnFailure(t *testing.T) {
	// Fill a small store so a Replace cannot fit: old version must
	// survive on both backends.
	eachStore(t, 16*units.MB, disk.MetadataMode, func(t *testing.T, r Repository) {
		if err := r.Put("a", 6*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.Put("b", 6*units.MB, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.Replace("a", 6*units.MB, nil); err == nil {
			t.Skip("store had room; semantics not exercised")
		}
		if size, err := r.Stat("a"); err != nil || size != 6*units.MB {
			t.Fatalf("old version damaged: size=%d err=%v", size, err)
		}
	})
}
