package core

import (
	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// DBStoreOptions configures a database-backed repository.
type DBStoreOptions struct {
	// Capacity is the data drive size in bytes.
	Capacity int64
	// DiskMode selects payload retention.
	DiskMode disk.Mode
	// Geometry overrides the data drive geometry; zero takes
	// disk.DefaultGeometry(Capacity).
	Geometry *disk.Geometry
	// DB configures the engine.
	DB db.Config
	// LogCapacity sizes the dedicated log drive (default 2 GB): "SQL was
	// given a dedicated log and data drive" (§4.1).
	LogCapacity int64
	// NoOwnerMap skips the per-cluster owner map on the data drive (for
	// very large simulated volumes); the marker scanner is unavailable.
	NoOwnerMap bool
}

// DBStore is the paper's database configuration (§4.2): objects stored as
// out-of-row BLOBs with metadata in the same filegroup, bulk-logged mode.
type DBStore struct {
	eng   *db.Database
	clock *vclock.Clock

	liveBytes int64
	tags      map[string]uint32
}

// NewDBStore builds a database-backed repository on fresh simulated
// drives sharing clock.
func NewDBStore(clock *vclock.Clock, opts DBStoreOptions) *DBStore {
	if opts.Capacity <= 0 {
		panic("core: DBStoreOptions.Capacity required")
	}
	if opts.LogCapacity == 0 {
		opts.LogCapacity = 2 * units.GB
	}
	geo := disk.DefaultGeometry(opts.Capacity)
	if opts.Geometry != nil {
		geo = *opts.Geometry
	}
	var diskOpts []disk.Option
	if opts.NoOwnerMap {
		diskOpts = append(diskOpts, disk.WithoutOwnerMap())
	}
	dataDrive := disk.New(geo, clock, opts.DiskMode, diskOpts...)
	logDrive := disk.New(disk.DefaultGeometry(opts.LogCapacity), clock, disk.MetadataMode)
	return &DBStore{
		eng:   db.Open(dataDrive, logDrive, opts.DB),
		clock: clock,
		tags:  make(map[string]uint32),
	}
}

// Name implements Repository.
func (s *DBStore) Name() string { return "database" }

// Engine exposes the underlying database for analysis tools.
func (s *DBStore) Engine() *db.Database { return s.eng }

// Clock implements Repository.
func (s *DBStore) Clock() *vclock.Clock { return s.clock }

// Put implements Repository.
func (s *DBStore) Put(key string, size int64, data []byte) error {
	if err := s.eng.Put(key, size, data); err != nil {
		return err
	}
	s.liveBytes += size
	s.tags[key] = s.eng.Tag(key)
	return nil
}

// Get implements Repository.
func (s *DBStore) Get(key string) (int64, []byte, error) {
	size, err := s.eng.Stat(key)
	if err != nil {
		return 0, nil, err
	}
	data, err := s.eng.Get(key)
	if err != nil {
		return 0, nil, err
	}
	return size, data, nil
}

// Replace implements Repository.
func (s *DBStore) Replace(key string, size int64, data []byte) error {
	old, err := s.eng.Stat(key)
	existed := err == nil
	if err := s.eng.Replace(key, size, data); err != nil {
		return err
	}
	if existed {
		s.liveBytes -= old
	}
	s.liveBytes += size
	s.tags[key] = s.eng.Tag(key)
	return nil
}

// Delete implements Repository.
func (s *DBStore) Delete(key string) error {
	old, err := s.eng.Stat(key)
	if err != nil {
		return err
	}
	if err := s.eng.Delete(key); err != nil {
		return err
	}
	s.liveBytes -= old
	delete(s.tags, key)
	return nil
}

// Stat implements Repository.
func (s *DBStore) Stat(key string) (int64, error) { return s.eng.Stat(key) }

// Keys implements Repository.
func (s *DBStore) Keys() []string { return s.eng.Keys() }

// ObjectCount implements Repository.
func (s *DBStore) ObjectCount() int { return s.eng.ObjectCount() }

// LiveBytes implements Repository.
func (s *DBStore) LiveBytes() int64 { return s.liveBytes }

// FreeBytes implements Repository.
func (s *DBStore) FreeBytes() int64 { return s.eng.FreeBytes() }

// CapacityBytes implements Repository.
func (s *DBStore) CapacityBytes() int64 { return s.eng.CapacityBytes() }

// EachObjectRuns implements frag.Source.
func (s *DBStore) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.eng.EachObject(fn)
}

// EachObjectTag implements frag.TagSource.
func (s *DBStore) EachObjectTag(fn func(key string, tag uint32)) {
	for k, tag := range s.tags {
		fn(k, tag)
	}
}

var _ Repository = (*DBStore)(nil)
