package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/blob"
	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/units"
	"repro/internal/vclock"
)

// DBStore is the paper's database configuration (§4.2) behind the v2
// blob.Store API: objects stored as out-of-row BLOBs with metadata in
// the same filegroup, bulk-logged mode, a dedicated log drive.
//
// Writers accumulate appended bytes client-side and hand the object to
// the engine at Commit in one implicit transaction — the §3.1 shape of
// database client interfaces — inside which the engine still allocates
// in request-sized chunks, so layout behaviour matches the v1 API
// exactly. Until Commit nothing is visible, matching the filesystem
// backend's safe-write semantics.
//
// With blob.WithGroupCommit, Commit enqueues onto the store's commit
// queue and a batcher coalesces pending transactions: the engine forces
// its log ONCE per batch — one sequential write covering every record —
// instead of once per transaction, the §3.1 amortization.
//
// The store is safe for concurrent callers: per-key striped locks order
// operations on the same key, and an internal mutex serializes access to
// the single-threaded engine beneath.
type DBStore struct {
	eng   *db.Database
	clock *vclock.Clock

	locks     *blob.KeyLocks
	committer *blob.GroupCommitter

	mu        sync.Mutex // guards eng, liveBytes, tags, inflight
	liveBytes int64
	tags      map[string]uint32
	inflight  map[string]bool // keys with an uncommitted writer
}

// NewDBStore builds a database-backed store on fresh simulated drives
// sharing clock. blob.WithCapacity is required; misconfiguration fails
// with blob.ErrBadOption.
func NewDBStore(clock *vclock.Clock, options ...blob.Option) (*DBStore, error) {
	opts := blob.NewOptions(options...)
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: NewDBStore: %w", err)
	}
	if opts.LogCapacity == 0 {
		opts.LogCapacity = 2 * units.GB
	}
	locks, err := blob.NewKeyLocks(opts.LockStripes)
	if err != nil {
		return nil, fmt.Errorf("core: NewDBStore: %w: %w", blob.ErrBadOption, err)
	}
	geo := disk.DefaultGeometry(opts.Capacity)
	if opts.Geometry != nil {
		geo = *opts.Geometry
	}
	var diskOpts []disk.Option
	if opts.NoOwnerMap {
		diskOpts = append(diskOpts, disk.WithoutOwnerMap())
	}
	dataDrive := disk.New(geo, clock, opts.DiskMode, diskOpts...)
	logDrive := disk.New(disk.DefaultGeometry(opts.LogCapacity), clock, disk.MetadataMode)
	cfg := db.Config{
		WriteRequestSize: opts.WriteRequestSize,
		FullLogging:      opts.FullLogging,
		GhostHorizon:     opts.GhostHorizon,
	}
	s := &DBStore{
		eng:      db.Open(dataDrive, logDrive, cfg),
		clock:    clock,
		locks:    locks,
		tags:     make(map[string]uint32),
		inflight: make(map[string]bool),
	}
	s.committer = blob.NewGroupCommitter(opts.GroupCommitBatch, opts.GroupCommitDelay,
		s.beginGroup, s.endGroup)
	if opts.CommitObserver != nil {
		s.committer.SetObserver(clock, opts.CommitObserver)
	}
	return s, nil
}

// beginGroup starts deferring the engine's per-transaction log forces.
func (s *DBStore) beginGroup() {
	s.mu.Lock()
	s.eng.BeginGroup()
	s.mu.Unlock()
}

// endGroup forces the accumulated log records in one sequential write —
// the group force.
func (s *DBStore) endGroup() {
	s.mu.Lock()
	s.eng.EndGroup()
	s.mu.Unlock()
}

// Close shuts down the group-commit pipeline. The store stays usable;
// later commits apply synchronously.
func (s *DBStore) Close() error {
	s.committer.Close()
	return nil
}

// CommitStats returns the group-commit pipeline counters.
func (s *DBStore) CommitStats() blob.CommitStats { return s.committer.Stats() }

// Name implements blob.Store.
func (s *DBStore) Name() string { return "database" }

// Engine exposes the underlying database for analysis tools.
func (s *DBStore) Engine() *db.Database { return s.eng }

// Clock implements blob.Store.
func (s *DBStore) Clock() *vclock.Clock { return s.clock }

// Open implements blob.Store.
func (s *DBStore) Open(ctx context.Context, key string) (blob.Reader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.locks.RLock(key)
	defer s.locks.RUnlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	size, err := s.eng.Stat(key)
	if err != nil {
		return nil, err
	}
	r := dbReaderPool.Get().(*dbReader)
	*r = dbReader{s: s, ctx: ctx, key: key, size: size, tag: s.eng.Tag(key)}
	return r, nil
}

// dbReader is a read handle pinned to one object version: every write
// stamps a fresh owner tag, so a tag mismatch means the version opened
// was replaced (or deleted) and reads fail with ErrNotFound, matching
// the filesystem backend. Handles are pooled; Close retires them.
type dbReader struct {
	s      *DBStore
	ctx    context.Context
	key    string
	size   int64
	tag    uint32
	closed bool
}

// dbReaderPool recycles read handles across Opens.
var dbReaderPool = sync.Pool{New: func() any { return new(dbReader) }}

// Size implements blob.Reader.
func (r *dbReader) Size() int64 { return r.size }

func (r *dbReader) check() error {
	if r.closed {
		return fmt.Errorf("%w: reader for %s", blob.ErrClosed, r.key)
	}
	return r.ctx.Err()
}

// validate confirms the opened version is still live (callers hold
// r.s.mu). Tag lookups are free of simulated cost.
func (r *dbReader) validate() error {
	if cur := r.s.eng.Tag(r.key); cur != r.tag {
		return fmt.Errorf("%w: %s (version replaced or deleted)", blob.ErrNotFound, r.key)
	}
	return nil
}

// ReadAll implements blob.Reader.
func (r *dbReader) ReadAll() ([]byte, error) {
	if err := r.check(); err != nil {
		return nil, err
	}
	r.s.locks.RLock(r.key)
	defer r.s.locks.RUnlock(r.key)
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r.s.eng.Get(r.key)
}

// ReadAt implements blob.Reader.
func (r *dbReader) ReadAt(off, length int64) ([]byte, error) {
	if err := r.check(); err != nil {
		return nil, err
	}
	r.s.locks.RLock(r.key)
	defer r.s.locks.RUnlock(r.key)
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r.s.eng.GetRange(r.key, off, length)
}

// Close implements blob.Reader. The first Close retires the handle to
// the pool; later Closes on the same handle are no-ops.
func (r *dbReader) Close() error {
	if !r.closed {
		r.closed = true
		dbReaderPool.Put(r)
	}
	return nil
}

// Create implements blob.Store.
func (s *DBStore) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.newWriter(ctx, key, size, false)
}

// Replace implements blob.Store: the transactional counterpart of the
// filesystem safe write.
func (s *DBStore) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.newWriter(ctx, key, size, true)
}

func (s *DBStore) newWriter(ctx context.Context, key string, size int64, replace bool) (blob.Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: write of %d bytes to %s", blob.ErrInvalidSize, size, key)
	}
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[key] {
		return nil, fmt.Errorf("%w: %s", blob.ErrBusy, key)
	}
	if !replace {
		if s.eng.Has(key) {
			return nil, fmt.Errorf("%w: %s", blob.ErrAlreadyExists, key)
		}
	}
	s.inflight[key] = true
	w := dbWriterPool.Get().(*dbWriter)
	apply := w.apply
	*w = dbWriter{s: s, ctx: ctx, key: key,
		state: blob.NewStreamState(key, size), size: size, replace: replace, buf: w.buf[:0]}
	if apply == nil {
		apply = w.commitApply
	}
	w.apply = apply
	return w, nil
}

// dbWriter buffers one object version client-side and commits it in a
// single engine transaction. Writers are pooled (the payload buffer's
// capacity rides along); a successful Commit or an Abort retires the
// handle.
type dbWriter struct {
	s       *DBStore
	ctx     context.Context
	key     string
	state   blob.StreamState
	size    int64
	buf     []byte
	replace bool
	apply   func() error // cached commitApply method value
}

// dbWriterPool recycles write handles across commits.
var dbWriterPool = sync.Pool{New: func() any { return new(dbWriter) }}

// retire returns a finished (committed or aborted) writer to the pool.
func (w *dbWriter) retire() {
	apply, buf := w.apply, w.buf[:0]
	*w = dbWriter{apply: apply, buf: buf}
	w.state.Close()
	dbWriterPool.Put(w)
}

// Append implements blob.Writer. One stream is all-payload or
// all-metadata; mixing is refused so the retained payload can never be
// silently partial.
func (w *dbWriter) Append(n int64, data []byte) error {
	if err := w.state.BeginAppend(w.ctx, n, data); err != nil {
		return err
	}
	if data != nil {
		w.buf = append(w.buf, data...)
	}
	w.state.NoteAppended(n)
	return nil
}

// Write implements io.Writer over Append.
func (w *dbWriter) Write(p []byte) (int, error) {
	if err := w.Append(int64(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Commit implements blob.Writer: one implicit engine transaction writes
// the BLOB (chunked to the configured request size internally), inserts
// or updates the row, and ghosts any old pages. The commit rides the
// store's group-commit pipeline: with batching enabled its log record
// is forced together with the rest of its batch in one sequential
// write, and the error that comes back is this writer's own.
func (w *dbWriter) Commit() error {
	if err := w.state.BeginCommit(w.ctx); err != nil {
		return err
	}
	err := w.s.committer.Do(w.apply)
	if err == nil {
		// Only a successful commit retires the handle: after a failed
		// apply the writer stays open for Abort.
		w.retire()
	}
	return err
}

// commitApply performs the engine transaction of one commit, with the
// log force deferred to the surrounding batch.
func (w *dbWriter) commitApply() error {
	w.s.locks.Lock(w.key)
	defer w.s.locks.Unlock(w.key)
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	var data []byte
	if w.state.WithData() {
		data = w.buf
	}
	var old int64
	existed := false
	if w.replace {
		if sz, err := w.s.eng.Stat(w.key); err == nil {
			old, existed = sz, true
		}
		if err := w.s.eng.Replace(w.key, w.size, data); err != nil {
			return err
		}
	} else {
		if err := w.s.eng.Put(w.key, w.size, data); err != nil {
			return err
		}
	}
	if existed {
		w.s.liveBytes -= old
	}
	w.s.liveBytes += w.size
	w.s.tags[w.key] = w.s.eng.Tag(w.key)
	delete(w.s.inflight, w.key)
	w.state.Close()
	return nil
}

// Abort implements blob.Writer: nothing reached the engine, so the
// previous version is untouched by construction.
func (w *dbWriter) Abort() error {
	if w.state.Closed() {
		return nil
	}
	w.s.locks.Lock(w.key)
	defer w.s.locks.Unlock(w.key)
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	delete(w.s.inflight, w.key)
	w.state.Close()
	w.retire()
	return nil
}

// Delete implements blob.Store.
func (s *DBStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, err := s.eng.Stat(key)
	if err != nil {
		return err
	}
	if err := s.eng.Delete(key); err != nil {
		return err
	}
	s.liveBytes -= old
	delete(s.tags, key)
	return nil
}

// Stat implements blob.Store.
func (s *DBStore) Stat(ctx context.Context, key string) (blob.Info, error) {
	if err := ctx.Err(); err != nil {
		return blob.Info{}, err
	}
	s.locks.RLock(key)
	defer s.locks.RUnlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	size, err := s.eng.Stat(key)
	if err != nil {
		return blob.Info{}, err
	}
	return blob.Info{Key: key, Size: size}, nil
}

// Keys implements blob.Store.
func (s *DBStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Keys()
}

// ObjectCount implements blob.Store.
func (s *DBStore) ObjectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.ObjectCount()
}

// LiveBytes implements blob.Store.
func (s *DBStore) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// FreeBytes implements blob.Store.
func (s *DBStore) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.FreeBytes()
}

// CapacityBytes implements blob.Store.
func (s *DBStore) CapacityBytes() int64 { return s.eng.CapacityBytes() }

// EachObjectRuns implements frag.Source.
func (s *DBStore) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.EachObject(fn)
}

// EachObjectTag implements frag.TagSource.
func (s *DBStore) EachObjectTag(fn func(key string, tag uint32)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, tag := range s.tags {
		fn(k, tag)
	}
}

var _ blob.Store = (*DBStore)(nil)
