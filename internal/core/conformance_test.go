package core_test

import (
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/core"
	"repro/internal/vclock"
)

// TestFileStoreConformance runs the cross-backend contract suite against
// the filesystem backend.
func TestFileStoreConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s, err := core.NewFileStore(vclock.New(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestDBStoreConformance runs the cross-backend contract suite against
// the database backend.
func TestDBStoreConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s, err := core.NewDBStore(vclock.New(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestFileStoreGroupCommitConformance re-runs the whole contract suite
// with the asynchronous group-commit pipeline enabled: batching may only
// move the force schedule, never the visible semantics.
func TestFileStoreGroupCommitConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s, err := core.NewFileStore(vclock.New(),
			append(opts, blob.WithGroupCommit(8, 200*time.Microsecond))...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	})
}

// TestDBStoreGroupCommitConformance is the database-backend twin.
func TestDBStoreGroupCommitConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s, err := core.NewDBStore(vclock.New(),
			append(opts, blob.WithGroupCommit(8, 200*time.Microsecond))...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	})
}
