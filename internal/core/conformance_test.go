package core_test

import (
	"testing"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/core"
	"repro/internal/vclock"
)

// TestFileStoreConformance runs the cross-backend contract suite against
// the filesystem backend.
func TestFileStoreConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		return core.NewFileStore(vclock.New(), opts...)
	})
}

// TestDBStoreConformance runs the cross-backend contract suite against
// the database backend.
func TestDBStoreConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		return core.NewDBStore(vclock.New(), opts...)
	})
}
