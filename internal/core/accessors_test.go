package core

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/units"
)

// TestAccessors exercises the informational surface of both stores.
func TestAccessors(t *testing.T) {
	ctx := context.Background()
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, s blob.Store) {
		if s.Clock() == nil {
			t.Fatal("nil clock")
		}
		if s.CapacityBytes() <= 0 || s.CapacityBytes() > 128*units.MB {
			t.Fatalf("capacity %d", s.CapacityBytes())
		}
		free0 := s.FreeBytes()
		if free0 <= 0 || free0 > s.CapacityBytes() {
			t.Fatalf("free %d of %d", free0, s.CapacityBytes())
		}
		for _, k := range []string{"b", "a", "c"} {
			if err := blob.Put(ctx, s, k, 256*units.KB, nil); err != nil {
				t.Fatal(err)
			}
		}
		if s.FreeBytes() >= free0 {
			t.Fatal("puts did not consume space")
		}
		keys := s.Keys()
		sort.Strings(keys)
		if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
			t.Fatalf("keys = %v", keys)
		}
	})
}

func TestBackendEscapeHatches(t *testing.T) {
	fsStore, dbStore := newStores(t, 64*units.MB, disk.MetadataMode)
	if fsStore.Volume() == nil {
		t.Fatal("FileStore.Volume nil")
	}
	if dbStore.Engine() == nil {
		t.Fatal("DBStore.Engine nil")
	}
	if fsStore.Name() == dbStore.Name() {
		t.Fatal("backends share a name")
	}
}

func TestTrackerAccessors(t *testing.T) {
	ctx := context.Background()
	fsStore, _ := newStores(t, 64*units.MB, disk.MetadataMode)
	tr := NewAgeTracker(fsStore)
	if tr.Store() != fsStore {
		t.Fatal("Store() mismatch")
	}
	tr.Put(ctx, "a", 1*units.MB, nil)
	tr.Replace(ctx, "a", 1*units.MB, nil)
	if tr.RetiredBytes() != 1*units.MB {
		t.Fatalf("retired %d", tr.RetiredBytes())
	}
	if tr.LiveBytes() != 1*units.MB {
		t.Fatalf("live %d", tr.LiveBytes())
	}
	// Replace of a missing key behaves as create: no retirement.
	if err := tr.Replace(ctx, "fresh", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	if tr.RetiredBytes() != 1*units.MB {
		t.Fatalf("create-by-replace retired bytes: %d", tr.RetiredBytes())
	}
	// Delete of missing key errors without corrupting counters.
	if err := tr.Delete(ctx, "ghost"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("delete missing = %v, want ErrNotFound", err)
	}
	if tr.LiveBytes() != 2*units.MB {
		t.Fatalf("live after failed delete: %d", tr.LiveBytes())
	}
}
