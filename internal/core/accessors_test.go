package core

import (
	"sort"
	"testing"

	"repro/internal/disk"
	"repro/internal/units"
)

// TestAccessors exercises the informational surface of both stores.
func TestAccessors(t *testing.T) {
	eachStore(t, 128*units.MB, disk.MetadataMode, func(t *testing.T, r Repository) {
		if r.Clock() == nil {
			t.Fatal("nil clock")
		}
		if r.CapacityBytes() <= 0 || r.CapacityBytes() > 128*units.MB {
			t.Fatalf("capacity %d", r.CapacityBytes())
		}
		free0 := r.FreeBytes()
		if free0 <= 0 || free0 > r.CapacityBytes() {
			t.Fatalf("free %d of %d", free0, r.CapacityBytes())
		}
		for _, k := range []string{"b", "a", "c"} {
			if err := r.Put(k, 256*units.KB, nil); err != nil {
				t.Fatal(err)
			}
		}
		if r.FreeBytes() >= free0 {
			t.Fatal("puts did not consume space")
		}
		keys := r.Keys()
		sort.Strings(keys)
		if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
			t.Fatalf("keys = %v", keys)
		}
	})
}

func TestBackendEscapeHatches(t *testing.T) {
	fsStore, dbStore := newStores(64*units.MB, disk.MetadataMode)
	if fsStore.Volume() == nil {
		t.Fatal("FileStore.Volume nil")
	}
	if dbStore.Engine() == nil {
		t.Fatal("DBStore.Engine nil")
	}
	if fsStore.Name() == dbStore.Name() {
		t.Fatal("backends share a name")
	}
}

func TestTrackerAccessors(t *testing.T) {
	fsStore, _ := newStores(64*units.MB, disk.MetadataMode)
	tr := NewAgeTracker(fsStore)
	if tr.Repo() != fsStore {
		t.Fatal("Repo() mismatch")
	}
	tr.Put("a", 1*units.MB, nil)
	tr.Replace("a", 1*units.MB, nil)
	if tr.RetiredBytes() != 1*units.MB {
		t.Fatalf("retired %d", tr.RetiredBytes())
	}
	if tr.LiveBytes() != 1*units.MB {
		t.Fatalf("live %d", tr.LiveBytes())
	}
	// Replace of a missing key behaves as create: no retirement.
	if err := tr.Replace("fresh", 1*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	if tr.RetiredBytes() != 1*units.MB {
		t.Fatalf("create-by-replace retired bytes: %d", tr.RetiredBytes())
	}
	// Delete of missing key errors without corrupting counters.
	if err := tr.Delete("ghost"); err == nil {
		t.Fatal("delete missing succeeded")
	}
	if tr.LiveBytes() != 2*units.MB {
		t.Fatalf("live after failed delete: %d", tr.LiveBytes())
	}
}
