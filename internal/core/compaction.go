package core

import (
	"context"
	"fmt"

	"repro/internal/blob"
	"repro/internal/fs"
)

// This file is the store-level surface the online compactor
// (internal/compact) drives. Both stores expose the same two structural
// capabilities:
//
//   - CompactObject rewrites one fragmented object into (as) contiguous
//     space (as the allocator allows), publishing a fresh version so
//     readers pinned to the old layout fail typed instead of reading
//     relocated bytes.
//   - PackObjects (FileStore only) coalesces a batch of small objects
//     into one pack extent.
//
// Every rewrite rides the group-commit pipeline — its metadata force is
// batched with concurrent foreground commits — and charges full
// read+write disk cost on the shared virtual clock.

// CompactObject rewrites key's file into contiguous space. It returns
// the bytes moved: 0 when the file is already contiguous, packed, or
// could not be placed. A key with an uncommitted writer fails with
// blob.ErrBusy so the compactor can skip and retry later.
func (s *FileStore) CompactObject(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var moved int64
	err := s.committer.Do(func() error {
		s.locks.Lock(key)
		defer s.locks.Unlock(key)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.inflight[key] {
			return fmt.Errorf("%w: writer in flight on %s", blob.ErrBusy, key)
		}
		if _, ok := s.vol.Lookup(key); !ok || s.inflightTemp(key) {
			return fmt.Errorf("%w: %s", blob.ErrNotFound, key)
		}
		n, ok := s.vol.CompactFile(key)
		if !ok {
			return nil
		}
		// The relocation is a row update in the metadata database — the
		// isolation from physical location the paper's design buys.
		if err := s.meta.Update(key); err != nil {
			return err
		}
		moved = n
		return nil
	})
	return moved, err
}

// PackObjects coalesces the given small objects into one pack extent,
// returning the keys actually packed. Keys that are missing, busy with
// an uncommitted writer, or already packed are skipped; fewer than two
// eligible keys is a no-op.
func (s *FileStore) PackObjects(ctx context.Context, keys []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var packed []string
	err := s.committer.Do(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		eligible := make([]string, 0, len(keys))
		for _, k := range keys {
			if s.inflight[k] || s.inflightTemp(k) {
				continue
			}
			if f, ok := s.vol.Lookup(k); ok && !f.Packed() {
				eligible = append(eligible, k)
			}
		}
		var opts fs.PackOptions
		if s.packCrash {
			s.packCrash = false
			opts.Crash = fs.CrashAfterWrite
		}
		rep, err := s.vol.PackFiles(eligible, opts)
		if err != nil {
			return err
		}
		for _, k := range rep.Packed {
			if err := s.meta.Update(k); err != nil {
				return err
			}
		}
		packed = rep.Packed
		return nil
	})
	return packed, err
}

// ArmPackCrash makes the next PackObjects crash after the pack's data
// and index are written but before any member is switched over —
// the torn-rewrite window Recover must sweep. Pairs with
// ArmCommitCrash for the safe-write path.
func (s *FileStore) ArmPackCrash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.packCrash = true
}

// CompactObject rewrites key's BLOB through the engine's re-append
// compaction, forcing the commit record through the group-commit
// pipeline. It returns the bytes moved (0 when already contiguous); a
// key with an uncommitted writer fails with blob.ErrBusy.
func (s *DBStore) CompactObject(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var moved int64
	err := s.committer.Do(func() error {
		s.locks.Lock(key)
		defer s.locks.Unlock(key)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.inflight[key] {
			return fmt.Errorf("%w: writer in flight on %s", blob.ErrBusy, key)
		}
		n, err := s.eng.Compact(key)
		if err != nil {
			return err
		}
		if n > 0 {
			// The rewrite is a new version: readers pinned to the old
			// tag fail typed, exactly as after a Replace.
			s.tags[key] = s.eng.Tag(key)
		}
		moved = n
		return nil
	})
	return moved, err
}
