package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

// groupOpts enables batching up to 8 commits with a small fill delay so
// concurrent writers reliably coalesce.
func groupOpts(extra ...blob.Option) []blob.Option {
	return append([]blob.Option{
		blob.WithCapacity(256 * units.MB),
		blob.WithDiskMode(disk.MetadataMode),
		blob.WithGroupCommit(8, 2*time.Millisecond),
	}, extra...)
}

// runConcurrentPuts drives writers concurrent streams of rounds commits
// each through s.
func runConcurrentPuts(t *testing.T, s blob.Store, writers, rounds int, size int64) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%02d-o%04d", w, i)
				if err := blob.Put(ctx, s, key, size, nil); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitBatchesUnderConcurrency pins the acceptance criterion:
// under 8 concurrent writers the pipeline coalesces more than one
// commit per group force on both backends, and the committed objects
// are all there.
func TestGroupCommitBatchesUnderConcurrency(t *testing.T) {
	const writers, rounds = 8, 12
	fsStore := mustFileStore(t, groupOpts()...)
	dbStore := mustDBStore(t, groupOpts()...)
	for _, s := range []blob.Store{fsStore, dbStore} {
		t.Run(s.Name(), func(t *testing.T) {
			runConcurrentPuts(t, s, writers, rounds, 1*units.MB)
			if got := s.ObjectCount(); got != writers*rounds {
				t.Fatalf("committed %d objects, want %d", got, writers*rounds)
			}
			cs, ok := blob.CommitStatsOf(s)
			if !ok {
				t.Fatal("store exposes no CommitStats")
			}
			if cs.Commits != writers*rounds {
				t.Fatalf("pipeline saw %d commits, want %d", cs.Commits, writers*rounds)
			}
			if cs.MeanBatch() <= 1 {
				t.Errorf("mean batch %.2f under %d concurrent writers, want > 1 (max seen %d)",
					cs.MeanBatch(), writers, cs.MaxBatch)
			}
			if err := blob.CloseStore(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGroupCommitReducesLogForces pins the amortization itself: the same
// concurrent workload issues fewer forced log flushes per committed
// object with batching on than off.
func TestGroupCommitReducesLogForces(t *testing.T) {
	const writers, rounds = 8, 12
	run := func(opts ...blob.Option) int64 {
		s := mustDBStore(t, append([]blob.Option{
			blob.WithCapacity(256 * units.MB),
			blob.WithDiskMode(disk.MetadataMode),
		}, opts...)...)
		defer s.Close()
		runConcurrentPuts(t, s, writers, rounds, 1*units.MB)
		return s.Engine().Stats().LogForces
	}
	unbatched := run()
	batched := run(blob.WithGroupCommit(8, 2*time.Millisecond))
	if batched >= unbatched {
		t.Errorf("log forces with batching = %d, without = %d; group commit saved nothing", batched, unbatched)
	}
	// Without batching every commit forces at least once.
	if unbatched < writers*rounds {
		t.Errorf("unbatched run forced %d times for %d commits", unbatched, writers*rounds)
	}

	// Filesystem counterpart: forced MFT writes per commit shrink too.
	runFS := func(opts ...blob.Option) int64 {
		s := mustFileStore(t, append([]blob.Option{
			blob.WithCapacity(256 * units.MB),
			blob.WithDiskMode(disk.MetadataMode),
		}, opts...)...)
		defer s.Close()
		runConcurrentPuts(t, s, writers, rounds, 1*units.MB)
		return s.Volume().Stats().MetaWrites
	}
	fsUnbatched := runFS()
	fsBatched := runFS(blob.WithGroupCommit(8, 2*time.Millisecond))
	if fsBatched >= fsUnbatched {
		t.Errorf("MFT forces with batching = %d, without = %d", fsBatched, fsUnbatched)
	}
}

// TestGroupCommitErrorFansBackToOwner pins per-writer error fan-out: in
// one batch, a writer that cannot commit (its stream is short) fails
// with its own typed error while the rest of the batch lands.
func TestGroupCommitErrorFansBackToOwner(t *testing.T) {
	ctx := context.Background()
	s := mustFileStore(t, groupOpts()...)
	defer s.Close()

	// A batch of one doomed writer among healthy ones: the doomed key's
	// temp stream crashes mid-commit via the armed crash hook.
	s.ArmCommitCrash("doomed")
	var wg sync.WaitGroup
	errs := make(map[string]error)
	var mu sync.Mutex
	for _, key := range []string{"a", "b", "doomed", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			w, err := s.Create(ctx, key, 1*units.MB)
			if err == nil {
				if err = w.Append(1*units.MB, nil); err == nil {
					err = w.Commit()
				}
			}
			mu.Lock()
			errs[key] = err
			mu.Unlock()
		}(key)
	}
	wg.Wait()
	if !errors.Is(errs["doomed"], blob.ErrCrashed) {
		t.Fatalf("doomed commit = %v, want ErrCrashed", errs["doomed"])
	}
	for _, key := range []string{"a", "b", "c"} {
		if errs[key] != nil {
			t.Fatalf("healthy writer %s failed: %v", key, errs[key])
		}
		if _, err := s.Stat(ctx, key); err != nil {
			t.Fatalf("committed object %s missing: %v", key, err)
		}
	}
	if _, err := s.Stat(ctx, "doomed"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("crashed object visible: %v", err)
	}
}

// TestCrashMidBatchRecovery is the concurrent-stream crash drill: 8
// streams replace their objects through the group-commit pipeline, one
// stream crashes at the safe-write CrashAfterWrite point mid-batch, and
// after Recover the crashed key still serves its OLD bytes while every
// other stream's NEW version survives — the safe-write durability
// contract under batching.
func TestCrashMidBatchRecovery(t *testing.T) {
	ctx := context.Background()
	const streams = 8
	s := mustFileStore(t, groupOpts(blob.WithDiskMode(disk.DataMode))...)
	defer s.Close()

	oldBody := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 64*1024) }
	newBody := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 101)}, 64*1024) }
	keys := make([]string, streams)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj-%d", i)
		if err := blob.Put(ctx, s, keys[i], 64*units.KB, oldBody(i)); err != nil {
			t.Fatal(err)
		}
	}

	const victim = 3
	s.ArmCommitCrash(keys[victim])
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := s.Replace(ctx, keys[i], 64*units.KB)
			if err == nil {
				if err = w.Append(64*units.KB, newBody(i)); err == nil {
					err = w.Commit()
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	if !errors.Is(errs[victim], blob.ErrCrashed) {
		t.Fatalf("victim commit = %v, want ErrCrashed", errs[victim])
	}

	// Restart: sweep the victim's orphaned temp, release writer claims.
	if swept := s.Recover(); swept != 1 {
		t.Fatalf("Recover swept %d temps, want 1", swept)
	}

	for i := range keys {
		want := newBody(i)
		if i == victim {
			want = oldBody(i)
		}
		_, got, err := blob.Get(ctx, s, keys[i])
		if err != nil {
			t.Fatalf("read %s after recovery: %v", keys[i], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: wrong version after recovery (stream %d, victim %d)", keys[i], i, victim)
		}
	}
	// The victim's key is writable again after recovery.
	if err := blob.Replace(ctx, s, keys[victim], 64*units.KB, newBody(victim)); err != nil {
		t.Fatalf("replace after recovery: %v", err)
	}
}

// TestConstructorsReturnErrBadOption pins the typed construction
// errors: missing capacity, bad stripe counts, and negative group
// commit parameters all surface blob.ErrBadOption instead of panicking.
func TestConstructorsReturnErrBadOption(t *testing.T) {
	cases := []struct {
		name string
		opts []blob.Option
		also error
	}{
		{"MissingCapacity", nil, nil},
		{"BadStripes", []blob.Option{blob.WithCapacity(64 * units.MB), blob.WithLockStripes(3)}, blob.ErrBadStripeCount},
		{"NegativeBatch", []blob.Option{blob.WithCapacity(64 * units.MB), blob.WithGroupCommit(-1, 0)}, nil},
		{"NegativeDelay", []blob.Option{blob.WithCapacity(64 * units.MB), blob.WithGroupCommit(4, -time.Second)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewFileStore(vclock.New(), tc.opts...); !errors.Is(err, blob.ErrBadOption) {
				t.Errorf("NewFileStore = %v, want ErrBadOption", err)
			} else if tc.also != nil && !errors.Is(err, tc.also) {
				t.Errorf("NewFileStore = %v, want %v too", err, tc.also)
			}
			if _, err := NewDBStore(vclock.New(), tc.opts...); !errors.Is(err, blob.ErrBadOption) {
				t.Errorf("NewDBStore = %v, want ErrBadOption", err)
			}
		})
	}
}
