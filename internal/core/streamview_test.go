package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/units"
)

// driveKeyspace runs one stream's fixed op sequence — create, replace,
// replace, delete-every-third — against acct, the plain tracker or one
// StreamView. Identical inputs on both sides is the whole point.
func driveKeyspace(t *testing.T, acct interface {
	Put(ctx context.Context, key string, size int64, data []byte) error
	Replace(ctx context.Context, key string, size int64, data []byte) error
	Delete(ctx context.Context, key string) error
}, stream, objects int) {
	t.Helper()
	ctx := context.Background()
	for j := 0; j < objects; j++ {
		key := fmt.Sprintf("s%03d/obj%03d", stream, j)
		size := 4*units.KB + int64(512*j)
		if err := acct.Put(ctx, key, size, nil); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		if err := acct.Replace(ctx, key, size+256, nil); err != nil {
			t.Fatalf("replace %s: %v", key, err)
		}
		if j%3 == 0 {
			if err := acct.Delete(ctx, key); err != nil {
				t.Fatalf("delete %s: %v", key, err)
			}
		}
	}
}

// TestStreamViewMatchesTrackerBitIdentical pins the k=1 guarantee: the
// same op sequence charged through a single StreamView (merged at the
// end) yields the same retired/live counters as the plain tracker —
// and the same Age down to the last float64 bit, since the paper's
// storage-age curves are keyed on that ratio.
func TestStreamViewMatchesTrackerBitIdentical(t *testing.T) {
	runOn := func(view bool) (*AgeTracker, float64) {
		s := mustFileStore(t, blob.WithCapacity(256*units.MB))
		tr := NewAgeTracker(s)
		if view {
			v := tr.StreamView()
			driveKeyspace(t, v, 0, 40)
			v.Merge()
		} else {
			driveKeyspace(t, tr, 0, 40)
		}
		return tr, tr.Age()
	}
	base, baseAge := runOn(false)
	viewed, viewAge := runOn(true)
	if base.LiveBytes() != viewed.LiveBytes() {
		t.Fatalf("live bytes: tracker %d, view %d", base.LiveBytes(), viewed.LiveBytes())
	}
	if base.RetiredBytes() != viewed.RetiredBytes() {
		t.Fatalf("retired bytes: tracker %d, view %d", base.RetiredBytes(), viewed.RetiredBytes())
	}
	if math.Float64bits(baseAge) != math.Float64bits(viewAge) {
		t.Fatalf("age not bit-identical: tracker %x, view %x",
			math.Float64bits(baseAge), math.Float64bits(viewAge))
	}
}

// TestStreamViewConcurrentMergeEqualsGlobal drives 256 concurrent
// StreamViews over disjoint keyspaces and checks the merged tracker
// state equals a sequential run of the same ops through the plain
// tracker: byte counters, Age, and the per-key committed-size map. Run
// under -race this also pins the views' locking discipline.
func TestStreamViewConcurrentMergeEqualsGlobal(t *testing.T) {
	const streams, objects = 256, 4

	seq := NewAgeTracker(mustFileStore(t, blob.WithCapacity(512*units.MB)))
	for i := 0; i < streams; i++ {
		driveKeyspace(t, seq, i, objects)
	}

	conc := NewAgeTracker(mustFileStore(t, blob.WithCapacity(512*units.MB)))
	var wg sync.WaitGroup
	wg.Add(streams)
	for i := 0; i < streams; i++ {
		go func(i int) {
			defer wg.Done()
			v := conc.StreamView()
			driveKeyspace(t, v, i, objects)
			v.Merge()
		}(i)
	}
	wg.Wait()

	if seq.LiveBytes() != conc.LiveBytes() {
		t.Fatalf("live bytes: sequential %d, merged %d", seq.LiveBytes(), conc.LiveBytes())
	}
	if seq.RetiredBytes() != conc.RetiredBytes() {
		t.Fatalf("retired bytes: sequential %d, merged %d", seq.RetiredBytes(), conc.RetiredBytes())
	}
	if math.Float64bits(seq.Age()) != math.Float64bits(conc.Age()) {
		t.Fatalf("age: sequential %v, merged %v", seq.Age(), conc.Age())
	}
	seq.mu.Lock()
	conc.mu.Lock()
	if len(seq.sizes) != len(conc.sizes) {
		t.Fatalf("size map: sequential %d keys, merged %d", len(seq.sizes), len(conc.sizes))
	}
	for k, e := range seq.sizes {
		if ce, ok := conc.sizes[k]; !ok || ce != e {
			t.Fatalf("size map diverges at %s: sequential %+v, merged %+v (present=%v)", k, e, ce, ok)
		}
	}
	conc.mu.Unlock()
	seq.mu.Unlock()
}
