package core_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/blob"
	"repro/internal/blob/conformance"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

// packingStore aggressively packs the whole keyspace after every
// successful commit — a hostile maintenance schedule that the public
// store contract must survive unchanged.
type packingStore struct {
	*core.FileStore
}

func (s *packingStore) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := s.FileStore.Create(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &packingWriter{Writer: w, s: s, ctx: ctx}, nil
}

func (s *packingStore) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	w, err := s.FileStore.Replace(ctx, key, size)
	if err != nil {
		return nil, err
	}
	return &packingWriter{Writer: w, s: s, ctx: ctx}, nil
}

type packingWriter struct {
	blob.Writer
	s   *packingStore
	ctx context.Context
}

func (w *packingWriter) Commit() error {
	if err := w.Writer.Commit(); err != nil {
		return err
	}
	// Best effort, like a background compactor riding the commit stream:
	// pack errors (no space, busy keys) must not surface to the writer.
	w.s.PackObjects(w.ctx, w.s.Keys())
	return nil
}

// TestFileStorePackingConformance re-runs the whole contract suite with
// every commit followed by a pack attempt over the full keyspace.
// Packing is a relocation, so this drill pins that pack files preserve
// payloads, sizes, typed errors, and reader version-pinning under the
// exact semantics the unpacked store promises.
func TestFileStorePackingConformance(t *testing.T) {
	conformance.Run(t, func(opts ...blob.Option) blob.Store {
		s, err := core.NewFileStore(vclock.New(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return &packingStore{FileStore: s}
	})
}

// TestPackCrashRecovery pins the crash-mid-pack story at the store
// level: an armed crash tears the pack after its clusters are written
// but before any member switches over, and Recover sweeps the orphan.
func TestPackCrashRecovery(t *testing.T) {
	ctx := context.Background()
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 50*units.KB)
	for i := range data {
		data[i] = byte(i % 199)
	}
	keys := []string{"pk-a", "pk-b", "pk-c"}
	for _, k := range keys {
		if err := blob.Put(ctx, s, k, int64(len(data)), data); err != nil {
			t.Fatal(err)
		}
	}
	s.Volume().FlushLog()
	free := s.Volume().FreeBytes()

	s.ArmPackCrash()
	if _, err := s.PackObjects(ctx, keys); !errors.Is(err, blob.ErrCrashed) {
		t.Fatalf("armed pack err = %v, want ErrCrashed", err)
	}
	// No member switched over: every object still reads its old extents.
	for _, k := range keys {
		if _, got, err := blob.Get(ctx, s, k); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s unreadable after mid-pack crash: %v", k, err)
		}
	}
	if s.Volume().PackCount() != 0 {
		t.Fatalf("pack count = %d after crash, want 0", s.Volume().PackCount())
	}
	if n := s.Recover(); n != 0 {
		t.Fatalf("Recover() = %d temp files, want 0", n)
	}
	if got := s.Volume().FreeBytes(); got != free {
		t.Fatalf("free bytes = %d after recovery, want %d (orphan pack leaked)", got, free)
	}
	// The crash armed exactly one pack; the next attempt succeeds.
	packed, err := s.PackObjects(ctx, keys)
	if err != nil || len(packed) != len(keys) {
		t.Fatalf("re-pack = %v, %v; want all %d keys", packed, err, len(keys))
	}
	for _, k := range keys {
		if _, got, err := blob.Get(ctx, s, k); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s unreadable after pack: %v", k, err)
		}
	}
}

// TestCompactObjectInvalidatesPinnedReader pins the store-level version
// discipline: a reader opened before a compaction rewrite fails typed
// instead of reading the relocated clusters.
func TestCompactObjectInvalidatesPinnedReader(t *testing.T) {
	ctx := context.Background()
	s, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	if err := blob.Put(ctx, s, "a", units.MB, nil); err != nil {
		t.Fatal(err)
	}
	s.Volume().ShatterFiles(4)

	r, err := s.Open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	n, err := s.CompactObject(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if n != units.MB {
		t.Fatalf("compaction moved %d bytes, want %d", n, units.MB)
	}
	if _, err := r.ReadAll(); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("pinned reader survived relocation: err = %v, want ErrNotFound", err)
	}
	// A fresh open sees the contiguous rewrite.
	if _, _, err := blob.Get(ctx, s, "a"); err != nil {
		t.Fatalf("post-compaction read: %v", err)
	}
	// An already-contiguous object is a no-op, not an error.
	if n, err := s.CompactObject(ctx, "a"); err != nil || n != 0 {
		t.Fatalf("second compaction = %d, %v; want 0, nil", n, err)
	}
	// Missing keys fail typed.
	if _, err := s.CompactObject(ctx, "missing"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("compacting missing key = %v, want ErrNotFound", err)
	}
}
