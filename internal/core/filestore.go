package core

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/fs"
	"repro/internal/units"
	"repro/internal/vclock"
)

// FileStoreOptions configures a filesystem-backed repository.
type FileStoreOptions struct {
	// Capacity is the data volume size in bytes.
	Capacity int64
	// DiskMode selects payload retention (DataMode for integrity tests).
	DiskMode disk.Mode
	// Geometry overrides the data drive geometry; zero takes
	// disk.DefaultGeometry(Capacity).
	Geometry *disk.Geometry
	// FS configures the filesystem volume.
	FS fs.Config
	// WriteRequestSize is the safe-write append request size; the paper
	// used 64 KB (§5.3). 0 takes 64 KB; negative writes whole objects in
	// one request.
	WriteRequestSize int64
	// SizeHint passes object sizes to the allocator before the first
	// append — the paper's proposed interface change (§6), off by
	// default as no such interface existed.
	SizeHint bool
	// MetaCapacity sizes the metadata database drive (default 1 GB).
	MetaCapacity int64
	// NoOwnerMap skips the per-cluster owner map on the data drive (for
	// very large simulated volumes); the marker scanner is unavailable.
	NoOwnerMap bool
}

// FileStore is the paper's file-based configuration (§4.1): each object
// in its own file on a dedicated NTFS-analog volume, with object names
// and metadata in database tables. The database isolates clients from
// physical location; here it charges the metadata costs of that design.
type FileStore struct {
	vol   *fs.Volume
	meta  *db.MetaTable
	clock *vclock.Clock
	opts  FileStoreOptions

	liveBytes int64
}

// NewFileStore builds a file-backed repository on a fresh simulated
// drive pair sharing clock.
func NewFileStore(clock *vclock.Clock, opts FileStoreOptions) *FileStore {
	if opts.Capacity <= 0 {
		panic("core: FileStoreOptions.Capacity required")
	}
	if opts.WriteRequestSize == 0 {
		opts.WriteRequestSize = 64 * units.KB
	}
	if opts.MetaCapacity == 0 {
		opts.MetaCapacity = 1 * units.GB
	}
	geo := disk.DefaultGeometry(opts.Capacity)
	if opts.Geometry != nil {
		geo = *opts.Geometry
	}
	var diskOpts []disk.Option
	if opts.NoOwnerMap {
		diskOpts = append(diskOpts, disk.WithoutOwnerMap())
	}
	dataDrive := disk.New(geo, clock, opts.DiskMode, diskOpts...)
	vol := fs.Format(dataDrive, opts.FS)
	// Metadata database on its own drive pair, as the paper's deployment
	// gave SQL Server dedicated drives (§4.1).
	metaData := disk.New(disk.DefaultGeometry(opts.MetaCapacity), clock, disk.MetadataMode)
	metaLog := disk.New(disk.DefaultGeometry(256*units.MB), clock, disk.MetadataMode)
	metaDB := db.Open(metaData, metaLog, db.Config{})
	return &FileStore{
		vol:   vol,
		meta:  metaDB.NewMetaTable("objects"),
		clock: clock,
		opts:  opts,
	}
}

// Name implements Repository.
func (s *FileStore) Name() string { return "filesystem" }

// Volume exposes the underlying filesystem for analysis tools.
func (s *FileStore) Volume() *fs.Volume { return s.vol }

// Clock implements Repository.
func (s *FileStore) Clock() *vclock.Clock { return s.clock }

func (s *FileStore) safeWriteOpts() fs.SafeWriteOptions {
	return fs.SafeWriteOptions{
		WriteRequestSize: s.opts.WriteRequestSize,
		SizeHint:         s.opts.SizeHint,
	}
}

// Put implements Repository.
func (s *FileStore) Put(key string, size int64, data []byte) error {
	if _, ok := s.vol.Lookup(key); ok {
		return fmt.Errorf("%w: %s", fs.ErrExist, key)
	}
	if err := s.meta.Insert(key); err != nil {
		return err
	}
	if err := s.vol.SafeWrite(key, size, data, s.safeWriteOpts()); err != nil {
		// Roll the metadata row back so the two stores stay consistent —
		// the synchronization burden §3.1 calls out for hybrid designs.
		_ = s.meta.Delete(key)
		return err
	}
	s.liveBytes += size
	return nil
}

// Get implements Repository.
func (s *FileStore) Get(key string) (int64, []byte, error) {
	if !s.meta.Lookup(key) {
		return 0, nil, fmt.Errorf("%w: %s", fs.ErrNotExist, key)
	}
	f, err := s.vol.Open(key)
	if err != nil {
		return 0, nil, err
	}
	data := f.ReadAll()
	return f.Size(), data, nil
}

// Replace implements Repository (a safe write, §4).
func (s *FileStore) Replace(key string, size int64, data []byte) error {
	old, hadOld := s.vol.Lookup(key)
	var oldSize int64
	if hadOld {
		oldSize = old.Size()
	}
	if err := s.vol.SafeWrite(key, size, data, s.safeWriteOpts()); err != nil {
		return err
	}
	if hadOld {
		if err := s.meta.Update(key); err != nil {
			return err
		}
		s.liveBytes -= oldSize
	} else {
		if err := s.meta.Insert(key); err != nil {
			return err
		}
	}
	s.liveBytes += size
	return nil
}

// Delete implements Repository.
func (s *FileStore) Delete(key string) error {
	f, ok := s.vol.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: %s", fs.ErrNotExist, key)
	}
	size := f.Size()
	if err := s.vol.Delete(key); err != nil {
		return err
	}
	if err := s.meta.Delete(key); err != nil {
		return err
	}
	s.liveBytes -= size
	return nil
}

// Stat implements Repository.
func (s *FileStore) Stat(key string) (int64, error) {
	f, ok := s.vol.Lookup(key)
	if !ok {
		return 0, fmt.Errorf("%w: %s", fs.ErrNotExist, key)
	}
	return f.Size(), nil
}

// Keys implements Repository.
func (s *FileStore) Keys() []string { return s.vol.Names() }

// ObjectCount implements Repository.
func (s *FileStore) ObjectCount() int { return s.vol.FileCount() }

// LiveBytes implements Repository.
func (s *FileStore) LiveBytes() int64 { return s.liveBytes }

// FreeBytes implements Repository.
func (s *FileStore) FreeBytes() int64 { return s.vol.FreeBytes() }

// CapacityBytes implements Repository.
func (s *FileStore) CapacityBytes() int64 { return s.vol.CapacityBytes() }

// EachObjectRuns implements frag.Source.
func (s *FileStore) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.vol.EachFile(func(f *fs.File) {
		fn(f.Name(), f.Size(), f.Runs())
	})
}

// EachObjectTag implements frag.TagSource.
func (s *FileStore) EachObjectTag(fn func(key string, tag uint32)) {
	s.vol.EachFile(func(f *fs.File) {
		fn(f.Name(), f.Tag())
	})
}

var _ Repository = (*FileStore)(nil)
