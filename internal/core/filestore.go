package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/blob"
	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/extent"
	"repro/internal/fs"
	"repro/internal/units"
	"repro/internal/vclock"
)

// FileStore is the paper's file-based configuration (§4.1) behind the v2
// blob.Store API: each object in its own file on a dedicated NTFS-analog
// volume, with object names and metadata in database tables. The
// database isolates clients from physical location; here it charges the
// metadata costs of that design.
//
// Writers stream: Create/Replace open a temporary file, appends flow to
// the allocator in request-sized chunks, and Commit forces the data and
// atomically renames over the permanent file — the paper's safe-write
// protocol (§4) driven through a handle instead of one buffer. With
// blob.WithGroupCommit, Commit enqueues onto the store's commit queue
// and a batcher coalesces pending safe writes: each batch forces the
// volume's metadata (coalesced MFT writes, one log flush) and the
// metadata database's log once instead of per commit.
//
// The store is safe for concurrent callers: per-key striped locks order
// operations on the same key, and an internal mutex serializes access to
// the single-threaded volume and metadata engines beneath.
type FileStore struct {
	vol    *fs.Volume
	meta   *db.MetaTable
	metaDB *db.Database
	clock  *vclock.Clock
	opts   blob.Options

	locks     *blob.KeyLocks
	committer *blob.GroupCommitter

	mu        sync.Mutex // guards vol, meta, liveBytes, inflight, crashes
	liveBytes int64
	inflight  map[string]bool // keys with an uncommitted writer
	crashes   map[string]bool // keys armed to crash at the next commit
	packCrash bool            // next PackObjects crashes mid-pack
}

// NewFileStore builds a file-backed store on a fresh simulated drive
// pair sharing clock. blob.WithCapacity is required; misconfiguration
// fails with blob.ErrBadOption.
func NewFileStore(clock *vclock.Clock, options ...blob.Option) (*FileStore, error) {
	opts := blob.NewOptions(options...)
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: NewFileStore: %w", err)
	}
	if opts.WriteRequestSize == 0 {
		opts.WriteRequestSize = 64 * units.KB
	}
	if opts.MetaCapacity == 0 {
		opts.MetaCapacity = 1 * units.GB
	}
	locks, err := blob.NewKeyLocks(opts.LockStripes)
	if err != nil {
		return nil, fmt.Errorf("core: NewFileStore: %w: %w", blob.ErrBadOption, err)
	}
	geo := disk.DefaultGeometry(opts.Capacity)
	if opts.Geometry != nil {
		geo = *opts.Geometry
	}
	var diskOpts []disk.Option
	if opts.NoOwnerMap {
		diskOpts = append(diskOpts, disk.WithoutOwnerMap())
	}
	dataDrive := disk.New(geo, clock, opts.DiskMode, diskOpts...)
	vol := fs.Format(dataDrive, fs.Config{DelayedAllocation: opts.DelayedAllocation})
	// Metadata database on its own drive pair, as the paper's deployment
	// gave SQL Server dedicated drives (§4.1).
	metaData := disk.New(disk.DefaultGeometry(opts.MetaCapacity), clock, disk.MetadataMode)
	metaLog := disk.New(disk.DefaultGeometry(256*units.MB), clock, disk.MetadataMode)
	metaDB := db.Open(metaData, metaLog, db.Config{})
	s := &FileStore{
		vol:      vol,
		meta:     metaDB.NewMetaTable("objects"),
		metaDB:   metaDB,
		clock:    clock,
		opts:     opts,
		locks:    locks,
		inflight: make(map[string]bool),
		crashes:  make(map[string]bool),
	}
	s.committer = blob.NewGroupCommitter(opts.GroupCommitBatch, opts.GroupCommitDelay,
		s.beginGroup, s.endGroup)
	if opts.CommitObserver != nil {
		s.committer.SetObserver(clock, opts.CommitObserver)
	}
	return s, nil
}

// beginGroup opens a batch on both engines: the volume defers MFT
// writes and its log flush, the metadata database defers log forces.
func (s *FileStore) beginGroup() {
	s.mu.Lock()
	s.vol.BeginBatch()
	s.metaDB.BeginGroup()
	s.mu.Unlock()
}

// endGroup issues the group force: coalesced MFT writes plus at most
// one volume log flush, and one metadata-database log write.
func (s *FileStore) endGroup() {
	s.mu.Lock()
	s.vol.EndBatch()
	s.metaDB.EndGroup()
	s.mu.Unlock()
}

// Close shuts down the group-commit pipeline. The store stays usable;
// later commits apply synchronously.
func (s *FileStore) Close() error {
	s.committer.Close()
	return nil
}

// CommitStats returns the group-commit pipeline counters.
func (s *FileStore) CommitStats() blob.CommitStats { return s.committer.Stats() }

// ArmCommitCrash makes key's next Commit crash after its data is
// written and forced but before the atomic rename — the safe-write
// protocol's CrashAfterWrite point — returning an error wrapping
// blob.ErrCrashed and leaving the temp file and writer claim behind,
// as a process death would. Call Recover afterwards, as a restarted
// application would. Intended for crash-recovery drills and tests.
func (s *FileStore) ArmCommitCrash(key string) {
	s.mu.Lock()
	s.crashes[key] = true
	s.mu.Unlock()
}

// Recover models post-crash restart: orphaned safe-write temp files are
// swept, orphan packs from a crash mid-pack have their clusters freed,
// the volume log is flushed, and all writer claims are released (a
// crash kills every in-flight stream). It returns the number of temp
// files removed.
func (s *FileStore) Recover() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.vol.Recover()
	clear(s.inflight)
	clear(s.crashes)
	s.packCrash = false
	return n
}

// Name implements blob.Store.
func (s *FileStore) Name() string { return "filesystem" }

// Volume exposes the underlying filesystem for analysis tools.
func (s *FileStore) Volume() *fs.Volume { return s.vol }

// Clock implements blob.Store.
func (s *FileStore) Clock() *vclock.Clock { return s.clock }

// Open implements blob.Store.
func (s *FileStore) Open(ctx context.Context, key string) (blob.Reader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.locks.RLock(key)
	defer s.locks.RUnlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.meta.Lookup(key) {
		return nil, fmt.Errorf("%w: %s", blob.ErrNotFound, key)
	}
	f, err := s.vol.Open(key)
	if err != nil {
		return nil, err
	}
	r := fileReaderPool.Get().(*fileReader)
	*r = fileReader{s: s, ctx: ctx, key: key, f: f, tag: f.Tag(), size: f.Size()}
	return r, nil
}

// fileReader is a read handle over one committed file version. Handles
// are pooled: Close retires the handle (it keeps returning ErrClosed
// until the pool hands it to a new Open). The pinned version is the
// (pointer, tag) pair — File structs are recycled by the volume, so the
// pointer alone could be resurrected under the same key.
type fileReader struct {
	s      *FileStore
	ctx    context.Context
	key    string
	f      *fs.File
	tag    uint32
	size   int64
	closed bool
}

// fileReaderPool recycles read handles; at high stream counts the
// per-read handle allocation was a top-ten allocation site.
var fileReaderPool = sync.Pool{New: func() any { return new(fileReader) }}

// Size implements blob.Reader.
func (r *fileReader) Size() int64 { return r.size }

// validate returns the current file iff the handle is live and still
// names the version opened. Callers hold r.s.mu.
func (r *fileReader) validate() (*fs.File, error) {
	if r.closed {
		return nil, fmt.Errorf("%w: reader for %s", blob.ErrClosed, r.key)
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	cur, ok := r.s.vol.Lookup(r.key)
	if !ok || cur != r.f || cur.Tag() != r.tag {
		return nil, fmt.Errorf("%w: %s (version replaced or deleted)", blob.ErrNotFound, r.key)
	}
	return cur, nil
}

// ReadAll implements blob.Reader.
func (r *fileReader) ReadAll() ([]byte, error) {
	r.s.locks.RLock(r.key)
	defer r.s.locks.RUnlock(r.key)
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	f, err := r.validate()
	if err != nil {
		return nil, err
	}
	return f.ReadAll(), nil
}

// ReadAt implements blob.Reader.
func (r *fileReader) ReadAt(off, length int64) ([]byte, error) {
	r.s.locks.RLock(r.key)
	defer r.s.locks.RUnlock(r.key)
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	f, err := r.validate()
	if err != nil {
		return nil, err
	}
	return f.ReadAt(off, length)
}

// Close implements blob.Reader. The first Close retires the handle to
// the pool; later Closes on the same handle are no-ops.
func (r *fileReader) Close() error {
	if !r.closed {
		r.closed = true
		fileReaderPool.Put(r)
	}
	return nil
}

// Create implements blob.Store.
func (s *FileStore) Create(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.newWriter(ctx, key, size, false)
}

// Replace implements blob.Store: a streaming safe write (§4).
func (s *FileStore) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	return s.newWriter(ctx, key, size, true)
}

func (s *FileStore) newWriter(ctx context.Context, key string, size int64, replace bool) (blob.Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: write of %d bytes to %s", blob.ErrInvalidSize, size, key)
	}
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[key] {
		return nil, fmt.Errorf("%w: %s", blob.ErrBusy, key)
	}
	if _, exists := s.vol.Lookup(key); exists && !replace {
		return nil, fmt.Errorf("%w: %s", blob.ErrAlreadyExists, key)
	}
	tmp := fs.TempName(key)
	// A leftover temp from a previous crashed attempt is replaced.
	// Committed objects always have a metadata row and temps never do,
	// so a row under the temp name means a real object happens to be
	// named like our scratch file — leave it alone (the Create below
	// then fails instead of destroying it).
	if _, ok := s.vol.Lookup(tmp); ok && !s.meta.Lookup(tmp) {
		if err := s.vol.Delete(tmp); err != nil {
			return nil, err
		}
	}
	f, err := s.vol.Create(tmp)
	if err != nil {
		return nil, err
	}
	if s.opts.SizeHint {
		if err := f.SetSizeHint(size); err != nil {
			_ = s.vol.Delete(tmp)
			return nil, err
		}
	}
	s.inflight[key] = true
	w := fileWriterPool.Get().(*fileWriter)
	apply := w.apply
	*w = fileWriter{s: s, ctx: ctx, key: key, tmp: tmp, f: f,
		state: blob.NewStreamState(key, size), size: size, replace: replace}
	if apply == nil {
		// Bind the commit closure once per pooled instance; the method
		// value pins w itself, so it stays correct across reuses and
		// saves a closure allocation per commit.
		apply = w.commitApply
	}
	w.apply = apply
	return w, nil
}

// fileWriter streams one safe write: appends land in a temp file in
// request-sized chunks; Commit closes (forcing the data) and atomically
// renames over the permanent file. Writers are pooled: a successful
// Commit or an Abort retires the handle (its stream state stays closed
// until the pool hands it to a new Create/Replace).
type fileWriter struct {
	s       *FileStore
	ctx     context.Context
	key     string
	tmp     string
	f       *fs.File
	state   blob.StreamState
	size    int64 // declared total
	replace bool
	apply   func() error // cached commitApply method value
}

// fileWriterPool recycles write handles across safe writes.
var fileWriterPool = sync.Pool{New: func() any { return new(fileWriter) }}

// retire returns a finished (committed or aborted) writer to the pool.
func (w *fileWriter) retire() {
	apply := w.apply
	*w = fileWriter{apply: apply}
	w.state.Close()
	fileWriterPool.Put(w)
}

// Append implements blob.Writer.
func (w *fileWriter) Append(n int64, data []byte) error {
	if err := w.state.BeginAppend(w.ctx, n, data); err != nil {
		return err
	}
	// Each write request reaches the allocator separately — the paper's
	// §5.3 request granularity, now owned by the store.
	req := w.s.opts.WriteRequestSize
	if req <= 0 {
		req = n
	}
	for off := int64(0); off < n; off += req {
		if err := w.ctx.Err(); err != nil {
			return err
		}
		c := min(req, n-off)
		var chunk []byte
		if data != nil {
			chunk = data[off : off+c]
		}
		w.s.locks.Lock(w.key)
		w.s.mu.Lock()
		err := w.f.Append(c, chunk)
		w.s.mu.Unlock()
		w.s.locks.Unlock(w.key)
		if err != nil {
			return err
		}
		w.state.NoteAppended(c)
	}
	return nil
}

// Write implements io.Writer over Append.
func (w *fileWriter) Write(p []byte) (int, error) {
	if err := w.Append(int64(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Commit implements blob.Writer: the atomic publish point. The commit
// rides the store's group-commit pipeline — with batching enabled it
// waits in the commit queue and shares one metadata force with the rest
// of its batch; the error that comes back is this writer's own.
func (w *fileWriter) Commit() error {
	if err := w.state.BeginCommit(w.ctx); err != nil {
		return err
	}
	err := w.s.committer.Do(w.apply)
	if err == nil {
		// Only a fully successful commit retires the handle: after a
		// failed apply the writer stays open for Abort.
		w.retire()
	}
	return err
}

// commitApply performs the publish work of one safe-write commit, with
// the per-commit metadata forces deferred to the surrounding batch.
func (w *fileWriter) commitApply() error {
	w.s.locks.Lock(w.key)
	defer w.s.locks.Unlock(w.key)
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	// Close forces the data (and performs allocation under delayed
	// allocation — the one step that can still run out of space).
	if err := w.f.Close(); err != nil {
		return err
	}
	if w.s.crashes[w.key] {
		// Armed simulated crash at the CrashAfterWrite protocol point:
		// data forced, rename never happens. The temp file and writer
		// claim stay behind for Recover to sweep, exactly as if the
		// process had died here.
		delete(w.s.crashes, w.key)
		return fmt.Errorf("%w after write of %s", blob.ErrCrashed, w.tmp)
	}
	old, hadOld := w.s.vol.Lookup(w.key)
	var oldSize int64
	if hadOld {
		oldSize = old.Size()
	}
	// Metadata first: the row mutation is the step that can fail (meta
	// drive full), so it happens before anything becomes visible. On a
	// failure the writer stays open and Abort discards the temp.
	if hadOld {
		if err := w.s.meta.Update(w.key); err != nil {
			return err
		}
	} else {
		if err := w.s.meta.Insert(w.key); err != nil {
			return err
		}
	}
	// Atomic commit point (ReplaceFile/rename(2) semantics). Rename of
	// a held temp cannot legitimately fail; roll the row back if it
	// somehow does — the synchronization burden §3.1 calls out.
	if err := w.s.vol.Rename(w.tmp, w.key); err != nil {
		if !hadOld {
			_ = w.s.meta.Delete(w.key)
		}
		return err
	}
	if hadOld {
		w.s.liveBytes -= oldSize
	}
	w.s.liveBytes += w.size
	delete(w.s.inflight, w.key)
	w.state.Close()
	return nil
}

// Abort implements blob.Writer: the previous version is untouched.
func (w *fileWriter) Abort() error {
	if w.state.Closed() {
		return nil
	}
	w.s.locks.Lock(w.key)
	defer w.s.locks.Unlock(w.key)
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	if _, ok := w.s.vol.Lookup(w.tmp); ok {
		_ = w.s.vol.Delete(w.tmp)
	}
	delete(w.s.inflight, w.key)
	w.state.Close()
	w.retire()
	return nil
}

// Delete implements blob.Store.
func (s *FileStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.locks.Lock(key)
	defer s.locks.Unlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.vol.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: %s", blob.ErrNotFound, key)
	}
	size := f.Size()
	if err := s.vol.Delete(key); err != nil {
		return err
	}
	if err := s.meta.Delete(key); err != nil {
		return err
	}
	s.liveBytes -= size
	return nil
}

// Stat implements blob.Store.
func (s *FileStore) Stat(ctx context.Context, key string) (blob.Info, error) {
	if err := ctx.Err(); err != nil {
		return blob.Info{}, err
	}
	s.locks.RLock(key)
	defer s.locks.RUnlock(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.vol.Lookup(key)
	if !ok {
		return blob.Info{}, fmt.Errorf("%w: %s", blob.ErrNotFound, key)
	}
	return blob.Info{Key: key, Size: f.Size()}, nil
}

// Keys implements blob.Store.
func (s *FileStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := s.vol.Names()
	out := names[:0]
	for _, n := range names {
		if !s.inflightTemp(n) {
			out = append(out, n)
		}
	}
	return out
}

// inflightTemp reports whether name is the temp file of an uncommitted
// writer (callers hold s.mu).
func (s *FileStore) inflightTemp(name string) bool {
	if len(name) <= len(fs.TempSuffix) || name[len(name)-len(fs.TempSuffix):] != fs.TempSuffix {
		return false
	}
	return s.inflight[name[:len(name)-len(fs.TempSuffix)]]
}

// ObjectCount implements blob.Store.
func (s *FileStore) ObjectCount() int { return len(s.Keys()) }

// LiveBytes implements blob.Store.
func (s *FileStore) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// FreeBytes implements blob.Store.
func (s *FileStore) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vol.FreeBytes()
}

// CapacityBytes implements blob.Store.
func (s *FileStore) CapacityBytes() int64 { return s.vol.CapacityBytes() }

// EachObjectRuns implements frag.Source.
func (s *FileStore) EachObjectRuns(fn func(key string, bytes int64, runs []extent.Run)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vol.EachFile(func(f *fs.File) {
		if !s.inflightTemp(f.Name()) {
			fn(f.Name(), f.Size(), f.Runs())
		}
	})
}

// EachObjectTag implements frag.TagSource.
func (s *FileStore) EachObjectTag(fn func(key string, tag uint32)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vol.EachFile(func(f *fs.File) {
		if !s.inflightTemp(f.Name()) {
			fn(f.Name(), f.Tag())
		}
	})
}

var _ blob.Store = (*FileStore)(nil)
