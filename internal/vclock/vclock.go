// Package vclock provides the virtual clock that drives the simulated
// storage stack.
//
// Every cost-bearing operation in the disk model (seeks, rotations, data
// transfer, CPU overheads charged by the filesystem and database layers)
// advances a shared Clock. Throughput numbers reported by the benchmark
// harness are bytes moved divided by virtual seconds elapsed, which makes
// experiments deterministic and independent of host speed — the property
// the paper's "storage age" metric was designed to provide across real
// hardware configurations.
package vclock

import (
	"fmt"
	"sync/atomic"
)

// Clock is a monotonic virtual clock measured in nanoseconds.
// The zero value is a clock at time zero, ready to use. Reads and
// advances are atomic, so observers may sample a clock while concurrent
// store operations charge it.
type Clock struct {
	now atomic.Int64 // virtual nanoseconds since start
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now.Load() }

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return float64(c.Now()) / 1e9 }

// Advance moves the clock forward by d nanoseconds. Negative advances are
// a programming error and panic: virtual time never flows backwards.
func (c *Clock) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %d", d))
	}
	c.now.Add(d)
}

// AdvanceSeconds moves the clock forward by s virtual seconds.
func (c *Clock) AdvanceSeconds(s float64) {
	if s < 0 {
		panic(fmt.Sprintf("vclock: negative advance %gs", s))
	}
	c.now.Add(int64(s * 1e9))
}

// Stopwatch measures an interval of virtual time.
type Stopwatch struct {
	clock *Clock
	start int64
}

// StartWatch begins measuring virtual time on c.
func StartWatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Seconds returns the virtual seconds elapsed since StartWatch.
func (s Stopwatch) Seconds() float64 {
	return float64(s.clock.Now()-s.start) / 1e9
}

// Nanoseconds returns the virtual nanoseconds elapsed since StartWatch.
func (s Stopwatch) Nanoseconds() int64 {
	return s.clock.Now() - s.start
}
