package vclock

import "testing"

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(1500)
	c.Advance(500)
	if c.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", c.Now())
	}
	if c.Seconds() != 2e-6 {
		t.Fatalf("Seconds = %g", c.Seconds())
	}
}

func TestAdvanceSeconds(t *testing.T) {
	c := New()
	c.AdvanceSeconds(1.5)
	if c.Now() != 1_500_000_000 {
		t.Fatalf("Now = %d", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(1000)
	w := StartWatch(c)
	c.Advance(2_000_000_000)
	if w.Seconds() != 2 {
		t.Fatalf("Stopwatch.Seconds = %g", w.Seconds())
	}
	if w.Nanoseconds() != 2_000_000_000 {
		t.Fatalf("Stopwatch.Nanoseconds = %d", w.Nanoseconds())
	}
}
