package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"

	"repro/internal/units"
)

// This file defines the operation-source API: every workload — synthetic
// churn, popularity-weighted reads, or a recorded trace — is a Source
// producing a stream of typed Ops, and any Source mix can drive any
// blob.Store composition through the Executor. It is the repo's
// counterpart to SEARS's separation of object workload from placement
// policy: the op stream says WHAT happens to objects, the store
// underneath decides WHERE the bytes land.

// OpKind enumerates the operation types a Source can emit.
type OpKind int

const (
	// OpCreate creates a new object of Size bytes.
	OpCreate OpKind = iota
	// OpReplace safe-writes an existing (or new) object with Size bytes.
	OpReplace
	// OpDelete removes an object.
	OpDelete
	// OpRead reads an object: the whole object when Len == 0, otherwise
	// the range [Off, Off+Len).
	OpRead
)

var opKindNames = [...]string{"create", "replace", "delete", "read"}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation drawn from a Source.
type Op struct {
	Kind OpKind
	Key  string
	// Size is the object's new logical size, for OpCreate and OpReplace.
	Size int64
	// Off and Len select a ranged read for OpRead; Len == 0 reads the
	// whole object.
	Off, Len int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpCreate, OpReplace:
		return fmt.Sprintf("%s %s %d", o.Kind, o.Key, o.Size)
	case OpRead:
		if o.Len > 0 {
			return fmt.Sprintf("%s %s @%d+%d", o.Kind, o.Key, o.Off, o.Len)
		}
		return fmt.Sprintf("%s %s", o.Kind, o.Key)
	default:
		return fmt.Sprintf("%s %s", o.Kind, o.Key)
	}
}

// Source produces one stream of operations. Next draws the next op
// using the stream's RNG — a Source must consume randomness ONLY
// through this rng, so a fixed seed replays a fixed op sequence — and
// returns ok=false when the stream is exhausted. Sources are driven by
// one goroutine at a time; they need no internal locking.
//
// Two optional interfaces extend the contract:
//
//   - Err() error — a source that ends early because of an internal
//     failure (a malformed trace line, an invalid popularity draw)
//     returns ok=false and reports the cause through Err, like
//     bufio.Scanner.
//   - Observe(op, err) — the Executor reports every executed op back to
//     a source that implements it, so feedback-driven sources (churn
//     interleaving reads only after successful writes) see what actually
//     happened without consuming randomness out of order.
type Source interface {
	// Name identifies the source in reports and error chains.
	Name() string
	// Next draws the next operation.
	Next(rng *rand.Rand) (Op, bool)
}

// SourceObserver is the optional execution-feedback half of the Source
// contract; see Source.
type SourceObserver interface {
	Observe(op Op, err error)
}

// sourceErr is the optional sticky-error half of the Source contract.
type sourceErr interface {
	Err() error
}

// ByteBudget is a byte allowance shared by the load streams of one
// phase: each stream claims object sizes from it until the target is
// reached, so k concurrent loaders race for one volume-wide budget and
// a single loader degenerates to the sequential live-bytes check.
type ByteBudget struct {
	target  int64
	planned atomic.Int64
}

// NewByteBudget returns a budget of target bytes.
func NewByteBudget(target int64) *ByteBudget {
	return &ByteBudget{target: target}
}

// Reserve consumes n bytes of the budget unconditionally — the bytes
// already live in the store before the phase starts.
func (b *ByteBudget) Reserve(n int64) { b.planned.Add(n) }

// Claim atomically claims n bytes, returning false (and leaving the
// budget untouched) when the claim would overshoot the target.
func (b *ByteBudget) Claim(n int64) bool {
	if b.planned.Add(n) > b.target {
		b.planned.Add(-n)
		return false
	}
	return true
}

// LoadSource emits creates of fresh objects until its byte budget is
// exhausted — the bulk-load phase as a Source. Sizes are drawn from
// Dist and rounded up to 4 KB so file and database cluster accounting
// line up.
type LoadSource struct {
	// Dist draws object sizes.
	Dist SizeDist
	// Budget is the (possibly shared) byte allowance; the source stops
	// at the first size that no longer fits.
	Budget *ByteBudget
	// Key names the next fresh object. It is called once per emitted op,
	// only after the budget claim succeeds.
	Key func() string
	// OnCreate, when non-nil, observes each key whose create COMMITTED —
	// the caller's live-key bookkeeping.
	OnCreate func(key string)
}

// Name implements Source.
func (s *LoadSource) Name() string { return "load" }

// Next implements Source.
func (s *LoadSource) Next(rng *rand.Rand) (Op, bool) {
	size := units.RoundUp(s.Dist.Sample(rng), 4*units.KB)
	if !s.Budget.Claim(size) {
		return Op{}, false
	}
	return Op{Kind: OpCreate, Key: s.Key(), Size: size}, true
}

// Observe implements SourceObserver: committed creates are reported to
// OnCreate.
func (s *LoadSource) Observe(op Op, err error) {
	if err == nil && op.Kind == OpCreate && s.OnCreate != nil {
		s.OnCreate(op.Key)
	}
}

// ChurnSource safe-writes uniformly chosen objects from its keyspace
// until the storage age reaches TargetAge, optionally interleaving
// whole-object reads after each successful write (the paper's §4.3
// get/put mix). Age is polled through the Age func so k concurrent
// churn streams sharing one AgeTracker all stop at the volume-wide
// target.
type ChurnSource struct {
	// Keys is the stream's keyspace; every write and interleaved read
	// targets a uniformly drawn member.
	Keys []string
	// Dist draws replacement sizes (rounded up to 4 KB).
	Dist SizeDist
	// TargetAge stops the stream once Age() reaches it.
	TargetAge float64
	// Age reports the current storage age (normally AgeTracker.Age).
	Age func() float64
	// ReadsPerWrite interleaves this many whole-object reads per
	// SUCCESSFUL safe write; a skipped or failed write interleaves none,
	// exactly as the pre-Source churn loop behaved.
	ReadsPerWrite int

	pendingReads int
}

// Name implements Source.
func (s *ChurnSource) Name() string { return "churn" }

// Next implements Source: queued interleaved reads drain first, then
// the age gate is re-checked before each write.
func (s *ChurnSource) Next(rng *rand.Rand) (Op, bool) {
	if s.pendingReads > 0 {
		s.pendingReads--
		return Op{Kind: OpRead, Key: s.Keys[rng.Intn(len(s.Keys))]}, true
	}
	if len(s.Keys) == 0 || s.Age() >= s.TargetAge {
		return Op{}, false
	}
	key := s.Keys[rng.Intn(len(s.Keys))]
	size := units.RoundUp(s.Dist.Sample(rng), 4*units.KB)
	return Op{Kind: OpReplace, Key: key, Size: size}, true
}

// Observe implements SourceObserver: only a write that actually
// committed queues its interleaved reads, so the rng sequence matches
// the classic loop under TolerateNoSpace skips (which drew no read keys
// for skipped writes).
func (s *ChurnSource) Observe(op Op, err error) {
	if op.Kind == OpReplace && err == nil {
		s.pendingReads = s.ReadsPerWrite
	}
}

// ReadSource emits Samples whole-object reads over a fixed keyspace,
// drawn by Popularity (uniform when nil) — the read-throughput
// measurement phase as a Source.
type ReadSource struct {
	// Keys is the live-object population to read from.
	Keys []string
	// Samples is the number of reads to emit.
	Samples int
	// Popularity picks which object each read targets; nil reads
	// uniformly.
	Popularity Popularity

	emitted int
	pick    func() int
	err     error
}

// NewZipfReadSource returns a ReadSource with a validated Zipf(s)
// popularity mix: rank 0 hottest, reads concentrated on a stable hot
// set — the regime the read-cache layer exists for.
func NewZipfReadSource(keys []string, samples int, s float64) (*ReadSource, error) {
	pop, err := NewZipfPopularity(s)
	if err != nil {
		return nil, err
	}
	return &ReadSource{Keys: keys, Samples: samples, Popularity: pop}, nil
}

// Name implements Source.
func (s *ReadSource) Name() string {
	if s.Popularity != nil {
		return "read " + s.Popularity.Name()
	}
	return "read"
}

// Next implements Source.
func (s *ReadSource) Next(rng *rand.Rand) (Op, bool) {
	if s.err != nil || s.emitted >= s.Samples || len(s.Keys) == 0 {
		return Op{}, false
	}
	if s.pick == nil {
		s.pick = func() int { return rng.Intn(len(s.Keys)) }
		if pop := s.Popularity; pop != nil {
			s.pick = func() int { return pop.Pick(rng, len(s.Keys)) }
			// A popularity exposing a phase-bound sampler (ZipfPopularity
			// does) sets it up once instead of once per draw.
			if pp, ok := pop.(interface {
				Picker(*rand.Rand, int) func() int
			}); ok {
				s.pick = pp.Picker(rng, len(s.Keys))
			}
		}
	}
	idx := s.pick()
	if s.Popularity != nil && (idx < 0 || idx >= len(s.Keys)) {
		s.err = fmt.Errorf("%w: popularity %s picked %d of %d objects",
			ErrBadDist, s.Popularity.Name(), idx, len(s.Keys))
		return Op{}, false
	}
	s.emitted++
	return Op{Kind: OpRead, Key: s.Keys[idx]}, true
}

// Err implements the optional sticky-error contract: a popularity draw
// outside [0, len(Keys)) ends the stream with ErrBadDist.
func (s *ReadSource) Err() error { return s.err }

// ParseDist parses a size-distribution spec of the form the fragbench
// -dist flag accepts:
//
//	constant:SIZE   every object SIZE bytes (e.g. constant:10M)
//	uniform:MIN-MAX sizes uniform on [MIN, MAX] (e.g. uniform:5M-15M)
//	SIZE            shorthand for constant:SIZE
//
// Sizes use units.ParseBytes notation. Malformed specs are refused with
// an error wrapping ErrBadDist.
func ParseDist(spec string) (SizeDist, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok {
		size, err := units.ParseBytes(spec)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("%w: bad size %q", ErrBadDist, spec)
		}
		return Constant{Size: size}, nil
	}
	switch name {
	case "constant":
		size, err := units.ParseBytes(arg)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("%w: bad constant size %q", ErrBadDist, arg)
		}
		return Constant{Size: size}, nil
	case "uniform":
		lo, hi, ok := strings.Cut(arg, "-")
		if !ok {
			return nil, fmt.Errorf("%w: uniform needs MIN-MAX, got %q", ErrBadDist, arg)
		}
		min, err := units.ParseBytes(lo)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("%w: bad uniform min %q", ErrBadDist, lo)
		}
		max, err := units.ParseBytes(hi)
		if err != nil || max < min {
			return nil, fmt.Errorf("%w: bad uniform max %q (min %q)", ErrBadDist, hi, lo)
		}
		return Uniform{Min: min, Max: max}, nil
	default:
		return nil, fmt.Errorf("%w: unknown distribution %q (want constant:SIZE or uniform:MIN-MAX)", ErrBadDist, name)
	}
}

var (
	_ Source         = (*LoadSource)(nil)
	_ Source         = (*ChurnSource)(nil)
	_ Source         = (*ReadSource)(nil)
	_ SourceObserver = (*LoadSource)(nil)
	_ SourceObserver = (*ChurnSource)(nil)
)
