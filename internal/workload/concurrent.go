package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/vclock"
)

// vclockWatch starts a stopwatch on the store's virtual clock.
func vclockWatch(s blob.Store) vclock.Stopwatch { return vclock.StartWatch(s.Clock()) }

// ConcurrentRunner drives k independent writer streams through one
// store — the §6 regime the single-writer Runner cannot reach: "we
// have not yet characterized the impact of interleaved append requests
// to multiple objects, which are likely to increase fragmentation."
// Each stream is a goroutine with its own keyspace (keys are prefixed
// "s<i>-"), its own seeded RNG, and its own size distribution, so
// appends from different streams genuinely interleave in allocation
// order while the workload itself stays reproducible per stream.
//
// All streams share one AgeTracker: storage age is a property of the
// volume, not of any writer. A ConcurrentRunner with one stream is the
// sequential Runner workload under other key names.
type ConcurrentRunner struct {
	ctx     context.Context
	tracker *core.AgeTracker
	streams []*stream
}

// stream is one writer's private workload state. Only its owning
// goroutine touches it during a phase.
type stream struct {
	id   int
	rng  *rand.Rand
	dist SizeDist
	keys []string
	next int64
	res  Result
}

// UniformStreams returns k copies of dist — the homogeneous-fleet
// configuration of NewConcurrentRunner.
func UniformStreams(k int, dist SizeDist) []SizeDist {
	out := make([]SizeDist, k)
	for i := range out {
		out[i] = dist
	}
	return out
}

// NewConcurrentRunner creates a runner with one stream per entry of
// dists (the per-stream size distributions), all writing to store.
// Stream i derives its RNG from seed+i.
func NewConcurrentRunner(store blob.Store, dists []SizeDist, seed int64) *ConcurrentRunner {
	r := &ConcurrentRunner{
		ctx:     context.Background(),
		tracker: core.NewAgeTracker(store),
	}
	for i, d := range dists {
		r.streams = append(r.streams, &stream{
			id:   i,
			rng:  rand.New(rand.NewSource(seed + int64(i))),
			dist: d,
		})
	}
	return r
}

// WithContext sets the context every stream's operations carry.
func (r *ConcurrentRunner) WithContext(ctx context.Context) *ConcurrentRunner {
	r.ctx = ctx
	return r
}

// Streams returns the number of writer streams.
func (r *ConcurrentRunner) Streams() int { return len(r.streams) }

// Tracker exposes the shared storage-age tracker.
func (r *ConcurrentRunner) Tracker() *core.AgeTracker { return r.tracker }

// Repo returns the store under test.
func (r *ConcurrentRunner) Repo() blob.Store { return r.tracker.Store() }

// Keys returns every stream's live keys (stream-major order).
func (r *ConcurrentRunner) Keys() []string {
	var out []string
	for _, s := range r.streams {
		out = append(out, s.keys...)
	}
	return out
}

// sample draws a size from s's distribution, rounded up to 4 KB so file
// and database cluster accounting line up (as Runner does).
func (s *stream) sample() int64 {
	return units.RoundUp(s.dist.Sample(s.rng), 4*units.KB)
}

// key returns stream s's next fresh object key.
func (s *stream) key() string {
	k := fmt.Sprintf("s%02d-obj-%08d", s.id, s.next)
	s.next++
	return k
}

// fanOut runs fn once per stream, concurrently, and joins the errors.
// Each stream accumulates its phase counters into its own Result slot;
// the caller aggregates afterwards.
func (r *ConcurrentRunner) fanOut(fn func(s *stream) error) error {
	errs := make([]error, len(r.streams))
	var wg sync.WaitGroup
	for i, s := range r.streams {
		wg.Add(1)
		go func(i int, s *stream) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// aggregate sums the per-stream counters into one phase Result and
// stamps the phase-wide clock readings.
func (r *ConcurrentRunner) aggregate(seconds float64) Result {
	var res Result
	for _, s := range r.streams {
		res.Ops += s.res.Ops
		res.Skipped += s.res.Skipped
		res.Bytes += s.res.Bytes
		s.res = Result{}
	}
	res.Seconds = seconds
	// Under concurrency a skipped op's interval overlaps other streams'
	// useful work, so no skip-time exclusion applies: throughput is
	// bytes over the whole phase.
	res.MBps = units.MBps(res.Bytes, seconds)
	res.EndingAge = r.tracker.Age()
	res.ObjectsAlive = r.Repo().ObjectCount()
	return res
}

// BulkLoad has all streams put fresh objects concurrently until live
// bytes reach occupancy (0..1) of the store's capacity. Streams race
// for the byte budget, so appends interleave from the very first load —
// unlike the sequential Runner, whose bulk load is one writer appending
// alone.
func (r *ConcurrentRunner) BulkLoad(occupancy float64) (Result, error) {
	return r.BulkLoadBytes(int64(occupancy * float64(r.Repo().CapacityBytes())))
}

// BulkLoadBytes puts fresh objects concurrently until live bytes reach
// targetBytes. On a sharded store an unlucky shard can fill early; the
// resulting ErrNoSpaceLeft is returned (wrapped) for the caller to
// tolerate, with all other streams' work intact.
func (r *ConcurrentRunner) BulkLoadBytes(targetBytes int64) (Result, error) {
	w := vclockWatch(r.Repo())
	var planned atomic.Int64
	err := r.fanOut(func(s *stream) error {
		for {
			if err := r.ctx.Err(); err != nil {
				return err
			}
			size := s.sample()
			if planned.Add(size) > targetBytes {
				planned.Add(-size)
				return nil
			}
			key := s.key()
			if err := r.tracker.Put(r.ctx, key, size, nil); err != nil {
				return fmt.Errorf("stream %d bulk load after %d objects: %w", s.id, s.res.Ops, err)
			}
			s.keys = append(s.keys, key)
			s.res.Ops++
			s.res.Bytes += size
		}
	})
	r.tracker.ResetBaseline()
	res := r.aggregate(w.Seconds())
	return res, err
}

// ChurnToAge has all streams safe-write objects from their own
// keyspaces concurrently until the shared storage age reaches target —
// the trace shape of §4.3 under the interleaved-writer regime of §6.
func (r *ConcurrentRunner) ChurnToAge(target float64, opts ChurnOptions) (Result, error) {
	w := vclockWatch(r.Repo())
	loaded := 0
	for _, s := range r.streams {
		loaded += len(s.keys)
	}
	if loaded == 0 {
		return Result{}, fmt.Errorf("workload: churn before bulk load")
	}
	err := r.fanOut(func(s *stream) error {
		if len(s.keys) == 0 {
			return nil // stream got no budget at load time; idle
		}
		consecutiveSkips := 0
		for r.tracker.Age() < target {
			if err := r.ctx.Err(); err != nil {
				return err
			}
			key := s.keys[s.rng.Intn(len(s.keys))]
			size := s.sample()
			if err := r.tracker.Replace(r.ctx, key, size, nil); err != nil {
				if opts.TolerateNoSpace && errors.Is(err, blob.ErrNoSpaceLeft) {
					s.res.Skipped++
					consecutiveSkips++
					if consecutiveSkips > 4*len(s.keys) {
						return fmt.Errorf("stream %d: store full on every try: %w", s.id, err)
					}
					continue
				}
				return fmt.Errorf("stream %d churn op %d: %w", s.id, s.res.Ops, err)
			}
			consecutiveSkips = 0
			s.res.Ops++
			s.res.Bytes += size
			for i := 0; i < opts.ReadsPerWrite; i++ {
				rk := s.keys[s.rng.Intn(len(s.keys))]
				if _, _, err := blob.Get(r.ctx, r.Repo(), rk); err != nil {
					return fmt.Errorf("stream %d interleaved read: %w", s.id, err)
				}
			}
		}
		return nil
	})
	res := r.aggregate(w.Seconds())
	return res, err
}
