package workload

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/vclock"
)

// vclockWatch starts a stopwatch on the store's virtual clock.
func vclockWatch(s blob.Store) vclock.Stopwatch { return vclock.StartWatch(s.Clock()) }

// ConcurrentRunner drives k independent writer streams through one
// store — the §6 regime the single-writer Runner cannot reach: "we
// have not yet characterized the impact of interleaved append requests
// to multiple objects, which are likely to increase fragmentation."
// Each stream owns its keyspace (keys are prefixed "s<i>-"), its own
// seeded RNG, and its own size distribution; per phase the runner
// arranges one Source per stream and the shared Executor fans them out,
// so appends from different streams genuinely interleave in allocation
// order while the workload itself stays reproducible per stream.
//
// All streams share one AgeTracker (the Executor's): storage age is a
// property of the volume, not of any writer. A ConcurrentRunner with
// one stream is the sequential Runner workload under other key names.
type ConcurrentRunner struct {
	exec    *Executor
	streams []*stream
}

// stream is one writer's private workload state. Only its owning
// goroutine touches it during a phase.
type stream struct {
	id   int
	rng  *rand.Rand
	dist SizeDist
	keys []string
	next int64
}

// UniformStreams returns k copies of dist — the homogeneous-fleet
// configuration of NewConcurrentRunner.
func UniformStreams(k int, dist SizeDist) []SizeDist {
	out := make([]SizeDist, k)
	for i := range out {
		out[i] = dist
	}
	return out
}

// NewConcurrentRunner creates a runner with one stream per entry of
// dists (the per-stream size distributions), all writing to store.
// Stream i derives its RNG from seed+i.
func NewConcurrentRunner(store blob.Store, dists []SizeDist, seed int64) *ConcurrentRunner {
	r := &ConcurrentRunner{exec: NewExecutor(store)}
	for i, d := range dists {
		r.streams = append(r.streams, &stream{
			id:   i,
			rng:  rand.New(rand.NewSource(seed + int64(i))),
			dist: d,
		})
	}
	return r
}

// WithContext sets the context every stream's operations carry.
func (r *ConcurrentRunner) WithContext(ctx context.Context) *ConcurrentRunner {
	r.exec.WithContext(ctx)
	return r
}

// WithCollector installs per-op observability on the runner's executor
// (see Executor.WithCollector).
func (r *ConcurrentRunner) WithCollector(c *obs.Collector) *ConcurrentRunner {
	r.exec.WithCollector(c)
	return r
}

// Streams returns the number of writer streams.
func (r *ConcurrentRunner) Streams() int { return len(r.streams) }

// Executor exposes the engine the runner's phases execute through.
func (r *ConcurrentRunner) Executor() *Executor { return r.exec }

// Tracker exposes the shared storage-age tracker.
func (r *ConcurrentRunner) Tracker() *core.AgeTracker { return r.exec.Tracker() }

// Repo returns the store under test.
func (r *ConcurrentRunner) Repo() blob.Store { return r.exec.Store() }

// Keys returns every stream's live keys (stream-major order).
func (r *ConcurrentRunner) Keys() []string {
	var out []string
	for _, s := range r.streams {
		out = append(out, s.keys...)
	}
	return out
}

// key returns stream s's next fresh object key.
func (s *stream) key() string {
	k := fmt.Sprintf("s%02d-obj-%08d", s.id, s.next)
	s.next++
	return k
}

// aggregate folds the per-stream counts into one phase Result.
func (r *ConcurrentRunner) aggregate(rr RunResult) Result {
	total := rr.Total()
	res := Result{
		Ops:     total.Ops(),
		Skipped: total.Skipped,
		Bytes:   total.BytesWritten,
		Seconds: rr.Seconds,
		// Under concurrency a skipped op's interval overlaps other
		// streams' useful work, so no skip-time exclusion applies:
		// throughput is bytes over the whole phase.
		MBps:         units.MBps(total.BytesWritten, rr.Seconds),
		EndingAge:    r.Tracker().Age(),
		ObjectsAlive: r.Repo().ObjectCount(),
	}
	return res
}

// BulkLoad has all streams put fresh objects concurrently until live
// bytes reach occupancy (0..1) of the store's capacity. Streams race
// for the byte budget, so appends interleave from the very first load —
// unlike the sequential Runner, whose bulk load is one writer appending
// alone.
func (r *ConcurrentRunner) BulkLoad(occupancy float64) (Result, error) {
	return r.BulkLoadBytes(int64(occupancy * float64(r.Repo().CapacityBytes())))
}

// BulkLoadBytes puts fresh objects concurrently until live bytes reach
// targetBytes. On a sharded store an unlucky shard can fill early; the
// resulting ErrNoSpaceLeft is returned (wrapped) for the caller to
// tolerate, with all other streams' work intact.
func (r *ConcurrentRunner) BulkLoadBytes(targetBytes int64) (Result, error) {
	budget := NewByteBudget(targetBytes)
	specs := make([]Stream, len(r.streams))
	for i, s := range r.streams {
		s := s
		specs[i] = Stream{
			Source: &LoadSource{
				Dist:     s.dist,
				Budget:   budget,
				Key:      s.key,
				OnCreate: func(key string) { s.keys = append(s.keys, key) },
			},
			RNG: s.rng,
		}
	}
	rr, err := r.exec.Run(specs, RunOptions{})
	r.Tracker().ResetBaseline()
	return r.aggregate(rr), err
}

// ChurnToAge has all streams safe-write objects from their own
// keyspaces concurrently until the shared storage age reaches target —
// the trace shape of §4.3 under the interleaved-writer regime of §6.
func (r *ConcurrentRunner) ChurnToAge(target float64, opts ChurnOptions) (Result, error) {
	loaded := 0
	for _, s := range r.streams {
		loaded += len(s.keys)
	}
	if loaded == 0 {
		return Result{}, fmt.Errorf("workload: churn before bulk load")
	}
	specs := make([]Stream, len(r.streams))
	for i, s := range r.streams {
		// A stream that got no budget at load time has an empty keyspace
		// and its ChurnSource is immediately exhausted: it idles.
		specs[i] = Stream{
			Source: &ChurnSource{
				Keys:          s.keys,
				Dist:          s.dist,
				TargetAge:     target,
				Age:           r.Tracker().Age,
				ReadsPerWrite: opts.ReadsPerWrite,
			},
			RNG:       s.rng,
			SkipLimit: 4 * len(s.keys),
		}
	}
	rr, err := r.exec.Run(specs, RunOptions{TolerateNoSpace: opts.TolerateNoSpace})
	return r.aggregate(rr), err
}
