package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/units"
)

// TestExecutorMixedSources pins the tentpole claim: one Run can drive a
// heterogeneous mix of Sources — a churn stream and a Zipf read stream
// here — against one store, with per-stream accounting kept apart.
func TestExecutorMixedSources(t *testing.T) {
	store := newFS(128 * units.MB)
	r := NewRunner(store, Constant{Size: 1 * units.MB}, 1)
	if _, err := r.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	exec := r.Executor()

	churn := &ChurnSource{
		Keys:      r.Keys(),
		Dist:      Constant{Size: 1 * units.MB},
		TargetAge: 1,
		Age:       exec.Tracker().Age,
	}
	reads, err := NewZipfReadSource(r.Keys(), 30, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := exec.Run([]Stream{
		{Source: churn, RNG: rand.New(rand.NewSource(2))},
		{Source: reads, RNG: rand.New(rand.NewSource(3))},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Streams) != 2 {
		t.Fatalf("accounting for %d streams", len(rr.Streams))
	}
	w, rd := rr.Streams[0], rr.Streams[1]
	if w.Replaces == 0 || w.Reads != 0 || w.BytesWritten == 0 {
		t.Fatalf("churn stream counts: %+v", w)
	}
	if rd.Reads != 30 || rd.BytesWritten != 0 || rd.BytesRead != 30*units.MB {
		t.Fatalf("read stream counts: %+v", rd)
	}
	if exec.Tracker().Age() < 1 {
		t.Fatalf("mixed run stopped at age %.2f", exec.Tracker().Age())
	}
	total := rr.Total()
	if total.Ops() != w.Ops()+rd.Ops() {
		t.Fatal("Total does not sum streams")
	}
	if rr.Seconds <= 0 {
		t.Fatal("no virtual time charged")
	}
}

// failingSource always emits a read of a missing key.
type failingSource struct{ emitted int }

func (s *failingSource) Name() string { return "failing" }
func (s *failingSource) Next(*rand.Rand) (Op, bool) {
	if s.emitted > 0 {
		return Op{}, false
	}
	s.emitted++
	return Op{Kind: OpRead, Key: "ghost"}, true
}

// TestExecutorStreamErrorDoesNotCancelSiblings pins the k-writers
// semantics: one stream failing leaves the others running to their own
// completion, and the error arrives wrapped with the stream id.
func TestExecutorStreamErrorDoesNotCancelSiblings(t *testing.T) {
	store := newFS(128 * units.MB)
	exec := NewExecutor(store)
	budget := NewByteBudget(16 * units.MB)
	n := 0
	load := &LoadSource{
		Dist:   Constant{Size: 1 * units.MB},
		Budget: budget,
		Key:    func() string { n++; return fmt.Sprintf("k%04d", n) },
	}
	rr, err := exec.Run([]Stream{
		{Source: load, RNG: rand.New(rand.NewSource(1))},
		{Source: &failingSource{}, RNG: rand.New(rand.NewSource(2))},
	}, RunOptions{})
	if !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if !strings.Contains(err.Error(), "stream 1") {
		t.Fatalf("error not attributed to its stream: %v", err)
	}
	if got := rr.Streams[0].Creates; got != 16 {
		t.Fatalf("healthy stream loaded %d objects, want 16", got)
	}
}

// TestExecutorRangedReads pins ranged-op execution: OpRead with a range
// touches only the range and charges its length.
func TestExecutorRangedReads(t *testing.T) {
	store := newFS(64 * units.MB)
	ctx := context.Background()
	if err := blob.Put(ctx, store, "obj", 4*units.MB, nil); err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(store)
	ops := []Op{
		{Kind: OpRead, Key: "obj", Off: 1 * units.MB, Len: 2 * units.MB},
		{Kind: OpRead, Key: "obj"},
	}
	i := 0
	src := &sliceSource{ops: ops, i: &i}
	rr, err := exec.Run([]Stream{{Source: src, RNG: rand.New(rand.NewSource(1))}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rr.Streams[0].BytesRead; got != 6*units.MB {
		t.Fatalf("read %d bytes, want ranged 2M + whole 4M", got)
	}

	// An out-of-bounds range surfaces the typed sentinel.
	i = 0
	src2 := &sliceSource{ops: []Op{{Kind: OpRead, Key: "obj", Off: 3 * units.MB, Len: 2 * units.MB}}, i: &i}
	if _, err := exec.Run([]Stream{{Source: src2, RNG: rand.New(rand.NewSource(1))}},
		RunOptions{}); !errors.Is(err, blob.ErrOutOfRange) {
		t.Fatalf("out-of-range replay = %v, want ErrOutOfRange", err)
	}
}

// sliceSource replays a fixed op slice.
type sliceSource struct {
	ops []Op
	i   *int
}

func (s *sliceSource) Name() string { return "slice" }
func (s *sliceSource) Next(*rand.Rand) (Op, bool) {
	if *s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[*s.i]
	*s.i++
	return op, true
}

// TestExecutorSkipLimit pins the full-store backstop: under
// TolerateNoSpace a stream aborts with ErrNoSpaceLeft once SkipLimit
// consecutive writes are refused.
func TestExecutorSkipLimit(t *testing.T) {
	store := newFS(32 * units.MB)
	exec := NewExecutor(store)
	var ops []Op
	for i := 0; i < 10; i++ {
		// Writes that can never fit: every one is refused.
		ops = append(ops, Op{Kind: OpReplace, Key: "big", Size: 64 * units.MB})
	}
	i := 0
	src := &sliceSource{ops: ops, i: &i}
	rr, err := exec.Run([]Stream{{Source: src, RNG: rand.New(rand.NewSource(1)), SkipLimit: 3}},
		RunOptions{TolerateNoSpace: true, TrackSkipTime: true})
	if !errors.Is(err, blob.ErrNoSpaceLeft) {
		t.Fatalf("err = %v, want ErrNoSpaceLeft", err)
	}
	if got := rr.Streams[0].Skipped; got != 4 {
		t.Fatalf("skipped %d before aborting, want SkipLimit+1 = 4", got)
	}
}
