package workload

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

func newFS(capacity int64) blob.Store {
	s, err := core.NewFileStore(vclock.New(), blob.WithCapacity(capacity), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		panic(err)
	}
	return s
}

func TestConstantDist(t *testing.T) {
	c := Constant{Size: 256 * units.KB}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if c.Sample(rng) != 256*units.KB {
			t.Fatal("constant not constant")
		}
	}
	if c.Mean() != 256*units.KB {
		t.Fatal("mean wrong")
	}
}

func TestUniformDist(t *testing.T) {
	u := UniformAround(10 * units.MB)
	if u.Min != 5*units.MB || u.Max != 15*units.MB {
		t.Fatalf("UniformAround bounds: %d..%d", u.Min, u.Max)
	}
	if u.Mean() != 10*units.MB {
		t.Fatalf("mean = %d", u.Mean())
	}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		s := u.Sample(rng)
		if s < u.Min || s > u.Max {
			t.Fatalf("sample %d out of range", s)
		}
		sum += float64(s)
	}
	mean := sum / n
	if math.Abs(mean-float64(u.Mean()))/float64(u.Mean()) > 0.02 {
		t.Fatalf("sample mean %.0f deviates from %d", mean, u.Mean())
	}
}

func TestBulkLoadReachesOccupancy(t *testing.T) {
	r := NewRunner(newFS(256*units.MB), Constant{Size: 1 * units.MB}, 1)
	res, err := r.BulkLoad(0.5)
	if err != nil {
		t.Fatal(err)
	}
	occ := float64(r.Repo().LiveBytes()) / float64(r.Repo().CapacityBytes())
	if occ < 0.45 || occ > 0.5 {
		t.Fatalf("occupancy %.3f", occ)
	}
	if res.Ops != r.Repo().ObjectCount() {
		t.Fatalf("ops %d != objects %d", res.Ops, r.Repo().ObjectCount())
	}
	if res.MBps <= 0 || res.Seconds <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if r.Tracker().Age() != 0 {
		t.Fatal("age after bulk load should be 0")
	}
}

func TestChurnReachesAge(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Constant{Size: 1 * units.MB}, 7)
	if _, err := r.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	res, err := r.ChurnToAge(2.0, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EndingAge < 2.0 || res.EndingAge > 2.2 {
		t.Fatalf("ending age %.3f", res.EndingAge)
	}
	// Object count stays fixed: churn replaces, never grows.
	if res.ObjectsAlive != r.Repo().ObjectCount() {
		t.Fatal("ObjectsAlive wrong")
	}
}

func TestChurnBeforeLoadFails(t *testing.T) {
	r := NewRunner(newFS(64*units.MB), Constant{Size: 1 * units.MB}, 1)
	if _, err := r.ChurnToAge(1, ChurnOptions{}); err == nil {
		t.Fatal("churn before load succeeded")
	}
	if _, err := r.MeasureReadThroughput(5); err == nil {
		t.Fatal("measure before load succeeded")
	}
}

func TestMeasureReadThroughput(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Constant{Size: 512 * units.KB}, 3)
	if _, err := r.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	res, err := r.MeasureReadThroughput(50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 50 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Bytes != 50*512*units.KB {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.MBps <= 0 {
		t.Fatal("no throughput")
	}
}

// TestMeasureReadRejectsBadSamples pins the typed rejection: a
// zero/negative sample count must fail ErrNoSamples instead of
// silently returning an empty Result for downstream 0/0 rate math.
func TestMeasureReadRejectsBadSamples(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Constant{Size: 512 * units.KB}, 3)
	if _, err := r.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	for _, samples := range []int{0, -7} {
		if _, err := r.MeasureReadThroughput(samples); !errors.Is(err, ErrNoSamples) {
			t.Fatalf("MeasureReadThroughput(%d) = %v, want ErrNoSamples", samples, err)
		}
	}
	if _, err := ReadPhase(context.Background(), r.Repo(), r.Keys(), 0, 1, ReadOptions{}); !errors.Is(err, ErrNoSamples) {
		t.Fatal("ReadPhase accepted 0 samples")
	}
}

// TestZipfPopularityReadMix pins the Zipf read phase: it reads real
// objects, concentrates on the hot prefix of the keyspace, and
// ReadPhase with a fixed seed is reproducible over the same layout.
func TestZipfPopularityReadMix(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Constant{Size: 512 * units.KB}, 3)
	if _, err := r.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	pop, err := NewZipfPopularity(1.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.MeasureRead(50, ReadOptions{Popularity: pop})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 50 || res.Bytes != 50*512*units.KB || res.MBps <= 0 {
		t.Fatalf("zipf read phase: %+v", res)
	}
	a, err := ReadPhase(context.Background(), r.Repo(), r.Keys(), 40, 9, ReadOptions{Popularity: pop})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPhase(context.Background(), r.Repo(), r.Keys(), 40, 9, ReadOptions{Popularity: pop})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Bytes != b.Bytes {
		t.Fatalf("ReadPhase not reproducible: %+v vs %+v", a, b)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, int) {
		r := NewRunner(newFS(128*units.MB), UniformAround(1*units.MB), 42)
		if _, err := r.BulkLoad(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := r.ChurnToAge(1, ChurnOptions{ReadsPerWrite: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps, res.Ops
	}
	m1, o1 := run()
	m2, o2 := run()
	if m1 != m2 || o1 != o2 {
		t.Fatalf("non-deterministic: %.4f/%d vs %.4f/%d", m1, o1, m2, o2)
	}
}

func TestInterleavedReadsSlowChurn(t *testing.T) {
	run := func(reads int) float64 {
		r := NewRunner(newFS(128*units.MB), Constant{Size: 1 * units.MB}, 5)
		if _, err := r.BulkLoad(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := r.ChurnToAge(1, ChurnOptions{ReadsPerWrite: reads})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if run(2) <= run(0) {
		t.Fatal("interleaved reads did not add virtual time")
	}
}

func TestDeleteGroup(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Constant{Size: 1 * units.MB}, 9)
	if _, err := r.BulkLoad(0.5); err != nil {
		t.Fatal(err)
	}
	before := r.Repo().ObjectCount()
	res, err := r.DeleteGroup(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 10 || r.Repo().ObjectCount() != before-10 {
		t.Fatalf("deleted %d, count %d->%d", res.Ops, before, r.Repo().ObjectCount())
	}
	if len(r.Keys()) != before-10 {
		t.Fatal("key list not maintained")
	}
	if r.Tracker().Age() <= 0 {
		t.Fatal("deletes must advance storage age")
	}
}

func TestSizesClusterAligned(t *testing.T) {
	r := NewRunner(newFS(128*units.MB), Uniform{Min: 100 * units.KB, Max: 900 * units.KB}, 11)
	if _, err := r.BulkLoad(0.3); err != nil {
		t.Fatal(err)
	}
	for _, k := range r.Keys() {
		info, err := r.Repo().Stat(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size%(4*units.KB) != 0 {
			t.Fatalf("object %s size %d not 4KB aligned", k, info.Size)
		}
	}
}

// TestChurnTolerateNoSpace pins the sharded-regime knob: a churn phase
// over a nearly full store skips ErrNoSpaceLeft replaces instead of
// failing, counts them, and still reaches the target age; without the
// knob the same phase surfaces the typed error.
func TestChurnTolerateNoSpace(t *testing.T) {
	// Uniform sizes make live bytes random-walk upward from 95% full
	// until a safe write (old and new version coexist until commit)
	// cannot find room for the new version.
	mk := func() *Runner {
		r := NewRunner(newFS(64*units.MB), Uniform{Min: 2 * units.MB, Max: 6 * units.MB}, 1)
		if _, err := r.BulkLoad(0.95); err != nil {
			t.Fatal(err)
		}
		return r
	}

	r := mk()
	res, err := r.ChurnToAge(8, ChurnOptions{TolerateNoSpace: true})
	if err != nil {
		t.Fatalf("tolerant churn failed: %v", err)
	}
	if res.Skipped == 0 {
		t.Fatal("expected skipped safe writes on a nearly full store")
	}
	if res.EndingAge < 8 {
		t.Fatalf("age %.2f did not reach target", res.EndingAge)
	}

	r2 := mk()
	if _, err := r2.ChurnToAge(8, ChurnOptions{}); !errors.Is(err, blob.ErrNoSpaceLeft) {
		t.Fatalf("intolerant churn = %v, want ErrNoSpaceLeft", err)
	}
}
