package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// Zipf draws object sizes from a truncated Zipf-like distribution over
// [Min, Max]: small objects common, large objects rare. The paper's §4.3
// declined to pick a "realistic" distribution ("any distribution we chose
// would be based on speculation"); this one is provided as an extension
// for users who want heavy-tailed workloads, with the same interface as
// the paper's constant and uniform distributions.
type Zipf struct {
	Min, Max int64
	// S is the Zipf exponent (> 1); 0 takes 1.5.
	S float64
}

// Name implements SizeDist.
func (z Zipf) Name() string {
	return fmt.Sprintf("zipf %s..%s", units.FormatBytes(z.Min), units.FormatBytes(z.Max))
}

// Mean implements SizeDist. It is computed numerically over the bucketed
// support, so it is exact for the sampler below.
func (z Zipf) Mean() int64 {
	buckets, weights := z.buckets()
	var total, wsum float64
	for i, b := range buckets {
		total += float64(b) * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return z.Min
	}
	return int64(total / wsum)
}

// buckets returns geometric size buckets spanning [Min, Max] and their
// Zipf weights.
func (z Zipf) buckets() ([]int64, []float64) {
	s := z.S
	if s == 0 {
		s = 1.5
	}
	lo := z.Min
	if lo <= 0 {
		lo = 4 * units.KB
	}
	hi := max(z.Max, lo)
	var buckets []int64
	var weights []float64
	rank := 1.0
	for b := lo; b <= hi; b *= 2 {
		buckets = append(buckets, b)
		weights = append(weights, 1.0/pow(rank, s))
		rank++
	}
	return buckets, weights
}

func pow(base, exp float64) float64 {
	// Tiny positive-base power; exp in [1, ~4]. Avoids importing math for
	// one call site — iterate via exp/ln would be overkill; use the
	// classic repeated-multiplication on the integer part and a linear
	// correction for the fraction, which is plenty for sampling weights.
	out := 1.0
	for exp >= 1 {
		out *= base
		exp--
	}
	if exp > 0 {
		out *= 1 + exp*(base-1)
	}
	return out
}

// Sample implements SizeDist: pick a bucket by Zipf weight, then a size
// uniformly within the bucket.
func (z Zipf) Sample(rng *rand.Rand) int64 {
	buckets, weights := z.buckets()
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	hi := buckets[len(buckets)-1] * 2 // effective upper bound after defaults
	if z.Max > 0 && z.Max < hi {
		hi = z.Max
	}
	x := rng.Float64() * wsum
	for i, w := range weights {
		if x < w || i == len(buckets)-1 {
			b := buckets[i]
			span := b // bucket covers [b, 2b)
			v := b + rng.Int63n(span)
			if v > hi {
				v = hi
			}
			return v
		}
		x -= w
	}
	return buckets[0]
}

var _ SizeDist = Zipf{}
