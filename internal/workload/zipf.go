package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/units"
)

// Zipf draws object sizes from a truncated Zipf-like distribution over
// [Min, Max]: small objects common, large objects rare. The paper's §4.3
// declined to pick a "realistic" distribution ("any distribution we chose
// would be based on speculation"); this one is provided as an extension
// for users who want heavy-tailed workloads, with the same interface as
// the paper's constant and uniform distributions.
//
// Construct through NewZipf, which validates the parameters. The zero
// value's field defaults (Min 4 KB, S 1.5, Max clamped up to Min) are
// kept for direct literal use, but a literal with Max < Min or Min <= 0
// is silently reshaped rather than rejected — exactly the quiet
// fallback NewZipf exists to refuse.
type Zipf struct {
	Min, Max int64
	// S is the Zipf exponent (> 1); 0 takes 1.5.
	S float64
}

// NewZipf builds a validated size distribution: 0 < min <= max and
// exponent s > 1 (or s == 0 for the 1.5 default). Violations are
// refused with an error wrapping ErrBadDist instead of the zero
// value's silent fallbacks.
func NewZipf(min, max int64, s float64) (Zipf, error) {
	if min <= 0 {
		return Zipf{}, fmt.Errorf("%w: zipf min %d must be positive", ErrBadDist, min)
	}
	if max < min {
		return Zipf{}, fmt.Errorf("%w: zipf max %s below min %s",
			ErrBadDist, units.FormatBytes(max), units.FormatBytes(min))
	}
	if s != 0 && (s <= 1 || math.IsNaN(s) || math.IsInf(s, 0)) {
		return Zipf{}, fmt.Errorf("%w: zipf exponent %v must be > 1 (0 takes 1.5)", ErrBadDist, s)
	}
	return Zipf{Min: min, Max: max, S: s}, nil
}

// Name implements SizeDist.
func (z Zipf) Name() string {
	return fmt.Sprintf("zipf %s..%s", units.FormatBytes(z.Min), units.FormatBytes(z.Max))
}

// Mean implements SizeDist. It is the exact expectation of the sampler
// below: bucket weights times each bucket's own mean (uniform within
// [b, 2b) clamped to the distribution's upper bound).
func (z Zipf) Mean() int64 {
	buckets, weights := z.buckets()
	hi := z.upperBound(buckets)
	var total, wsum float64
	for i, b := range buckets {
		total += bucketMean(b, hi) * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		// Unreachable for NewZipf-validated parameters: buckets() always
		// yields at least one bucket of positive weight.
		return z.Min
	}
	return int64(total / wsum)
}

// bucketMean returns the expectation of one bucket's sample: uniform on
// [b, 2b) with every value above hi collapsed onto hi.
func bucketMean(b, hi int64) float64 {
	if hi <= b {
		return float64(hi)
	}
	if hi >= 2*b-1 {
		// Whole bucket in range: mean of uniform [b, 2b).
		return float64(b) + float64(b-1)/2
	}
	// Values b..hi-1 kept (each probability 1/b), the rest clamp to hi.
	kept := float64(hi - b)
	span := float64(b)
	meanKept := (float64(b) + float64(hi-1)) / 2
	return meanKept*(kept/span) + float64(hi)*(1-kept/span)
}

// upperBound returns the sampler's effective maximum value.
func (z Zipf) upperBound(buckets []int64) int64 {
	hi := buckets[len(buckets)-1] * 2
	if z.Max > 0 && z.Max < hi {
		hi = z.Max
	}
	return hi
}

// buckets returns geometric size buckets spanning [Min, Max] and their
// Zipf weights.
func (z Zipf) buckets() ([]int64, []float64) {
	s := z.S
	if s == 0 {
		s = 1.5
	}
	lo := z.Min
	if lo <= 0 {
		lo = 4 * units.KB
	}
	hi := max(z.Max, lo)
	var buckets []int64
	var weights []float64
	rank := 1.0
	for b := lo; b <= hi; b *= 2 {
		buckets = append(buckets, b)
		weights = append(weights, 1.0/math.Pow(rank, s))
		rank++
	}
	return buckets, weights
}

// Sample implements SizeDist: pick a bucket by Zipf weight, then a size
// uniformly within the bucket.
func (z Zipf) Sample(rng *rand.Rand) int64 {
	buckets, weights := z.buckets()
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	hi := z.upperBound(buckets)
	x := rng.Float64() * wsum
	for i, w := range weights {
		if x < w || i == len(buckets)-1 {
			b := buckets[i]
			span := b // bucket covers [b, 2b)
			v := b + rng.Int63n(span)
			if v > hi {
				v = hi
			}
			return v
		}
		x -= w
	}
	return buckets[0]
}

var _ SizeDist = Zipf{}

// ZipfPopularity is a rank-based Zipf read mix over the live object
// population: object rank k is read with probability proportional to
// (1+k)^-S, concentrating reads on a stable hot set. It is the
// Popularity counterpart of the Zipf size distribution above, for the
// read-cache experiments: with a memory cache over the store, a Zipf
// read mix is the regime where hot objects never touch the fragmented
// layout.
type ZipfPopularity struct {
	// S is the skew exponent, > 1. Larger concentrates more of the
	// traffic on fewer objects.
	S float64
}

// NewZipfPopularity builds a validated Zipf read mix; s must be > 1
// (math/rand's Zipf sampler requires it), refused with ErrBadDist
// otherwise.
func NewZipfPopularity(s float64) (ZipfPopularity, error) {
	if !(s > 1) || math.IsInf(s, 0) {
		return ZipfPopularity{}, fmt.Errorf("%w: zipf popularity exponent %v must be > 1", ErrBadDist, s)
	}
	return ZipfPopularity{S: s}, nil
}

// Name implements Popularity.
func (p ZipfPopularity) Name() string { return fmt.Sprintf("zipf(s=%.2f)", p.S) }

// Pick implements Popularity: rank 0 (the first-created live object) is
// the hottest. Draws come from math/rand's bounded Zipf sampler seeded
// by the phase RNG, so a fixed seed yields a fixed read sequence.
// Phases that draw many samples at fixed n should use Picker instead —
// Pick pays the sampler's setup on every call.
func (p ZipfPopularity) Pick(rng *rand.Rand, n int) int {
	return p.Picker(rng, n)()
}

// Picker returns a sampler bound to rng and a fixed population size,
// paying rand.NewZipf's setup once per phase instead of once per draw.
// readPhase detects this method and hoists it out of its sample loop;
// the draws consume rng identically either way (NewZipf itself consumes
// no randomness), so Pick and Picker yield the same sequence.
func (p ZipfPopularity) Picker(rng *rand.Rand, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	s := p.S
	if !(s > 1) {
		// A literal built without NewZipfPopularity (zero value, or any
		// exponent math/rand's sampler rejects by returning nil, which
		// would nil-deref below) falls back to the 1.2 default.
		s = 1.2
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

var _ Popularity = ZipfPopularity{}
