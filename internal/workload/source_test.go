package workload

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/units"
)

// TestByteBudget pins the shared-claim semantics the load streams race
// on: claims succeed up to the target, the failing claim leaves the
// budget untouched, and Reserve consumes unconditionally.
func TestByteBudget(t *testing.T) {
	b := NewByteBudget(100)
	if !b.Claim(60) || !b.Claim(40) {
		t.Fatal("claims within budget refused")
	}
	if b.Claim(1) {
		t.Fatal("claim over budget accepted")
	}
	// The refused claim must not leak: an exact-fit claim after a refusal
	// still succeeds on a fresh budget.
	b2 := NewByteBudget(100)
	if b2.Claim(101) {
		t.Fatal("oversized claim accepted")
	}
	if !b2.Claim(100) {
		t.Fatal("refused claim consumed budget")
	}
	b3 := NewByteBudget(100)
	b3.Reserve(90)
	if b3.Claim(20) {
		t.Fatal("claim ignored reservation")
	}
	if !b3.Claim(10) {
		t.Fatal("claim within reserved budget refused")
	}
}

// TestLoadSourceStopsAtBudget pins the bulk-load Source: creates flow
// until the first size that no longer fits, keys are generated only for
// emitted ops, and OnCreate fires only for ops observed successful.
func TestLoadSourceStopsAtBudget(t *testing.T) {
	var created []string
	n := 0
	src := &LoadSource{
		Dist:   Constant{Size: 40 * units.KB},
		Budget: NewByteBudget(100 * units.KB),
		Key: func() string {
			n++
			return string(rune('a' + n - 1))
		},
		OnCreate: func(key string) { created = append(created, key) },
	}
	rng := rand.New(rand.NewSource(1))
	var ops []Op
	for {
		op, ok := src.Next(rng)
		if !ok {
			break
		}
		if op.Kind != OpCreate {
			t.Fatalf("load emitted %v", op.Kind)
		}
		src.Observe(op, nil)
		ops = append(ops, op)
	}
	// 40 KB objects into a 100 KB budget: exactly 2 fit.
	if len(ops) != 2 || n != 2 {
		t.Fatalf("emitted %d ops, generated %d keys", len(ops), n)
	}
	if len(created) != 2 {
		t.Fatalf("OnCreate saw %d commits", len(created))
	}
	// A failed op must not reach OnCreate.
	src2 := &LoadSource{Dist: Constant{Size: units.KB}, Budget: NewByteBudget(units.MB),
		Key: func() string { return "x" }, OnCreate: func(string) { t.Fatal("failed create reported") }}
	op, _ := src2.Next(rng)
	src2.Observe(op, errors.New("boom"))
}

// TestChurnSourceInterleavesReadsAfterSuccess pins the feedback
// contract: reads are queued only after an observed successful write,
// so a skipped write draws no read keys and the rng sequence matches
// the classic churn loop exactly.
func TestChurnSourceInterleavesReadsAfterSuccess(t *testing.T) {
	age := 0.0
	src := &ChurnSource{
		Keys:          []string{"a", "b", "c"},
		Dist:          Constant{Size: 8 * units.KB},
		TargetAge:     1.0,
		Age:           func() float64 { return age },
		ReadsPerWrite: 2,
	}
	rng := rand.New(rand.NewSource(3))

	// First write succeeds: two reads must follow before the next write.
	op1, ok := src.Next(rng)
	if !ok || op1.Kind != OpReplace {
		t.Fatalf("first op = %v", op1)
	}
	src.Observe(op1, nil)
	for i := 0; i < 2; i++ {
		op, ok := src.Next(rng)
		if !ok || op.Kind != OpRead {
			t.Fatalf("interleaved op %d = %v", i, op)
		}
		src.Observe(op, nil)
	}

	// Failed write: no reads queued, next op is a write again.
	op2, ok := src.Next(rng)
	if !ok || op2.Kind != OpReplace {
		t.Fatalf("op after reads = %v", op2)
	}
	src.Observe(op2, errors.New("no space"))
	op3, ok := src.Next(rng)
	if !ok || op3.Kind != OpRead {
		// The skipped write queued nothing, so this is the next WRITE.
		if op3.Kind != OpReplace {
			t.Fatalf("op after failed write = %v", op3)
		}
	}
	if op3.Kind == OpRead {
		t.Fatal("skipped write still queued interleaved reads")
	}

	// Reaching the target age ends the stream (after pending reads).
	src.Observe(op3, nil)
	age = 1.0
	for i := 0; i < 2; i++ { // drain the two queued reads
		if op, ok := src.Next(rng); !ok || op.Kind != OpRead {
			t.Fatalf("pending read %d not drained: %v", i, op)
		}
	}
	if _, ok := src.Next(rng); ok {
		t.Fatal("source kept emitting past target age")
	}
}

// TestReadSourceEmitsSamples pins the read-measurement Source: exactly
// Samples reads over the keyspace, uniform when Popularity is nil.
func TestReadSourceEmitsSamples(t *testing.T) {
	src := &ReadSource{Keys: []string{"a", "b", "c"}, Samples: 10}
	rng := rand.New(rand.NewSource(5))
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		op, ok := src.Next(rng)
		if !ok || op.Kind != OpRead {
			t.Fatalf("op %d = %v ok=%v", i, op, ok)
		}
		seen[op.Key]++
	}
	if _, ok := src.Next(rng); ok {
		t.Fatal("source exceeded sample count")
	}
	if src.Err() != nil {
		t.Fatalf("clean source reported %v", src.Err())
	}
}

// badPopularity picks indexes outside the population.
type badPopularity struct{}

func (badPopularity) Name() string             { return "bad" }
func (badPopularity) Pick(*rand.Rand, int) int { return 99 }

// TestReadSourceBadPopularity pins the sticky-error contract: an
// out-of-range popularity draw ends the stream with ErrBadDist
// surfaced through Err.
func TestReadSourceBadPopularity(t *testing.T) {
	src := &ReadSource{Keys: []string{"a"}, Samples: 5, Popularity: badPopularity{}}
	if _, ok := src.Next(rand.New(rand.NewSource(1))); ok {
		t.Fatal("bad popularity emitted an op")
	}
	if !errors.Is(src.Err(), ErrBadDist) {
		t.Fatalf("Err = %v, want ErrBadDist", src.Err())
	}
}

// TestZipfReadSource pins the named adapter: validated construction and
// hot-set concentration.
func TestZipfReadSource(t *testing.T) {
	if _, err := NewZipfReadSource([]string{"a"}, 10, 0.5); !errors.Is(err, ErrBadDist) {
		t.Fatalf("s=0.5 accepted: %v", err)
	}
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = string(rune('a' + i%26))
	}
	src, err := NewZipfReadSource(keys, 200, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	first := 0
	for i := 0; i < 200; i++ {
		op, ok := src.Next(rng)
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if op.Key == keys[0] {
			first++
		}
	}
	if first < 40 {
		t.Fatalf("zipf s=1.5 read rank 0 only %d/200 times", first)
	}
}

// TestParseDist covers the fragbench -dist grammar.
func TestParseDist(t *testing.T) {
	d, err := ParseDist("uniform:5M-15M")
	if err != nil {
		t.Fatal(err)
	}
	u, ok := d.(Uniform)
	if !ok || u.Min != 5*units.MB || u.Max != 15*units.MB {
		t.Fatalf("parsed %+v", d)
	}
	d, err = ParseDist("constant:10M")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := d.(Constant); !ok || c.Size != 10*units.MB {
		t.Fatalf("parsed %+v", d)
	}
	d, err = ParseDist("512K")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := d.(Constant); !ok || c.Size != 512*units.KB {
		t.Fatalf("parsed %+v", d)
	}
	for _, bad := range []string{"", "uniform:", "uniform:5M", "uniform:15M-5M",
		"zipfian:1M-2M", "constant:-4K", "constant:x"} {
		if _, err := ParseDist(bad); !errors.Is(err, ErrBadDist) {
			t.Errorf("ParseDist(%q) = %v, want ErrBadDist", bad, err)
		}
	}
}
