package workload

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

// TestConcurrentRunnerBulkLoadAndChurn drives 4 streams through a
// group-committing filesystem store and checks the phase accounting and
// keyspace separation.
func TestConcurrentRunnerBulkLoadAndChurn(t *testing.T) {
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode),
		blob.WithGroupCommit(4, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewConcurrentRunner(store, UniformStreams(4, Constant{Size: 1 * units.MB}), 1)
	if r.Streams() != 4 {
		t.Fatalf("Streams() = %d", r.Streams())
	}

	load, err := r.BulkLoad(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if load.Ops == 0 || load.Bytes == 0 {
		t.Fatalf("empty bulk load: %+v", load)
	}
	if got := int64(float64(store.CapacityBytes()) * 0.5); store.LiveBytes() > got {
		t.Fatalf("overshot load target: live=%d target=%d", store.LiveBytes(), got)
	}
	if r.Tracker().Age() != 0 {
		t.Fatalf("age after load = %g", r.Tracker().Age())
	}
	// Every stream writes only its own keyspace.
	perStream := map[string]bool{}
	for _, k := range r.Keys() {
		perStream[k[:3]] = true
		if !strings.HasPrefix(k, "s0") {
			t.Fatalf("unexpected key %q", k)
		}
	}
	if len(perStream) != 4 {
		t.Fatalf("streams seen: %v", perStream)
	}

	churn, err := r.ChurnToAge(1, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if churn.EndingAge < 1 {
		t.Fatalf("churn stopped at age %g", churn.EndingAge)
	}
	if churn.Ops == 0 || churn.MBps <= 0 {
		t.Fatalf("churn result: %+v", churn)
	}
}

// TestConcurrentRunnerSingleStreamMatchesSequential pins that k=1 is
// the sequential workload: same distribution, same store config, same
// object count and age trajectory as Runner (keys differ by prefix
// only).
func TestConcurrentRunnerSingleStreamMatchesSequential(t *testing.T) {
	mk := func() blob.Store { return newFS(128 * units.MB) }
	seq := NewRunner(mk(), Constant{Size: 1 * units.MB}, 7)
	seqLoad, err := seq.BulkLoad(0.5)
	if err != nil {
		t.Fatal(err)
	}
	conc := NewConcurrentRunner(mk(), UniformStreams(1, Constant{Size: 1 * units.MB}), 7)
	concLoad, err := conc.BulkLoad(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if seqLoad.Ops != concLoad.Ops || seqLoad.Bytes != concLoad.Bytes {
		t.Fatalf("k=1 load diverged: seq=%+v conc=%+v", seqLoad, concLoad)
	}
	seqChurn, err := seq.ChurnToAge(2, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	concChurn, err := conc.ChurnToAge(2, ChurnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seqChurn.Ops != concChurn.Ops {
		t.Fatalf("k=1 churn diverged: seq %d ops, conc %d ops", seqChurn.Ops, concChurn.Ops)
	}
}

// TestConcurrentRunnerContextCancel pins that a cancelled context stops
// every stream with a typed error.
func TestConcurrentRunnerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewConcurrentRunner(newFS(64*units.MB), UniformStreams(2, Constant{Size: 1 * units.MB}), 1).
		WithContext(ctx)
	if _, err := r.BulkLoad(0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("BulkLoad under cancelled ctx = %v", err)
	}
}

// noSpaceEveryOther wraps a store and refuses every other Replace with
// ErrNoSpaceLeft after burning simulated time — a nearly-full shard in
// miniature, for pinning the skip accounting.
type noSpaceEveryOther struct {
	blob.Store
	n int
}

func (s *noSpaceEveryOther) Replace(ctx context.Context, key string, size int64) (blob.Writer, error) {
	s.n++
	if s.n%2 == 0 {
		// A refused safe write still pays for the failed allocation
		// attempt before rolling back.
		s.Clock().AdvanceSeconds(1)
		return nil, fmt.Errorf("%w: shard full", blob.ErrNoSpaceLeft)
	}
	return s.Store.Replace(ctx, key, size)
}

// TestChurnSkippedTimeExcludedFromThroughput pins the TolerateNoSpace
// accounting fix: virtual time burned by skipped writes lands in
// Result.SkippedSeconds and is excluded from the MBps mean instead of
// diluting it.
func TestChurnSkippedTimeExcludedFromThroughput(t *testing.T) {
	inner := newFS(128 * units.MB)
	s := &noSpaceEveryOther{Store: inner}
	r := NewRunner(s, Constant{Size: 1 * units.MB}, 3)
	if _, err := r.BulkLoad(0.25); err != nil {
		t.Fatal(err)
	}
	res, err := r.ChurnToAge(1, ChurnOptions{TolerateNoSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("decorator produced no skips")
	}
	// Each skip burned exactly 1 virtual second.
	if want := float64(res.Skipped); res.SkippedSeconds < want {
		t.Fatalf("SkippedSeconds = %g, want >= %g", res.SkippedSeconds, want)
	}
	if res.SkippedSeconds >= res.Seconds {
		t.Fatalf("skipped time %g not inside phase time %g", res.SkippedSeconds, res.Seconds)
	}
	diluted := units.MBps(res.Bytes, res.Seconds)
	want := units.MBps(res.Bytes, res.Seconds-res.SkippedSeconds)
	if res.MBps != want || res.MBps <= diluted {
		t.Fatalf("MBps = %g, want %g (diluted mean would be %g)", res.MBps, want, diluted)
	}
}
