// Package workload generates the paper's abstract write-intensive
// get/put application (§4.3): bulk load to a target occupancy, then
// rounds of safe-write replacement of uniformly chosen objects with
// interleaved reads, driven by deterministic seeded randomness.
//
// Following §4.3's simplifications: all objects are equally likely to be
// written or read, there is no correlation among objects, and object
// sizes come from simple distributions (constant and uniform; the paper
// found size distribution had no obvious effect on fragmentation).
//
// Since the operation-source redesign, every phase is expressed as a
// Source of typed Ops executed by the shared Executor: the sequential
// Runner, the ConcurrentRunner, and trace replay (package trace) are
// thin arrangements of Sources over one engine, so any workload —
// synthetic or recorded — can drive any blob.Store composition with one
// set of accounting rules.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Typed errors for workload misconfiguration, in the spirit of
// blob.ErrBadOption: dispatch with errors.Is, never by message text.
var (
	// ErrNoSamples reports a read-throughput measurement asked for zero
	// or negative samples. An empty Result from such a phase would
	// propagate 0/0 artifacts into downstream rate math, so the phase
	// refuses instead of silently returning nothing.
	ErrNoSamples = errors.New("workload: read measurement needs samples > 0")

	// ErrBadDist reports an invalid size- or popularity-distribution
	// parameterization (NewZipf, NewZipfPopularity, ParseDist).
	ErrBadDist = errors.New("workload: invalid distribution")
)

// SizeDist is an object-size distribution.
type SizeDist interface {
	// Name identifies the distribution in reports.
	Name() string
	// Mean returns the mean object size in bytes.
	Mean() int64
	// Sample draws one object size.
	Sample(rng *rand.Rand) int64
}

// Constant is the paper's primary distribution: every object the same
// size.
type Constant struct{ Size int64 }

// Name implements SizeDist.
func (c Constant) Name() string { return "constant " + units.FormatBytes(c.Size) }

// Mean implements SizeDist.
func (c Constant) Mean() int64 { return c.Size }

// Sample implements SizeDist.
func (c Constant) Sample(*rand.Rand) int64 { return c.Size }

// Uniform draws sizes uniformly from [Min, Max] — Figure 5's alternative
// with the same mean as the constant distribution.
type Uniform struct{ Min, Max int64 }

// Name implements SizeDist.
func (u Uniform) Name() string {
	return fmt.Sprintf("uniform %s..%s", units.FormatBytes(u.Min), units.FormatBytes(u.Max))
}

// Mean implements SizeDist.
func (u Uniform) Mean() int64 { return (u.Min + u.Max) / 2 }

// Sample implements SizeDist.
func (u Uniform) Sample(rng *rand.Rand) int64 {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Int63n(u.Max-u.Min+1)
}

// UniformAround returns a Uniform spanning 0.5x..1.5x of mean, the
// natural counterpart used in Figure 5 ("sizes chosen uniformly at random
// with the same average size").
func UniformAround(mean int64) Uniform {
	return Uniform{Min: mean / 2, Max: mean + mean/2}
}

// Result summarises one workload phase.
type Result struct {
	Ops     int   // operations performed
	Skipped int   // operations skipped (TolerateNoSpace)
	Bytes   int64 // payload bytes moved
	// Seconds is the virtual time the whole phase spanned, including
	// time burned by skipped operations.
	Seconds float64
	// SkippedSeconds is the virtual time consumed by operations that
	// were skipped under TolerateNoSpace (a refused safe write still
	// pays for the allocation attempt and its rollback). The sequential
	// Runner excludes it from MBps so skipped writes cannot dilute the
	// throughput mean. ConcurrentRunner phases leave it zero: with k
	// streams a skipped op's interval overlaps other streams' useful
	// work, so there is no idle time to subtract and MBps is bytes over
	// the whole phase.
	SkippedSeconds float64
	MBps           float64 // payload throughput (see SkippedSeconds)
	EndingAge      float64 // storage age after the phase
	ObjectsAlive   int
}

func (r Result) String() string {
	return fmt.Sprintf("%d ops, %s in %.1fs virtual = %.2f MB/s (age %.2f)",
		r.Ops, units.FormatBytes(r.Bytes), r.Seconds, r.MBps, r.EndingAge)
}

// Runner drives one store through the workload phases, single-stream.
// Each phase is a Source executed by the shared Executor; the Runner
// contributes the persistent per-workload state (one RNG spanning all
// phases, the live-key list, fresh-key numbering).
type Runner struct {
	exec   *Executor
	rng    *rand.Rand
	dist   SizeDist
	keys   []string
	nextID int64
}

// NewRunner creates a deterministic runner over store.
func NewRunner(store blob.Store, dist SizeDist, seed int64) *Runner {
	return &Runner{
		exec: NewExecutor(store),
		rng:  rand.New(rand.NewSource(seed)),
		dist: dist,
	}
}

// WithCollector installs per-op observability on the runner's executor
// (see Executor.WithCollector).
func (r *Runner) WithCollector(c *obs.Collector) *Runner {
	r.exec.WithCollector(c)
	return r
}

// WithContext sets the context the runner's operations carry, for
// cancelling a long workload phase from outside.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.exec.WithContext(ctx)
	return r
}

// Executor exposes the engine the runner's phases execute through.
func (r *Runner) Executor() *Executor { return r.exec }

// Tracker exposes the storage-age tracker.
func (r *Runner) Tracker() *core.AgeTracker { return r.exec.Tracker() }

// Repo returns the store under test.
func (r *Runner) Repo() blob.Store { return r.exec.Store() }

// Keys returns the keys of live objects, in creation order.
func (r *Runner) Keys() []string { return r.keys }

// ctx returns the context the executor carries.
func (r *Runner) ctx() context.Context { return r.exec.ctx }

// clockWatch starts a stopwatch on the repository clock.
func (r *Runner) clockWatch() vclock.Stopwatch {
	return vclockWatch(r.Repo())
}

// BulkLoad puts fresh objects until live bytes reach occupancy (0..1) of
// the repository's capacity. The paper's figures start from this state
// ("storage age 0", §5.3) and both systems append sequentially during it.
func (r *Runner) BulkLoad(occupancy float64) (Result, error) {
	return r.BulkLoadBytes(int64(occupancy * float64(r.Repo().CapacityBytes())))
}

// BulkLoadBytes puts fresh objects until live bytes reach targetBytes.
func (r *Runner) BulkLoadBytes(targetBytes int64) (Result, error) {
	budget := NewByteBudget(targetBytes)
	budget.Reserve(r.Repo().LiveBytes())
	src := &LoadSource{
		Dist:   r.dist,
		Budget: budget,
		Key: func() string {
			key := fmt.Sprintf("obj-%08d", r.nextID)
			r.nextID++
			return key
		},
		OnCreate: func(key string) { r.keys = append(r.keys, key) },
	}
	rr, err := r.exec.Run([]Stream{{Source: src, RNG: r.rng}}, RunOptions{})
	res := r.writeResult(rr)
	if err != nil {
		return res, fmt.Errorf("bulk load after %d objects: %w", res.Ops, err)
	}
	r.Tracker().ResetBaseline()
	res.EndingAge = 0
	return res, nil
}

// ChurnOptions controls a churn phase.
type ChurnOptions struct {
	// ReadsPerWrite interleaves this many whole-object reads per safe
	// write (the paper's "interleaved read requests", §4.3).
	ReadsPerWrite int

	// TolerateNoSpace skips safe writes that fail with ErrNoSpaceLeft
	// instead of aborting the phase, counting them in Result.Skipped —
	// the sharded regime, where one nearly-full shard can reject a
	// replace (old and new version coexist until commit) while the
	// fleet as a whole has room. The phase still fails if every key in
	// a row is refused, so a genuinely full store cannot spin forever.
	TolerateNoSpace bool

	// Background, when non-nil, runs a maintenance worker (the online
	// compactor) concurrently with the churn stream for the duration of
	// the phase.
	Background Background
}

// ChurnToAge safe-writes uniformly chosen objects until storage age
// reaches target. Write throughput over the phase is the Figure 4
// measurement: "the average write throughput between the bulk load and
// storage age two read measurements".
func (r *Runner) ChurnToAge(target float64, opts ChurnOptions) (Result, error) {
	if len(r.keys) == 0 {
		return Result{}, fmt.Errorf("workload: churn before bulk load")
	}
	src := &ChurnSource{
		Keys:          r.keys,
		Dist:          r.dist,
		TargetAge:     target,
		Age:           r.Tracker().Age,
		ReadsPerWrite: opts.ReadsPerWrite,
	}
	rr, err := r.exec.RunWithBackground([]Stream{{Source: src, RNG: r.rng, SkipLimit: 4 * len(r.keys)}},
		RunOptions{TolerateNoSpace: opts.TolerateNoSpace, TrackSkipTime: true}, opts.Background)
	res := r.writeResult(rr)
	if err != nil {
		return res, fmt.Errorf("churn: %w", err)
	}
	return res, nil
}

// ReadOptions controls a read-throughput measurement phase.
type ReadOptions struct {
	// Popularity picks which live object each read targets; nil reads
	// uniformly (the paper's §4.3 simplification). A Zipf popularity
	// concentrates reads on a hot set — the regime where a read cache
	// above the store pays off.
	Popularity Popularity
	// Collector, when non-nil, times every read end-to-end on the
	// virtual clock and traces it through obs-wrapped store layers
	// (obs.Collector.MissLayer splits cache hits from misses).
	Collector *obs.Collector
}

// Popularity picks the index of the object one read targets among n
// live objects. Implementations must return a value in [0, n).
type Popularity interface {
	// Name identifies the popularity mix in reports.
	Name() string
	// Pick draws one object index in [0, n).
	Pick(rng *rand.Rand, n int) int
}

// MeasureReadThroughput reads `samples` uniformly chosen objects and
// returns the payload throughput in MB/s of virtual time — the paper's
// primary performance indicator (§5). samples <= 0 is refused with
// ErrNoSamples.
func (r *Runner) MeasureReadThroughput(samples int) (Result, error) {
	return r.MeasureRead(samples, ReadOptions{})
}

// MeasureRead reads `samples` objects drawn by opts.Popularity
// (uniform when nil) and returns the payload throughput in MB/s of
// virtual time.
func (r *Runner) MeasureRead(samples int, opts ReadOptions) (Result, error) {
	res, err := readPhase(r.exec, r.keys, samples, r.rng, opts)
	if err != nil {
		return res, err
	}
	res.EndingAge = r.Tracker().Age()
	return res, nil
}

// ReadPhase reads `samples` objects drawn from keys by opts.Popularity
// through s with a private seeded RNG. It is the standalone form of
// Runner.MeasureRead for measuring the same aged layout through
// different read paths (e.g. the same store behind several cache
// capacities) with an identical key sequence per seed.
func ReadPhase(ctx context.Context, s blob.Store, keys []string, samples int,
	seed int64, opts ReadOptions) (Result, error) {
	return readPhase(NewExecutor(s).WithContext(ctx).WithCollector(opts.Collector),
		keys, samples, rand.New(rand.NewSource(seed)), opts)
}

// readPhase is the shared read-measurement phase: a ReadSource through
// the executor.
func readPhase(exec *Executor, keys []string, samples int,
	rng *rand.Rand, opts ReadOptions) (Result, error) {
	if samples <= 0 {
		return Result{}, fmt.Errorf("%w: got %d", ErrNoSamples, samples)
	}
	if len(keys) == 0 {
		return Result{}, fmt.Errorf("workload: measure before bulk load")
	}
	src := &ReadSource{Keys: keys, Samples: samples, Popularity: opts.Popularity}
	rr, err := exec.Run([]Stream{{Source: src, RNG: rng}}, RunOptions{})
	total := rr.Total()
	res := Result{
		Ops:          total.Ops(),
		Bytes:        total.BytesRead,
		Seconds:      rr.Seconds,
		MBps:         units.MBps(total.BytesRead, rr.Seconds),
		ObjectsAlive: exec.Store().ObjectCount(),
	}
	return res, err
}

// writeResult converts a single-stream write run into the phase Result
// the classic Runner reported: Bytes and MBps cover committed payload,
// with skipped-op time excluded from the throughput mean.
func (r *Runner) writeResult(rr RunResult) Result {
	total := rr.Total()
	bytes := total.BytesWritten
	return Result{
		Ops:            total.Ops(),
		Skipped:        total.Skipped,
		Bytes:          bytes,
		Seconds:        rr.Seconds,
		SkippedSeconds: total.SkippedSeconds,
		MBps:           units.MBps(bytes, rr.Seconds-total.SkippedSeconds),
		EndingAge:      r.Tracker().Age(),
		ObjectsAlive:   r.Repo().ObjectCount(),
	}
}

// DeleteGroup deletes a contiguous group of n objects starting at a
// random position — the structured deallocation pattern §3.2 describes
// ("pictures shared for an event are often uploaded and later deleted as
// a group"). Used by the photoshare example and extension benches.
func (r *Runner) DeleteGroup(n int) (Result, error) {
	w := r.clockWatch()
	var res Result
	if len(r.keys) == 0 {
		return res, fmt.Errorf("workload: delete before bulk load")
	}
	if n > len(r.keys) {
		n = len(r.keys)
	}
	start := r.rng.Intn(len(r.keys) - n + 1)
	for i := 0; i < n; i++ {
		key := r.keys[start+i]
		info, err := r.Repo().Stat(r.ctx(), key)
		if err != nil {
			return res, err
		}
		if err := r.Tracker().Delete(r.ctx(), key); err != nil {
			return res, err
		}
		res.Ops++
		res.Bytes += info.Size
	}
	r.keys = append(r.keys[:start], r.keys[start+n:]...)
	res.Seconds = w.Seconds()
	res.MBps = units.MBps(res.Bytes, res.Seconds)
	res.EndingAge = r.Tracker().Age()
	res.ObjectsAlive = r.Repo().ObjectCount()
	return res, nil
}
