package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Executor drives k operation streams from any mix of Sources against
// one blob.Store — the single engine behind the sequential Runner, the
// ConcurrentRunner, and trace replay. Each Stream runs on its own
// goroutine drawing ops from its Source with its own RNG, so appends
// from different streams genuinely interleave in allocation order (the
// §6 regime) while each stream's op sequence stays reproducible per
// seed. One stream runs inline on the caller's goroutine, so a k=1
// phase is byte-for-byte the classic sequential workload.
//
// The Executor owns the storage-age accounting: all mutations route
// through one shared core.AgeTracker (storage age is a property of the
// volume, not of any writer), and phase timing is read from the store's
// virtual clock.
type Executor struct {
	ctx       context.Context
	tracker   *core.AgeTracker
	collector *obs.Collector
}

// NewExecutor creates an executor over store with a fresh AgeTracker.
func NewExecutor(store blob.Store) *Executor {
	return &Executor{ctx: context.Background(), tracker: core.NewAgeTracker(store)}
}

// WithContext sets the context every stream's operations carry, for
// cancelling a long phase from outside.
func (e *Executor) WithContext(ctx context.Context) *Executor {
	e.ctx = ctx
	return e
}

// WithCollector installs per-op observability: every operation of
// every stream is timed end-to-end on the virtual clock, recorded into
// the collector's registry (op.<kind> histograms, read hit/miss
// classification), and traced with its per-layer spans when the store
// chain is obs-wrapped. A nil collector (the default) records nothing.
func (e *Executor) WithCollector(c *obs.Collector) *Executor {
	e.collector = c
	return e
}

// Tracker exposes the shared storage-age tracker.
func (e *Executor) Tracker() *core.AgeTracker { return e.tracker }

// Store returns the store under test.
func (e *Executor) Store() blob.Store { return e.tracker.Store() }

// Background is a store-maintenance worker that runs concurrently with
// a phase's operation streams — the online compactor is the canonical
// implementation. Start launches it; Stop blocks until it drains. Both
// must be safe to call around an arbitrary phase.
type Background interface {
	Start()
	Stop()
}

// RunWithBackground runs the streams with a background worker active
// for the duration of the phase: bg starts before the first op and is
// stopped (and drained) once the streams finish, so its work genuinely
// interleaves with the k operation streams on the shared clock. A nil
// bg degenerates to Run.
func (e *Executor) RunWithBackground(streams []Stream, opts RunOptions, bg Background) (RunResult, error) {
	if bg != nil {
		bg.Start()
		defer bg.Stop()
	}
	return e.Run(streams, opts)
}

// Stream pairs a Source with the RNG that drives it. RNGs are
// caller-owned so they can persist across phases (the classic Runner
// semantics: bulk load and churn continue one random sequence).
type Stream struct {
	// Source produces the stream's operations.
	Source Source
	// RNG drives the source's draws. Each stream needs its own; sharing
	// one RNG across concurrent streams would race.
	RNG *rand.Rand
	// SkipLimit aborts the stream when more than this many CONSECUTIVE
	// writes are skipped under RunOptions.TolerateNoSpace (0 = no
	// limit).
	SkipLimit int
}

// RunOptions controls one Executor.Run.
type RunOptions struct {
	// TolerateNoSpace skips writes failing with blob.ErrNoSpaceLeft
	// instead of aborting the stream, counting them in Counts.Skipped —
	// the sharded regime, where one nearly-full shard can refuse a
	// replace while the fleet has room. Streams still fail once
	// Stream.SkipLimit consecutive writes are refused, so a genuinely
	// full store cannot spin forever.
	TolerateNoSpace bool
	// TrackSkipTime charges the virtual time burned by each skipped
	// write to Counts.SkippedSeconds (a refused safe write still pays
	// for the allocation attempt and its rollback). Single-stream phases
	// use it to keep refused writes out of throughput means; with k
	// concurrent streams a skipped op's interval overlaps other streams'
	// useful work, so there is no idle time to subtract and the option
	// stays off.
	TrackSkipTime bool
}

// Counts is the raw per-stream operation accounting of one run.
type Counts struct {
	Creates, Replaces, Deletes, Reads int
	// Skipped counts writes refused with ErrNoSpaceLeft under
	// TolerateNoSpace.
	Skipped int
	// BytesWritten is payload bytes committed by creates and replaces.
	BytesWritten int64
	// BytesRead is payload bytes returned by reads (a ranged read counts
	// its range length).
	BytesRead int64
	// SkippedSeconds is virtual time consumed by skipped writes, when
	// RunOptions.TrackSkipTime is set.
	SkippedSeconds float64
}

// Ops returns the number of operations that executed successfully.
func (c Counts) Ops() int { return c.Creates + c.Replaces + c.Deletes + c.Reads }

func (c *Counts) add(o Counts) {
	c.Creates += o.Creates
	c.Replaces += o.Replaces
	c.Deletes += o.Deletes
	c.Reads += o.Reads
	c.Skipped += o.Skipped
	c.BytesWritten += o.BytesWritten
	c.BytesRead += o.BytesRead
	c.SkippedSeconds += o.SkippedSeconds
}

// RunResult is one Executor.Run's accounting: per-stream counts plus
// the phase's span on the store's virtual clock.
type RunResult struct {
	// Streams holds one Counts per input stream, in order.
	Streams []Counts
	// Seconds is the virtual time the whole run spanned.
	Seconds float64
}

// Total sums the per-stream counts.
func (r RunResult) Total() Counts {
	var t Counts
	for _, c := range r.Streams {
		t.add(c)
	}
	return t
}

// MaxStreams bounds the stream count one Run accepts. The limit is
// deliberately independent of NumCPU — k is a workload parameter (how
// many writers interleave in the simulation), not a parallelism hint —
// and exists only to catch a garbage k before it allocates a goroutine
// fleet.
const MaxStreams = 4096

// trackerOps is what execOp needs from the storage-age accounting: the
// shared tracker itself (k=1, inline) or one stream's private view.
type trackerOps interface {
	Put(ctx context.Context, key string, size int64, data []byte) error
	Replace(ctx context.Context, key string, size int64, data []byte) error
	Delete(ctx context.Context, key string) error
}

// Run drives every stream to exhaustion (or error) concurrently and
// returns the per-stream accounting. A failing stream does not cancel
// its siblings — they run to their own completion, as k independent
// writers would — and all stream errors are joined. Partial counts are
// returned even on error.
//
// A stream count outside [1, MaxStreams] is refused with an error
// wrapping blob.ErrBadOption.
//
// With k > 1 each stream charges the tracker through its own
// core.StreamView (goroutine-local committed-size map, shared atomic
// byte counters), merged back into the tracker when the phase ends —
// including on error, so partial accounting stays visible. One stream
// runs inline against the plain tracker: a k=1 phase is byte-for-byte
// the classic sequential workload.
func (e *Executor) Run(streams []Stream, opts RunOptions) (RunResult, error) {
	if len(streams) < 1 {
		return RunResult{}, fmt.Errorf("workload: %d streams (want at least 1): %w",
			len(streams), blob.ErrBadOption)
	}
	if len(streams) > MaxStreams {
		return RunResult{}, fmt.Errorf("workload: %d streams exceeds MaxStreams %d: %w",
			len(streams), MaxStreams, blob.ErrBadOption)
	}
	res := RunResult{Streams: make([]Counts, len(streams))}
	w := vclock.StartWatch(e.Store().Clock())
	var err error
	if len(streams) == 1 {
		// One stream runs inline: no goroutine between the caller and
		// the classic sequential workload.
		err = e.runStream(0, streams[0], opts, &res.Streams[0], e.tracker)
	} else {
		errs := make([]error, len(streams))
		var wg sync.WaitGroup
		for i := range streams {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				view := e.tracker.StreamView()
				defer view.Merge()
				errs[i] = e.runStream(i, streams[i], opts, &res.Streams[i], view)
			}(i)
		}
		wg.Wait()
		err = errors.Join(errs...)
	}
	res.Seconds = w.Seconds()
	return res, err
}

// runStream drains one source, executing each op against the store.
func (e *Executor) runStream(id int, st Stream, opts RunOptions, c *Counts, acct trackerOps) error {
	src := st.Source
	obs, observes := src.(SourceObserver)
	consecutiveSkips := 0
	for opIdx := 0; ; opIdx++ {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		op, ok := src.Next(st.RNG)
		if !ok {
			if es, hasErr := src.(sourceErr); hasErr {
				if err := es.Err(); err != nil {
					return fmt.Errorf("stream %d (%s): %w", id, src.Name(), err)
				}
			}
			return nil
		}
		var opWatch vclock.Stopwatch
		if opts.TrackSkipTime {
			opWatch = vclock.StartWatch(e.Store().Clock())
		}
		opCtx, tr := e.collector.StartOp(e.ctx, id, op.Kind.String(), op.Key)
		err := e.execOp(opCtx, op, c, acct)
		e.collector.FinishOp(tr, err)
		if observes {
			obs.Observe(op, err)
		}
		if err != nil {
			if opts.TolerateNoSpace && (op.Kind == OpCreate || op.Kind == OpReplace) &&
				errors.Is(err, blob.ErrNoSpaceLeft) {
				c.Skipped++
				if opts.TrackSkipTime {
					c.SkippedSeconds += opWatch.Seconds()
				}
				consecutiveSkips++
				if st.SkipLimit > 0 && consecutiveSkips > st.SkipLimit {
					return fmt.Errorf("stream %d (%s) op %d: store full on every try: %w",
						id, src.Name(), opIdx, err)
				}
				continue
			}
			return fmt.Errorf("stream %d (%s) op %d (%s): %w", id, src.Name(), opIdx, op, err)
		}
		consecutiveSkips = 0
	}
}

// execOp executes one op, charging c only on success. ctx carries the
// op's trace (when a collector is installed) so obs-wrapped layers of
// the store chain can attribute their spans to it. Mutations charge
// storage age through acct — the stream's tracker view under
// concurrency, the shared tracker when running inline.
func (e *Executor) execOp(ctx context.Context, op Op, c *Counts, acct trackerOps) error {
	switch op.Kind {
	case OpCreate:
		if err := acct.Put(ctx, op.Key, op.Size, nil); err != nil {
			return err
		}
		c.Creates++
		c.BytesWritten += op.Size
	case OpReplace:
		if err := acct.Replace(ctx, op.Key, op.Size, nil); err != nil {
			return err
		}
		c.Replaces++
		c.BytesWritten += op.Size
	case OpDelete:
		if err := acct.Delete(ctx, op.Key); err != nil {
			return err
		}
		c.Deletes++
	case OpRead:
		if op.Len > 0 {
			r, err := e.Store().Open(ctx, op.Key)
			if err != nil {
				return err
			}
			_, err = r.ReadAt(op.Off, op.Len)
			r.Close()
			if err != nil {
				return err
			}
			c.Reads++
			c.BytesRead += op.Len
		} else {
			n, _, err := blob.Get(ctx, e.Store(), op.Key)
			if err != nil {
				return err
			}
			c.Reads++
			c.BytesRead += n
		}
	default:
		return fmt.Errorf("workload: unknown op kind %v", op.Kind)
	}
	return nil
}
