package workload

import (
	"errors"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

// TestExecutorStreamCountBounds pins the Run validation: stream counts
// outside [1, MaxStreams] are refused with blob.ErrBadOption before any
// store traffic, independent of the host's core count.
func TestExecutorStreamCountBounds(t *testing.T) {
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(64*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ex := NewExecutor(store)
	if _, err := ex.Run(nil, RunOptions{}); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("0 streams: err = %v, want ErrBadOption", err)
	}
	over := make([]Stream, MaxStreams+1)
	if _, err := ex.Run(over, RunOptions{}); !errors.Is(err, blob.ErrBadOption) {
		t.Fatalf("%d streams: err = %v, want ErrBadOption", len(over), err)
	}
}

// TestConcurrentRunnerHighK drives 64 streams through the full pipeline
// — per-stream AgeTracker views, the batcher pool, pooled reader/writer
// handles — at a size CI can afford under -race. The assertions are
// deliberately coarse; the point of the test is the interleaving.
func TestConcurrentRunnerHighK(t *testing.T) {
	const k = 64
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode),
		blob.WithGroupCommit(k, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewConcurrentRunner(store, UniformStreams(k, Constant{Size: 256 * units.KB}), 1)

	load, err := r.BulkLoad(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if load.Ops == 0 {
		t.Fatal("bulk load did no ops")
	}
	churn, err := r.ChurnToAge(1, ChurnOptions{TolerateNoSpace: true, ReadsPerWrite: 1})
	if err != nil {
		t.Fatal(err)
	}
	if churn.Ops == 0 {
		t.Fatal("churn did no ops")
	}
	if age := r.Tracker().Age(); age < 0.9 {
		t.Fatalf("age after churn = %g, want ~1", age)
	}
	cs, ok := blob.CommitStatsOf(store)
	if !ok || cs.Commits == 0 {
		t.Fatalf("commit pipeline unused: %+v (ok=%v)", cs, ok)
	}
}
