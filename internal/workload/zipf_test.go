package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/units"
)

func TestZipfBounds(t *testing.T) {
	z := Zipf{Min: 64 * units.KB, Max: 16 * units.MB}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s := z.Sample(rng)
		if s < z.Min || s > z.Max {
			t.Fatalf("sample %d outside [%d,%d]", s, z.Min, z.Max)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := Zipf{Min: 64 * units.KB, Max: 16 * units.MB}
	rng := rand.New(rand.NewSource(2))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := z.Sample(rng)
		if s < 256*units.KB {
			small++
		}
		if s > 8*units.MB {
			large++
		}
	}
	if small <= large {
		t.Fatalf("zipf not skewed toward small: %d small vs %d large", small, large)
	}
	if small < 3*large {
		t.Fatalf("skew too weak: %d small vs %d large", small, large)
	}
}

// TestZipfMeanSampleAgreement pins Mean() to the sampler it describes:
// across parameterizations, the empirical mean of Sample() must match
// the declared Mean() closely (Mean is computed as the sampler's exact
// expectation, so the tolerance only covers sampling noise).
func TestZipfMeanSampleAgreement(t *testing.T) {
	cases := []struct {
		name string
		min  int64
		max  int64
		s    float64
	}{
		{"default-exponent", 64 * units.KB, 16 * units.MB, 0},
		{"mild-skew", 64 * units.KB, 16 * units.MB, 1.1},
		{"heavy-skew", 4 * units.KB, 64 * units.MB, 3},
		{"single-bucket", 256 * units.KB, 256 * units.KB, 1.5},
		{"narrow", units.MB, 3 * units.MB, 2},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z, err := NewZipf(tc.min, tc.max, tc.s)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(3 + i)))
			var sum float64
			const n = 100000
			for j := 0; j < n; j++ {
				s := z.Sample(rng)
				if s < z.Min || s > z.Max {
					t.Fatalf("sample %d outside [%d,%d]", s, z.Min, z.Max)
				}
				sum += float64(s)
			}
			sampleMean := sum / n
			declared := float64(z.Mean())
			// Tolerance covers sampling noise only; heavy-tailed cases
			// put real variance in the rare large buckets.
			if ratio := sampleMean / declared; ratio < 0.93 || ratio > 1.07 {
				t.Fatalf("sample mean %.0f vs declared %.0f (ratio %.3f)", sampleMean, declared, ratio)
			}
		})
	}
}

// TestNewZipfValidation pins the constructor's typed rejections: the
// zero value's silent fallbacks (Mean() returning Min, the S=0 magic,
// missing Min<=Max / Min>0 checks) must not survive the validated path.
func TestNewZipfValidation(t *testing.T) {
	cases := []struct {
		name string
		min  int64
		max  int64
		s    float64
	}{
		{"zero-min", 0, units.MB, 1.5},
		{"negative-min", -4096, units.MB, 1.5},
		{"max-below-min", units.MB, 64 * units.KB, 1.5},
		{"exponent-at-one", 64 * units.KB, units.MB, 1},
		{"exponent-below-one", 64 * units.KB, units.MB, 0.5},
		{"negative-exponent", 64 * units.KB, units.MB, -2},
		{"nan-exponent", 64 * units.KB, units.MB, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewZipf(tc.min, tc.max, tc.s); !errors.Is(err, ErrBadDist) {
				t.Fatalf("NewZipf(%d, %d, %v) = %v, want ErrBadDist", tc.min, tc.max, tc.s, err)
			}
		})
	}
	z, err := NewZipf(64*units.KB, 16*units.MB, 0) // 0 keeps the 1.5 default
	if err != nil {
		t.Fatal(err)
	}
	if z.Mean() <= 0 {
		t.Fatalf("validated Mean = %d", z.Mean())
	}
}

// TestZipfPopularity pins the read mix: validated construction, picks
// in range, deterministic under a fixed seed, and skewed toward the
// low (hot) ranks.
func TestZipfPopularity(t *testing.T) {
	for _, s := range []float64{1, 0.3, -1, math.Inf(1)} {
		if _, err := NewZipfPopularity(s); !errors.Is(err, ErrBadDist) {
			t.Fatalf("NewZipfPopularity(%v) = %v, want ErrBadDist", s, err)
		}
	}
	pop, err := NewZipfPopularity(1.2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		idx := pop.Pick(rng, n)
		if idx < 0 || idx >= n {
			t.Fatalf("pick %d outside [0,%d)", idx, n)
		}
		counts[idx]++
	}
	hot, cold := 0, 0
	for i, c := range counts {
		if i < n/10 {
			hot += c
		} else if i >= n/2 {
			cold += c
		}
	}
	if hot <= 2*cold {
		t.Fatalf("zipf popularity not skewed: hot decile %d vs cold half %d", hot, cold)
	}
	// Same seed, same sequence.
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if pop.Pick(a, n) != pop.Pick(b, n) {
			t.Fatal("popularity picks not deterministic under a fixed seed")
		}
	}
	if pop.Pick(rng, 1) != 0 || pop.Pick(rng, 0) != 0 {
		t.Fatal("degenerate populations must pick index 0")
	}
}

func TestZipfDefaults(t *testing.T) {
	z := Zipf{} // all defaults
	rng := rand.New(rand.NewSource(4))
	s := z.Sample(rng)
	if s <= 0 {
		t.Fatalf("default sample %d", s)
	}
	if z.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestZipfDrivesWorkload(t *testing.T) {
	r := NewRunner(newFS(256*units.MB), Zipf{Min: 64 * units.KB, Max: 4 * units.MB}, 5)
	if _, err := r.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ChurnToAge(1, ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	if r.Tracker().Age() < 1 {
		t.Fatalf("age %.2f", r.Tracker().Age())
	}
}

// TestZipfPopularityLiteralFallback pins that a literal built without
// the validating constructor cannot nil-deref math/rand's sampler: any
// exponent the sampler rejects (<= 1) falls back to the 1.2 default.
func TestZipfPopularityLiteralFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range []float64{0, 0.5, 1, -3} {
		pop := ZipfPopularity{S: s}
		for i := 0; i < 50; i++ {
			if idx := pop.Pick(rng, 100); idx < 0 || idx >= 100 {
				t.Fatalf("S=%v: pick %d outside [0,100)", s, idx)
			}
		}
	}
}
