package workload

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

func TestZipfBounds(t *testing.T) {
	z := Zipf{Min: 64 * units.KB, Max: 16 * units.MB}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s := z.Sample(rng)
		if s < z.Min || s > z.Max {
			t.Fatalf("sample %d outside [%d,%d]", s, z.Min, z.Max)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := Zipf{Min: 64 * units.KB, Max: 16 * units.MB}
	rng := rand.New(rand.NewSource(2))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := z.Sample(rng)
		if s < 256*units.KB {
			small++
		}
		if s > 8*units.MB {
			large++
		}
	}
	if small <= large {
		t.Fatalf("zipf not skewed toward small: %d small vs %d large", small, large)
	}
	if small < 3*large {
		t.Fatalf("skew too weak: %d small vs %d large", small, large)
	}
}

func TestZipfMeanConsistent(t *testing.T) {
	z := Zipf{Min: 64 * units.KB, Max: 16 * units.MB}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(z.Sample(rng))
	}
	sampleMean := sum / n
	declared := float64(z.Mean())
	ratio := sampleMean / declared
	// The declared mean uses bucket lower bounds; samples are uniform
	// within buckets, so the sample mean runs up to ~1.5x higher.
	if ratio < 0.8 || ratio > 1.8 {
		t.Fatalf("sample mean %.0f vs declared %.0f (ratio %.2f)", sampleMean, declared, ratio)
	}
}

func TestZipfDefaults(t *testing.T) {
	z := Zipf{} // all defaults
	rng := rand.New(rand.NewSource(4))
	s := z.Sample(rng)
	if s <= 0 {
		t.Fatalf("default sample %d", s)
	}
	if z.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestZipfDrivesWorkload(t *testing.T) {
	r := NewRunner(newFS(256*units.MB), Zipf{Min: 64 * units.KB, Max: 4 * units.MB}, 5)
	if _, err := r.BulkLoad(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ChurnToAge(1, ChurnOptions{}); err != nil {
		t.Fatal(err)
	}
	if r.Tracker().Age() < 1 {
		t.Fatalf("age %.2f", r.Tracker().Age())
	}
}
