package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/units"
	"repro/internal/vclock"
)

// BenchmarkExecutorStreams measures the executor's raw (wall-clock)
// speed as stream count scales — the k=16 → k=256 hot-path regime of
// the raw-speed pass, and the companion to BenchmarkObsOverhead in the
// CI bench smoke. Each arm bulk-loads a fresh store with k concurrent
// streams, then churns to a fixed storage age; reported metrics are
// wall-clock operations per second (the simulation's own speed, NOT
// virtual-time storage throughput) plus ns and allocs per executed op.
// Regressions here mean shared-state contention — the age tracker, the
// commit pipeline, the striped locks, the virtual clock — not slower
// simulated hardware.
func BenchmarkExecutorStreams(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var ops, nsTotal int64
			for i := 0; i < b.N; i++ {
				n, ns := runExecutorArm(b, k)
				ops += n
				nsTotal += ns
			}
			if ops > 0 {
				b.ReportMetric(float64(ops)/(float64(nsTotal)/1e9), "ops/sec")
				b.ReportMetric(float64(nsTotal)/float64(ops), "ns/op-executed")
			}
		})
	}
}

// runExecutorArm runs one load+churn cycle with k streams and returns
// the executed op count and the wall nanoseconds the phases took.
func runExecutorArm(b *testing.B, k int) (ops int64, wallNs int64) {
	b.Helper()
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(1*units.GB),
		blob.WithDiskMode(disk.MetadataMode),
		blob.WithGroupCommit(max(2, k), 0))
	if err != nil {
		b.Fatal(err)
	}
	defer blob.CloseStore(store)
	r := NewConcurrentRunner(store, UniformStreams(k, Constant{Size: 32 * units.KB}), 1)

	start := time.Now()
	load, err := r.BulkLoad(0.4)
	if err != nil {
		b.Fatal(err)
	}
	churn, err := r.ChurnToAge(3, ChurnOptions{TolerateNoSpace: true, ReadsPerWrite: 1})
	if err != nil {
		b.Fatal(err)
	}
	return int64(load.Ops) + int64(churn.Ops), time.Since(start).Nanoseconds()
}
