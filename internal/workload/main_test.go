package workload

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// executor streams and their stores promise to drain when a phase ends.
func TestMain(m *testing.M) { leakcheck.Main(m) }
