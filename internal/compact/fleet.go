package compact

import (
	"context"

	"repro/internal/blob"
)

// Fleet runs one Compactor per shard of a sharded store — each child
// gets its own scan scope and duty-cycle account, mirroring how a real
// deployment compacts shards independently — with rewrites executed
// through the TOP of the store chain so cache invalidation and shard
// routing hold. Over an unsharded store a Fleet degenerates to a single
// compactor. Fleet implements workload.Background structurally, like
// Compactor.
type Fleet struct {
	comps []*Compactor
}

// innerer is the structural cache-unwrapping capability (cache.Store).
type innerer interface {
	Inner() blob.Store
}

// sharded is the structural shard-enumeration capability (shard.Store).
type sharded interface {
	NumShards() int
	Shard(int) blob.Store
}

// NewFleet builds per-shard compactors for store. Cache layers are
// unwrapped to find the shard fan-out (scans go straight to the
// children), but every rewrite still executes through store itself.
func NewFleet(store blob.Store, cfg Config) (*Fleet, error) {
	base := store
	for {
		if in, ok := base.(innerer); ok {
			base = in.Inner()
			continue
		}
		break
	}
	if sh, ok := base.(sharded); ok {
		comps := make([]*Compactor, 0, sh.NumShards())
		for i := 0; i < sh.NumShards(); i++ {
			c, err := newScoped(store, sh.Shard(i), cfg)
			if err != nil {
				return nil, err
			}
			comps = append(comps, c)
		}
		return &Fleet{comps: comps}, nil
	}
	c, err := New(store, cfg)
	if err != nil {
		return nil, err
	}
	return &Fleet{comps: []*Compactor{c}}, nil
}

// Size returns the number of per-shard compactors.
func (f *Fleet) Size() int { return len(f.comps) }

// Start launches every per-shard compactor.
func (f *Fleet) Start() {
	for _, c := range f.comps {
		c.Start()
	}
}

// Stop halts every per-shard compactor and blocks until all drain.
func (f *Fleet) Stop() {
	for _, c := range f.comps {
		c.Stop()
	}
}

// RunOnce runs one synchronous cycle on every per-shard compactor,
// returning the aggregated work of this pass.
func (f *Fleet) RunOnce(ctx context.Context) Stats {
	var total Stats
	for _, c := range f.comps {
		s := c.RunOnce(ctx)
		total.add(s)
	}
	return total
}

// CatchUp gives every per-shard compactor one synchronous duty-gated
// work opportunity (see Compactor.CatchUp).
func (f *Fleet) CatchUp(ctx context.Context) {
	for _, c := range f.comps {
		c.CatchUp(ctx)
	}
}

// Stats aggregates CompactStats across the fleet's compactors.
func (f *Fleet) Stats() Stats {
	var total Stats
	for _, c := range f.comps {
		total.add(c.Stats())
	}
	return total
}
