package compact

import (
	"strconv"

	"repro/internal/obs"
)

// PublishMetrics writes the fleet's aggregate work into reg under the
// given prefix ("compact" → "compact.rewrites", ...): counters for the
// cumulative work (scans, rewrites, packs, busy/skip/error counts),
// gauges for the byte totals and the realized duty cycle. Call at a
// phase boundary — the compactor pushes nothing itself, so publishing
// is a snapshot, consistent with the registry's phase-report model.
func (f *Fleet) PublishMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := f.Stats()
	set := func(name string, v int64) {
		c := reg.Counter(prefix + "." + name)
		c.Add(v - c.Value())
	}
	set("scans", s.Scans)
	set("rewrites", s.Rewrites)
	set("packs", s.Packs)
	set("packed_objects", s.PackedObjects)
	set("skipped_busy", s.SkippedBusy)
	set("errors", s.Errors)
	reg.Gauge(prefix + ".rewrite_bytes").Set(float64(s.RewriteBytes))
	reg.Gauge(prefix + ".packed_bytes").Set(float64(s.PackedBytes))
	reg.Gauge(prefix + ".busy_seconds").Set(s.BusySeconds)
	var duty float64
	for _, c := range f.comps {
		duty += c.cfg.DutyCycle
	}
	if len(f.comps) > 0 {
		duty /= float64(len(f.comps))
	}
	reg.Gauge(prefix + ".duty_cycle").Set(duty)
}

// PublishShardMetrics additionally publishes per-compactor (per-shard)
// rewrite-byte gauges ("compact.shard0.rewrite_bytes", ...), the
// skew view a fleet over a sharded store needs.
func (f *Fleet) PublishShardMetrics(reg *obs.Registry, prefix string) {
	if reg == nil || len(f.comps) < 2 {
		return
	}
	for i, c := range f.comps {
		s := c.Stats()
		name := prefix + ".shard" + strconv.Itoa(i)
		reg.Gauge(name + ".rewrite_bytes").Set(float64(s.RewriteBytes))
		reg.Gauge(name + ".busy_seconds").Set(s.BusySeconds)
	}
}
