package compact_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// the compactor's background loop promises to drain on Stop.
func TestMain(m *testing.M) { leakcheck.Main(m) }
