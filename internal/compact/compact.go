// Package compact implements online background compaction — the
// paper's missing chapter. §3.4 warns that defragmentation "imposes
// read/write performance impacts that can outweigh its benefits" but
// never measures the tradeoff; this package makes it measurable. A
// Compactor runs DURING live traffic over any blob.Store-backed engine:
// it watches per-store fragmentation (the same Snapshot statistic the
// shard layer aggregates), rewrites the worst-fragmented objects, and
// coalesces the small-object tail into pack files — all metered by a
// duty cycle on the shared virtual clock, so the rewrite traffic's cost
// is charged against the same throughput numbers it is trying to
// improve.
//
// The compactor needs no engine-specific hooks: it drives the
// structural Rewriter and Packer capabilities, which core.FileStore,
// core.DBStore, shard.Store, and cache.Store all implement. Every
// rewrite publishes a fresh object version, so readers pinned to the
// old layout fail with a typed error rather than observing a torn
// rewrite.
package compact

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/frag"
	"repro/internal/units"
	"repro/internal/vclock"
)

// Rewriter is the single-object rewrite capability a store exposes to
// the compactor. The rewrite must publish a fresh version (readers
// pinned to the old layout fail typed) and return the bytes moved —
// 0 when the object was already contiguous or could not be placed.
type Rewriter interface {
	CompactObject(ctx context.Context, key string) (int64, error)
}

// Packer is the small-object coalescing capability: pack the given keys
// into one shared extent, returning the keys actually packed.
type Packer interface {
	PackObjects(ctx context.Context, keys []string) ([]string, error)
}

// ErrUnsupported reports a store without the rewrite capability.
var ErrUnsupported = errors.New("compact: store does not support object rewrite")

// Config tunes one Compactor.
type Config struct {
	// DutyCycle is the fraction of virtual time the compactor may
	// consume, in [0, 1]. The compactor stalls whenever its own charged
	// virtual time exceeds DutyCycle × elapsed virtual time since Start,
	// so it only works in the idle windows foreground traffic leaves.
	// 0 disables the compactor; 1 removes the gate.
	DutyCycle float64

	// CycleBudget caps the bytes rewritten per scan cycle (default
	// 64 MB). The next cycle re-scans, so a shrinking budget tracks a
	// churning keyspace instead of chasing a stale candidate list.
	CycleBudget int64

	// MinFragments is the least fragment count that makes an object a
	// rewrite candidate (default 2: anything discontiguous).
	MinFragments int

	// TriggerFragments is the mean fragments/object below which the
	// store is considered healthy and the rewrite stage idles (default
	// 1.2) — the "hot fragmentation" detector.
	TriggerFragments float64

	// PackThreshold marks objects of at most this many bytes as
	// small-object-tail pack candidates (default 256 KB). Packing only
	// runs against stores with the Packer capability.
	PackThreshold int64

	// PackBatch is the most members per pack attempt (default 64).
	PackBatch int
}

func (cfg Config) withDefaults() Config {
	if cfg.CycleBudget == 0 {
		cfg.CycleBudget = 64 * units.MB
	}
	if cfg.MinFragments == 0 {
		cfg.MinFragments = 2
	}
	if cfg.TriggerFragments == 0 {
		cfg.TriggerFragments = 1.2
	}
	if cfg.PackThreshold == 0 {
		cfg.PackThreshold = 256 * units.KB
	}
	if cfg.PackBatch == 0 {
		cfg.PackBatch = 64
	}
	return cfg
}

// Stats counts one compactor's work. All rewrite and pack disk traffic
// is charged on the store's shared virtual clock; BusySeconds is the
// compactor's slice of it — the numerator of the duty-cycle gate.
type Stats struct {
	// Scans counts candidate-selection passes.
	Scans int64
	// Rewrites counts objects rewritten; RewriteBytes their bytes.
	Rewrites     int64
	RewriteBytes int64
	// Packs counts pack extents built; PackedObjects and PackedBytes
	// the members coalesced into them.
	Packs         int64
	PackedObjects int64
	PackedBytes   int64
	// SkippedBusy counts rewrites refused because a writer held the key.
	SkippedBusy int64
	// Errors counts rewrite or pack failures other than busy/not-found.
	Errors int64
	// BusySeconds is virtual time consumed by the compactor's own ops.
	BusySeconds float64
}

func (s *Stats) add(o Stats) {
	s.Scans += o.Scans
	s.Rewrites += o.Rewrites
	s.RewriteBytes += o.RewriteBytes
	s.Packs += o.Packs
	s.PackedObjects += o.PackedObjects
	s.PackedBytes += o.PackedBytes
	s.SkippedBusy += o.SkippedBusy
	s.Errors += o.Errors
	s.BusySeconds += o.BusySeconds
}

func (s Stats) String() string {
	return fmt.Sprintf("%d scans, %d rewrites (%s), %d packs (%d objects, %s), %.2fs busy",
		s.Scans, s.Rewrites, units.FormatBytes(s.RewriteBytes),
		s.Packs, s.PackedObjects, units.FormatBytes(s.PackedBytes), s.BusySeconds)
}

// Compactor is one background compaction worker. Start launches its
// goroutine; Stop blocks until it drains. The zero duty cycle makes
// Start a no-op, so a disabled compactor can flow through the same
// harness code path as an enabled one. Compactor implements
// workload.Background structurally.
type Compactor struct {
	exec  Rewriter
	pack  Packer      // nil when the store cannot pack
	scan  frag.Source // candidate-selection scope (a shard child in a Fleet)
	clock *vclock.Clock
	cfg   Config
	ctx   context.Context // carried into background-loop cycles

	mu        sync.Mutex
	stats     Stats
	busyNs    int64
	startNs   int64
	running   bool
	packTried map[string]bool

	stop chan struct{}
	done chan struct{}
}

// New builds a compactor over store, scanning and rewriting the whole
// store. It fails with ErrUnsupported when the store lacks the rewrite
// capability, and with an error wrapping blob.ErrBadOption for a duty
// cycle outside [0, 1].
func New(store blob.Store, cfg Config) (*Compactor, error) {
	return newScoped(store, store, cfg)
}

// newScoped builds a compactor that selects candidates from scan but
// executes rewrites through store — the shape a shard Fleet uses so
// per-child scans stay cheap while rewrites flow through the top of the
// store chain (cache invalidation, shard routing).
func newScoped(store blob.Store, scan frag.Source, cfg Config) (*Compactor, error) {
	rw, ok := store.(Rewriter)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, store.Name())
	}
	if err := ValidateDuty(cfg.DutyCycle); err != nil {
		return nil, err
	}
	c := &Compactor{
		exec:      rw,
		scan:      scan,
		clock:     store.Clock(),
		cfg:       cfg.withDefaults(),
		ctx:       context.Background(),
		packTried: make(map[string]bool),
	}
	if pk, ok := store.(Packer); ok {
		c.pack = pk
	}
	return c, nil
}

// WithContext sets the context the background loop's rewrites and
// packs carry, so cancelling it stops in-flight loop work at the next
// store operation. Call before Start; the default is
// context.Background().
func (c *Compactor) WithContext(ctx context.Context) *Compactor {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctx = ctx
	return c
}

// Stats returns a snapshot of the compactor's counters.
func (c *Compactor) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Start launches the background loop. A zero duty cycle (the "off" arm
// of an experiment) is a no-op. Start/Stop pairs may not overlap.
func (c *Compactor) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running || c.cfg.DutyCycle <= 0 {
		return
	}
	c.running = true
	c.startNs = c.clock.Now()
	c.busyNs = 0
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.ctx, c.stop, c.done)
}

// Stop halts the background loop and blocks until it drains. Stopping
// a compactor that is not running is a no-op.
func (c *Compactor) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

// RunOnce performs one full scan-and-rewrite cycle synchronously, with
// the duty gate held open — the offline entry point benchmarks and
// recovery drills use. It returns the work done by this cycle alone.
func (c *Compactor) RunOnce(ctx context.Context) Stats {
	before := c.Stats()
	c.cycle(ctx, func() bool { return true })
	after := c.Stats()
	after.Scans -= before.Scans
	after.Rewrites -= before.Rewrites
	after.RewriteBytes -= before.RewriteBytes
	after.Packs -= before.Packs
	after.PackedObjects -= before.PackedObjects
	after.PackedBytes -= before.PackedBytes
	after.SkippedBusy -= before.SkippedBusy
	after.Errors -= before.Errors
	after.BusySeconds -= before.BusySeconds
	return after
}

// CatchUp performs duty-gated work synchronously during a foreground
// idle window and returns as soon as the gate closes or no work
// remains. Unlike the background loop it never waits on real time, so
// a simulation driving virtual time from a single goroutine can give
// the compactor its duty-cycle share deterministically: each call does
// at most enough work to bring busy time up to DutyCycle × elapsed
// virtual time since Start. A zero duty cycle is a no-op.
func (c *Compactor) CatchUp(ctx context.Context) {
	if c.cfg.DutyCycle <= 0 {
		return
	}
	for c.gateOpen() {
		if !c.cycle(ctx, c.gateOpen) {
			return
		}
	}
}

// loop is the background worker: scan, work, idle, repeat. It carries
// the WithContext context into every cycle so cancellation reaches the
// store operations the loop issues.
func (c *Compactor) loop(ctx context.Context, stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		worked := c.cycle(ctx, func() bool { return c.gate(stop) })
		if !worked {
			// Nothing to do right now; wait for foreground traffic to
			// create work (and advance the virtual clock).
			select {
			case <-stop:
				return
			//fragvet:ignore vclockpurity idle backoff waits on real time for foreground traffic to advance the virtual clock
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// gateOpen reports whether the compactor's charged virtual time fits
// under DutyCycle × elapsed virtual time since Start — the idle-window
// detector, without waiting.
func (c *Compactor) gateOpen() bool {
	if c.cfg.DutyCycle >= 1 {
		return true
	}
	c.mu.Lock()
	busy, start := c.busyNs, c.startNs
	c.mu.Unlock()
	return float64(busy) <= c.cfg.DutyCycle*float64(c.clock.Now()-start)
}

// gate blocks until the duty gate opens. The clock only advances when
// SOMETHING does work, so the compactor waits on real time for
// foreground traffic to open the window. Returns false when stopped
// while waiting.
func (c *Compactor) gate(stop chan struct{}) bool {
	for {
		if c.gateOpen() {
			return true
		}
		select {
		case <-stop:
			return false
		//fragvet:ignore vclockpurity the duty gate polls real time because only foreground traffic advances the virtual clock
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// charge accounts one operation's virtual time as compactor busy time.
//
//fragvet:ignore vclockpurity duty-cycle bookkeeping only; the store already advanced the clock during the rewrite being charged
func (c *Compactor) charge(w vclock.Stopwatch) {
	ns := w.Nanoseconds()
	c.mu.Lock()
	c.busyNs += ns
	c.stats.BusySeconds += float64(ns) / 1e9
	c.mu.Unlock()
}

// cycle runs one scan plus the work it uncovers: a pack attempt over
// the small-object tail, then worst-first rewrites up to CycleBudget.
// admit is consulted before every operation — the blocking duty gate
// for the background loop, its non-blocking twin for CatchUp, and a
// constant true for RunOnce; a false return abandons the cycle. It
// reports whether any object was moved.
func (c *Compactor) cycle(ctx context.Context, admit func() bool) bool {
	rep := frag.Analyze(c.scan)
	c.mu.Lock()
	c.stats.Scans++
	c.mu.Unlock()

	worked := false

	// Pack stage: coalesce the small-object tail. Keys already tried
	// (packed or refused) are skipped until they churn back as fresh
	// versions — the store itself filters repacks.
	if c.pack != nil {
		var smalls []string
		for _, o := range rep.PerObject {
			if o.Bytes > 0 && o.Bytes <= c.cfg.PackThreshold && !c.packTried[o.Key] {
				smalls = append(smalls, o.Key)
				if len(smalls) >= c.cfg.PackBatch {
					break
				}
			}
		}
		if len(smalls) >= 2 {
			if !admit() {
				return worked
			}
			w := vclock.StartWatch(c.clock)
			packed, err := c.pack.PackObjects(ctx, smalls)
			c.charge(w)
			c.mu.Lock()
			for _, k := range smalls {
				c.packTried[k] = true
			}
			if err != nil {
				c.stats.Errors++
			} else if len(packed) > 0 {
				c.stats.Packs++
				c.stats.PackedObjects += int64(len(packed))
				for _, k := range packed {
					for _, o := range rep.PerObject {
						if o.Key == k {
							c.stats.PackedBytes += o.Bytes
							break
						}
					}
				}
				worked = true
			}
			c.mu.Unlock()
		}
	}

	// Rewrite stage: only when fragmentation is hot, worst-first, under
	// the per-cycle byte budget.
	if rep.MeanFragments() < c.cfg.TriggerFragments {
		return worked
	}
	cands := make([]frag.ObjectReport, 0, len(rep.PerObject))
	for _, o := range rep.PerObject {
		if o.Fragments >= c.cfg.MinFragments {
			cands = append(cands, o)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Fragments != cands[j].Fragments {
			return cands[i].Fragments > cands[j].Fragments
		}
		return cands[i].Key < cands[j].Key
	})
	var movedBytes int64
	for _, o := range cands {
		if movedBytes >= c.cfg.CycleBudget {
			break
		}
		if !admit() {
			return worked
		}
		w := vclock.StartWatch(c.clock)
		n, err := c.exec.CompactObject(ctx, o.Key)
		c.charge(w)
		c.mu.Lock()
		switch {
		case err == nil && n > 0:
			c.stats.Rewrites++
			c.stats.RewriteBytes += n
			movedBytes += n
			worked = true
		case errors.Is(err, blob.ErrBusy):
			c.stats.SkippedBusy++
		case errors.Is(err, blob.ErrNotFound):
			// Churned away between scan and rewrite; not an error.
		case err != nil:
			c.stats.Errors++
		}
		c.mu.Unlock()
	}
	return worked
}

// ValidateDuty checks a duty-cycle value, failing with an error
// wrapping blob.ErrBadOption outside [0, 1].
func ValidateDuty(d float64) error {
	if !(d >= 0 && d <= 1) { // negated to also catch NaN
		return fmt.Errorf("%w: duty cycle %v outside [0,1]", blob.ErrBadOption, d)
	}
	return nil
}

// ParseDutyList parses a comma-separated duty-cycle sweep spec like
// "0,0.1,0.5" (the fragbench -duty flag). Every value must lie in
// [0, 1]; malformed specs fail with an error wrapping blob.ErrBadOption.
func ParseDutyList(spec string) ([]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty duty-cycle list", blob.ErrBadOption)
	}
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad duty cycle %q", blob.ErrBadOption, strings.TrimSpace(p))
		}
		if err := ValidateDuty(v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
