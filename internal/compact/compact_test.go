package compact_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cache"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/frag"
	"repro/internal/shard"
	"repro/internal/units"
	"repro/internal/vclock"
)

// newShatteredFS builds a FileStore holding n objects of size bytes and
// pathologically fragments the volume (the §5.3 fixture).
func newShatteredFS(t *testing.T, n int, size int64) *core.FileStore {
	t.Helper()
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := blob.Put(ctx, store, fmt.Sprintf("obj-%02d", i), size, nil); err != nil {
			t.Fatal(err)
		}
	}
	store.Volume().ShatterFiles(4)
	return store
}

func TestValidateDuty(t *testing.T) {
	for _, d := range []float64{0, 0.1, 0.5, 1} {
		if err := compact.ValidateDuty(d); err != nil {
			t.Errorf("ValidateDuty(%v) = %v, want nil", d, err)
		}
	}
	for _, d := range []float64{-0.1, 1.01, math.NaN(), math.Inf(1)} {
		if err := compact.ValidateDuty(d); !errors.Is(err, blob.ErrBadOption) {
			t.Errorf("ValidateDuty(%v) = %v, want ErrBadOption", d, err)
		}
	}
}

func TestParseDutyList(t *testing.T) {
	tests := []struct {
		spec string
		want []float64
		ok   bool
	}{
		{"0,0.1,0.5", []float64{0, 0.1, 0.5}, true},
		{" 1 ", []float64{1}, true},
		{"0.25", []float64{0.25}, true},
		{"0, 0.5 ,1", []float64{0, 0.5, 1}, true},
		{"", nil, false},
		{"   ", nil, false},
		{"-0.1", nil, false},
		{"1.5", nil, false},
		{"abc", nil, false},
		{"0,,1", nil, false},
		{"0.1;0.5", nil, false},
	}
	for _, tc := range tests {
		got, err := compact.ParseDutyList(tc.spec)
		if !tc.ok {
			if !errors.Is(err, blob.ErrBadOption) {
				t.Errorf("ParseDutyList(%q) err = %v, want ErrBadOption", tc.spec, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDutyList(%q) = %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseDutyList(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseDutyList(%q)[%d] = %v, want %v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

// noRewrite hides every capability beyond the plain blob.Store methods.
type noRewrite struct{ blob.Store }

func TestNewRejectsUnsupportedAndBadDuty(t *testing.T) {
	store, err := core.NewFileStore(vclock.New(), blob.WithCapacity(64*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compact.New(noRewrite{store}, compact.Config{DutyCycle: 0.5}); !errors.Is(err, compact.ErrUnsupported) {
		t.Fatalf("New(no-rewrite store) = %v, want ErrUnsupported", err)
	}
	for _, d := range []float64{-1, 2} {
		if _, err := compact.New(store, compact.Config{DutyCycle: d}); !errors.Is(err, blob.ErrBadOption) {
			t.Fatalf("New(duty %v) = %v, want ErrBadOption", d, err)
		}
	}
}

// TestRunOnceDefragmentsFileStore pins the rewrite stage end to end: a
// shattered volume comes back toward contiguity, the moved bytes are
// counted, and the work charges the shared virtual clock.
func TestRunOnceDefragmentsFileStore(t *testing.T) {
	store := newShatteredFS(t, 12, 2*units.MB)
	before := frag.Analyze(store).MeanFragments()
	if before < 2 {
		t.Fatalf("fixture not fragmented: mean %.2f", before)
	}
	c, err := compact.New(store, compact.Config{DutyCycle: 1, PackThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	clockBefore := store.Clock().Now()
	st := c.RunOnce(context.Background())
	after := frag.Analyze(store).MeanFragments()

	if st.Rewrites == 0 || st.RewriteBytes == 0 {
		t.Fatalf("no rewrites recorded: %v", st)
	}
	if st.BusySeconds <= 0 {
		t.Fatalf("compactor busy time not accounted: %v", st)
	}
	if store.Clock().Now() == clockBefore {
		t.Fatal("rewrites advanced no virtual time (disk cost not charged)")
	}
	if after >= before {
		t.Fatalf("mean fragments %.2f -> %.2f, want a decrease", before, after)
	}
}

// TestRunOncePacksSmallTail pins the pack stage: a tail of small
// objects is coalesced into a pack extent and stays readable.
func TestRunOncePacksSmallTail(t *testing.T) {
	ctx := context.Background()
	store, err := core.NewFileStore(vclock.New(),
		blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.DataMode))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100*units.KB)
	for i := range data {
		data[i] = byte(i % 251)
	}
	for i := 0; i < 6; i++ {
		if err := blob.Put(ctx, store, fmt.Sprintf("small-%d", i), int64(len(data)), data); err != nil {
			t.Fatal(err)
		}
	}
	c, err := compact.New(store, compact.Config{DutyCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := c.RunOnce(ctx)
	if st.Packs != 1 || st.PackedObjects != 6 {
		t.Fatalf("pack stage did %d packs / %d objects, want 1 / 6: %v", st.Packs, st.PackedObjects, st)
	}
	if st.PackedBytes != 6*int64(len(data)) {
		t.Fatalf("packed bytes = %d, want %d", st.PackedBytes, 6*len(data))
	}
	if store.Volume().PackCount() != 1 {
		t.Fatalf("volume pack count = %d, want 1", store.Volume().PackCount())
	}
	if _, got, err := blob.Get(ctx, store, "small-3"); err != nil || string(got) != string(data) {
		t.Fatalf("packed object unreadable: %v", err)
	}
	// A second cycle does not thrash: the tail is already packed.
	st = c.RunOnce(ctx)
	if st.Packs != 0 {
		t.Fatalf("repack on second cycle: %v", st)
	}
}

// TestRunOnceCompactsDBStore drives the database backend's rewrite path:
// delete-then-overwrite churn leaves objects spanning scattered holes,
// and compaction re-appends them contiguously through the log.
func TestRunOnceCompactsDBStore(t *testing.T) {
	ctx := context.Background()
	store, err := core.NewDBStore(vclock.New(),
		blob.WithCapacity(256*units.MB), blob.WithDiskMode(disk.MetadataMode))
	if err != nil {
		t.Fatal(err)
	}
	// 16 × 128 KB, delete every other, refill with 256 KB objects that
	// must span two old holes each.
	for i := 0; i < 16; i++ {
		if err := blob.Put(ctx, store, fmt.Sprintf("row-%02d", i), 128*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i += 2 {
		if err := store.Delete(ctx, fmt.Sprintf("row-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := blob.Put(ctx, store, fmt.Sprintf("big-%d", i), 256*units.KB, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := frag.Analyze(store).MeanFragments()
	if before <= 1 {
		t.Fatalf("fixture not fragmented: mean %.2f", before)
	}
	c, err := compact.New(store, compact.Config{DutyCycle: 1, PackThreshold: 1, TriggerFragments: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	st := c.RunOnce(ctx)
	after := frag.Analyze(store).MeanFragments()
	if st.Rewrites == 0 {
		t.Fatalf("no rewrites on the db backend: %v", st)
	}
	if after >= before {
		t.Fatalf("mean fragments %.2f -> %.2f, want a decrease", before, after)
	}
	if got := store.Engine().Stats().Compactions; got != st.Rewrites {
		t.Fatalf("engine counted %d compactions, compactor %d", got, st.Rewrites)
	}
}

// TestDutyCycleBoundsBusyTime pins the gate: with foreground reads
// advancing the shared clock, a background compactor at duty d never
// runs more than d of the elapsed virtual time ahead by more than one
// operation.
func TestDutyCycleBoundsBusyTime(t *testing.T) {
	const duty = 0.1
	ctx := context.Background()
	store := newShatteredFS(t, 24, units.MB)
	c, err := compact.New(store, compact.Config{DutyCycle: duty, PackThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := vclock.StartWatch(store.Clock())
	c.Start()
	// Foreground traffic: reads advance the clock and open idle windows.
	// Keep going until the compactor has demonstrably worked (or a real
	// deadline passes — the gate only sleeps 100µs at a time).
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; c.Stats().Rewrites == 0 && time.Now().Before(deadline); i++ {
		if _, _, err := blob.Get(ctx, store, fmt.Sprintf("obj-%02d", i%24)); err != nil && !errors.Is(err, blob.ErrNotFound) {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, _, err := blob.Get(ctx, store, fmt.Sprintf("obj-%02d", i%24)); err != nil && !errors.Is(err, blob.ErrNotFound) {
			t.Fatal(err)
		}
	}
	c.Stop()
	elapsed := w.Seconds()
	st := c.Stats()
	if st.Rewrites == 0 {
		t.Fatalf("background compactor never ran: %v", st)
	}
	// The gate admits an op when busy <= duty*elapsed, so the overshoot
	// is bounded by a single op's cost; objects are uniform, so twice the
	// mean per-op busy time is a safe single-op bound.
	slack := 2 * st.BusySeconds / float64(st.Rewrites+st.SkippedBusy+1)
	if st.BusySeconds > duty*elapsed+slack {
		t.Fatalf("busy %.4fs exceeds duty %.2f of elapsed %.4fs (+%.4fs slack)",
			st.BusySeconds, duty, elapsed, slack)
	}
}

func TestZeroDutyIsNoOp(t *testing.T) {
	store := newShatteredFS(t, 4, units.MB)
	c, err := compact.New(store, compact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start() // no-op: zero duty cycle
	c.Stop()
	if st := c.Stats(); st != (compact.Stats{}) {
		t.Fatalf("zero-duty compactor did work: %v", st)
	}
}

// TestFleetPerShard pins the fleet fan-out: one compactor per shard
// child, scans scoped per child, rewrites routed through the top.
func TestFleetPerShard(t *testing.T) {
	ctx := context.Background()
	clock := vclock.New()
	children := make([]blob.Store, 4)
	for i := range children {
		c, err := core.NewFileStore(clock,
			blob.WithCapacity(128*units.MB), blob.WithDiskMode(disk.MetadataMode))
		if err != nil {
			t.Fatal(err)
		}
		children[i] = c
	}
	s, err := shard.New(children...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := blob.Put(ctx, s, fmt.Sprintf("key-%02d", i), units.MB, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, child := range children {
		child.(*core.FileStore).Volume().ShatterFiles(4)
	}
	before := frag.Analyze(s).MeanFragments()

	fleet, err := compact.NewFleet(s, compact.Config{DutyCycle: 1, PackThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != 4 {
		t.Fatalf("fleet size = %d, want 4", fleet.Size())
	}
	st := fleet.RunOnce(ctx)
	if st.Rewrites == 0 || st.Scans != 4 {
		t.Fatalf("fleet pass = %v, want rewrites > 0 across 4 scans", st)
	}
	if after := frag.Analyze(s).MeanFragments(); after >= before {
		t.Fatalf("mean fragments %.2f -> %.2f, want a decrease", before, after)
	}
}

// TestFleetUnwrapsCache pins the layering rule: the fleet finds the
// shard fan-out beneath a cache, but rewrites still execute through the
// cache so its entries observe the relocation.
func TestFleetUnwrapsCache(t *testing.T) {
	ctx := context.Background()
	inner := newShatteredFS(t, 8, units.MB)
	cached, err := cache.New(inner, cache.WithCapacity(32*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := compact.NewFleet(cached, compact.Config{DutyCycle: 1, PackThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != 1 {
		t.Fatalf("fleet size = %d, want 1", fleet.Size())
	}
	if st := fleet.RunOnce(ctx); st.Rewrites == 0 {
		t.Fatalf("fleet over cache did no rewrites: %v", st)
	}
	if _, _, err := blob.Get(ctx, cached, "obj-00"); err != nil {
		t.Fatalf("read through cache after compaction: %v", err)
	}
}

// TestBackgroundLoopHonorsContext pins the WithContext plumbing: the
// background loop must carry the configured context, so canceling it
// winds the loop down on its own — before the fix the loop minted
// context.Background() and cancellation never reached background work.
func TestBackgroundLoopHonorsContext(t *testing.T) {
	store := newShatteredFS(t, 12, 2*units.MB)
	c, err := compact.New(store, compact.Config{DutyCycle: 1, PackThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.WithContext(ctx).Start()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Scans == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Stats().Scans == 0 {
		t.Fatal("background loop never ran a cycle")
	}

	cancel()
	// The loop must stop scanning without Stop being called. An
	// uncancelable loop keeps rescanning every idle interval, so two
	// well-separated equal samples prove it drained.
	var s1, s2 int64
	for time.Now().Before(deadline) {
		s1 = c.Stats().Scans
		time.Sleep(300 * time.Millisecond)
		s2 = c.Stats().Scans
		if s1 == s2 {
			break
		}
	}
	if s1 != s2 {
		t.Fatalf("loop still scanning after cancel: %d -> %d scans", s1, s2)
	}
	c.Stop()

	// Positive control: the same compactor still works through the
	// synchronous entry point with a live context.
	store.Volume().ShatterFiles(4)
	if st := c.RunOnce(context.Background()); st.Rewrites == 0 {
		t.Fatalf("RunOnce with a live context did no work: %+v", st)
	}
}
