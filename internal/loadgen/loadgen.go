// Package loadgen drives a network blob service with hundreds of
// concurrent clients and measures wall-clock tail latency — the bridge
// from the repo's virtual-time simulations to a servable system.
//
// The op streams are the same workload.Source implementations the
// simulator runs (LoadSource for prepopulation, ChurnSource for the
// measured phases), so the generator exercises the same get/put mix as
// the paper's §4.3 experiments; only the executor differs. Each client
// goroutine owns a dialed client.Store, a seeded RNG, and a disjoint
// slice of the keyspace (no artificial ErrBusy collisions), and
// executes ops through the client's one-shot fast paths while
// recording wall nanoseconds into log-bucketed obs histograms — p999
// comes from the exact same quantile machinery as the virtual-time
// figures, just tagged wall_ns.
//
// Concurrency is ramped: each step in Config.Ramp runs the churn mix
// at k clients for Config.StepDuration on a freshly reset registry,
// and snapshots into its own "k=N" RunReport phase, so one run shows
// how p50/p99/p999 move as offered load grows into the server's
// admission limits. Admission sheds (429→ErrOverloaded,
// 503→ErrUnavailable) are counted per op kind, never retried — shed
// visibility is the point.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blob"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config parameterizes one load-generation run.
type Config struct {
	// URL is the service base URL (e.g. http://127.0.0.1:8080).
	URL string
	// Ramp is the concurrency schedule: one measured phase per entry,
	// in order. Every entry must be ≥ 1 and ≤ the final entry (the
	// dial pool is sized to the maximum).
	Ramp []int
	// StepDuration is the wall-clock length of each measured phase.
	StepDuration time.Duration
	// Objects is the keyspace size prepopulated before measuring.
	Objects int
	// Dist draws object sizes (prepopulation and replacement writes).
	Dist workload.SizeDist
	// ReadsPerWrite interleaves whole-object reads after each
	// successful replace (the §4.3 get/put mix).
	ReadsPerWrite int
	// Payload ships real object bytes over the wire; false drives the
	// metadata-only path (sizes travel, bytes don't) for protocol-limit
	// tests.
	Payload bool
	// Seed fixes every client's op stream (timing still varies).
	Seed int64
	// Report, when non-nil, receives one experiment with a phase per
	// ramp step.
	Report *obs.RunReport
}

// Result summarizes a run.
type Result struct {
	// Steps has one entry per ramp step, in order.
	Steps []StepResult
	// Loaded is the number of objects prepopulated.
	Loaded int
}

// StepResult is one measured concurrency step.
type StepResult struct {
	// Clients is the step's concurrency (the k in its "k=N" phase).
	Clients int
	// Ops counts completed operations (success or failure).
	Ops int64
	// Errors counts failed operations, including sheds.
	Errors int64
	// Shed counts admission rejections (429 + 503).
	Shed int64
	// Snapshot is the step's wall-clock registry snapshot.
	Snapshot obs.Snapshot
}

// TotalOps sums completed ops across all steps.
func (r Result) TotalOps() int64 {
	var n int64
	for _, s := range r.Steps {
		n += s.Ops
	}
	return n
}

// Run executes the full schedule: dial pool, prepopulate, then one
// measured churn phase per ramp entry. The context cancels the whole
// run (in-flight ops are abandoned mid-request; the per-op error is
// not counted against the service).
func Run(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	maxK := 0
	for _, k := range cfg.Ramp {
		if k > maxK {
			maxK = k
		}
	}

	// One dialed store per client: separate connection pools, like
	// separate client processes would have.
	clients := make([]*client.Store, maxK)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range clients {
		c, err := client.Dial(cfg.URL)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		clients[i] = c
	}

	keys, err := prepopulate(ctx, cfg, clients)
	if err != nil {
		return Result{}, err
	}

	res := Result{Loaded: len(keys)}
	reg := obs.NewWallRegistry()
	for _, k := range cfg.Ramp {
		reg.Reset()
		step, err := runStep(ctx, cfg, clients[:k], keys, reg)
		if err != nil {
			return res, err
		}
		res.Steps = append(res.Steps, step)
		if cfg.Report != nil {
			exp := cfg.Report.Section("loadgen")
			exp.AddPhase(fmt.Sprintf("k=%d", k), step.Snapshot)
		}
	}
	return res, nil
}

func (cfg Config) validate() error {
	if cfg.URL == "" {
		return fmt.Errorf("loadgen: %w: empty service URL", blob.ErrBadOption)
	}
	if len(cfg.Ramp) == 0 {
		return fmt.Errorf("loadgen: %w: empty concurrency ramp", blob.ErrBadOption)
	}
	for _, k := range cfg.Ramp {
		if k < 1 {
			return fmt.Errorf("loadgen: %w: ramp step %d must be ≥ 1", blob.ErrBadOption, k)
		}
	}
	if cfg.StepDuration <= 0 {
		return fmt.Errorf("loadgen: %w: step duration %v must be positive", blob.ErrBadOption, cfg.StepDuration)
	}
	if cfg.Objects < 1 {
		return fmt.Errorf("loadgen: %w: need at least one object", blob.ErrBadOption)
	}
	if cfg.Dist == nil {
		return fmt.Errorf("loadgen: %w: nil size distribution", blob.ErrBadOption)
	}
	return nil
}

// prepopulate creates the keyspace through LoadSource streams — one
// per dialed client, racing for a shared byte budget sized to
// cfg.Objects mean-sized objects — and returns the keys that actually
// committed.
func prepopulate(ctx context.Context, cfg Config, clients []*client.Store) ([]string, error) {
	mean := cfg.Dist.Mean()
	budget := workload.NewByteBudget(int64(cfg.Objects) * units.RoundUp(mean, 4*units.KB))
	var nextKey atomic.Int64
	var mu sync.Mutex
	var keys []string
	var firstErr error

	var wg sync.WaitGroup
	for i, c := range clients {
		src := &workload.LoadSource{
			Dist:   cfg.Dist,
			Budget: budget,
			Key: func() string {
				return fmt.Sprintf("o%06d", nextKey.Add(1))
			},
			OnCreate: func(key string) {
				mu.Lock()
				keys = append(keys, key)
				mu.Unlock()
			},
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		wg.Add(1)
		go func(c *client.Store) {
			defer wg.Done()
			err := drive(ctx, c, src, rng, nil, nil, cfg.payload, true)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("loadgen: prepopulate: %w", firstErr)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("loadgen: prepopulate committed no objects")
	}
	return keys, nil
}

// payload returns the bytes to ship for a write op: a patterned
// buffer of the op's logical size when Payload mode is on, nil (the
// metadata-only wire path) otherwise.
func (cfg Config) payload(op workload.Op) []byte {
	if !cfg.Payload || (op.Kind != workload.OpCreate && op.Kind != workload.OpReplace) {
		return nil
	}
	buf := make([]byte, op.Size)
	for i := range buf {
		buf[i] = byte(i)
	}
	return buf
}

// runStep runs one measured phase: k ChurnSource streams over disjoint
// keyspace partitions, stopping when the step's wall clock runs out.
func runStep(ctx context.Context, cfg Config, clients []*client.Store, keys []string, reg *obs.Registry) (StepResult, error) {
	k := len(clients)
	startNs := obs.WallNow()
	durNs := cfg.StepDuration.Nanoseconds()
	age := func() float64 {
		return float64(obs.WallNow()-startNs) / float64(durNs)
	}

	var ops, errs, shed atomic.Int64
	count := func(err error) {
		ops.Add(1)
		if err != nil {
			errs.Add(1)
			if errors.Is(err, blob.ErrOverloaded) || errors.Is(err, blob.ErrUnavailable) {
				shed.Add(1)
			}
		}
	}

	var wg sync.WaitGroup
	for i, c := range clients {
		// Disjoint partition: client i of k owns every key whose index
		// ≡ i (mod k), so concurrent safe-writes never contend on a key
		// and every ErrBusy the run sees is the server's, not the
		// schedule's.
		var part []string
		for j := i; j < len(keys); j += k {
			part = append(part, keys[j])
		}
		if len(part) == 0 {
			continue
		}
		src := &workload.ChurnSource{
			Keys:          part,
			Dist:          cfg.Dist,
			TargetAge:     1,
			Age:           age,
			ReadsPerWrite: cfg.ReadsPerWrite,
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1000003*int64(k) + int64(i)))
		wg.Add(1)
		go func(c *client.Store) {
			defer wg.Done()
			// Per-step errors are recorded, not fatal: a shed or timeout
			// under saturation is a measurement, not a failure.
			_ = drive(ctx, c, src, rng, reg, count, cfg.payload, false)
		}(c)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}
	return StepResult{
		Clients:  k,
		Ops:      ops.Load(),
		Errors:   errs.Load(),
		Shed:     shed.Load(),
		Snapshot: reg.Snapshot(),
	}, nil
}

// drive pulls ops from src until exhaustion (or ctx cancellation),
// executing each through the client's one-shot paths and reporting the
// outcome back to the source (SourceObserver feedback) and, when reg
// is non-nil, into wall-clock histograms and error counters.
//
// retryShed re-issues an op refused by admission control until it
// lands: prepopulation is setup, not measurement, and must converge
// even against a deliberately tiny admission limit. Measured phases
// never retry — shed visibility is the point.
func drive(ctx context.Context, c *client.Store, src workload.Source, rng *rand.Rand, reg *obs.Registry, count func(error), payload func(workload.Op) []byte, retryShed bool) error {
	obsv, _ := src.(workload.SourceObserver)
	for {
		if err := ctx.Err(); err != nil {
			return nil // run canceled; not a source failure
		}
		op, ok := src.Next(rng)
		if !ok {
			return nil
		}
		start := obs.WallNow()
		err := execute(ctx, c, op, payload(op))
		for retryShed && (errors.Is(err, blob.ErrOverloaded) || errors.Is(err, blob.ErrUnavailable)) && ctx.Err() == nil {
			err = execute(ctx, c, op, payload(op))
		}
		if ctx.Err() != nil {
			return nil // abandoned mid-op by cancellation; don't count
		}
		if reg != nil {
			name := "loadgen." + op.Kind.String()
			reg.Histogram(name).Observe(obs.WallNow() - start)
			if err != nil {
				reg.Counter(name + ".err." + blob.ErrName(err)).Add(1)
			}
		}
		if count != nil {
			count(err)
		}
		if obsv != nil {
			obsv.Observe(op, err)
		}
	}
}

// execute maps one workload op onto the wire fast paths.
func execute(ctx context.Context, c *client.Store, op workload.Op, payload []byte) error {
	switch op.Kind {
	case workload.OpCreate:
		return c.Upload(ctx, op.Key, op.Size, payload, false)
	case workload.OpReplace:
		return c.Upload(ctx, op.Key, op.Size, payload, true)
	case workload.OpDelete:
		return c.Delete(ctx, op.Key)
	case workload.OpRead:
		if op.Len > 0 {
			_, err := c.FetchAt(ctx, op.Key, op.Off, op.Len)
			return err
		}
		_, _, err := c.Fetch(ctx, op.Key)
		return err
	default:
		return fmt.Errorf("%w: op kind %v", blob.ErrBadOption, op.Kind)
	}
}
