package loadgen_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any goroutine survives the tests — the
// generator spawns hundreds of client goroutines per run, so a missed
// WaitGroup or unclosed connection pool shows up here.
func TestMain(m *testing.M) { leakcheck.Main(m) }
